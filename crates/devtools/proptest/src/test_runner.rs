//! Config, error type and the deterministic generator.

/// How many cases each property test runs.
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property (carries the formatted assertion message).
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Deterministic splitmix64 generator, seeded from the test name so every
/// run of a given test sees the same input sequence.
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seed from a test identifier.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Rng { state: h | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
