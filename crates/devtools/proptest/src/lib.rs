//! Offline stand-in for `proptest`: deterministic random-input testing
//! with the subset of the API the in-tree property tests use.
//!
//! Differences from the real crate (see `crates/devtools/README.md`):
//! no shrinking (a failure reports the raw inputs), `prop_assume!` skips
//! the case instead of drawing a replacement, and generation is seeded
//! from the test's module path so runs are reproducible.

pub mod strategy;
pub mod test_runner;

/// The common imports: `use proptest::prelude::*;`
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `cases` times over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::Rng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__config.cases {
                    $( let $arg = ($strat).generate(&mut __rng); )+
                    let __desc = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = __result {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            __case + 1, __config.cases, e.0, __desc
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

/// Assert inside a proptest body (reports the generated inputs on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        $crate::prop_assert_eq!($a, $b, "{} != {}", stringify!($a), stringify!($b))
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$a, &$b);
        if !(*__left == *__right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)+),
                __left,
                __right
            )));
        }
    }};
}

/// Skip the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    static RUNS: AtomicU32 = AtomicU32::new(0);

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]

        // No #[test] here: invoked (once) by `case_count_honored` so the
        // exact case count can be asserted without double execution.
        fn runs_configured_cases(x in 0i64..100, flip in any::<bool>()) {
            RUNS.fetch_add(1, Ordering::SeqCst);
            prop_assert!((0..100).contains(&x));
            prop_assume!(flip | !flip);
        }
    }

    #[test]
    fn case_count_honored() {
        runs_configured_cases();
        assert_eq!(RUNS.load(Ordering::SeqCst), 17);
    }

    proptest! {
        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![Just(1i64), Just(2i64), (10i64..20).prop_map(|x| x * 2)],
        ) {
            prop_assert!(v == 1 || v == 2 || (20..40).contains(&v), "v = {v}");
        }
    }
}
