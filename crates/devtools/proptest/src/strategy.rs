//! The `Strategy` trait and the generator combinators the in-tree tests
//! use: ranges, tuples, `Just`, `prop_map`, unions and `any::<T>()`.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::Rng;

/// A generator of test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut Rng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produce a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut Rng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the (non-empty) arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        let k = rng.below(self.arms.len() as u64) as usize;
        self.arms[k].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut Rng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + rng.below(span) as $t
                }
            }
        )+
    };
}

int_range_strategy!(i64, i32, u32, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut Rng) -> f64 {
        self.start + rng.f64_unit() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut Rng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> bool {
        rng.below(2) == 1
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut Rng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut Rng) -> u8 {
        rng.below(256) as u8
    }
}

/// Strategy for the whole domain of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
