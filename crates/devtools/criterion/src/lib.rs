//! Offline stand-in for `criterion`: a tiny wall-clock bench harness with
//! the same macro/entry-point surface the in-tree benches use.
//!
//! Each benchmark runs one warm-up iteration, then `sample_size` timed
//! iterations, and prints `name  time: [min median max]`. There is no
//! statistical analysis, HTML report, or baseline comparison — see
//! `crates/devtools/README.md`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLES: usize = 10;

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the benchmark closure; `iter` times the payload.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Run and time `f`, once as warm-up and `samples` times measured.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.results.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.results.push(t0.elapsed());
        }
    }
}

fn report(name: &str, results: &mut [Duration]) {
    if results.is_empty() {
        return;
    }
    results.sort_unstable();
    let (min, med, max) = (
        results[0],
        results[results.len() / 2],
        results[results.len() - 1],
    );
    println!(
        "{name:<40} time: [{} {} {}]",
        fmt_dur(min),
        fmt_dur(med),
        fmt_dur(max)
    );
}

fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.4} s")
    } else if s >= 1e-3 {
        format!("{:.4} ms", s * 1e3)
    } else {
        format!("{:.4} µs", s * 1e6)
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let mut b = Bencher {
            samples: DEFAULT_SAMPLES,
            results: Vec::new(),
        };
        f(&mut b);
        report(&id.id, &mut b.results);
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            samples: DEFAULT_SAMPLES,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            results: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &mut b.results);
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher {
            samples: self.samples,
            results: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &mut b.results);
    }

    /// Finish the group (no-op in the stand-in).
    pub fn finish(self) {}
}

/// Define a benchmark group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
