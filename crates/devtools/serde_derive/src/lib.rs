//! Offline stand-in for `serde_derive`: the derives expand to nothing.
//!
//! Nothing in this workspace serializes values — the derives on the
//! mapping/spec types only declare the intent so the real crate can be
//! swapped back in without source changes (crates/devtools/README.md).

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
