//! Offline stand-in for `serde`: marker traits plus no-op derives.
//!
//! See `crates/devtools/README.md` for scope and how to swap the real
//! crate back in.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// Marker counterpart of `serde::Serialize` (never invoked in-tree).
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize` (never invoked in-tree).
pub trait Deserialize<'de> {}
