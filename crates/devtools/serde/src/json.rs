//! Minimal JSON tree, writer and parser — the offline stand-in for
//! `serde_json`, sized for the repro harness's `results.json` files.
//!
//! Objects keep insertion order (no hashing), so rendering is fully
//! deterministic: the same tree always produces the same bytes. Numbers
//! are `f64` rendered with Rust's shortest round-trip formatting, so a
//! value written and re-parsed compares bit-identical — that property is
//! what lets the CI perf gate diff virtual times exactly.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers render without a fractional part).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field by key (`None` for absent keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as an unsigned count.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Render compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation and a trailing newline — the
    /// format of committed baseline files, so diffs stay reviewable.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(v) => {
                if v.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    e.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (the whole input must be one value).
    ///
    /// Nesting is bounded by [`ParseLimits::DEFAULT_MAX_DEPTH`] even here:
    /// the parser recurses per nesting level, and an unbounded `[[[[…`
    /// would otherwise overflow the stack instead of returning an error.
    /// Use [`Json::parse_limited`] to tighten (or widen) the limits for
    /// untrusted input.
    pub fn parse(src: &str) -> Result<Json, String> {
        Self::parse_limited(src, &ParseLimits::default())
    }

    /// [`Json::parse`] with explicit input-size and nesting limits —
    /// the entry point for untrusted (network) input. Exceeding either
    /// limit is an ordinary parse error, never a panic or stack overflow.
    pub fn parse_limited(src: &str, limits: &ParseLimits) -> Result<Json, String> {
        let bytes = src.as_bytes();
        if bytes.len() > limits.max_bytes {
            return Err(format!(
                "input too large: {} bytes exceeds the {}-byte cap",
                bytes.len(),
                limits.max_bytes
            ));
        }
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos, limits.max_depth)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(v)
    }

    /// Parse raw bytes (network input): validates UTF-8 first, returning
    /// a parse error — not a panic — on malformed sequences, then applies
    /// `limits` as [`Json::parse_limited`] does.
    pub fn parse_bytes(src: &[u8], limits: &ParseLimits) -> Result<Json, String> {
        let text = std::str::from_utf8(src).map_err(|e| format!("invalid UTF-8: {e}"))?;
        Self::parse_limited(text, limits)
    }
}

/// Input bounds for [`Json::parse_limited`] / [`Json::parse_bytes`]:
/// byte-size cap and nesting-depth cap, both surfaced as parse errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum input length in bytes.
    pub max_bytes: usize,
    /// Maximum container nesting depth (arrays + objects combined).
    pub max_depth: usize,
}

impl ParseLimits {
    /// Default nesting cap. Deep enough for any document this workspace
    /// writes, shallow enough that the recursive parser can never get
    /// close to the thread stack limit.
    pub const DEFAULT_MAX_DEPTH: usize = 512;

    /// Limits sized for a network request body.
    pub fn network(max_bytes: usize, max_depth: usize) -> Self {
        ParseLimits {
            max_bytes,
            max_depth,
        }
    }
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            max_bytes: usize::MAX,
            max_depth: Self::DEFAULT_MAX_DEPTH,
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.is_finite() {
        // `{}` on f64 is the shortest representation that parses back to
        // the identical bits — integers come out bare ("42").
        let _ = write!(out, "{n}");
    } else {
        // JSON has no Inf/NaN; wall clocks and virtual times never are,
        // but never emit an unparseable document.
        out.push_str("null");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            if depth == 0 {
                return Err(format!("nesting too deep at byte {pos}", pos = *pos));
            }
            *pos += 1;
            let mut v = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(v));
            }
            loop {
                v.push(parse_value(b, pos, depth - 1)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(v));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            if depth == 0 {
                return Err(format!("nesting too deep at byte {pos}", pos = *pos));
            }
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let k = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                fields.push((k, parse_value(b, pos, depth - 1)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut s = String::new();
    let mut chars = std::str::from_utf8(&b[*pos..])
        .map_err(|e| e.to_string())?
        .char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                *pos += i + 1;
                return Ok(s);
            }
            '\\' => match chars.next() {
                Some((_, '"')) => s.push('"'),
                Some((_, '\\')) => s.push('\\'),
                Some((_, '/')) => s.push('/'),
                Some((_, 'b')) => s.push('\u{8}'),
                Some((_, 'f')) => s.push('\u{c}'),
                Some((_, 'n')) => s.push('\n'),
                Some((_, 'r')) => s.push('\r'),
                Some((_, 't')) => s.push('\t'),
                Some((_, 'u')) => {
                    let hex: String = chars.by_ref().take(4).map(|(_, c)| c).collect();
                    let code =
                        u32::from_str_radix(&hex, 16).map_err(|_| "bad \\u escape".to_string())?;
                    let code = if (0xD800..0xDC00).contains(&code) {
                        // High surrogate: external writers (serde_json,
                        // jq, …) escape non-BMP chars as a \uXXXX\uXXXX
                        // pair; the low half must follow immediately.
                        if !matches!(
                            (chars.next(), chars.next()),
                            (Some((_, '\\')), Some((_, 'u')))
                        ) {
                            return Err("high surrogate not followed by \\u escape".into());
                        }
                        let hex: String = chars.by_ref().take(4).map(|(_, c)| c).collect();
                        let low = u32::from_str_radix(&hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        if !(0xDC00..0xE000).contains(&low) {
                            return Err("high surrogate not followed by low surrogate".into());
                        }
                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                    } else {
                        code
                    };
                    s.push(char::from_u32(code).ok_or("bad \\u code point")?);
                }
                _ => return Err("bad escape".into()),
            },
            c => s.push(c),
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .map_err(|e| e.to_string())?
        .parse()
        .map_err(|_| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_bit_exact() {
        let vals = [0.0, 1.5, -2.25, 1.0 / 3.0, 6.02e23, f64::MIN_POSITIVE];
        for v in vals {
            let json = Json::Num(v).render();
            let back = Json::parse(&json).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{json}");
        }
    }

    #[test]
    fn parse_renders_back() {
        let src = r#"{"a":[1,2.5,"x\n"],"b":{"c":null,"d":true},"e":-3}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.render(), src);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("e").unwrap().as_f64(), Some(-3.0));
    }

    #[test]
    fn pretty_then_parse() {
        let v = Json::Obj(vec![
            ("cells".into(), Json::Arr(vec![Json::Num(1.0)])),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let pretty = v.render_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        // Far past any sane document: without the depth budget this
        // recursion would blow the thread stack instead of erroring.
        let deep = "[".repeat(200_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.contains("nesting too deep"), "{err}");
        // Same via objects.
        let deep = r#"{"a":"#.repeat(200_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.contains("nesting too deep"), "{err}");
        // Exactly at the limit still parses.
        let limits = ParseLimits::network(1 << 20, 8);
        let ok = "[[[[[[[[0]]]]]]]]"; // depth 8
        assert!(Json::parse_limited(ok, &limits).is_ok());
        let over = "[[[[[[[[[0]]]]]]]]]"; // depth 9
        assert!(Json::parse_limited(over, &limits).is_err());
    }

    #[test]
    fn size_cap_rejects_oversized_input() {
        let limits = ParseLimits::network(16, 32);
        assert!(Json::parse_limited("[1,2,3]", &limits).is_ok());
        let big = format!("[{}]", "1,".repeat(40));
        let err = Json::parse_limited(&big, &limits).unwrap_err();
        assert!(err.contains("too large"), "{err}");
    }

    #[test]
    fn truncated_input_is_an_error() {
        for src in [
            "{\"a\":",
            "[1, 2",
            "\"unterminated",
            "{\"a\": [1, {\"b\":",
            "tru",
            "-",
        ] {
            assert!(Json::parse(src).is_err(), "{src:?} should not parse");
        }
    }

    #[test]
    fn invalid_utf8_bytes_are_an_error() {
        let limits = ParseLimits::default();
        // Lone continuation byte, overlong-ish junk, truncated multibyte.
        for bad in [
            &b"\"\x80\""[..],
            &b"{\"k\": \"\xff\xfe\"}"[..],
            &b"\"\xe2\x82\""[..],
        ] {
            let err = Json::parse_bytes(bad, &limits).unwrap_err();
            assert!(err.contains("invalid UTF-8"), "{err}");
        }
        // Valid UTF-8 bytes parse normally.
        let v = Json::parse_bytes("\"caf\u{e9}\"".as_bytes(), &limits).unwrap();
        assert_eq!(v.as_str(), Some("caf\u{e9}"));
    }

    #[test]
    fn surrogate_pairs_decode() {
        // What ascii-escaping writers emit for a non-BMP char (U+1F600).
        let v = Json::parse(r#""\uD83D\uDE00 ok A""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600} ok A"));
        // A lone or malformed half is an error, not a panic.
        assert!(Json::parse(r#""\uD83D""#).is_err());
        assert!(Json::parse(r#""\uD83DA""#).is_err());
        assert!(Json::parse(r#""\uDE00""#).is_err());
    }
}
