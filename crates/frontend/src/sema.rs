//! Semantic analysis: PARAMETER evaluation, symbol tables, directive
//! resolution, shape/conformance checks and intrinsic classification.
//!
//! The analyzed form is what the compiler proper consumes. Alignment
//! functions are converted to the 0-based convention here: a source-level
//! `ALIGN A(I) WITH T(a*I + b)` (1-based `I`, 1-based template) becomes
//! `f(i) = a*i + (a + b - 1)` over 0-based indices.

use std::collections::HashMap;
use std::fmt;

use crate::ast::*;

/// Semantic error.
#[derive(Debug, Clone, PartialEq)]
pub struct SemaError(pub String);

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for SemaError {}

type SResult<T> = Result<T, SemaError>;

fn err<T>(msg: impl Into<String>) -> SResult<T> {
    Err(SemaError(msg.into()))
}

/// Everything known about one declared array.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayInfo {
    /// Element type.
    pub ty: Ty,
    /// Constant extents (upper bounds; Fortran lower bound 1).
    pub extents: Vec<i64>,
}

/// Per-array-axis alignment in 0-based form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AxisAlignSpec {
    /// Axis maps to template dimension `tdim` through `f(i) = a*i + b`
    /// (0-based on both sides).
    Aligned {
        /// Template dimension index.
        tdim: usize,
        /// Stride `a`.
        stride: i64,
        /// Offset `b` (already 0-based-corrected).
        offset: i64,
    },
    /// `A(…, *, …)` — collapsed axis.
    Collapsed,
}

/// A resolved distribution keyword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistKindSpec {
    /// `BLOCK`
    Block,
    /// `CYCLIC`
    Cyclic,
    /// `CYCLIC(K)` with constant `K`.
    BlockCyclic(i64),
    /// `*`
    Star,
}

/// The complete resolved mapping of one distributed array.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayMapping {
    /// Template name.
    pub template: String,
    /// Template extents.
    pub template_extents: Vec<i64>,
    /// One entry per array dimension.
    pub axes: Vec<AxisAlignSpec>,
    /// Template dims that replicate the array (`T(I, *)` on the template
    /// side with no matching dummy).
    pub replicated_tdims: Vec<usize>,
    /// Distribution keyword per template dimension.
    pub dist_kinds: Vec<DistKindSpec>,
}

/// Symbol and mapping information for one program unit.
#[derive(Debug, Clone, Default)]
pub struct UnitInfo {
    /// Unit name.
    pub name: String,
    /// Evaluated PARAMETER constants.
    pub params: HashMap<String, i64>,
    /// Scalar variables.
    pub scalars: HashMap<String, Ty>,
    /// Arrays.
    pub arrays: HashMap<String, ArrayInfo>,
    /// Logical grid shape from `PROCESSORS` (empty if none declared).
    pub grid_shape: Vec<i64>,
    /// Resolved mappings of distributed arrays.
    pub mappings: HashMap<String, ArrayMapping>,
}

/// An analyzed (and, after [`mod@crate::normalize`], normalized) program.
#[derive(Debug, Clone)]
pub struct AnalyzedProgram {
    /// The (rewritten) syntax tree.
    pub program: Program,
    /// Per-unit info, parallel to `program.units`.
    pub units: Vec<UnitInfo>,
}

impl AnalyzedProgram {
    /// Info for the main unit.
    pub fn main_info(&self) -> &UnitInfo {
        let idx = self
            .program
            .units
            .iter()
            .position(|u| !u.is_subroutine)
            .expect("main unit");
        &self.units[idx]
    }

    /// Info for a unit by name.
    pub fn unit_info(&self, name: &str) -> Option<&UnitInfo> {
        self.units.iter().find(|u| u.name == name)
    }
}

/// The Fortran intrinsics we accept, parallel (Table 3) and elemental.
pub const PARALLEL_INTRINSICS: &[&str] = &[
    "SUM",
    "PRODUCT",
    "MAXVAL",
    "MINVAL",
    "COUNT",
    "ALL",
    "ANY",
    "MAXLOC",
    "MINLOC",
    "DOTPRODUCT",
    "DOT_PRODUCT",
    "CSHIFT",
    "EOSHIFT",
    "SPREAD",
    "PACK",
    "UNPACK",
    "RESHAPE",
    "TRANSPOSE",
    "MATMUL",
];

/// Elemental (scalar-applicable) intrinsics.
pub const ELEMENTAL_INTRINSICS: &[&str] = &[
    "ABS", "SQRT", "EXP", "LOG", "SIN", "COS", "TAN", "MOD", "MIN", "MAX", "REAL", "INT", "FLOAT",
    "DBLE", "NINT", "SIGN",
];

/// `true` when `name` is a recognized intrinsic function.
pub fn is_intrinsic(name: &str) -> bool {
    PARALLEL_INTRINSICS.contains(&name) || ELEMENTAL_INTRINSICS.contains(&name)
}

/// Analyze a parsed program.
pub fn analyze(program: &Program) -> SResult<AnalyzedProgram> {
    let mut units = Vec::with_capacity(program.units.len());
    for unit in &program.units {
        units.push(analyze_unit(unit)?);
    }
    // Check CALL targets exist with matching arity.
    for unit in &program.units {
        check_calls(&unit.body, program)?;
    }
    Ok(AnalyzedProgram {
        program: program.clone(),
        units,
    })
}

fn check_calls(body: &[Stmt], program: &Program) -> SResult<()> {
    for stmt in body {
        match stmt {
            Stmt::Call { name, args } => match program.subroutine(name) {
                None => return err(format!("CALL to unknown subroutine `{name}`")),
                Some(sub) => {
                    if sub.args.len() != args.len() {
                        return err(format!(
                            "CALL `{name}` passes {} args, subroutine takes {}",
                            args.len(),
                            sub.args.len()
                        ));
                    }
                }
            },
            Stmt::Do { body, .. } | Stmt::Forall { body, .. } => check_calls(body, program)?,
            Stmt::If { then, else_, .. } => {
                check_calls(then, program)?;
                check_calls(else_, program)?;
            }
            Stmt::Where {
                then, elsewhere, ..
            } => {
                check_calls(then, program)?;
                check_calls(elsewhere, program)?;
            }
            _ => {}
        }
    }
    Ok(())
}

fn analyze_unit(unit: &Unit) -> SResult<UnitInfo> {
    let mut info = UnitInfo {
        name: unit.name.clone(),
        ..Default::default()
    };
    // Pass 1: PARAMETER constants (in declaration order).
    for d in &unit.decls {
        if let Some(p) = &d.param {
            let v = const_eval(p, &info.params)?;
            info.params.insert(d.name.clone(), v);
        }
    }
    // Pass 2: variables.
    for d in &unit.decls {
        if d.param.is_some() {
            continue;
        }
        if d.dims.is_empty() {
            info.scalars.insert(d.name.clone(), d.ty);
        } else {
            let extents: SResult<Vec<i64>> = d
                .dims
                .iter()
                .map(|e| {
                    let v = const_eval(e, &info.params)?;
                    if v <= 0 {
                        return err(format!("array `{}` has non-positive extent {v}", d.name));
                    }
                    Ok(v)
                })
                .collect();
            info.arrays.insert(
                d.name.clone(),
                ArrayInfo {
                    ty: d.ty,
                    extents: extents?,
                },
            );
        }
    }
    // Subroutine dummies without declarations are scalars of implicit type.
    for a in &unit.args {
        if !info.arrays.contains_key(a)
            && !info.scalars.contains_key(a)
            && !info.params.contains_key(a)
        {
            // Fortran implicit typing: I–N integer, else real.
            let ty = if a.starts_with(|c: char| ('I'..='N').contains(&c)) {
                Ty::Integer
            } else {
                Ty::Real
            };
            info.scalars.insert(a.clone(), ty);
        }
    }
    // Pass 3: directives.
    resolve_directives(unit, &mut info)?;
    // Pass 4: reference checks over the body.
    check_stmts(&unit.body, &info, &mut Vec::new())?;
    Ok(info)
}

fn resolve_directives(unit: &Unit, info: &mut UnitInfo) -> SResult<()> {
    let dirs = &unit.directives;
    if let Some((_, shape)) = &dirs.processors {
        let s: SResult<Vec<i64>> = shape.iter().map(|e| const_eval(e, &info.params)).collect();
        info.grid_shape = s?;
        if info.grid_shape.iter().any(|&e| e <= 0) {
            return err("PROCESSORS extents must be positive");
        }
    }
    let mut templates: HashMap<String, Vec<i64>> = HashMap::new();
    for (name, shape) in &dirs.templates {
        let s: SResult<Vec<i64>> = shape.iter().map(|e| const_eval(e, &info.params)).collect();
        templates.insert(name.clone(), s?);
    }
    // ALIGN directives; arrays distributed without an explicit ALIGN get
    // identity alignment to a template named after themselves.
    let mut aligned: HashMap<String, ArrayMapping> = HashMap::new();
    for al in &dirs.aligns {
        let arr = info
            .arrays
            .get(&al.array)
            .ok_or_else(|| SemaError(format!("ALIGN of undeclared array `{}`", al.array)))?;
        let text = templates
            .get(&al.template)
            .ok_or_else(|| SemaError(format!("ALIGN with undeclared template `{}`", al.template)))?
            .clone();
        // Array-side dummies: default is one dummy per dimension.
        let dummies: Vec<Option<String>> = if al.array_dummies.is_empty() {
            (0..arr.extents.len())
                .map(|d| Some(format!("__D{d}")))
                .collect()
        } else {
            al.array_dummies.clone()
        };
        if dummies.len() != arr.extents.len() {
            return err(format!(
                "ALIGN lists {} dummies for rank-{} array `{}`",
                dummies.len(),
                arr.extents.len(),
                al.array
            ));
        }
        // Template-side subscripts: default identity.
        let tsubs: Vec<Option<Expr>> = if al.template_subs.is_empty() {
            dummies
                .iter()
                .map(|d| d.as_ref().map(|n| Expr::Var(n.clone())))
                .collect()
        } else {
            al.template_subs.clone()
        };
        if tsubs.len() != text.len() {
            return err(format!(
                "ALIGN WITH {} lists {} subscripts for rank-{} template",
                al.template,
                tsubs.len(),
                text.len()
            ));
        }
        let mut axes = vec![AxisAlignSpec::Collapsed; dummies.len()];
        let mut replicated = Vec::new();
        for (tdim, ts) in tsubs.iter().enumerate() {
            match ts {
                None => replicated.push(tdim),
                Some(expr) => {
                    // Which dummy does it use?
                    let mut used: Option<usize> = None;
                    for (d, dn) in dummies.iter().enumerate() {
                        if let Some(dn) = dn {
                            if expr_uses_var(expr, dn) {
                                if used.is_some() {
                                    return err(format!(
                                        "ALIGN subscript on template dim {tdim} uses two dummies"
                                    ));
                                }
                                used = Some(d);
                            }
                        }
                    }
                    let d = used.ok_or_else(|| {
                        SemaError(format!(
                            "ALIGN template subscript {tdim} of `{}` uses no dummy",
                            al.array
                        ))
                    })?;
                    let dn = dummies[d].as_ref().unwrap();
                    let (a, b) = affine_of(expr, dn, &info.params).ok_or_else(|| {
                        SemaError(format!(
                            "ALIGN subscript on template dim {tdim} is not affine in `{dn}`"
                        ))
                    })?;
                    if a == 0 {
                        return err("ALIGN subscript must depend on its dummy");
                    }
                    // 1-based → 0-based: t-1 = a*(i-1+1) + b - 1 ⇒
                    // offset' = a + b - 1 over 0-based i.
                    axes[d] = AxisAlignSpec::Aligned {
                        tdim,
                        stride: a,
                        offset: a + b - 1,
                    };
                }
            }
        }
        aligned.insert(
            al.array.clone(),
            ArrayMapping {
                template: al.template.clone(),
                template_extents: text,
                axes,
                replicated_tdims: replicated,
                dist_kinds: vec![],
            },
        );
    }
    // DISTRIBUTE directives.
    for dist in &dirs.distributes {
        let kinds: SResult<Vec<DistKindSpec>> = dist
            .kinds
            .iter()
            .map(|k| {
                Ok(match k {
                    DistSpec::Block => DistKindSpec::Block,
                    DistSpec::Cyclic => DistKindSpec::Cyclic,
                    DistSpec::BlockCyclic(e) => {
                        DistKindSpec::BlockCyclic(const_eval(e, &info.params)?)
                    }
                    DistSpec::Star => DistKindSpec::Star,
                })
            })
            .collect();
        let kinds = kinds?;
        if let Some(text) = templates.get(&dist.target) {
            // Distributing a template: applies to every array aligned to it.
            if kinds.len() != text.len() {
                return err(format!(
                    "DISTRIBUTE {} lists {} dims, template has {}",
                    dist.target,
                    kinds.len(),
                    text.len()
                ));
            }
            for m in aligned.values_mut() {
                if m.template == dist.target {
                    m.dist_kinds = kinds.clone();
                }
            }
        } else if let Some(arr) = info.arrays.get(&dist.target) {
            // Shorthand: DISTRIBUTE A(BLOCK, *) — identity template.
            if kinds.len() != arr.extents.len() {
                return err(format!(
                    "DISTRIBUTE {} lists {} dims, array has rank {}",
                    dist.target,
                    kinds.len(),
                    arr.extents.len()
                ));
            }
            let mapping = ArrayMapping {
                template: format!("__T_{}", dist.target),
                template_extents: arr.extents.clone(),
                axes: (0..arr.extents.len())
                    .map(|d| AxisAlignSpec::Aligned {
                        tdim: d,
                        stride: 1,
                        offset: 0,
                    })
                    .collect(),
                replicated_tdims: vec![],
                dist_kinds: kinds,
            };
            aligned.insert(dist.target.clone(), mapping);
        } else {
            return err(format!(
                "DISTRIBUTE target `{}` is neither a template nor an array",
                dist.target
            ));
        }
    }
    // Arrays aligned to a template that was never distributed default to
    // all-BLOCK.
    for m in aligned.values_mut() {
        if m.dist_kinds.is_empty() {
            m.dist_kinds = vec![DistKindSpec::Block; m.template_extents.len()];
        }
    }
    info.mappings = aligned;
    Ok(())
}

// ---- expression utilities ---------------------------------------------

/// Evaluate a constant integer expression over PARAMETER bindings.
pub fn const_eval(e: &Expr, params: &HashMap<String, i64>) -> SResult<i64> {
    match e {
        Expr::Int(v) => Ok(*v),
        Expr::Var(n) => params
            .get(n)
            .copied()
            .ok_or_else(|| SemaError(format!("`{n}` is not a constant"))),
        Expr::Un(UnOp::Neg, x) => Ok(-const_eval(x, params)?),
        Expr::Bin(op, l, r) => {
            let (a, b) = (const_eval(l, params)?, const_eval(r, params)?);
            Ok(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0 {
                        return err("constant division by zero");
                    }
                    a / b
                }
                BinOp::Pow => {
                    if b < 0 {
                        return err("negative constant exponent");
                    }
                    a.pow(b as u32)
                }
                _ => return err("non-arithmetic constant expression"),
            })
        }
        other => err(format!("non-constant expression {other:?}")),
    }
}

/// Does `e` mention variable `v`?
pub fn expr_uses_var(e: &Expr, v: &str) -> bool {
    match e {
        Expr::Var(n) => n == v,
        Expr::Bin(_, l, r) => expr_uses_var(l, v) || expr_uses_var(r, v),
        Expr::Un(_, x) => expr_uses_var(x, v),
        Expr::Ref(_, subs) => subs.iter().any(|s| match s {
            Subscript::Index(e) => expr_uses_var(e, v),
            Subscript::Range { lb, ub, st } => [lb, ub, st]
                .iter()
                .any(|o| o.as_ref().is_some_and(|e| expr_uses_var(e, v))),
        }),
        _ => false,
    }
}

/// Extract `(a, b)` such that `e = a*var + b`, when `e` is affine in
/// `var` with all other terms constant under `params`.
pub fn affine_of(e: &Expr, var: &str, params: &HashMap<String, i64>) -> Option<(i64, i64)> {
    match e {
        Expr::Int(v) => Some((0, *v)),
        Expr::Var(n) if n == var => Some((1, 0)),
        Expr::Var(n) => params.get(n).map(|&v| (0, v)),
        Expr::Un(UnOp::Neg, x) => {
            let (a, b) = affine_of(x, var, params)?;
            Some((-a, -b))
        }
        Expr::Bin(BinOp::Add, l, r) => {
            let (a1, b1) = affine_of(l, var, params)?;
            let (a2, b2) = affine_of(r, var, params)?;
            Some((a1 + a2, b1 + b2))
        }
        Expr::Bin(BinOp::Sub, l, r) => {
            let (a1, b1) = affine_of(l, var, params)?;
            let (a2, b2) = affine_of(r, var, params)?;
            Some((a1 - a2, b1 - b2))
        }
        Expr::Bin(BinOp::Mul, l, r) => {
            let (a1, b1) = affine_of(l, var, params)?;
            let (a2, b2) = affine_of(r, var, params)?;
            if a1 == 0 {
                Some((b1 * a2, b1 * b2))
            } else if a2 == 0 {
                Some((a1 * b2, b1 * b2))
            } else {
                None // quadratic
            }
        }
        _ => None,
    }
}

// ---- reference checking -------------------------------------------------

fn check_stmts(stmts: &[Stmt], info: &UnitInfo, loop_vars: &mut Vec<String>) -> SResult<()> {
    for s in stmts {
        match s {
            Stmt::Assign { lhs, rhs } => {
                check_lhs(lhs, info, loop_vars)?;
                check_expr(rhs, info, loop_vars)?;
            }
            Stmt::Forall {
                indices,
                mask,
                body,
            } => {
                for ix in indices {
                    check_expr(&ix.lb, info, loop_vars)?;
                    check_expr(&ix.ub, info, loop_vars)?;
                    check_expr(&ix.st, info, loop_vars)?;
                }
                let mut inner = loop_vars.clone();
                inner.extend(indices.iter().map(|i| i.var.clone()));
                if let Some(mk) = mask {
                    check_expr(mk, info, &inner)?;
                }
                check_stmts(body, info, &mut inner)?;
            }
            Stmt::Where {
                mask,
                then,
                elsewhere,
            } => {
                check_expr(mask, info, loop_vars)?;
                check_stmts(then, info, loop_vars)?;
                check_stmts(elsewhere, info, loop_vars)?;
            }
            Stmt::Do {
                var,
                lb,
                ub,
                st,
                body,
            } => {
                check_expr(lb, info, loop_vars)?;
                check_expr(ub, info, loop_vars)?;
                check_expr(st, info, loop_vars)?;
                if !info.scalars.contains_key(var) && !info.params.contains_key(var) {
                    // DO variables may be implicitly declared integers.
                }
                let mut inner = loop_vars.clone();
                inner.push(var.clone());
                check_stmts(body, info, &mut inner)?;
            }
            Stmt::If { cond, then, else_ } => {
                check_expr(cond, info, loop_vars)?;
                check_stmts(then, info, loop_vars)?;
                check_stmts(else_, info, loop_vars)?;
            }
            Stmt::Call { args, .. } => {
                for a in args {
                    check_expr(a, info, loop_vars)?;
                }
            }
            Stmt::Print { items } => {
                for e in items {
                    check_expr(e, info, loop_vars)?;
                }
            }
            Stmt::Redistribute { array, dist } => {
                let arr = info
                    .arrays
                    .get(array)
                    .ok_or_else(|| SemaError(format!("REDISTRIBUTE of undeclared `{array}`")))?;
                if dist.len() != arr.extents.len() {
                    return err(format!(
                        "REDISTRIBUTE {array} lists {} dims for rank-{} array",
                        dist.len(),
                        arr.extents.len()
                    ));
                }
            }
        }
    }
    Ok(())
}

fn check_lhs(lhs: &LhsRef, info: &UnitInfo, loop_vars: &[String]) -> SResult<()> {
    if let Some(arr) = info.arrays.get(&lhs.name) {
        if !lhs.subs.is_empty() && lhs.subs.len() != arr.extents.len() {
            return err(format!(
                "`{}` has rank {}, subscripted with {}",
                lhs.name,
                arr.extents.len(),
                lhs.subs.len()
            ));
        }
        for s in &lhs.subs {
            match s {
                Subscript::Index(e) => check_expr(e, info, loop_vars)?,
                Subscript::Range { lb, ub, st } => {
                    for o in [lb, ub, st].into_iter().flatten() {
                        check_expr(o, info, loop_vars)?;
                    }
                }
            }
        }
        Ok(())
    } else if info.scalars.contains_key(&lhs.name) {
        if !lhs.subs.is_empty() {
            return err(format!("scalar `{}` subscripted", lhs.name));
        }
        Ok(())
    } else if loop_vars.contains(&lhs.name) {
        err(format!("assignment to loop index `{}`", lhs.name))
    } else {
        err(format!("assignment to undeclared `{}`", lhs.name))
    }
}

fn check_expr(e: &Expr, info: &UnitInfo, loop_vars: &[String]) -> SResult<()> {
    match e {
        Expr::Int(_) | Expr::Real(_) | Expr::Logical(_) | Expr::Str(_) => Ok(()),
        Expr::Var(n) => {
            if info.scalars.contains_key(n)
                || info.params.contains_key(n)
                || info.arrays.contains_key(n)
                || loop_vars.contains(&n.to_string())
            {
                Ok(())
            } else {
                err(format!("undeclared variable `{n}`"))
            }
        }
        Expr::Ref(name, subs) => {
            if let Some(arr) = info.arrays.get(name) {
                if subs.len() != arr.extents.len() {
                    return err(format!(
                        "`{name}` has rank {}, subscripted with {}",
                        arr.extents.len(),
                        subs.len()
                    ));
                }
            } else if !is_intrinsic(name) {
                return err(format!("`{name}` is neither an array nor an intrinsic"));
            }
            for s in subs {
                match s {
                    Subscript::Index(e) => check_expr(e, info, loop_vars)?,
                    Subscript::Range { lb, ub, st } => {
                        for o in [lb, ub, st].into_iter().flatten() {
                            check_expr(o, info, loop_vars)?;
                        }
                    }
                }
            }
            Ok(())
        }
        Expr::Bin(_, l, r) => {
            check_expr(l, info, loop_vars)?;
            check_expr(r, info, loop_vars)
        }
        Expr::Un(_, x) => check_expr(x, info, loop_vars),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn analyze_src(src: &str) -> SResult<AnalyzedProgram> {
        analyze(&parse(&lex(src).unwrap()).unwrap())
    }

    #[test]
    fn params_and_arrays() {
        let a = analyze_src(
            "PROGRAM T\nINTEGER, PARAMETER :: N = 4, M = N*2\nREAL A(N, M)\nINTEGER V(M)\nEND\n",
        )
        .unwrap();
        let info = a.main_info();
        assert_eq!(info.params["N"], 4);
        assert_eq!(info.params["M"], 8);
        assert_eq!(info.arrays["A"].extents, vec![4, 8]);
        assert_eq!(info.arrays["V"].ty, Ty::Integer);
    }

    #[test]
    fn directive_resolution_full() {
        let a = analyze_src(
            "PROGRAM T\n\
             INTEGER, PARAMETER :: N = 8\n\
             REAL A(N, N)\n\
             C$ PROCESSORS P(2, 2)\n\
             C$ TEMPLATE TT(N, N)\n\
             C$ ALIGN A(I, J) WITH TT(I, J)\n\
             C$ DISTRIBUTE TT(BLOCK, CYCLIC) ONTO P\n\
             END\n",
        )
        .unwrap();
        let info = a.main_info();
        assert_eq!(info.grid_shape, vec![2, 2]);
        let m = &info.mappings["A"];
        assert_eq!(m.template, "TT");
        assert_eq!(m.template_extents, vec![8, 8]);
        assert_eq!(
            m.axes[0],
            AxisAlignSpec::Aligned {
                tdim: 0,
                stride: 1,
                offset: 0
            }
        );
        assert_eq!(
            m.dist_kinds,
            vec![DistKindSpec::Block, DistKindSpec::Cyclic]
        );
    }

    #[test]
    fn align_offset_zero_based_correction() {
        // ALIGN A(I) WITH T(I+1): 1-based offset 1 → 0-based offset 1.
        // f(i0) = i0 + (a + b - 1) = i0 + 1 with a=1, b=1.
        let a = analyze_src(
            "PROGRAM T\nINTEGER, PARAMETER :: N = 8\nREAL A(N)\n\
             C$ TEMPLATE TT(9)\nC$ ALIGN A(I) WITH TT(I+1)\nC$ DISTRIBUTE TT(BLOCK)\nEND\n",
        )
        .unwrap();
        let m = &a.main_info().mappings["A"];
        assert_eq!(
            m.axes[0],
            AxisAlignSpec::Aligned {
                tdim: 0,
                stride: 1,
                offset: 1
            }
        );
    }

    #[test]
    fn align_stride_two() {
        // ALIGN A(I) WITH T(2*I): a=2, b=0 → 0-based offset a+b-1 = 1.
        let a = analyze_src(
            "PROGRAM T\nREAL A(4)\nC$ TEMPLATE TT(8)\nC$ ALIGN A(I) WITH TT(2*I)\nC$ DISTRIBUTE TT(CYCLIC)\nEND\n",
        )
        .unwrap();
        let m = &a.main_info().mappings["A"];
        assert_eq!(
            m.axes[0],
            AxisAlignSpec::Aligned {
                tdim: 0,
                stride: 2,
                offset: 1
            }
        );
    }

    #[test]
    fn replication_and_collapse() {
        let a = analyze_src(
            "PROGRAM T\nREAL A(8)\nC$ TEMPLATE TT(8, 4)\nC$ ALIGN A(I) WITH TT(I, *)\nC$ DISTRIBUTE TT(BLOCK, BLOCK)\nEND\n",
        )
        .unwrap();
        let m = &a.main_info().mappings["A"];
        assert_eq!(m.replicated_tdims, vec![1]);
        // collapse on the array side
        let b = analyze_src(
            "PROGRAM T\nREAL B(8, 3)\nC$ TEMPLATE TT(8)\nC$ ALIGN B(I, *) WITH TT(I)\nC$ DISTRIBUTE TT(BLOCK)\nEND\n",
        )
        .unwrap();
        let mb = &b.main_info().mappings["B"];
        assert_eq!(mb.axes[1], AxisAlignSpec::Collapsed);
    }

    #[test]
    fn distribute_array_shorthand() {
        let a = analyze_src(
            "PROGRAM T\nREAL A(10, 10)\nC$ PROCESSORS P(4)\nC$ DISTRIBUTE A(*, BLOCK)\nEND\n",
        )
        .unwrap();
        let m = &a.main_info().mappings["A"];
        assert_eq!(m.dist_kinds, vec![DistKindSpec::Star, DistKindSpec::Block]);
    }

    #[test]
    fn cyclic_k_constant() {
        let a = analyze_src(
            "PROGRAM T\nINTEGER, PARAMETER :: K = 3\nREAL A(12)\nC$ DISTRIBUTE A(CYCLIC(K))\nEND\n",
        )
        .unwrap();
        assert_eq!(
            a.main_info().mappings["A"].dist_kinds,
            vec![DistKindSpec::BlockCyclic(3)]
        );
    }

    #[test]
    fn errors_detected() {
        assert!(analyze_src("PROGRAM T\nX = 1\nEND\n").is_err()); // undeclared X
        assert!(analyze_src("PROGRAM T\nREAL A(4)\nA(1,2) = 0.0\nEND\n").is_err()); // rank
        assert!(
            analyze_src("PROGRAM T\nREAL A(4)\nC$ ALIGN A(I) WITH TT(I)\nEND\n").is_err(),
            "unknown template"
        );
        assert!(analyze_src("PROGRAM T\nCALL NOPE()\nEND\n").is_err()); // unknown sub
        assert!(analyze_src("PROGRAM T\nREAL A(4)\nB = UNKNOWNFN(A)\nEND\n").is_err());
    }

    #[test]
    fn intrinsics_accepted() {
        let a = analyze_src("PROGRAM T\nREAL A(4), S\nS = SUM(A) + ABS(MINVAL(A))\nEND\n");
        assert!(a.is_ok(), "{a:?}");
    }

    #[test]
    fn forall_index_visible_in_body() {
        let a = analyze_src("PROGRAM T\nREAL A(4)\nFORALL (I=1:4) A(I) = REAL(I)\nEND\n");
        assert!(a.is_ok(), "{a:?}");
    }

    #[test]
    fn call_arity_checked() {
        let bad = analyze_src(
            "PROGRAM T\nREAL A(4)\nCALL F(A)\nEND\nSUBROUTINE F(X, Y)\nREAL X(4), Y(4)\nEND\n",
        );
        assert!(bad.is_err());
    }

    #[test]
    fn affine_extraction() {
        let params = HashMap::from([("C".to_string(), 5i64)]);
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, Expr::Int(3), Expr::Var("I".into())),
            Expr::Var("C".into()),
        );
        assert_eq!(affine_of(&e, "I", &params), Some((3, 5)));
        let q = Expr::bin(BinOp::Mul, Expr::Var("I".into()), Expr::Var("I".into()));
        assert_eq!(affine_of(&q, "I", &params), None);
    }
}
