//! # f90d-frontend — the Fortran 90D/HPF front end
//!
//! The paper obtained its Fortran 90 parser from ParaSoft; we build our
//! own for the language subset the compiler consumes (DESIGN.md §2):
//!
//! * free-form Fortran 90 with `&` continuations and `!` comments;
//! * `PROGRAM` / `SUBROUTINE` units, type declarations with array
//!   specs, `PARAMETER` constants;
//! * array expressions and sections, `WHERE`/`ELSEWHERE`, single and
//!   multi-statement `FORALL` (with masks), `DO`, `IF`, `CALL`, `PRINT`;
//! * the Fortran D / HPF mapping directives on `C$` / `!HPF$` / `!F90D$`
//!   lines: `PROCESSORS`, `TEMPLATE`/`DECOMPOSITION`, `ALIGN`,
//!   `DISTRIBUTE` (BLOCK, CYCLIC, CYCLIC(K), `*`), plus the executable
//!   `REDISTRIBUTE` extension;
//! * the Table-3 intrinsics in expressions.
//!
//! Pipeline: [`lexer`] → [`parser`] → [`sema`] (symbol/ type / directive
//! resolution) → [`mod@normalize`], which rewrites every array assignment and
//! `WHERE` into an equivalent `FORALL` (paper §2: "transforms each array
//! assignment statement and where statement into equivalent forall
//! statement with no loss of information") and converts the program to
//! the 0-based index space the rest of the system uses.

#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod normalize;
pub mod parser;
pub mod sema;

pub use ast::*;
pub use lexer::{lex, Token, TokenKind};
pub use normalize::normalize;
pub use parser::parse;
pub use sema::{analyze, AnalyzedProgram, ArrayInfo, SemaError};

/// Convenience: lex + parse + analyze + normalize in one call.
pub fn compile_front(source: &str) -> Result<AnalyzedProgram, String> {
    let tokens = lex(source).map_err(|e| format!("lex error: {e}"))?;
    let prog = parse(&tokens).map_err(|e| format!("parse error: {e}"))?;
    let mut analyzed = analyze(&prog).map_err(|e| format!("semantic error: {e}"))?;
    normalize(&mut analyzed);
    Ok(analyzed)
}
