//! Line-oriented lexer for free-form Fortran 90D.
//!
//! Handles `!` comments, `&` continuations, case-insensitivity (everything
//! folds to upper case outside character literals), dot-operators
//! (`.AND.`, `.EQ.`, `.TRUE.`…) and the directive sentinels `C$`, `!HPF$`,
//! `!F90D$` — a directive line is re-lexed as ordinary tokens behind a
//! [`TokenKind::DirectiveStart`] marker.

use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (upper-cased).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Character literal (contents, without quotes).
    Str(String),
    /// `.TRUE.` / `.FALSE.`
    Logical(bool),
    /// Punctuation / operator, e.g. `"("`, `"**"`, `"::"`, `"<="`.
    Punct(&'static str),
    /// Start of a directive line (`C$`, `!HPF$`, `!F90D$`).
    DirectiveStart,
    /// End of statement (newline or `;`).
    Eos,
    /// End of file.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Real(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::Logical(b) => write!(f, ".{}.", if *b { "TRUE" } else { "FALSE" }),
            TokenKind::Punct(p) => write!(f, "{p}"),
            TokenKind::DirectiveStart => write!(f, "<directive>"),
            TokenKind::Eos => write!(f, "<eos>"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

/// Lexical error with line information.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Explanation.
    pub msg: String,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Dot operators and logical literals.
const DOT_WORDS: &[(&str, TokenKind)] = &[
    ("AND", TokenKind::Punct(".AND.")),
    ("OR", TokenKind::Punct(".OR.")),
    ("NOT", TokenKind::Punct(".NOT.")),
    ("EQ", TokenKind::Punct("==")),
    ("NE", TokenKind::Punct("/=")),
    ("LT", TokenKind::Punct("<")),
    ("LE", TokenKind::Punct("<=")),
    ("GT", TokenKind::Punct(">")),
    ("GE", TokenKind::Punct(">=")),
    ("TRUE", TokenKind::Logical(true)),
    ("FALSE", TokenKind::Logical(false)),
];

/// Tokenize a whole source file.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut continuation = false;
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.trim_end();
        let trimmed = text.trim_start();
        if trimmed.is_empty() {
            continue;
        }
        let upper = trimmed.to_uppercase();
        // Directive sentinels.
        let directive_body = if let Some(rest) = upper.strip_prefix("C$") {
            Some(rest.to_string())
        } else if let Some(rest) = upper.strip_prefix("!HPF$") {
            Some(rest.to_string())
        } else {
            upper.strip_prefix("!F90D$").map(|rest| rest.to_string())
        };
        let (is_directive, body) = match directive_body {
            Some(b) => (true, b),
            None => {
                // Old-style comment: a lone `C` or `C ` followed by prose.
                // `C = 1` and `C(I) = …` are statements, not comments, and
                // continuation lines are never comments.
                let old_comment = !continuation
                    && (upper == "C"
                        || (upper.starts_with("C ")
                            && !matches!(
                                upper[2..].trim_start().chars().next(),
                                Some('=') | Some('(')
                            )));
                if (!continuation && trimmed.starts_with('!')) || old_comment {
                    continue; // comment line
                }
                (false, trimmed.to_string())
            }
        };
        if is_directive {
            tokens.push(Token {
                kind: TokenKind::DirectiveStart,
                line,
            });
        }
        let had_continuation = continuation;
        continuation = false;
        let mut chars: Vec<char> = body.chars().collect();
        // A leading '&' continues the previous line (free form allows both
        // trailing and leading ampersands).
        let mut i = 0usize;
        if had_continuation {
            // Remove the Eos we would otherwise have emitted — already
            // suppressed at the end of the previous line.
            while i < chars.len() && chars[i].is_whitespace() {
                i += 1;
            }
            if i < chars.len() && chars[i] == '&' {
                i += 1;
            }
        }
        // Strip trailing comment (outside quotes) and detect trailing '&'.
        let mut in_quote = false;
        let mut end = chars.len();
        for (k, &c) in chars.iter().enumerate() {
            if c == '\'' {
                in_quote = !in_quote;
            } else if c == '!' && !in_quote && k >= i {
                end = k;
                break;
            }
        }
        chars.truncate(end);
        while chars.last().is_some_and(|c| c.is_whitespace()) {
            chars.pop();
        }
        if chars.last() == Some(&'&') {
            continuation = true;
            chars.pop();
        }
        lex_chars(&chars[i..], line, &mut tokens)?;
        if !continuation {
            tokens.push(Token {
                kind: TokenKind::Eos,
                line,
            });
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line: source.lines().count() + 1,
    });
    Ok(tokens)
}

fn lex_chars(chars: &[char], line: usize, out: &mut Vec<Token>) -> Result<(), LexError> {
    let mut i = 0usize;
    let n = chars.len();
    let push = |out: &mut Vec<Token>, kind: TokenKind| out.push(Token { kind, line });
    while i < n {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == ';' {
            push(out, TokenKind::Eos);
            i += 1;
            continue;
        }
        if c == '\'' {
            let mut j = i + 1;
            let mut s = String::new();
            while j < n && chars[j] != '\'' {
                s.push(chars[j]);
                j += 1;
            }
            if j >= n {
                return Err(LexError {
                    msg: "unterminated character literal".into(),
                    line,
                });
            }
            push(out, TokenKind::Str(s));
            i = j + 1;
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let mut j = i;
            let mut s = String::new();
            while j < n && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                s.push(chars[j].to_ascii_uppercase());
                j += 1;
            }
            push(out, TokenKind::Ident(s));
            i = j;
            continue;
        }
        if c.is_ascii_digit() || (c == '.' && i + 1 < n && chars[i + 1].is_ascii_digit()) {
            let (tok, next) = lex_number(chars, i, line)?;
            push(out, tok);
            i = next;
            continue;
        }
        if c == '.' {
            // dot operator
            let mut j = i + 1;
            let mut word = String::new();
            while j < n && chars[j].is_ascii_alphabetic() {
                word.push(chars[j].to_ascii_uppercase());
                j += 1;
            }
            if j < n && chars[j] == '.' {
                if let Some((_, kind)) = DOT_WORDS.iter().find(|(w, _)| *w == word) {
                    push(out, kind.clone());
                    i = j + 1;
                    continue;
                }
            }
            return Err(LexError {
                msg: format!("unknown dot-operator .{word}."),
                line,
            });
        }
        // multi-char punctuation first
        let two: String = chars[i..n.min(i + 2)].iter().collect();
        let kind = match two.as_str() {
            "**" => Some("**"),
            "::" => Some("::"),
            "==" => Some("=="),
            "/=" => Some("/="),
            "<=" => Some("<="),
            ">=" => Some(">="),
            "=>" => Some("=>"),
            _ => None,
        };
        if let Some(p) = kind {
            push(out, TokenKind::Punct(p));
            i += 2;
            continue;
        }
        let one = match c {
            '(' => "(",
            ')' => ")",
            ',' => ",",
            '=' => "=",
            '+' => "+",
            '-' => "-",
            '*' => "*",
            '/' => "/",
            ':' => ":",
            '<' => "<",
            '>' => ">",
            '%' => "%",
            _ => {
                return Err(LexError {
                    msg: format!("unexpected character `{c}`"),
                    line,
                })
            }
        };
        push(out, TokenKind::Punct(one));
        i += 1;
    }
    Ok(())
}

fn lex_number(chars: &[char], start: usize, line: usize) -> Result<(TokenKind, usize), LexError> {
    let n = chars.len();
    let mut i = start;
    let mut s = String::new();
    let mut is_real = false;
    while i < n && chars[i].is_ascii_digit() {
        s.push(chars[i]);
        i += 1;
    }
    // Fractional part — careful not to swallow dot-operators like `1.AND.`
    // or DO-range `1.` followed by `.`: Fortran real literals may end in
    // '.', but `1..2` never appears in our subset; treat `.` + digit or
    // lone trailing `.` (not followed by a letter) as part of the number.
    if i < n && chars[i] == '.' {
        let next_is_alpha = i + 1 < n && chars[i + 1].is_ascii_alphabetic();
        if !next_is_alpha {
            is_real = true;
            s.push('.');
            i += 1;
            while i < n && chars[i].is_ascii_digit() {
                s.push(chars[i]);
                i += 1;
            }
        }
    }
    // Exponent.
    if i < n && (chars[i] == 'e' || chars[i] == 'E' || chars[i] == 'd' || chars[i] == 'D') {
        let mut j = i + 1;
        let mut exp = String::new();
        if j < n && (chars[j] == '+' || chars[j] == '-') {
            exp.push(chars[j]);
            j += 1;
        }
        let estart = j;
        while j < n && chars[j].is_ascii_digit() {
            exp.push(chars[j]);
            j += 1;
        }
        if j > estart {
            is_real = true;
            s.push('e');
            s.push_str(&exp);
            i = j;
        }
    }
    if is_real {
        s.parse::<f64>()
            .map(|v| (TokenKind::Real(v), i))
            .map_err(|_| LexError {
                msg: format!("bad real literal `{s}`"),
                line,
            })
    } else {
        s.parse::<i64>()
            .map(|v| (TokenKind::Int(v), i))
            .map_err(|_| LexError {
                msg: format!("bad integer literal `{s}`"),
                line,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_statement() {
        let k = kinds("A(I) = B(I+1) * 2.5");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("A".into()),
                TokenKind::Punct("("),
                TokenKind::Ident("I".into()),
                TokenKind::Punct(")"),
                TokenKind::Punct("="),
                TokenKind::Ident("B".into()),
                TokenKind::Punct("("),
                TokenKind::Ident("I".into()),
                TokenKind::Punct("+"),
                TokenKind::Int(1),
                TokenKind::Punct(")"),
                TokenKind::Punct("*"),
                TokenKind::Real(2.5),
                TokenKind::Eos,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn case_folding() {
        let k = kinds("forall (i=1:n) a(i) = b(i)");
        assert!(matches!(&k[0], TokenKind::Ident(s) if s == "FORALL"));
        assert!(matches!(&k[2], TokenKind::Ident(s) if s == "I"));
    }

    #[test]
    fn dot_operators_and_logicals() {
        let k = kinds("X .AND. .NOT. Y .OR. .TRUE. .EQ. Z");
        assert_eq!(k[1], TokenKind::Punct(".AND."));
        assert_eq!(k[2], TokenKind::Punct(".NOT."));
        assert_eq!(k[4], TokenKind::Punct(".OR."));
        assert_eq!(k[5], TokenKind::Logical(true));
        assert_eq!(k[6], TokenKind::Punct("=="));
    }

    #[test]
    fn real_literals() {
        let k = kinds("X = 1.5E-3 + 2. + .5 + 1D0");
        assert!(k.contains(&TokenKind::Real(0.0015)));
        assert!(k.contains(&TokenKind::Real(2.0)));
        assert!(k.contains(&TokenKind::Real(0.5)));
        assert!(k.contains(&TokenKind::Real(1.0)));
    }

    #[test]
    fn integer_range_not_real() {
        // `1:N` must not lex `1:` as a real.
        let k = kinds("A(1:N)");
        assert!(k.contains(&TokenKind::Int(1)));
        assert!(k.contains(&TokenKind::Punct(":")));
    }

    #[test]
    fn dot_op_after_number() {
        let k = kinds("I.EQ.1");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("I".into()),
                TokenKind::Punct("=="),
                TokenKind::Int(1),
                TokenKind::Eos,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn continuation_lines() {
        let k = kinds("A = B + &\n    C");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("A".into()),
                TokenKind::Punct("="),
                TokenKind::Ident("B".into()),
                TokenKind::Punct("+"),
                TokenKind::Ident("C".into()),
                TokenKind::Eos,
                TokenKind::Eof,
            ]
        );
        // leading ampersand form
        let k2 = kinds("A = B + &\n  & C");
        assert_eq!(k, k2);
    }

    #[test]
    fn comments_stripped() {
        let k = kinds("A = 1 ! trailing comment\n! whole line\nB = 2");
        assert_eq!(k.len(), 9); // A = 1 eos B = 2 eos eof
    }

    #[test]
    fn directive_lines() {
        for s in [
            "C$ DISTRIBUTE T(BLOCK)",
            "!HPF$ DISTRIBUTE T(BLOCK)",
            "!f90d$ distribute t(block)",
        ] {
            let k = kinds(s);
            assert_eq!(k[0], TokenKind::DirectiveStart, "{s}");
            assert!(
                matches!(&k[1], TokenKind::Ident(w) if w == "DISTRIBUTE"),
                "{s}"
            );
        }
    }

    #[test]
    fn old_style_comment_line() {
        let k = kinds("C this is a comment\nA = 1");
        assert!(matches!(&k[0], TokenKind::Ident(s) if s == "A"));
    }

    #[test]
    fn string_literal() {
        let k = kinds("PRINT *, 'hello world'");
        assert!(k.contains(&TokenKind::Str("hello world".into())));
    }

    #[test]
    fn power_and_double_colon() {
        let k = kinds("INTEGER :: N = 2**10");
        assert!(k.contains(&TokenKind::Punct("::")));
        assert!(k.contains(&TokenKind::Punct("**")));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("X = 'oops").is_err());
    }
}
