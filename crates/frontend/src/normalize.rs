//! Normalization: array assignments and WHERE constructs become FORALLs
//! ("our compiler also transforms each array assignment statement and
//! where statement into equivalent forall statement with no loss of
//! information", paper §2), and the whole program moves to **0-based**
//! index space.
//!
//! The 0-based conversion works in two sweeps that compose cleanly:
//!
//! 1. every array subscript expression `e` becomes `e - 1` (and section
//!    bounds likewise);
//! 2. every FORALL range `lb:ub` becomes `lb-1:ub-1` and each occurrence
//!    of its index variable `i` in the body is replaced by `i + 1`.
//!
//! A canonical subscript `A(I)` thus becomes `A((I+1)-1) = A(I)` again,
//! while `A(3)` becomes `A(2)` and a sequential `DO K` subscript `A(K)`
//! becomes `A(K-1)` — exactly the off-by-one Fortran↔0-based bookkeeping,
//! done once, here, instead of everywhere in the compiler.

use crate::ast::*;
use crate::sema::{AnalyzedProgram, UnitInfo, PARALLEL_INTRINSICS};

/// Array-valued parallel intrinsics that stay as whole-statement runtime
/// calls (`B = CSHIFT(A, 1)` etc.) rather than being expanded.
pub const ARRAY_VALUED_INTRINSICS: &[&str] = &[
    "CSHIFT",
    "EOSHIFT",
    "SPREAD",
    "PACK",
    "UNPACK",
    "RESHAPE",
    "TRANSPOSE",
    "MATMUL",
];

/// Normalize an analyzed program in place.
pub fn normalize(prog: &mut AnalyzedProgram) {
    let units_info = prog.units.clone();
    for (unit, info) in prog.program.units.iter_mut().zip(&units_info) {
        let mut counter = 0usize;
        let body = std::mem::take(&mut unit.body);
        let expanded = expand_stmts(body, info, &mut counter);
        let mut shifted: Vec<Stmt> = expanded.into_iter().map(|s| shift_stmt(s, info)).collect();
        for s in &mut shifted {
            rebase_foralls(s);
        }
        unit.body = shifted;
    }
}

// ---- pass 1: expansion ---------------------------------------------------

fn expand_stmts(stmts: Vec<Stmt>, info: &UnitInfo, counter: &mut usize) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        expand_stmt(s, info, None, counter, &mut out);
    }
    out
}

/// Expand one statement; `where_mask` carries the enclosing WHERE mask.
fn expand_stmt(
    s: Stmt,
    info: &UnitInfo,
    where_mask: Option<&Expr>,
    counter: &mut usize,
    out: &mut Vec<Stmt>,
) {
    match s {
        Stmt::Assign { lhs, rhs } => {
            let is_array_op = info.arrays.get(&lhs.name).is_some_and(|a| {
                lhs.subs.is_empty() && !a.extents.is_empty()
                    || lhs.subs.iter().any(|s| s.is_section())
            });
            if !is_array_op {
                debug_assert!(where_mask.is_none(), "WHERE over non-array assignment");
                out.push(Stmt::Assign { lhs, rhs });
                return;
            }
            // Whole-statement array-valued intrinsic: keep as-is.
            if where_mask.is_none() && lhs.subs.is_empty() {
                if let Expr::Ref(name, _) = &rhs {
                    if ARRAY_VALUED_INTRINSICS.contains(&name.as_str())
                        && !info.arrays.contains_key(name)
                    {
                        out.push(Stmt::Assign { lhs, rhs });
                        return;
                    }
                }
            }
            out.push(expand_array_assign(lhs, rhs, where_mask, info, counter));
        }
        Stmt::Where {
            mask,
            then,
            elsewhere,
        } => {
            for inner in then {
                expand_stmt(inner, info, Some(&mask), counter, out);
            }
            if !elsewhere.is_empty() {
                let neg = Expr::Un(UnOp::Not, Box::new(mask));
                for inner in elsewhere {
                    expand_stmt(inner, info, Some(&neg), counter, out);
                }
            }
        }
        Stmt::Do {
            var,
            lb,
            ub,
            st,
            body,
        } => {
            let body = expand_stmts(body, info, counter);
            out.push(Stmt::Do {
                var,
                lb,
                ub,
                st,
                body,
            });
        }
        Stmt::If { cond, then, else_ } => {
            let then = expand_stmts(then, info, counter);
            let else_ = expand_stmts(else_, info, counter);
            out.push(Stmt::If { cond, then, else_ });
        }
        Stmt::Forall {
            indices,
            mask,
            body,
        } => {
            // Bodies of user FORALLs are already elementwise.
            out.push(Stmt::Forall {
                indices,
                mask,
                body,
            });
        }
        other => out.push(other),
    }
}

/// Section descriptor of one LHS dimension.
struct DimSec {
    /// `None` for a fixed `Index` subscript, `Some((lb, ub))` for a
    /// stride-1 section (strided LHS sections are rejected here).
    range: Option<(Expr, Expr)>,
    /// The original subscript expression for fixed dims.
    fixed: Option<Expr>,
}

fn expand_array_assign(
    lhs: LhsRef,
    rhs: Expr,
    where_mask: Option<&Expr>,
    info: &UnitInfo,
    counter: &mut usize,
) -> Stmt {
    let arr = &info.arrays[&lhs.name];
    let rank = arr.extents.len();
    let subs = if lhs.subs.is_empty() {
        vec![Subscript::full(); rank]
    } else {
        lhs.subs.clone()
    };
    let mut dims: Vec<DimSec> = Vec::with_capacity(rank);
    for (d, s) in subs.iter().enumerate() {
        match s {
            Subscript::Index(e) => dims.push(DimSec {
                range: None,
                fixed: Some(e.clone()),
            }),
            Subscript::Range { lb, ub, st } => {
                if let Some(st) = st {
                    assert!(
                        matches!(simplify(st.clone()), Expr::Int(1)),
                        "strided LHS sections are not supported by the normalizer"
                    );
                }
                let lb = lb.clone().unwrap_or(Expr::Int(1));
                let ub = ub.clone().unwrap_or(Expr::Int(arr.extents[d]));
                dims.push(DimSec {
                    range: Some((lb, ub)),
                    fixed: None,
                });
            }
        }
    }
    // Fresh index variables for sectioned dims.
    let mut indices = Vec::new();
    let mut lhs_subs = Vec::with_capacity(rank);
    // (var, lhs_lb) per sectioned dim, in order.
    let mut sec_vars: Vec<(String, Expr)> = Vec::new();
    for dim in &dims {
        match (&dim.range, &dim.fixed) {
            (Some((lb, ub)), _) => {
                *counter += 1;
                let var = format!("I__{counter}");
                indices.push(ForallIndex {
                    var: var.clone(),
                    lb: lb.clone(),
                    ub: ub.clone(),
                    st: Expr::Int(1),
                });
                lhs_subs.push(Subscript::Index(Expr::Var(var.clone())));
                sec_vars.push((var, lb.clone()));
            }
            (None, Some(e)) => lhs_subs.push(Subscript::Index(e.clone())),
            _ => unreachable!(),
        }
    }
    let new_rhs = map_elemental(rhs, &sec_vars, info);
    let mask = where_mask.map(|m| simplify(map_elemental(m.clone(), &sec_vars, info)));
    Stmt::Forall {
        indices,
        mask,
        body: vec![Stmt::Assign {
            lhs: LhsRef {
                name: lhs.name,
                subs: lhs_subs,
            },
            rhs: simplify(new_rhs),
        }],
    }
}

/// Rewrite an elementwise RHS/mask: every array section maps positionally
/// onto the LHS section variables.
fn map_elemental(e: Expr, sec_vars: &[(String, Expr)], info: &UnitInfo) -> Expr {
    fn walk(e: Expr, sec_vars: &[(String, Expr)], info: &UnitInfo, pos: &mut usize) -> Expr {
        match e {
            // A bare array name is a whole-array reference.
            Expr::Var(name) if info.arrays.contains_key(&name) => {
                walk(Expr::Ref(name, vec![]), sec_vars, info, pos)
            }
            Expr::Ref(name, subs) => {
                if info.arrays.contains_key(&name) {
                    // Array reference: whole-array refs expand to full
                    // sections first.
                    let subs = if subs.is_empty() {
                        vec![Subscript::full(); info.arrays[&name].extents.len()]
                    } else {
                        subs
                    };
                    let extents = &info.arrays[&name].extents;
                    let mut new_subs = Vec::with_capacity(subs.len());
                    for s in subs.into_iter() {
                        match s {
                            Subscript::Index(ix) => {
                                let ix = walk(ix, sec_vars, info, pos);
                                new_subs.push(Subscript::Index(ix));
                            }
                            Subscript::Range { lb, ub: _, st } => {
                                let (var, lhs_lb) = sec_vars
                                    .get(*pos)
                                    .unwrap_or_else(|| {
                                        panic!(
                                            "RHS section of `{name}` has no matching LHS section"
                                        )
                                    })
                                    .clone();
                                *pos += 1;
                                let rlb = lb.unwrap_or(Expr::Int(1));
                                let rst = st.unwrap_or(Expr::Int(1));
                                let _ = extents;
                                // index = rlb + (var - lhs_lb) * rst
                                let delta = Expr::bin(BinOp::Sub, Expr::Var(var), lhs_lb);
                                let scaled = Expr::bin(BinOp::Mul, delta, rst);
                                new_subs.push(Subscript::Index(simplify(Expr::bin(
                                    BinOp::Add,
                                    rlb,
                                    scaled,
                                ))));
                            }
                        }
                    }
                    Expr::Ref(name, new_subs)
                } else if PARALLEL_INTRINSICS.contains(&name.as_str()) {
                    // Parallel intrinsics are self-contained: leave args.
                    Expr::Ref(name, subs)
                } else {
                    // Elemental intrinsic: recurse into args.
                    let subs = subs
                        .into_iter()
                        .map(|s| match s {
                            Subscript::Index(ix) => Subscript::Index(walk(ix, sec_vars, info, pos)),
                            other => other,
                        })
                        .collect();
                    Expr::Ref(name, subs)
                }
            }
            Expr::Bin(op, l, r) => {
                let l = walk(*l, sec_vars, info, pos);
                // Each operand consumes sections independently but they
                // refer to the same variables: reset position per operand.
                let mut pos_r = 0usize;
                let r = walk(*r, sec_vars, info, &mut pos_r);
                Expr::bin(op, l, r)
            }
            Expr::Un(op, x) => {
                let x = walk(*x, sec_vars, info, pos);
                Expr::Un(op, Box::new(x))
            }
            other => other,
        }
    }
    let mut pos = 0usize;
    walk(e, sec_vars, info, &mut pos)
}

// ---- pass 2: 0-based shift ------------------------------------------------

fn shift_stmt(s: Stmt, info: &UnitInfo) -> Stmt {
    match s {
        Stmt::Assign { lhs, rhs } => Stmt::Assign {
            lhs: shift_lhs(lhs, info),
            rhs: shift_expr(rhs, info),
        },
        Stmt::Forall {
            indices,
            mask,
            body,
        } => Stmt::Forall {
            indices: indices
                .into_iter()
                .map(|ix| ForallIndex {
                    var: ix.var,
                    lb: simplify(shift_expr(ix.lb, info)),
                    ub: simplify(shift_expr(ix.ub, info)),
                    st: simplify(shift_expr(ix.st, info)),
                })
                .collect(),
            mask: mask.map(|m| shift_expr(m, info)),
            body: body.into_iter().map(|b| shift_stmt(b, info)).collect(),
        },
        Stmt::Where {
            mask,
            then,
            elsewhere,
        } => Stmt::Where {
            mask: shift_expr(mask, info),
            then: then.into_iter().map(|b| shift_stmt(b, info)).collect(),
            elsewhere: elsewhere.into_iter().map(|b| shift_stmt(b, info)).collect(),
        },
        Stmt::Do {
            var,
            lb,
            ub,
            st,
            body,
        } => Stmt::Do {
            var,
            lb: simplify(shift_expr(lb, info)),
            ub: simplify(shift_expr(ub, info)),
            st: simplify(shift_expr(st, info)),
            body: body.into_iter().map(|b| shift_stmt(b, info)).collect(),
        },
        Stmt::If { cond, then, else_ } => Stmt::If {
            cond: shift_expr(cond, info),
            then: then.into_iter().map(|b| shift_stmt(b, info)).collect(),
            else_: else_.into_iter().map(|b| shift_stmt(b, info)).collect(),
        },
        Stmt::Call { name, args } => Stmt::Call {
            name,
            args: args.into_iter().map(|a| shift_expr(a, info)).collect(),
        },
        Stmt::Print { items } => Stmt::Print {
            items: items.into_iter().map(|a| shift_expr(a, info)).collect(),
        },
        other => other,
    }
}

fn shift_lhs(lhs: LhsRef, info: &UnitInfo) -> LhsRef {
    LhsRef {
        name: lhs.name,
        subs: lhs
            .subs
            .into_iter()
            .map(|s| shift_subscript(s, info))
            .collect(),
    }
}

fn shift_subscript(s: Subscript, info: &UnitInfo) -> Subscript {
    match s {
        Subscript::Index(e) => Subscript::Index(simplify(shift_expr(e, info).plus(-1))),
        Subscript::Range { lb, ub, st } => Subscript::Range {
            lb: lb.map(|e| simplify(shift_expr(e, info).plus(-1))),
            ub: ub.map(|e| simplify(shift_expr(e, info).plus(-1))),
            st: st.map(|e| shift_expr(e, info)),
        },
    }
}

fn shift_expr(e: Expr, info: &UnitInfo) -> Expr {
    match e {
        // PARAMETER constants fold to literals here, so that loop bounds
        // and alignment math see integers.
        Expr::Var(n) => match info.params.get(&n) {
            Some(&v) => Expr::Int(v),
            None => Expr::Var(n),
        },
        Expr::Ref(name, subs) => {
            if info.arrays.contains_key(&name) {
                Expr::Ref(
                    name,
                    subs.into_iter().map(|s| shift_subscript(s, info)).collect(),
                )
            } else {
                // Intrinsic: shift inside args (array refs there are real
                // refs), but the args themselves are not subscripts.
                Expr::Ref(
                    name,
                    subs.into_iter()
                        .map(|s| match s {
                            Subscript::Index(ix) => Subscript::Index(shift_expr(ix, info)),
                            Subscript::Range { lb, ub, st } => Subscript::Range {
                                lb: lb.map(|e| shift_expr(e, info)),
                                ub: ub.map(|e| shift_expr(e, info)),
                                st: st.map(|e| shift_expr(e, info)),
                            },
                        })
                        .collect(),
                )
            }
        }
        Expr::Bin(op, l, r) => Expr::bin(op, shift_expr(*l, info), shift_expr(*r, info)),
        Expr::Un(op, x) => Expr::Un(op, Box::new(shift_expr(*x, info))),
        other => other,
    }
}

// ---- pass 3: FORALL rebasing ----------------------------------------------

/// Shift FORALL ranges to 0-based and substitute `var → var + 1` in the
/// body and mask.
fn rebase_foralls(s: &mut Stmt) {
    match s {
        Stmt::Forall {
            indices,
            mask,
            body,
        } => {
            for b in body.iter_mut() {
                rebase_foralls(b);
            }
            for ix in indices {
                ix.lb = simplify(ix.lb.clone().plus(-1));
                ix.ub = simplify(ix.ub.clone().plus(-1));
                let replacement = Expr::Var(ix.var.clone()).plus(1);
                if let Some(m) = mask {
                    *m = simplify(subst_var(m.clone(), &ix.var, &replacement));
                }
                for b in body.iter_mut() {
                    subst_stmt(b, &ix.var, &replacement);
                }
            }
        }
        Stmt::Do { body, .. } | Stmt::If { then: body, .. } => {
            for b in body {
                rebase_foralls(b);
            }
            if let Stmt::If { else_, .. } = s {
                for b in else_ {
                    rebase_foralls(b);
                }
            }
        }
        Stmt::Where {
            then, elsewhere, ..
        } => {
            for b in then.iter_mut().chain(elsewhere) {
                rebase_foralls(b);
            }
        }
        _ => {}
    }
}

fn subst_stmt(s: &mut Stmt, var: &str, replacement: &Expr) {
    match s {
        Stmt::Assign { lhs, rhs } => {
            for sub in &mut lhs.subs {
                subst_subscript(sub, var, replacement);
            }
            *rhs = simplify(subst_var(rhs.clone(), var, replacement));
        }
        Stmt::Forall {
            indices,
            mask,
            body,
        } => {
            for ix in indices {
                ix.lb = simplify(subst_var(ix.lb.clone(), var, replacement));
                ix.ub = simplify(subst_var(ix.ub.clone(), var, replacement));
                ix.st = simplify(subst_var(ix.st.clone(), var, replacement));
            }
            if let Some(m) = mask {
                *m = simplify(subst_var(m.clone(), var, replacement));
            }
            for b in body {
                subst_stmt(b, var, replacement);
            }
        }
        Stmt::Do {
            lb, ub, st, body, ..
        } => {
            *lb = simplify(subst_var(lb.clone(), var, replacement));
            *ub = simplify(subst_var(ub.clone(), var, replacement));
            *st = simplify(subst_var(st.clone(), var, replacement));
            for b in body {
                subst_stmt(b, var, replacement);
            }
        }
        Stmt::If { cond, then, else_ } => {
            *cond = simplify(subst_var(cond.clone(), var, replacement));
            for b in then.iter_mut().chain(else_) {
                subst_stmt(b, var, replacement);
            }
        }
        Stmt::Where {
            mask,
            then,
            elsewhere,
        } => {
            *mask = simplify(subst_var(mask.clone(), var, replacement));
            for b in then.iter_mut().chain(elsewhere) {
                subst_stmt(b, var, replacement);
            }
        }
        Stmt::Print { items } => {
            for e in items {
                *e = simplify(subst_var(e.clone(), var, replacement));
            }
        }
        Stmt::Call { args, .. } => {
            for e in args {
                *e = simplify(subst_var(e.clone(), var, replacement));
            }
        }
        Stmt::Redistribute { .. } => {}
    }
}

fn subst_subscript(s: &mut Subscript, var: &str, replacement: &Expr) {
    match s {
        Subscript::Index(e) => *e = simplify(subst_var(e.clone(), var, replacement)),
        Subscript::Range { lb, ub, st } => {
            for o in [lb, ub, st].into_iter().flatten() {
                *o = simplify(subst_var(o.clone(), var, replacement));
            }
        }
    }
}

/// Substitute every occurrence of `Var(var)` in `e` by `replacement`.
pub fn subst_var(e: Expr, var: &str, replacement: &Expr) -> Expr {
    match e {
        Expr::Var(n) if n == var => replacement.clone(),
        Expr::Bin(op, l, r) => Expr::bin(
            op,
            subst_var(*l, var, replacement),
            subst_var(*r, var, replacement),
        ),
        Expr::Un(op, x) => Expr::Un(op, Box::new(subst_var(*x, var, replacement))),
        Expr::Ref(name, subs) => Expr::Ref(
            name,
            subs.into_iter()
                .map(|s| match s {
                    Subscript::Index(ix) => Subscript::Index(subst_var(ix, var, replacement)),
                    Subscript::Range { lb, ub, st } => Subscript::Range {
                        lb: lb.map(|e| subst_var(e, var, replacement)),
                        ub: ub.map(|e| subst_var(e, var, replacement)),
                        st: st.map(|e| subst_var(e, var, replacement)),
                    },
                })
                .collect(),
        ),
        other => other,
    }
}

/// Algebraic simplifier: constant folding and affine canonicalization
/// `((x + a) + b) → x + (a+b)`, `x ± 0 → x`, `1*x → x`, `0*x → 0`.
pub fn simplify(e: Expr) -> Expr {
    match e {
        Expr::Bin(op, l, r) => {
            let l = simplify(*l);
            let r = simplify(*r);
            if let (Expr::Int(a), Expr::Int(b)) = (&l, &r) {
                let v = match op {
                    BinOp::Add => Some(a + b),
                    BinOp::Sub => Some(a - b),
                    BinOp::Mul => Some(a * b),
                    BinOp::Div if *b != 0 => Some(a / b),
                    BinOp::Pow if *b >= 0 => Some(a.pow(*b as u32)),
                    _ => None,
                };
                if let Some(v) = v {
                    return Expr::Int(v);
                }
            }
            match (op, &l, &r) {
                // Canonicalize constants to the right of `+` so that the
                // affine chain rule below can fold them.
                (BinOp::Add, Expr::Int(_), rr) if !matches!(rr, Expr::Int(_)) => {
                    simplify(Expr::bin(BinOp::Add, r.clone(), l.clone()))
                }
                (BinOp::Add, _, Expr::Int(0)) => l,
                (BinOp::Sub, _, Expr::Int(0)) => l,
                (BinOp::Sub, Expr::Int(0), _) => Expr::Un(UnOp::Neg, Box::new(r)),
                (BinOp::Mul, _, Expr::Int(1)) => l,
                (BinOp::Mul, Expr::Int(1), _) => r,
                (BinOp::Mul, _, Expr::Int(0)) | (BinOp::Mul, Expr::Int(0), _) => Expr::Int(0),
                (BinOp::Div, _, Expr::Int(1)) => l,
                // (x + a) + b → x + (a+b);  (x + a) - b → x + (a-b)
                (BinOp::Add | BinOp::Sub, Expr::Bin(inner_op, x, a), Expr::Int(b))
                    if matches!(inner_op, BinOp::Add | BinOp::Sub) =>
                {
                    if let Expr::Int(a) = &**a {
                        let a = if *inner_op == BinOp::Sub { -a } else { *a };
                        let b = if op == BinOp::Sub { -b } else { *b };
                        return simplify(Expr::bin(BinOp::Add, (**x).clone(), Expr::Int(a + b)));
                    }
                    Expr::bin(op, l, r)
                }
                _ => Expr::bin(op, l, r),
            }
        }
        Expr::Un(UnOp::Neg, x) => {
            let x = simplify(*x);
            if let Expr::Int(v) = x {
                Expr::Int(-v)
            } else {
                Expr::Un(UnOp::Neg, Box::new(x))
            }
        }
        Expr::Un(op, x) => Expr::Un(op, Box::new(simplify(*x))),
        Expr::Ref(name, subs) => Expr::Ref(
            name,
            subs.into_iter()
                .map(|s| match s {
                    Subscript::Index(ix) => Subscript::Index(simplify(ix)),
                    Subscript::Range { lb, ub, st } => Subscript::Range {
                        lb: lb.map(simplify),
                        ub: ub.map(simplify),
                        st: st.map(simplify),
                    },
                })
                .collect(),
        ),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_front;

    fn front(src: &str) -> AnalyzedProgram {
        compile_front(src).unwrap()
    }

    fn main_body(p: &AnalyzedProgram) -> &[Stmt] {
        &p.program.main().body
    }

    #[test]
    fn whole_array_assign_becomes_forall() {
        let p = front("PROGRAM T\nREAL A(8), B(8)\nA = B\nEND\n");
        match &main_body(&p)[0] {
            Stmt::Forall {
                indices,
                mask,
                body,
            } => {
                assert_eq!(indices.len(), 1);
                assert_eq!(indices[0].lb, Expr::Int(0));
                assert_eq!(indices[0].ub, Expr::Int(7));
                assert!(mask.is_none());
                match &body[0] {
                    Stmt::Assign { lhs, rhs } => {
                        let v = indices[0].var.clone();
                        assert_eq!(lhs.subs, vec![Subscript::Index(Expr::Var(v.clone()))]);
                        assert_eq!(
                            rhs,
                            &Expr::Ref("B".into(), vec![Subscript::Index(Expr::Var(v))])
                        );
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shifted_section_expansion() {
        // A(1:N-1) = B(2:N): rhs index = lhs var + 1 in 0-based space too.
        let p = front(
            "PROGRAM T\nINTEGER, PARAMETER :: N = 8\nREAL A(N), B(N)\nA(1:N-1) = B(2:N)\nEND\n",
        );
        match &main_body(&p)[0] {
            Stmt::Forall { indices, body, .. } => {
                assert_eq!(indices[0].lb, Expr::Int(0));
                assert_eq!(indices[0].ub, Expr::Int(6));
                match &body[0] {
                    Stmt::Assign { rhs, .. } => {
                        let v = indices[0].var.clone();
                        assert_eq!(
                            rhs,
                            &Expr::Ref(
                                "B".into(),
                                vec![Subscript::Index(Expr::bin(
                                    BinOp::Add,
                                    Expr::Var(v),
                                    Expr::Int(1)
                                ))]
                            )
                        );
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn canonical_forall_unchanged_by_rebasing() {
        let p = front(
            "PROGRAM T\nINTEGER, PARAMETER :: N = 8\nREAL A(N), B(N)\nFORALL (I=1:N) A(I) = B(I)\nEND\n",
        );
        match &main_body(&p)[0] {
            Stmt::Forall { indices, body, .. } => {
                assert_eq!(indices[0].lb, Expr::Int(0));
                assert_eq!(indices[0].ub, Expr::Int(7));
                match &body[0] {
                    Stmt::Assign { lhs, rhs } => {
                        assert_eq!(lhs.subs, vec![Subscript::Index(Expr::Var("I".into()))]);
                        assert_eq!(
                            rhs,
                            &Expr::Ref("B".into(), vec![Subscript::Index(Expr::Var("I".into()))])
                        );
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn forall_with_shift_keeps_offset() {
        let p = front(
            "PROGRAM T\nINTEGER, PARAMETER :: N = 8\nREAL A(N), B(N)\nFORALL (I=2:N-1) A(I) = B(I+1)\nEND\n",
        );
        match &main_body(&p)[0] {
            Stmt::Forall { indices, body, .. } => {
                assert_eq!(indices[0].lb, Expr::Int(1));
                assert_eq!(indices[0].ub, Expr::Int(6));
                match &body[0] {
                    Stmt::Assign { rhs, .. } => {
                        assert_eq!(
                            rhs,
                            &Expr::Ref(
                                "B".into(),
                                vec![Subscript::Index(Expr::bin(
                                    BinOp::Add,
                                    Expr::Var("I".into()),
                                    Expr::Int(1)
                                ))]
                            )
                        );
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn do_variable_subscript_shifted() {
        let p = front(
            "PROGRAM T\nINTEGER, PARAMETER :: N = 4\nREAL A(N)\nINTEGER K\nDO K = 1, N\nA(K) = 0.0\nEND DO\nEND\n",
        );
        match &main_body(&p)[0] {
            Stmt::Do { lb, ub, body, .. } => {
                // DO bounds stay 1-based (runtime value semantics).
                assert_eq!(lb, &Expr::Int(1));
                assert_eq!(ub, &Expr::Int(4));
                match &body[0] {
                    Stmt::Assign { lhs, .. } => {
                        // A(K) → A(K-1)
                        assert_eq!(
                            lhs.subs,
                            vec![Subscript::Index(Expr::bin(
                                BinOp::Add,
                                Expr::Var("K".into()),
                                Expr::Int(-1)
                            ))]
                        );
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn where_becomes_masked_forall() {
        let p = front("PROGRAM T\nREAL A(8), B(8)\nWHERE (A > 0.0) B = A\nEND\n");
        match &main_body(&p)[0] {
            Stmt::Forall { mask, .. } => {
                let m = mask.as_ref().expect("mask present");
                assert!(matches!(m, Expr::Bin(BinOp::Gt, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn elsewhere_negates_mask() {
        let p = front(
            "PROGRAM T\nREAL A(8), B(8)\nWHERE (A > 0.0)\nB = A\nELSEWHERE\nB = 0.0\nEND WHERE\nEND\n",
        );
        let body = main_body(&p);
        assert_eq!(body.len(), 2);
        match &body[1] {
            Stmt::Forall { mask, .. } => {
                assert!(matches!(mask.as_ref().unwrap(), Expr::Un(UnOp::Not, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn constant_element_assignment_shifted() {
        let p = front("PROGRAM T\nREAL A(8)\nA(3) = 1.0\nEND\n");
        match &main_body(&p)[0] {
            Stmt::Assign { lhs, .. } => {
                assert_eq!(lhs.subs, vec![Subscript::Index(Expr::Int(2))]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn array_valued_intrinsic_stays_statement() {
        let p = front("PROGRAM T\nREAL A(8), B(8)\nB = CSHIFT(A, 1)\nEND\n");
        match &main_body(&p)[0] {
            Stmt::Assign { lhs, rhs } => {
                assert!(lhs.subs.is_empty());
                assert!(matches!(rhs, Expr::Ref(n, _) if n == "CSHIFT"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scalar_reduction_stays_scalar() {
        let p = front("PROGRAM T\nREAL A(8), S\nS = SUM(A)\nEND\n");
        assert!(matches!(&main_body(&p)[0], Stmt::Assign { lhs, .. } if lhs.name == "S"));
    }

    #[test]
    fn two_d_array_op() {
        let p = front(
            "PROGRAM T\nINTEGER, PARAMETER :: N = 4\nREAL A(N,N), B(N,N)\nA = B + 1.0\nEND\n",
        );
        match &main_body(&p)[0] {
            Stmt::Forall { indices, .. } => assert_eq!(indices.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn simplify_affine_chains() {
        let e = Expr::bin(
            BinOp::Sub,
            Expr::bin(BinOp::Add, Expr::Var("I".into()), Expr::Int(3)),
            Expr::Int(3),
        );
        assert_eq!(simplify(e), Expr::Var("I".into()));
        let e2 = Expr::bin(BinOp::Mul, Expr::Int(1), Expr::Var("X".into()));
        assert_eq!(simplify(e2), Expr::Var("X".into()));
    }

    #[test]
    fn vector_subscript_expansion() {
        // A(V(1:N)) = B(1:N): vector subscript V maps elementwise.
        let p = front(
            "PROGRAM T\nINTEGER, PARAMETER :: N = 4\nREAL A(N), B(N)\nINTEGER V(N)\nA(1:N) = B(V(1:N))\nEND\n",
        );
        match &main_body(&p)[0] {
            Stmt::Forall { indices, body, .. } => {
                let v = indices[0].var.clone();
                match &body[0] {
                    Stmt::Assign { rhs, .. } => {
                        // B(V(v) - 1) in 0-based space: V holds 1-based values.
                        let expect = Expr::Ref(
                            "B".into(),
                            vec![Subscript::Index(Expr::bin(
                                BinOp::Add,
                                Expr::Ref("V".into(), vec![Subscript::Index(Expr::Var(v))]),
                                Expr::Int(-1),
                            ))],
                        );
                        assert_eq!(rhs, &expect);
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }
}
