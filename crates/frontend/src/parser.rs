//! Recursive-descent parser for the Fortran 90D/HPF subset.

use std::fmt;

use crate::ast::*;
use crate::lexer::{Token, TokenKind};

/// Parse error with source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Explanation.
    pub msg: String,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a token stream into a [`Program`].
pub fn parse(tokens: &[Token]) -> Result<Program, ParseError> {
    let mut p = Parser {
        toks: tokens,
        pos: 0,
    };
    p.skip_eos();
    let mut units = Vec::new();
    while !p.at_eof() {
        units.push(p.unit()?);
        p.skip_eos();
    }
    if units.is_empty() {
        return Err(ParseError {
            msg: "empty source".into(),
            line: 1,
        });
    }
    Ok(Program { units })
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

type PResult<T> = Result<T, ParseError>;

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].kind
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        k
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            msg: msg.into(),
            line: self.line(),
        })
    }

    fn skip_eos(&mut self) {
        while matches!(self.peek(), TokenKind::Eos) {
            self.bump();
        }
    }

    fn expect_eos(&mut self) -> PResult<()> {
        match self.peek() {
            TokenKind::Eos | TokenKind::Eof => {
                self.skip_eos();
                Ok(())
            }
            other => self.err(format!("expected end of statement, found `{other}`")),
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), TokenKind::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> PResult<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found `{}`", self.peek()))
        }
    }

    fn peek_ident(&self) -> Option<&str> {
        match self.peek() {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_ident() == Some(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> PResult<String> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => self.err(format!("expected identifier, found `{other}`")),
        }
    }

    // ---- program units -------------------------------------------------

    fn unit(&mut self) -> PResult<Unit> {
        let is_subroutine = if self.eat_kw("PROGRAM") {
            false
        } else if self.eat_kw("SUBROUTINE") {
            true
        } else {
            return self.err("expected PROGRAM or SUBROUTINE");
        };
        let name = self.expect_ident()?;
        let mut args = Vec::new();
        if is_subroutine && self.eat_punct("(") && !self.eat_punct(")") {
            loop {
                args.push(self.expect_ident()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        self.expect_eos()?;
        let mut decls = Vec::new();
        let mut directives = Directives::default();
        let mut body = Vec::new();
        loop {
            self.skip_eos();
            if self.at_eof() {
                return self.err("missing END");
            }
            // END terminators.
            if self.peek_ident() == Some("END") {
                self.bump();
                // optional PROGRAM/SUBROUTINE [name]
                if (self.eat_kw("PROGRAM") || self.eat_kw("SUBROUTINE"))
                    && matches!(self.peek(), TokenKind::Ident(_))
                {
                    self.bump();
                }
                self.expect_eos()?;
                break;
            }
            if matches!(self.peek(), TokenKind::DirectiveStart) {
                self.bump();
                if let Some(stmt) = self.directive(&mut directives)? {
                    body.push(stmt);
                }
                continue;
            }
            // Declarations.
            if let Some(kw) = self.peek_ident() {
                if matches!(kw, "INTEGER" | "REAL" | "LOGICAL" | "COMPLEX" | "DOUBLE") {
                    self.declaration(&mut decls)?;
                    continue;
                }
                if kw == "PARAMETER" {
                    self.parameter_stmt(&mut decls)?;
                    continue;
                }
                if kw == "IMPLICIT" {
                    // IMPLICIT NONE — accepted and ignored.
                    while !matches!(self.peek(), TokenKind::Eos | TokenKind::Eof) {
                        self.bump();
                    }
                    self.expect_eos()?;
                    continue;
                }
            }
            body.push(self.statement()?);
        }
        Ok(Unit {
            name,
            is_subroutine,
            args,
            decls,
            directives,
            body,
        })
    }

    // ---- declarations --------------------------------------------------

    fn declaration(&mut self, decls: &mut Vec<Decl>) -> PResult<()> {
        let ty = match self.expect_ident()?.as_str() {
            "INTEGER" => Ty::Integer,
            "REAL" => Ty::Real,
            "LOGICAL" => Ty::Logical,
            "COMPLEX" => Ty::Complex,
            "DOUBLE" => {
                if !self.eat_kw("PRECISION") {
                    return self.err("expected PRECISION after DOUBLE");
                }
                Ty::Real
            }
            other => return self.err(format!("unknown type `{other}`")),
        };
        // Optional attributes: `, PARAMETER ::` — only PARAMETER supported.
        let mut is_param = false;
        while self.eat_punct(",") {
            let attr = self.expect_ident()?;
            match attr.as_str() {
                "PARAMETER" => is_param = true,
                "DIMENSION" => {
                    return self.err("DIMENSION attribute unsupported; put dims on the entity")
                }
                other => return self.err(format!("unsupported attribute `{other}`")),
            }
        }
        self.eat_punct("::");
        loop {
            let name = self.expect_ident()?;
            let mut dims = Vec::new();
            if self.eat_punct("(") {
                loop {
                    dims.push(self.expr()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct(")")?;
            }
            let param = if self.eat_punct("=") {
                Some(self.expr()?)
            } else {
                None
            };
            if is_param && param.is_none() {
                return self.err("PARAMETER entity needs `= value`");
            }
            decls.push(Decl {
                name,
                ty,
                dims,
                param: if is_param { param } else { None },
            });
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_eos()
    }

    /// `PARAMETER (N = 100, M = 3)` — retrofits values onto prior decls.
    fn parameter_stmt(&mut self, decls: &mut Vec<Decl>) -> PResult<()> {
        self.bump(); // PARAMETER
        self.expect_punct("(")?;
        loop {
            let name = self.expect_ident()?;
            self.expect_punct("=")?;
            let value = self.expr()?;
            match decls.iter_mut().find(|d| d.name == name) {
                Some(d) => d.param = Some(value),
                None => decls.push(Decl {
                    name,
                    ty: Ty::Integer,
                    dims: vec![],
                    param: Some(value),
                }),
            }
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(")")?;
        self.expect_eos()
    }

    // ---- directives ----------------------------------------------------

    /// Parse one directive line. Mapping directives accumulate into
    /// `dirs`; the executable REDISTRIBUTE returns a statement.
    fn directive(&mut self, dirs: &mut Directives) -> PResult<Option<Stmt>> {
        let kw = self.expect_ident()?;
        match kw.as_str() {
            "PROCESSORS" => {
                let name = self.expect_ident()?;
                let mut shape = Vec::new();
                if self.eat_punct("(") {
                    loop {
                        shape.push(self.expr()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_punct(")")?;
                }
                dirs.processors = Some((name, shape));
                self.expect_eos()?;
                Ok(None)
            }
            "TEMPLATE" | "DECOMPOSITION" => {
                loop {
                    let name = self.expect_ident()?;
                    self.expect_punct("(")?;
                    let mut shape = Vec::new();
                    loop {
                        shape.push(self.expr()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_punct(")")?;
                    dirs.templates.push((name, shape));
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_eos()?;
                Ok(None)
            }
            "ALIGN" => {
                let array = self.expect_ident()?;
                let mut array_dummies = Vec::new();
                if self.eat_punct("(") {
                    loop {
                        if self.eat_punct("*") {
                            array_dummies.push(None);
                        } else {
                            array_dummies.push(Some(self.expect_ident()?));
                        }
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_punct(")")?;
                }
                if !self.eat_kw("WITH") {
                    return self.err("expected WITH in ALIGN");
                }
                let template = self.expect_ident()?;
                let mut template_subs = Vec::new();
                if self.eat_punct("(") {
                    loop {
                        if self.eat_punct("*") {
                            template_subs.push(None);
                        } else {
                            template_subs.push(Some(self.expr()?));
                        }
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_punct(")")?;
                }
                dirs.aligns.push(AlignDirective {
                    array,
                    array_dummies,
                    template,
                    template_subs,
                });
                self.expect_eos()?;
                Ok(None)
            }
            "DISTRIBUTE" => {
                let target = self.expect_ident()?;
                let kinds = self.dist_specs()?;
                let onto = if self.eat_kw("ONTO") {
                    Some(self.expect_ident()?)
                } else {
                    None
                };
                dirs.distributes.push(DistDirective {
                    target,
                    kinds,
                    onto,
                });
                self.expect_eos()?;
                Ok(None)
            }
            "REDISTRIBUTE" => {
                let array = self.expect_ident()?;
                let dist = self.dist_specs()?;
                self.expect_eos()?;
                Ok(Some(Stmt::Redistribute { array, dist }))
            }
            other => self.err(format!("unknown directive `{other}`")),
        }
    }

    fn dist_specs(&mut self) -> PResult<Vec<DistSpec>> {
        self.expect_punct("(")?;
        let mut kinds = Vec::new();
        loop {
            if self.eat_punct("*") {
                kinds.push(DistSpec::Star);
            } else {
                let kw = self.expect_ident()?;
                match kw.as_str() {
                    "BLOCK" => kinds.push(DistSpec::Block),
                    "CYCLIC" => {
                        if self.eat_punct("(") {
                            let k = self.expr()?;
                            self.expect_punct(")")?;
                            kinds.push(DistSpec::BlockCyclic(k));
                        } else {
                            kinds.push(DistSpec::Cyclic);
                        }
                    }
                    other => return self.err(format!("unknown distribution `{other}`")),
                }
            }
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(")")?;
        Ok(kinds)
    }

    // ---- statements ----------------------------------------------------

    fn statement(&mut self) -> PResult<Stmt> {
        // Executable directives (REDISTRIBUTE) are statements and may
        // appear inside DO/IF bodies; mapping directives may not.
        if matches!(self.peek(), TokenKind::DirectiveStart) {
            self.bump();
            let mut dirs = Directives::default();
            return match self.directive(&mut dirs)? {
                Some(stmt) => Ok(stmt),
                None => self.err("only REDISTRIBUTE may appear in executable position"),
            };
        }
        match self.peek_ident() {
            Some("FORALL") => self.forall_stmt(),
            Some("WHERE") => self.where_stmt(),
            Some("DO") => self.do_stmt(),
            Some("IF") => self.if_stmt(),
            Some("CALL") => self.call_stmt(),
            Some("PRINT") => self.print_stmt(),
            _ => self.assignment(),
        }
    }

    fn assignment(&mut self) -> PResult<Stmt> {
        let name = self.expect_ident()?;
        let mut subs = Vec::new();
        if self.eat_punct("(") {
            subs = self.subscript_list()?;
        }
        self.expect_punct("=")?;
        let rhs = self.expr()?;
        self.expect_eos()?;
        Ok(Stmt::Assign {
            lhs: LhsRef { name, subs },
            rhs,
        })
    }

    fn forall_stmt(&mut self) -> PResult<Stmt> {
        self.bump(); // FORALL
        self.expect_punct("(")?;
        let mut indices = Vec::new();
        let mut mask = None;
        loop {
            // index spec: IDENT = e : e [: e]   — otherwise it's the mask.
            let is_spec = matches!(self.peek(), TokenKind::Ident(_))
                && matches!(self.peek2(), TokenKind::Punct("="));
            if is_spec {
                let var = self.expect_ident()?;
                self.expect_punct("=")?;
                let lb = self.expr()?;
                self.expect_punct(":")?;
                let ub = self.expr()?;
                let st = if self.eat_punct(":") {
                    self.expr()?
                } else {
                    Expr::Int(1)
                };
                indices.push(ForallIndex { var, lb, ub, st });
            } else {
                mask = Some(self.expr()?);
                break;
            }
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(")")?;
        if indices.is_empty() {
            return self.err("FORALL needs at least one index spec");
        }
        if matches!(self.peek(), TokenKind::Eos) {
            // construct form
            self.skip_eos();
            let mut body = Vec::new();
            loop {
                if self.eat_end_of("FORALL")? {
                    break;
                }
                body.push(self.statement()?);
                self.skip_eos();
            }
            Ok(Stmt::Forall {
                indices,
                mask,
                body,
            })
        } else {
            let inner = self.assignment()?;
            Ok(Stmt::Forall {
                indices,
                mask,
                body: vec![inner],
            })
        }
    }

    fn where_stmt(&mut self) -> PResult<Stmt> {
        self.bump(); // WHERE
        self.expect_punct("(")?;
        let mask = self.expr()?;
        self.expect_punct(")")?;
        if matches!(self.peek(), TokenKind::Eos) {
            self.skip_eos();
            let mut then = Vec::new();
            let mut elsewhere = Vec::new();
            let mut in_else = false;
            loop {
                if self.eat_end_of("WHERE")? {
                    break;
                }
                if self.peek_ident() == Some("ELSEWHERE") {
                    self.bump();
                    self.expect_eos()?;
                    in_else = true;
                    continue;
                }
                let s = self.statement()?;
                if in_else {
                    elsewhere.push(s);
                } else {
                    then.push(s);
                }
                self.skip_eos();
            }
            Ok(Stmt::Where {
                mask,
                then,
                elsewhere,
            })
        } else {
            let inner = self.assignment()?;
            Ok(Stmt::Where {
                mask,
                then: vec![inner],
                elsewhere: vec![],
            })
        }
    }

    fn do_stmt(&mut self) -> PResult<Stmt> {
        self.bump(); // DO
        let var = self.expect_ident()?;
        self.expect_punct("=")?;
        let lb = self.expr()?;
        self.expect_punct(",")?;
        let ub = self.expr()?;
        let st = if self.eat_punct(",") {
            self.expr()?
        } else {
            Expr::Int(1)
        };
        self.expect_eos()?;
        let mut body = Vec::new();
        loop {
            self.skip_eos();
            if self.eat_end_of("DO")? {
                break;
            }
            body.push(self.statement()?);
        }
        Ok(Stmt::Do {
            var,
            lb,
            ub,
            st,
            body,
        })
    }

    fn if_stmt(&mut self) -> PResult<Stmt> {
        self.bump(); // IF
        self.expect_punct("(")?;
        let cond = self.expr()?;
        self.expect_punct(")")?;
        if self.eat_kw("THEN") {
            self.expect_eos()?;
            let mut then = Vec::new();
            let mut else_ = Vec::new();
            let mut in_else = false;
            loop {
                self.skip_eos();
                if self.eat_end_of("IF")? {
                    break;
                }
                if self.peek_ident() == Some("ELSE") {
                    self.bump();
                    self.expect_eos()?;
                    in_else = true;
                    continue;
                }
                let s = self.statement()?;
                if in_else {
                    else_.push(s);
                } else {
                    then.push(s);
                }
            }
            Ok(Stmt::If { cond, then, else_ })
        } else {
            let inner = self.statement()?;
            Ok(Stmt::If {
                cond,
                then: vec![inner],
                else_: vec![],
            })
        }
    }

    fn call_stmt(&mut self) -> PResult<Stmt> {
        self.bump(); // CALL
        let name = self.expect_ident()?;
        let mut args = Vec::new();
        if self.eat_punct("(") && !self.eat_punct(")") {
            loop {
                args.push(self.expr()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        self.expect_eos()?;
        Ok(Stmt::Call { name, args })
    }

    fn print_stmt(&mut self) -> PResult<Stmt> {
        self.bump(); // PRINT
        self.expect_punct("*")?;
        let mut items = Vec::new();
        while self.eat_punct(",") {
            items.push(self.expr()?);
        }
        self.expect_eos()?;
        Ok(Stmt::Print { items })
    }

    /// Consume `END kw` / `ENDkw` if present; returns whether it was.
    fn eat_end_of(&mut self, kw: &str) -> PResult<bool> {
        let glued = format!("END{kw}");
        if self.peek_ident() == Some(glued.as_str()) {
            self.bump();
            self.expect_eos()?;
            return Ok(true);
        }
        if self.peek_ident() == Some("END") {
            if let TokenKind::Ident(next) = self.peek2() {
                if next == kw {
                    self.bump();
                    self.bump();
                    self.expect_eos()?;
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self) -> PResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_punct(".OR.") {
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_punct(".AND.") {
            let rhs = self.not_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> PResult<Expr> {
        if self.eat_punct(".NOT.") {
            let e = self.not_expr()?;
            Ok(Expr::Un(UnOp::Not, Box::new(e)))
        } else {
            self.rel_expr()
        }
    }

    fn rel_expr(&mut self) -> PResult<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Punct("==") => Some(BinOp::Eq),
            TokenKind::Punct("/=") => Some(BinOp::Ne),
            TokenKind::Punct("<") => Some(BinOp::Lt),
            TokenKind::Punct("<=") => Some(BinOp::Le),
            TokenKind::Punct(">") => Some(BinOp::Gt),
            TokenKind::Punct(">=") => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            Ok(Expr::bin(op, lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            if self.eat_punct("+") {
                let rhs = self.mul_expr()?;
                lhs = Expr::bin(BinOp::Add, lhs, rhs);
            } else if self.eat_punct("-") {
                let rhs = self.mul_expr()?;
                lhs = Expr::bin(BinOp::Sub, lhs, rhs);
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            if self.eat_punct("*") {
                let rhs = self.unary_expr()?;
                lhs = Expr::bin(BinOp::Mul, lhs, rhs);
            } else if self.eat_punct("/") {
                let rhs = self.unary_expr()?;
                lhs = Expr::bin(BinOp::Div, lhs, rhs);
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> PResult<Expr> {
        if self.eat_punct("-") {
            let e = self.unary_expr()?;
            Ok(Expr::Un(UnOp::Neg, Box::new(e)))
        } else if self.eat_punct("+") {
            self.unary_expr()
        } else {
            self.pow_expr()
        }
    }

    fn pow_expr(&mut self) -> PResult<Expr> {
        let base = self.primary()?;
        if self.eat_punct("**") {
            // right-associative
            let exp = self.unary_expr()?;
            Ok(Expr::bin(BinOp::Pow, base, exp))
        } else {
            Ok(base)
        }
    }

    fn primary(&mut self) -> PResult<Expr> {
        match self.bump() {
            TokenKind::Int(v) => Ok(Expr::Int(v)),
            TokenKind::Real(v) => Ok(Expr::Real(v)),
            TokenKind::Logical(b) => Ok(Expr::Logical(b)),
            TokenKind::Str(s) => Ok(Expr::Str(s)),
            TokenKind::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if self.eat_punct("(") {
                    let subs = self.subscript_list()?;
                    Ok(Expr::Ref(name, subs))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => self.err(format!("unexpected `{other}` in expression")),
        }
    }

    /// Parse `sub, sub, …)` — the opening `(` is already consumed.
    fn subscript_list(&mut self) -> PResult<Vec<Subscript>> {
        let mut subs = Vec::new();
        loop {
            subs.push(self.subscript()?);
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(")")?;
        Ok(subs)
    }

    fn subscript(&mut self) -> PResult<Subscript> {
        // `:` | `:ub[:st]` | `e` | `e:[ub][:st]`
        if self.eat_punct(":") {
            let ub = self.section_bound()?;
            let st = if self.eat_punct(":") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Subscript::Range { lb: None, ub, st });
        }
        let first = self.expr()?;
        if self.eat_punct(":") {
            let ub = self.section_bound()?;
            let st = if self.eat_punct(":") {
                Some(self.expr()?)
            } else {
                None
            };
            Ok(Subscript::Range {
                lb: Some(first),
                ub,
                st,
            })
        } else {
            Ok(Subscript::Index(first))
        }
    }

    fn section_bound(&mut self) -> PResult<Option<Expr>> {
        match self.peek() {
            TokenKind::Punct(",") | TokenKind::Punct(")") | TokenKind::Punct(":") => Ok(None),
            _ => Ok(Some(self.expr()?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    fn parse_body(stmts: &str) -> Vec<Stmt> {
        let src = format!("PROGRAM T\n{stmts}\nEND\n");
        parse_src(&src).units[0].body.clone()
    }

    #[test]
    fn minimal_program() {
        let p = parse_src("PROGRAM HELLO\nX = 1\nEND PROGRAM HELLO\n");
        assert_eq!(p.units.len(), 1);
        assert_eq!(p.units[0].name, "HELLO");
        assert_eq!(p.units[0].body.len(), 1);
    }

    #[test]
    fn declarations_with_dims_and_params() {
        let p = parse_src(
            "PROGRAM T\nINTEGER, PARAMETER :: N = 8\nREAL A(N, N), B(N)\nLOGICAL M(N)\nEND\n",
        );
        let d = &p.units[0].decls;
        assert_eq!(d.len(), 4);
        assert_eq!(d[0].name, "N");
        assert_eq!(d[0].param, Some(Expr::Int(8)));
        assert_eq!(d[1].dims.len(), 2);
        assert_eq!(d[3].ty, Ty::Logical);
    }

    #[test]
    fn old_style_parameter() {
        let p = parse_src("PROGRAM T\nINTEGER N\nPARAMETER (N = 100)\nEND\n");
        assert_eq!(p.units[0].decls[0].param, Some(Expr::Int(100)));
    }

    #[test]
    fn forall_single_statement() {
        let b = parse_body("FORALL (I=1:N, J=1:N) A(I,J) = B(I,J) + 1");
        match &b[0] {
            Stmt::Forall {
                indices,
                mask,
                body,
            } => {
                assert_eq!(indices.len(), 2);
                assert_eq!(indices[0].var, "I");
                assert!(mask.is_none());
                assert_eq!(body.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn forall_with_mask_and_stride() {
        let b = parse_body("FORALL (I=1:N:2, A(I) > 0) B(I) = 1.0");
        match &b[0] {
            Stmt::Forall { indices, mask, .. } => {
                assert_eq!(indices[0].st, Expr::Int(2));
                assert!(mask.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn forall_construct() {
        let b = parse_body("FORALL (I=2:N-1)\nA(I) = B(I)\nC(I) = A(I)\nEND FORALL");
        match &b[0] {
            Stmt::Forall { body, .. } => assert_eq!(body.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn where_forms() {
        let b =
            parse_body("WHERE (A > 0) B = A\nWHERE (A > 0)\nB = A\nELSEWHERE\nB = 0.0\nEND WHERE");
        assert!(matches!(&b[0], Stmt::Where { elsewhere, .. } if elsewhere.is_empty()));
        assert!(
            matches!(&b[1], Stmt::Where { then, elsewhere, .. } if then.len() == 1 && elsewhere.len() == 1)
        );
    }

    #[test]
    fn do_loop_nested_if() {
        let b = parse_body("DO K = 1, N-1\nIF (K > 1) THEN\nX = K\nELSE\nX = 0\nEND IF\nEND DO");
        match &b[0] {
            Stmt::Do { var, body, .. } => {
                assert_eq!(var, "K");
                assert!(matches!(&body[0], Stmt::If { else_, .. } if else_.len() == 1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn one_line_if() {
        let b = parse_body("IF (X > 0) Y = 1");
        assert!(
            matches!(&b[0], Stmt::If { then, else_, .. } if then.len() == 1 && else_.is_empty())
        );
    }

    #[test]
    fn sections_and_whole_arrays() {
        let b = parse_body("A(1:N) = B(2:N+1:1) * C");
        match &b[0] {
            Stmt::Assign { lhs, rhs } => {
                assert!(lhs.subs[0].is_section());
                match rhs {
                    Expr::Bin(BinOp::Mul, l, r) => {
                        assert!(matches!(&**l, Expr::Ref(n, s) if n == "B" && s[0].is_section()));
                        assert!(matches!(&**r, Expr::Var(n) if n == "C"));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn full_range_section() {
        let b = parse_body("A(:, 3) = B(:, 1)");
        match &b[0] {
            Stmt::Assign { lhs, .. } => {
                assert_eq!(lhs.subs[0], Subscript::full());
                assert_eq!(lhs.subs[1], Subscript::Index(Expr::Int(3)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn directives_collected() {
        let p = parse_src(
            "PROGRAM T\n\
             REAL A(8, 8)\n\
             C$ PROCESSORS P(2, 2)\n\
             C$ TEMPLATE TEMPL(8, 8)\n\
             C$ ALIGN A(I, J) WITH TEMPL(I, J)\n\
             C$ DISTRIBUTE TEMPL(BLOCK, CYCLIC) ONTO P\n\
             A(1, 1) = 0.0\n\
             END\n",
        );
        let d = &p.units[0].directives;
        assert_eq!(d.processors.as_ref().unwrap().0, "P");
        assert_eq!(d.templates[0].0, "TEMPL");
        assert_eq!(d.aligns[0].array, "A");
        assert_eq!(d.aligns[0].array_dummies.len(), 2);
        assert_eq!(
            d.distributes[0].kinds,
            vec![DistSpec::Block, DistSpec::Cyclic]
        );
        assert_eq!(d.distributes[0].onto.as_deref(), Some("P"));
    }

    #[test]
    fn align_with_offset_expr() {
        let p = parse_src(
            "PROGRAM T\nREAL A(8)\nC$ TEMPLATE TT(16)\nC$ ALIGN A(I) WITH TT(2*I+1)\nEND\n",
        );
        let a = &p.units[0].directives.aligns[0];
        assert_eq!(a.template, "TT");
        assert!(a.template_subs[0].is_some());
    }

    #[test]
    fn replication_align_star() {
        let p = parse_src(
            "PROGRAM T\nREAL A(8)\nC$ TEMPLATE TT(8,4)\nC$ ALIGN A(I) WITH TT(I, *)\nEND\n",
        );
        let a = &p.units[0].directives.aligns[0];
        assert_eq!(a.template_subs.len(), 2);
        assert!(a.template_subs[1].is_none());
    }

    #[test]
    fn redistribute_is_executable() {
        let b = parse_body("C$ REDISTRIBUTE A(CYCLIC)");
        assert!(
            matches!(&b[0], Stmt::Redistribute { array, dist } if array == "A" && dist == &vec![DistSpec::Cyclic])
        );
    }

    #[test]
    fn subroutine_with_args_and_call() {
        let p = parse_src(
            "PROGRAM T\nREAL A(4)\nCALL FOO(A, 3)\nEND\nSUBROUTINE FOO(X, N)\nREAL X(4)\nINTEGER N\nX(N) = 1.0\nEND\n",
        );
        assert_eq!(p.units.len(), 2);
        assert!(p.subroutine("FOO").is_some());
        assert!(
            matches!(&p.units[0].body[0], Stmt::Call { name, args } if name == "FOO" && args.len() == 2)
        );
    }

    #[test]
    fn intrinsic_call_expression() {
        let b = parse_body("S = SUM(A) + MAXVAL(B(1:N))");
        assert!(matches!(&b[0], Stmt::Assign { .. }));
    }

    #[test]
    fn operator_precedence() {
        let b = parse_body("X = 1 + 2 * 3 ** 2");
        match &b[0] {
            Stmt::Assign { rhs, .. } => {
                // 1 + (2 * (3 ** 2))
                let expect = Expr::bin(
                    BinOp::Add,
                    Expr::Int(1),
                    Expr::bin(
                        BinOp::Mul,
                        Expr::Int(2),
                        Expr::bin(BinOp::Pow, Expr::Int(3), Expr::Int(2)),
                    ),
                );
                assert_eq!(rhs, &expect);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn logical_precedence() {
        let b = parse_body("M = A > 0 .AND. B < 1 .OR. .NOT. C");
        match &b[0] {
            Stmt::Assign { rhs, .. } => {
                assert!(matches!(rhs, Expr::Bin(BinOp::Or, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn print_statement() {
        let b = parse_body("PRINT *, 'result', X, A(1)");
        assert!(matches!(&b[0], Stmt::Print { items } if items.len() == 3));
    }

    #[test]
    fn enddo_glued() {
        let b = parse_body("DO I = 1, 3\nX = I\nENDDO");
        assert!(matches!(&b[0], Stmt::Do { .. }));
    }

    #[test]
    fn missing_end_errors() {
        assert!(parse(&lex("PROGRAM T\nX = 1\n").unwrap()).is_err());
    }

    #[test]
    fn negative_stride_section() {
        let b = parse_body("A(N:1:-1) = B(1:N)");
        match &b[0] {
            Stmt::Assign { lhs, .. } => match &lhs.subs[0] {
                Subscript::Range { st: Some(st), .. } => {
                    assert_eq!(st, &Expr::Un(UnOp::Neg, Box::new(Expr::Int(1))));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }
}
