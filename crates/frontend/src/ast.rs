//! Abstract syntax for the Fortran 90D/HPF subset.
//!
//! The parser produces a source-faithful (1-based) tree; semantic
//! analysis resolves names and directive references; normalization
//! rewrites to FORALL-only data parallelism in 0-based index space.

use std::fmt;

/// Fortran base types (DOUBLE PRECISION folds into `Real`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// `INTEGER`
    Integer,
    /// `REAL` / `DOUBLE PRECISION`
    Real,
    /// `LOGICAL`
    Logical,
    /// `COMPLEX`
    Complex,
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::Integer => "INTEGER",
            Ty::Real => "REAL",
            Ty::Logical => "LOGICAL",
            Ty::Complex => "COMPLEX",
        };
        f.write_str(s)
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `**`
    Pow,
    /// `==` / `.EQ.`
    Eq,
    /// `/=` / `.NE.`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `.AND.`
    And,
    /// `.OR.`
    Or,
}

impl BinOp {
    /// `true` for comparison operators (result LOGICAL).
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// `true` for `.AND.` / `.OR.`.
    pub fn is_logical(&self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Unary `-`
    Neg,
    /// `.NOT.`
    Not,
}

/// One subscript of an array reference.
#[derive(Debug, Clone, PartialEq)]
pub enum Subscript {
    /// A single index expression.
    Index(Expr),
    /// A section `lb:ub:st` (any part optional: `:` is the full range).
    Range {
        /// Lower bound (default: dimension lower bound).
        lb: Option<Expr>,
        /// Upper bound (default: dimension upper bound).
        ub: Option<Expr>,
        /// Stride (default 1).
        st: Option<Expr>,
    },
}

impl Subscript {
    /// The full-range section `:`.
    pub fn full() -> Self {
        Subscript::Range {
            lb: None,
            ub: None,
            st: None,
        }
    }

    /// `true` when the subscript is a section.
    pub fn is_section(&self) -> bool {
        matches!(self, Subscript::Range { .. })
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// `.TRUE.` / `.FALSE.`
    Logical(bool),
    /// Character literal (only in `PRINT`).
    Str(String),
    /// Scalar variable or whole-array reference (resolved in sema).
    Var(String),
    /// `A(subs)` — array element, section, or function/intrinsic call
    /// (disambiguated in sema; the parser cannot tell `F(I)` apart).
    Ref(String, Vec<Subscript>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
}

impl Expr {
    /// Build `lhs op rhs`.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Bin(op, Box::new(l), Box::new(r))
    }

    /// Shorthand for `e + c` (folding when `e` is a literal).
    pub fn plus(self, c: i64) -> Expr {
        match self {
            Expr::Int(v) => Expr::Int(v + c),
            e if c == 0 => e,
            e => Expr::bin(BinOp::Add, e, Expr::Int(c)),
        }
    }
}

/// One FORALL index specification: `name = lb : ub [: st]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ForallIndex {
    /// Index variable name.
    pub var: String,
    /// Lower bound.
    pub lb: Expr,
    /// Upper bound.
    pub ub: Expr,
    /// Stride (defaults to 1).
    pub st: Expr,
}

/// Left-hand side of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct LhsRef {
    /// Array or scalar name.
    pub name: String,
    /// Subscripts (empty for scalars and whole arrays).
    pub subs: Vec<Subscript>,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `lhs = rhs` (scalar, element, section or whole-array).
    Assign {
        /// Destination reference.
        lhs: LhsRef,
        /// Source expression.
        rhs: Expr,
    },
    /// `FORALL (specs [, mask]) body`.
    Forall {
        /// Index specifications.
        indices: Vec<ForallIndex>,
        /// Optional scalar-logical mask over the index variables.
        mask: Option<Expr>,
        /// Body assignments (single statement or construct).
        body: Vec<Stmt>,
    },
    /// `WHERE (mask) ... [ELSEWHERE ...] END WHERE`.
    Where {
        /// Elementwise mask expression.
        mask: Expr,
        /// Statements under the mask.
        then: Vec<Stmt>,
        /// Statements under the complement.
        elsewhere: Vec<Stmt>,
    },
    /// Sequential `DO var = lb, ub [, st]`.
    Do {
        /// Loop variable.
        var: String,
        /// Lower bound.
        lb: Expr,
        /// Upper bound.
        ub: Expr,
        /// Stride.
        st: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `IF (cond) THEN ... [ELSE ...] END IF` (or one-line IF).
    If {
        /// Scalar logical condition.
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch.
        else_: Vec<Stmt>,
    },
    /// `CALL name(args)`.
    Call {
        /// Subroutine name.
        name: String,
        /// Actual arguments (array names or scalar expressions).
        args: Vec<Expr>,
    },
    /// `PRINT *, items`.
    Print {
        /// Items to print.
        items: Vec<Expr>,
    },
    /// Executable `!F90D$ REDISTRIBUTE A(CYCLIC)` extension.
    Redistribute {
        /// Array to remap.
        array: String,
        /// New per-dimension distribution keywords.
        dist: Vec<DistSpec>,
    },
}

/// A per-dimension distribution keyword in `DISTRIBUTE`/`REDISTRIBUTE`.
#[derive(Debug, Clone, PartialEq)]
pub enum DistSpec {
    /// `BLOCK`
    Block,
    /// `CYCLIC`
    Cyclic,
    /// `CYCLIC(K)`
    BlockCyclic(Expr),
    /// `*` (not distributed)
    Star,
}

/// `ALIGN A(I, J) WITH T(f(I), g(J))`.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignDirective {
    /// Array being aligned.
    pub array: String,
    /// Dummy index names on the array side (`*` becomes `None`).
    pub array_dummies: Vec<Option<String>>,
    /// Template name.
    pub template: String,
    /// Template-side subscripts: affine expressions over the dummies, or
    /// `*` (None) for replication dims.
    pub template_subs: Vec<Option<Expr>>,
}

/// `DISTRIBUTE T(BLOCK, CYCLIC) [ONTO P]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DistDirective {
    /// Template (or array, in the no-template shorthand) name.
    pub target: String,
    /// Per-dimension distribution.
    pub kinds: Vec<DistSpec>,
    /// Optional processor-arrangement name.
    pub onto: Option<String>,
}

/// All mapping directives of one program unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Directives {
    /// `PROCESSORS P(p, q)` — name and shape.
    pub processors: Option<(String, Vec<Expr>)>,
    /// `TEMPLATE` / `DECOMPOSITION` declarations.
    pub templates: Vec<(String, Vec<Expr>)>,
    /// `ALIGN` directives.
    pub aligns: Vec<AlignDirective>,
    /// `DISTRIBUTE` directives.
    pub distributes: Vec<DistDirective>,
}

/// A declaration entity: `name(dims)` with optional PARAMETER value.
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// Entity name.
    pub name: String,
    /// Base type.
    pub ty: Ty,
    /// Array extents (upper bounds; lower bound fixed at 1). Empty for
    /// scalars.
    pub dims: Vec<Expr>,
    /// `PARAMETER` initializer.
    pub param: Option<Expr>,
}

/// One `PROGRAM` or `SUBROUTINE` unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Unit {
    /// Unit name.
    pub name: String,
    /// `true` for subroutines.
    pub is_subroutine: bool,
    /// Dummy argument names (subroutines only).
    pub args: Vec<String>,
    /// Declarations.
    pub decls: Vec<Decl>,
    /// Mapping directives.
    pub directives: Directives,
    /// Executable statements.
    pub body: Vec<Stmt>,
}

/// A whole source file: a main program plus subroutines.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Program units, main first.
    pub units: Vec<Unit>,
}

impl Program {
    /// The main program unit.
    pub fn main(&self) -> &Unit {
        self.units
            .iter()
            .find(|u| !u.is_subroutine)
            .expect("program has a main unit")
    }

    /// Find a subroutine by (upper-cased) name.
    pub fn subroutine(&self, name: &str) -> Option<&Unit> {
        self.units
            .iter()
            .find(|u| u.is_subroutine && u.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_plus_folds_literals() {
        assert_eq!(Expr::Int(3).plus(-1), Expr::Int(2));
        assert_eq!(Expr::Var("I".into()).plus(0), Expr::Var("I".into()));
        assert_eq!(
            Expr::Var("I".into()).plus(2),
            Expr::bin(BinOp::Add, Expr::Var("I".into()), Expr::Int(2))
        );
    }

    #[test]
    fn binop_classes() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
    }

    #[test]
    fn subscript_full_is_section() {
        assert!(Subscript::full().is_section());
        assert!(!Subscript::Index(Expr::Int(1)).is_section());
    }
}
