//! Property tests for the three-stage mapping invariants (DESIGN.md §7):
//! ownership partitions, `μ⁻¹∘μ = id`, `set_BOUND` covers iteration spaces
//! exactly and disjointly for every distribution kind.

use f90d_distrib::{
    set_bound, AlignExpr, Alignment, AxisAlign, DadBuilder, DimDist, DistKind, ProcGrid, Template,
};
use proptest::prelude::*;

fn dist_kind() -> impl Strategy<Value = DistKind> {
    prop_oneof![
        Just(DistKind::Block),
        Just(DistKind::Cyclic),
        (2i64..6).prop_map(DistKind::BlockCyclic),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// μ⁻¹(μ(g)) = g and ownership is a partition for every kind.
    #[test]
    fn mu_roundtrip_and_partition(
        kind in dist_kind(),
        extent in 1i64..200,
        nprocs in 1i64..17,
    ) {
        let d = DimDist::new(kind, extent, nprocs);
        let mut owned = 0;
        for p in 0..nprocs {
            for g in d.owned_globals(p) {
                prop_assert_eq!(d.proc_of(g), p);
                let l = d.local_of(g);
                prop_assert_eq!(d.global_of(p, l), Some(g));
                owned += 1;
            }
            prop_assert_eq!(d.local_count(p), d.owned_globals(p).count() as i64);
        }
        prop_assert_eq!(owned, extent);
    }

    /// set_BOUND returns exactly the owned subset of the global range,
    /// for any sub-range and stride, and the union over processors is the
    /// whole iteration space with no overlaps.
    #[test]
    fn set_bound_partitions_iteration_space(
        kind in dist_kind(),
        extent in 1i64..120,
        nprocs in 1i64..9,
        lb_frac in 0.0f64..1.0,
        len in 0i64..120,
        gst in 1i64..7,
    ) {
        let d = DimDist::new(kind, extent, nprocs);
        let glb = ((extent - 1) as f64 * lb_frac) as i64;
        let gub = (glb + len).min(extent - 1);

        // Global iterations, in order.
        let mut globals = Vec::new();
        let mut g = glb;
        while g <= gub {
            globals.push(g);
            g += gst;
        }

        let mut seen: Vec<i64> = Vec::new();
        for p in 0..nprocs {
            let locals = set_bound(&d, p, glb, gub, gst).to_vec();
            // Every returned local maps back to an owned global in range.
            for &l in &locals {
                let back = d.global_of(p, l);
                prop_assert!(back.is_some(), "local {l} on p{p} maps to nothing");
                let back = back.unwrap();
                prop_assert!(globals.contains(&back));
                seen.push(back);
            }
        }
        seen.sort_unstable();
        let mut expect = globals.clone();
        expect.sort_unstable();
        prop_assert_eq!(seen, expect, "iterations lost or duplicated");
    }

    /// Affine alignment composed with distribution still partitions the
    /// array: each element owned by exactly one (non-replicated) node.
    #[test]
    fn aligned_dad_partitions(
        stride in prop_oneof![Just(1i64), Just(2i64), Just(-1i64)],
        offset in 0i64..5,
        extent in 1i64..40,
        kind in dist_kind(),
        nprocs in 1i64..7,
    ) {
        // Template big enough to hold the affine image.
        let lo = if stride > 0 { offset } else { stride * (extent - 1) + offset };
        prop_assume!(lo >= 0);
        let hi = if stride > 0 { stride * (extent - 1) + offset } else { offset };
        let text = hi + 1;
        let a = Alignment {
            axes: vec![AxisAlign::Aligned {
                template_dim: 0,
                expr: AlignExpr::new(stride, offset),
            }],
            replicated_template_dims: vec![],
        };
        let dad = DadBuilder::new("A", &[extent])
            .template(Template::new("T", &[text]))
            .align(a)
            .distribute(&[kind])
            .grid(ProcGrid::new(&[nprocs]))
            .build()
            .unwrap();

        let mut owners = vec![0usize; extent as usize];
        for rank in 0..nprocs {
            let coords = dad.grid.coords_of(rank);
            for (gidx, lidx) in dad.owned_elements(&coords) {
                owners[gidx[0] as usize] += 1;
                prop_assert_eq!(dad.global_index(&coords, &lidx), Some(gidx));
            }
        }
        prop_assert!(owners.iter().all(|&c| c == 1));
    }

    /// 2-D BLOCK×CYCLIC DADs: local shapes bound every local index.
    #[test]
    fn local_shape_bounds_all_locals(
        n in 1i64..24,
        m in 1i64..24,
        p in 1i64..5,
        q in 1i64..5,
        k0 in dist_kind(),
        k1 in dist_kind(),
    ) {
        let dad = DadBuilder::new("A", &[n, m])
            .distribute(&[k0, k1])
            .grid(ProcGrid::new(&[p, q]))
            .build()
            .unwrap();
        let shape = dad.local_shape();
        for rank in 0..dad.grid.size() {
            let coords = dad.grid.coords_of(rank);
            for (_, l) in dad.owned_elements(&coords) {
                for (d, (&li, &sh)) in l.iter().zip(&shape).enumerate() {
                    prop_assert!(li < sh, "dim {d}: local {li} >= alloc {sh}");
                }
            }
        }
    }
}
