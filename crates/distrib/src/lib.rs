//! # f90d-distrib — three-stage data mapping for Fortran 90D/HPF
//!
//! This crate implements the data-partitioning machinery of the Fortran
//! 90D/HPF compiler (Bozkus et al., SC'93, §3): the *three-stage mapping*
//! of arrays to physical processors shown in the paper's Figure 2.
//!
//! * **Stage 1 — ALIGN** ([`align`]): each array dimension is aligned to a
//!   dimension of a *template* (the paper's `DECOMPOSITION`) through an
//!   affine subscript function `f(i) = a*i + b` with inverse `f⁻¹`.
//! * **Stage 2 — DISTRIBUTE** ([`dist`]): each template dimension is mapped
//!   onto a dimension of the logical processor grid in `BLOCK`, `CYCLIC`, or
//!   (as an HPF extension) `CYCLIC(K)` fashion; the mapping functions `μ` and
//!   `μ⁻¹` convert between global and local indices.
//! * **Stage 3 — grid embedding** ([`grid`]): the logical grid is embedded in
//!   the physical machine (`φ`, `φ⁻¹`), either row-major or by Gray code (the
//!   natural embedding for the hypercubes the paper targets).
//!
//! The stages compose into a [`dad::Dad`] (Distributed Array Descriptor,
//! paper §6), the structure that run-time primitives receive so that they
//! can compute send/receive sets, local bounds and shapes.
//!
//! [`bounds::set_bound`] is the paper's `set_BOUND` primitive (§4): it turns
//! a global iteration range `(glb, gub, gst)` into each processor's local
//! range `(llb, lub, lst)`, masking processors with no work.
//!
//! All indices in this crate are **0-based**; the front end converts from
//! Fortran's 1-based (or declared-bound) indexing before any of this math
//! runs.

#![warn(missing_docs)]

pub mod align;
pub mod bounds;
pub mod dad;
pub mod dist;
pub mod grid;
pub mod template;

pub use align::{AlignExpr, Alignment, AxisAlign};
pub use bounds::{set_bound, LocalIter, LocalRange};
pub use dad::{ArrayDimMap, Dad, DadBuilder};
pub use dist::{DimDist, DistKind};
pub use grid::{GridEmbedding, ProcGrid};
pub use template::Template;

/// Ceiling division for non-negative operands.
#[inline]
pub(crate) fn ceil_div(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    if a <= 0 {
        // Works for the a <= 0 cases we need (floor toward -inf semantics of
        // `/` are fine because b > 0 and we only call this with a >= -b).
        a / b
    } else {
        (a + b - 1) / b
    }
}

/// Extended Euclid: returns `(g, x, y)` with `a*x + b*y = g = gcd(a, b)`.
///
/// Used by the CYCLIC `set_BOUND` math to intersect the global iteration
/// progression with a processor's residue class.
pub(crate) fn ext_gcd(a: i64, b: i64) -> (i64, i64, i64) {
    if b == 0 {
        (a.abs(), a.signum(), 0)
    } else {
        let (g, x, y) = ext_gcd(b, a.rem_euclid(b));
        (g, y, x - (a.div_euclid(b)) * y)
    }
}

#[cfg(test)]
mod util_tests {
    use super::*;

    #[test]
    fn ceil_div_basic() {
        assert_eq!(ceil_div(10, 3), 4);
        assert_eq!(ceil_div(9, 3), 3);
        assert_eq!(ceil_div(0, 3), 0);
        assert_eq!(ceil_div(1, 7), 1);
    }

    #[test]
    fn ext_gcd_identity() {
        for a in 1..40i64 {
            for b in 1..40i64 {
                let (g, x, y) = ext_gcd(a, b);
                assert_eq!(a * x + b * y, g, "bezout failed for {a},{b}");
                assert_eq!(g, gcd_ref(a, b));
            }
        }
    }

    fn gcd_ref(mut a: i64, mut b: i64) -> i64 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }
}
