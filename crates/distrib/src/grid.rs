//! Stage 3 — embedding the logical processor grid in the physical machine.
//!
//! The `PROCESSORS P(p, q, ...)` directive declares the logical grid. The
//! embedding functions `φ` / `φ⁻¹` (paper §3 stage 3) convert between grid
//! coordinates and physical node ranks. Decoupling the grid from the
//! physical numbering is what lets the same mapped program run on an
//! iPSC/860 hypercube, an nCUBE/2, or a workstation network unchanged —
//! only `φ` changes.

use serde::{Deserialize, Serialize};

/// How logical grid coordinates are laid onto physical ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum GridEmbedding {
    /// Row-major linearization (last axis fastest), the conventional
    /// embedding for meshes and fully-connected transports.
    #[default]
    RowMajor,
    /// Binary-reflected Gray-code embedding per axis: neighbouring grid
    /// coordinates land on hypercube nodes that differ in one address bit,
    /// so grid `shift` operations travel one physical hop on the
    /// hypercubes the paper evaluates (iPSC/860, nCUBE/2). Requires every
    /// axis extent to be a power of two.
    GrayCode,
}

#[inline]
fn gray(x: u64) -> u64 {
    x ^ (x >> 1)
}

#[inline]
fn gray_inverse(mut g: u64) -> u64 {
    let mut x = g;
    while g > 0 {
        g >>= 1;
        x ^= g;
    }
    x
}

/// The logical processor grid (`PROCESSORS` directive): a Cartesian
/// arrangement of `size()` processors plus an embedding into physical
/// ranks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcGrid {
    /// Extent of each grid axis.
    pub shape: Vec<i64>,
    /// The `φ` embedding.
    pub embedding: GridEmbedding,
}

impl ProcGrid {
    /// A grid with the given axis extents and row-major embedding.
    ///
    /// # Panics
    /// Panics if any extent is non-positive.
    pub fn new(shape: &[i64]) -> Self {
        Self::with_embedding(shape, GridEmbedding::RowMajor)
    }

    /// A grid with an explicit embedding.
    ///
    /// # Panics
    /// Panics if any extent is non-positive, or if `GrayCode` is requested
    /// with a non-power-of-two axis.
    pub fn with_embedding(shape: &[i64], embedding: GridEmbedding) -> Self {
        assert!(
            shape.iter().all(|&e| e > 0),
            "grid extents must be positive"
        );
        if embedding == GridEmbedding::GrayCode {
            assert!(
                shape.iter().all(|&e| (e as u64).is_power_of_two()),
                "Gray-code embedding requires power-of-two grid axes"
            );
        }
        ProcGrid {
            shape: shape.to_vec(),
            embedding,
        }
    }

    /// Number of grid axes.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of processors.
    pub fn size(&self) -> i64 {
        self.shape.iter().product()
    }

    /// Extent of axis `axis`.
    pub fn extent(&self, axis: usize) -> i64 {
        self.shape[axis]
    }

    /// `φ`: physical rank of grid coordinates `coords`.
    pub fn rank_of(&self, coords: &[i64]) -> i64 {
        assert_eq!(coords.len(), self.rank(), "coordinate rank mismatch");
        let mut r: i64 = 0;
        for (axis, (&c, &e)) in coords.iter().zip(&self.shape).enumerate() {
            assert!(
                (0..e).contains(&c),
                "grid coordinate {c} out of range on axis {axis}"
            );
            let idx = match self.embedding {
                GridEmbedding::RowMajor => c,
                GridEmbedding::GrayCode => gray(c as u64) as i64,
            };
            r = r * e + idx;
        }
        r
    }

    /// `φ⁻¹`: grid coordinates of physical rank `rank`.
    pub fn coords_of(&self, rank: i64) -> Vec<i64> {
        assert!((0..self.size()).contains(&rank), "rank out of range");
        let mut rem = rank;
        let mut coords = vec![0; self.rank()];
        for axis in (0..self.rank()).rev() {
            let e = self.shape[axis];
            let idx = rem % e;
            rem /= e;
            coords[axis] = match self.embedding {
                GridEmbedding::RowMajor => idx,
                GridEmbedding::GrayCode => gray_inverse(idx as u64) as i64,
            };
        }
        coords
    }

    /// All ranks whose coordinates agree with `coords` on every axis
    /// except `axis` — the row/column/fiber along `axis` through `coords`.
    /// This is the processor set of a `multicast` along a grid dimension
    /// (paper Fig. 4b).
    pub fn fiber(&self, coords: &[i64], axis: usize) -> Vec<i64> {
        (0..self.shape[axis])
            .map(|c| {
                let mut cc = coords.to_vec();
                cc[axis] = c;
                self.rank_of(&cc)
            })
            .collect()
    }

    /// The rank `amount` steps along `axis` from `coords`, or `None` at
    /// the edge (non-periodic shift).
    pub fn neighbor(&self, coords: &[i64], axis: usize, amount: i64) -> Option<i64> {
        let c = coords[axis] + amount;
        if (0..self.shape[axis]).contains(&c) {
            let mut cc = coords.to_vec();
            cc[axis] = c;
            Some(self.rank_of(&cc))
        } else {
            None
        }
    }

    /// The rank `amount` steps along `axis`, wrapping (periodic shift, as
    /// CSHIFT needs).
    pub fn neighbor_wrap(&self, coords: &[i64], axis: usize, amount: i64) -> i64 {
        let e = self.shape[axis];
        let mut cc = coords.to_vec();
        cc[axis] = (coords[axis] + amount).rem_euclid(e);
        self.rank_of(&cc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_code_roundtrip() {
        for x in 0..256u64 {
            assert_eq!(gray_inverse(gray(x)), x);
        }
        // adjacent codes differ in exactly one bit
        for x in 0..255u64 {
            let d = gray(x) ^ gray(x + 1);
            assert_eq!(d.count_ones(), 1);
        }
    }

    #[test]
    fn row_major_rank_roundtrip() {
        let g = ProcGrid::new(&[3, 4]);
        assert_eq!(g.size(), 12);
        for r in 0..12 {
            assert_eq!(g.rank_of(&g.coords_of(r)), r);
        }
        assert_eq!(g.rank_of(&[0, 0]), 0);
        assert_eq!(g.rank_of(&[1, 0]), 4);
        assert_eq!(g.rank_of(&[2, 3]), 11);
    }

    #[test]
    fn gray_rank_roundtrip() {
        let g = ProcGrid::with_embedding(&[4, 8], GridEmbedding::GrayCode);
        for r in 0..32 {
            assert_eq!(g.rank_of(&g.coords_of(r)), r);
        }
    }

    #[test]
    fn gray_neighbors_one_hop_on_hypercube() {
        let g = ProcGrid::with_embedding(&[16], GridEmbedding::GrayCode);
        for c in 0..15 {
            let a = g.rank_of(&[c]);
            let b = g.rank_of(&[c + 1]);
            assert_eq!(
                ((a ^ b) as u64).count_ones(),
                1,
                "grid neighbours {c},{} are not cube neighbours",
                c + 1
            );
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn gray_requires_pow2() {
        ProcGrid::with_embedding(&[3], GridEmbedding::GrayCode);
    }

    #[test]
    fn fiber_is_grid_column() {
        let g = ProcGrid::new(&[2, 3]);
        // fiber along axis 1 through (1, _): ranks of (1,0),(1,1),(1,2)
        assert_eq!(g.fiber(&[1, 0], 1), vec![3, 4, 5]);
        // fiber along axis 0 through (_, 2): ranks of (0,2),(1,2)
        assert_eq!(g.fiber(&[0, 2], 0), vec![2, 5]);
    }

    #[test]
    fn neighbors_edge_and_wrap() {
        let g = ProcGrid::new(&[4]);
        assert_eq!(g.neighbor(&[3], 0, 1), None);
        assert_eq!(g.neighbor(&[2], 0, 1), Some(3));
        assert_eq!(g.neighbor_wrap(&[3], 0, 1), 0);
        assert_eq!(g.neighbor_wrap(&[0], 0, -1), 3);
    }
}
