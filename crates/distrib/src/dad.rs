//! The Distributed Array Descriptor (DAD, paper §6).
//!
//! When a distributed array is passed to a run-time primitive the callee
//! needs its global shape, alignment, distribution and grid placement to
//! compute local bounds and send/receive sets. The `Dad` bundles the three
//! mapping stages for one array; it is the structure the generated code
//! fills with `set_DAD` before every communication call (paper §5.3.1).

use serde::{Deserialize, Serialize};

use crate::align::{AlignExpr, Alignment, AxisAlign};
use crate::dist::{DimDist, DistKind};
use crate::grid::ProcGrid;
use crate::template::Template;

/// Per-array-dimension composite mapping: alignment into the template
/// composed with the template dimension's distribution onto a grid axis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayDimMap {
    /// Global extent of this array dimension.
    pub extent: i64,
    /// Affine alignment `f` of array index to template index.
    pub align: AlignExpr,
    /// Distribution of the target template dimension (extent = template
    /// extent, nprocs = grid axis extent). For dimensions that are
    /// collapsed or aligned to an undistributed template dimension the
    /// kind is `Collapsed` with `nprocs = 1`.
    pub dist: DimDist,
    /// The grid axis this dimension is spread over, when distributed.
    pub grid_axis: Option<usize>,
}

impl ArrayDimMap {
    /// `true` when elements of this dimension live on different processors.
    pub fn is_distributed(&self) -> bool {
        self.grid_axis.is_some() && self.dist.kind.is_distributed() && self.dist.nprocs > 1
    }

    /// Grid coordinate (along `grid_axis`) owning array index `i`.
    #[inline]
    pub fn proc_of(&self, i: i64) -> i64 {
        self.dist.proc_of(self.align.apply(i))
    }

    /// Local index (in template-local numbering) of array index `i`.
    ///
    /// Local storage is indexed by the *template* local index so that
    /// aligned arrays share one coordinate system; for identity alignments
    /// this is the usual array-local index.
    #[inline]
    pub fn local_of(&self, i: i64) -> i64 {
        self.dist.local_of(self.align.apply(i))
    }

    /// Inverse: array index stored at `(p, l)` if that slot holds one.
    pub fn array_index_of(&self, p: i64, l: i64) -> Option<i64> {
        let t = self.dist.global_of(p, l)?;
        let i = self.align.invert(t)?;
        if (0..self.extent).contains(&i) {
            Some(i)
        } else {
            None
        }
    }

    /// Number of local slots a node must allocate for this dimension
    /// (template-local count of the owning processor).
    pub fn local_alloc(&self) -> i64 {
        if self.is_distributed() {
            self.dist.max_local_count()
        } else {
            self.extent.max(self.dist.extent.min(self.extent))
        }
    }

    /// Count of *array* elements of this dimension owned by grid coord `p`.
    pub fn local_count(&self, p: i64) -> i64 {
        if !self.is_distributed() {
            return self.extent;
        }
        if self.align.is_identity() {
            return self.dist.local_count(p).min(self.extent);
        }
        (0..self.extent).filter(|&i| self.proc_of(i) == p).count() as i64
    }
}

/// Distributed Array Descriptor: the full three-stage mapping of one array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dad {
    /// Array name (diagnostics only).
    pub name: String,
    /// Global shape.
    pub shape: Vec<i64>,
    /// Per-dimension composite maps.
    pub dims: Vec<ArrayDimMap>,
    /// Grid axes along which the array is *replicated* (template dims with
    /// no aligned array axis, plus grid axes unused by this array).
    pub replicated_axes: Vec<usize>,
    /// The logical processor grid.
    pub grid: ProcGrid,
}

impl Dad {
    /// Array rank.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn size(&self) -> i64 {
        self.shape.iter().product()
    }

    /// `true` when no dimension is distributed (every node holds a copy).
    pub fn is_replicated(&self) -> bool {
        self.dims.iter().all(|d| !d.is_distributed())
    }

    /// Grid coordinates of the *owner* of global element `index`.
    /// Replicated axes get coordinate 0 (the canonical copy); callers that
    /// need every copy should expand over [`Dad::replicated_axes`].
    pub fn owner_coords(&self, index: &[i64]) -> Vec<i64> {
        assert_eq!(index.len(), self.rank());
        let mut coords = vec![0; self.grid.rank()];
        for (d, &i) in self.dims.iter().zip(index) {
            if let Some(ax) = d.grid_axis {
                if d.is_distributed() {
                    coords[ax] = d.proc_of(i);
                }
            }
        }
        coords
    }

    /// All physical ranks holding a copy of `index` (owner expanded over
    /// replicated axes).
    pub fn owner_ranks(&self, index: &[i64]) -> Vec<i64> {
        let base = self.owner_coords(index);
        let mut ranks = Vec::new();
        expand_axes(&self.grid, &base, &self.replicated_axes, &mut ranks);
        ranks
    }

    /// `true` when physical rank `rank` holds element `index`.
    pub fn is_owner(&self, rank: i64, index: &[i64]) -> bool {
        let coords = self.grid.coords_of(rank);
        let owner = self.owner_coords(index);
        coords
            .iter()
            .zip(&owner)
            .enumerate()
            .all(|(ax, (&c, &o))| self.replicated_axes.contains(&ax) || c == o)
    }

    /// Local (per-dimension) index vector of `index` on its owner.
    pub fn local_index(&self, index: &[i64]) -> Vec<i64> {
        self.dims
            .iter()
            .zip(index)
            .map(|(d, &i)| if d.is_distributed() { d.local_of(i) } else { i })
            .collect()
    }

    /// Local allocation shape every node reserves for this array.
    pub fn local_shape(&self) -> Vec<i64> {
        self.dims.iter().map(|d| d.local_alloc()).collect()
    }

    /// Global index stored at local `local` on the node at `coords`, if
    /// that slot holds a real element there.
    pub fn global_index(&self, coords: &[i64], local: &[i64]) -> Option<Vec<i64>> {
        let mut out = Vec::with_capacity(self.rank());
        for (d, &l) in self.dims.iter().zip(local) {
            if d.is_distributed() {
                let p = coords[d.grid_axis.expect("distributed dim has axis")];
                out.push(d.array_index_of(p, l)?);
            } else {
                if !(0..d.extent).contains(&l) {
                    return None;
                }
                out.push(l);
            }
        }
        Some(out)
    }

    /// Iterate `(global_index, local_index)` pairs owned by the node at
    /// grid `coords`, in row-major local order.
    pub fn owned_elements(&self, coords: &[i64]) -> Vec<(Vec<i64>, Vec<i64>)> {
        // Per-dim list of (global, local) pairs owned on this node.
        let mut per_dim: Vec<Vec<(i64, i64)>> = Vec::with_capacity(self.rank());
        for d in &self.dims {
            let pairs: Vec<(i64, i64)> = if d.is_distributed() {
                let p = coords[d.grid_axis.unwrap()];
                (0..d.extent)
                    .filter(|&i| d.proc_of(i) == p)
                    .map(|i| (i, d.local_of(i)))
                    .collect()
            } else {
                (0..d.extent).map(|i| (i, i)).collect()
            };
            per_dim.push(pairs);
        }
        let mut out = Vec::new();
        let mut cursor = vec![0usize; self.rank()];
        if per_dim.iter().any(|v| v.is_empty()) {
            return out;
        }
        loop {
            let g: Vec<i64> = cursor.iter().zip(&per_dim).map(|(&c, v)| v[c].0).collect();
            let l: Vec<i64> = cursor.iter().zip(&per_dim).map(|(&c, v)| v[c].1).collect();
            out.push((g, l));
            // advance row-major (last dim fastest)
            let mut dim = self.rank();
            loop {
                if dim == 0 {
                    return out;
                }
                dim -= 1;
                cursor[dim] += 1;
                if cursor[dim] < per_dim[dim].len() {
                    break;
                }
                cursor[dim] = 0;
            }
        }
    }
}

fn expand_axes(grid: &ProcGrid, base: &[i64], axes: &[usize], out: &mut Vec<i64>) {
    fn rec(grid: &ProcGrid, coords: &mut Vec<i64>, axes: &[usize], out: &mut Vec<i64>) {
        match axes.split_first() {
            None => out.push(grid.rank_of(coords)),
            Some((&ax, rest)) => {
                for c in 0..grid.extent(ax) {
                    coords[ax] = c;
                    rec(grid, coords, rest, out);
                }
            }
        }
    }
    let mut coords = base.to_vec();
    rec(grid, &mut coords, axes, out);
}

/// Builder assembling a [`Dad`] from the three directives, with
/// validation. This is what the compiler's partitioning module produces
/// from `DECOMPOSITION` / `ALIGN` / `DISTRIBUTE` / `PROCESSORS`.
#[derive(Debug, Clone)]
pub struct DadBuilder {
    name: String,
    shape: Vec<i64>,
    alignment: Option<Alignment>,
    template: Option<Template>,
    dist_kinds: Option<Vec<DistKind>>,
    grid: Option<ProcGrid>,
}

impl DadBuilder {
    /// Start building a DAD for array `name` with global `shape`.
    pub fn new(name: impl Into<String>, shape: &[i64]) -> Self {
        DadBuilder {
            name: name.into(),
            shape: shape.to_vec(),
            alignment: None,
            template: None,
            dist_kinds: None,
            grid: None,
        }
    }

    /// Provide the ALIGN stage (defaults to identity onto the template).
    pub fn align(mut self, a: Alignment) -> Self {
        self.alignment = Some(a);
        self
    }

    /// Provide the template (defaults to one shaped like the array).
    pub fn template(mut self, t: Template) -> Self {
        self.template = Some(t);
        self
    }

    /// Provide the DISTRIBUTE stage: one `DistKind` per template dimension.
    pub fn distribute(mut self, kinds: &[DistKind]) -> Self {
        self.dist_kinds = Some(kinds.to_vec());
        self
    }

    /// Provide the logical processor grid.
    pub fn grid(mut self, g: ProcGrid) -> Self {
        self.grid = Some(g);
        self
    }

    /// Assemble and validate the descriptor.
    ///
    /// Distributed template dimensions are assigned grid axes in order:
    /// the i-th distributed template dimension maps to grid axis i. The
    /// grid must have at least as many axes as there are distributed
    /// template dimensions; excess grid axes replicate the array.
    pub fn build(self) -> Result<Dad, String> {
        let template = self
            .template
            .unwrap_or_else(|| Template::new(format!("{}_T", self.name), &self.shape));
        let alignment = self
            .alignment
            .unwrap_or_else(|| Alignment::identity(self.shape.len()));
        alignment.validate(&self.shape, &template.extents)?;
        let kinds = self
            .dist_kinds
            .unwrap_or_else(|| vec![DistKind::Block; template.rank()]);
        if kinds.len() != template.rank() {
            return Err(format!(
                "DISTRIBUTE lists {} dims but template {} has {}",
                kinds.len(),
                template.name,
                template.rank()
            ));
        }
        // Assign grid axes to distributed template dims in order.
        let dist_tdims: Vec<usize> = (0..template.rank())
            .filter(|&t| kinds[t].is_distributed())
            .collect();
        let grid = self
            .grid
            .unwrap_or_else(|| ProcGrid::new(&vec![1; dist_tdims.len().max(1)]));
        if dist_tdims.len() > grid.rank() {
            return Err(format!(
                "template {} distributes {} dims but grid has only {} axes",
                template.name,
                dist_tdims.len(),
                grid.rank()
            ));
        }
        let tdim_axis: Vec<Option<usize>> = {
            let mut v = vec![None; template.rank()];
            for (axis, &t) in dist_tdims.iter().enumerate() {
                v[t] = Some(axis);
            }
            v
        };
        let mut dims = Vec::with_capacity(self.shape.len());
        for (axis, ax) in alignment.axes.iter().enumerate() {
            let extent = self.shape[axis];
            let dim = match ax {
                AxisAlign::Aligned { template_dim, expr } => {
                    let t = *template_dim;
                    let gaxis = tdim_axis[t];
                    let nprocs = gaxis.map_or(1, |a| grid.extent(a));
                    let kind = if gaxis.is_some() {
                        kinds[t]
                    } else {
                        DistKind::Collapsed
                    };
                    ArrayDimMap {
                        extent,
                        align: *expr,
                        dist: DimDist::new(kind, template.extent(t), nprocs),
                        grid_axis: gaxis,
                    }
                }
                AxisAlign::Collapsed => ArrayDimMap {
                    extent,
                    align: AlignExpr::IDENTITY,
                    dist: DimDist::new(DistKind::Collapsed, extent, 1),
                    grid_axis: None,
                },
            };
            dims.push(dim);
        }
        // Replicated axes: grid axes bound to template dims with no aligned
        // array axis, plus grid axes not bound to any template dim.
        let mut replicated = Vec::new();
        for t in 0..template.rank() {
            if let Some(axis) = tdim_axis[t] {
                if alignment.axis_of_template_dim(t).is_none() {
                    replicated.push(axis);
                }
            }
        }
        for axis in 0..grid.rank() {
            if !tdim_axis.contains(&Some(axis)) {
                replicated.push(axis);
            }
        }
        replicated.sort_unstable();
        replicated.dedup();
        Ok(Dad {
            name: self.name,
            shape: self.shape,
            dims,
            replicated_axes: replicated,
            grid,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_2d(n: i64, p: i64, q: i64) -> Dad {
        DadBuilder::new("A", &[n, n])
            .distribute(&[DistKind::Block, DistKind::Block])
            .grid(ProcGrid::new(&[p, q]))
            .build()
            .unwrap()
    }

    #[test]
    fn block_block_ownership() {
        let dad = block_2d(8, 2, 2); // 4x4 local tiles
        assert_eq!(dad.owner_coords(&[0, 0]), vec![0, 0]);
        assert_eq!(dad.owner_coords(&[7, 7]), vec![1, 1]);
        assert_eq!(dad.owner_coords(&[3, 4]), vec![0, 1]);
        assert_eq!(dad.local_index(&[5, 6]), vec![1, 2]);
        assert_eq!(dad.local_shape(), vec![4, 4]);
        assert!(!dad.is_replicated());
    }

    #[test]
    fn column_distribution_star_block() {
        // The paper's Table 4 layout: (*, BLOCK) column distribution.
        let dad = DadBuilder::new("A", &[1023, 1024])
            .distribute(&[DistKind::Collapsed, DistKind::Block])
            .grid(ProcGrid::new(&[16]))
            .build()
            .unwrap();
        assert!(!dad.dims[0].is_distributed());
        assert!(dad.dims[1].is_distributed());
        assert_eq!(dad.local_shape(), vec![1023, 64]);
        assert_eq!(dad.owner_coords(&[500, 63]), vec![0]);
        assert_eq!(dad.owner_coords(&[500, 64]), vec![1]);
    }

    #[test]
    fn every_element_owned_exactly_once() {
        for (p, q) in [(1, 1), (2, 2), (2, 4), (4, 1)] {
            let dad = block_2d(9, p, q);
            let mut count = vec![vec![0u8; 9]; 9];
            for rank in 0..dad.grid.size() {
                let coords = dad.grid.coords_of(rank);
                for (g, l) in dad.owned_elements(&coords) {
                    count[g[0] as usize][g[1] as usize] += 1;
                    assert_eq!(dad.local_index(&g), l);
                    assert_eq!(dad.global_index(&coords, &l), Some(g.clone()));
                    assert!(dad.is_owner(rank, &g));
                }
            }
            for row in &count {
                assert!(row.iter().all(|&c| c == 1), "grid {p}x{q}");
            }
        }
    }

    #[test]
    fn replicated_array_owned_everywhere() {
        let dad = DadBuilder::new("S", &[10])
            .distribute(&[DistKind::Collapsed])
            .grid(ProcGrid::new(&[4]))
            .build()
            .unwrap();
        assert!(dad.is_replicated());
        assert_eq!(dad.owner_ranks(&[3]), vec![0, 1, 2, 3]);
        for rank in 0..4 {
            assert!(dad.is_owner(rank, &[3]));
        }
    }

    #[test]
    fn shifted_alignment_changes_owner() {
        // ALIGN A(I) WITH T(I+4) over T(0..16) BLOCK on 4 procs (b=4):
        // A(0) sits on template cell 4 → proc 1.
        let a = Alignment {
            axes: vec![AxisAlign::Aligned {
                template_dim: 0,
                expr: AlignExpr::new(1, 4),
            }],
            replicated_template_dims: vec![],
        };
        let dad = DadBuilder::new("A", &[12])
            .template(Template::new("T", &[16]))
            .align(a)
            .distribute(&[DistKind::Block])
            .grid(ProcGrid::new(&[4]))
            .build()
            .unwrap();
        assert_eq!(dad.owner_coords(&[0]), vec![1]);
        assert_eq!(dad.owner_coords(&[11]), vec![3]);
        // local index is template-local: A(0) at template 4 → local 0 of p1
        assert_eq!(dad.local_index(&[0]), vec![0]);
    }

    #[test]
    fn replication_via_unaligned_template_dim() {
        // ALIGN A(I) WITH T(I, *): A replicated along grid axis of T dim 1.
        let a = Alignment {
            axes: vec![AxisAlign::Aligned {
                template_dim: 0,
                expr: AlignExpr::IDENTITY,
            }],
            replicated_template_dims: vec![1],
        };
        let dad = DadBuilder::new("A", &[8])
            .template(Template::new("T", &[8, 8]))
            .align(a)
            .distribute(&[DistKind::Block, DistKind::Block])
            .grid(ProcGrid::new(&[2, 2]))
            .build()
            .unwrap();
        assert_eq!(dad.replicated_axes, vec![1]);
        // element 0 lives on (0,0) and (0,1)
        let ranks = dad.owner_ranks(&[0]);
        assert_eq!(ranks, vec![0, 1]);
    }

    #[test]
    fn cyclic_dad_local_shape_is_max_count() {
        let dad = DadBuilder::new("A", &[10])
            .distribute(&[DistKind::Cyclic])
            .grid(ProcGrid::new(&[4]))
            .build()
            .unwrap();
        assert_eq!(dad.local_shape(), vec![3]); // procs own 3,3,2,2
    }

    #[test]
    fn builder_rejects_too_many_distributed_dims() {
        let r = DadBuilder::new("A", &[8, 8])
            .distribute(&[DistKind::Block, DistKind::Block])
            .grid(ProcGrid::new(&[4]))
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn builder_rejects_misaligned() {
        let a = Alignment {
            axes: vec![AxisAlign::Aligned {
                template_dim: 0,
                expr: AlignExpr::new(1, 10),
            }],
            replicated_template_dims: vec![],
        };
        let r = DadBuilder::new("A", &[8])
            .template(Template::new("T", &[8]))
            .align(a)
            .distribute(&[DistKind::Block])
            .grid(ProcGrid::new(&[2]))
            .build();
        assert!(r.is_err());
    }
}
