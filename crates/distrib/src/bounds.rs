//! The `set_BOUND` primitive (paper §4).
//!
//! `set_BOUND(llb, lub, lst, glb, gub, gst, DIST, dim)` takes a global
//! iteration range (lower bound, upper bound, stride) and statically
//! distributes it over the processors of one grid axis, returning each
//! processor's *local* loop bounds. Processors with no iterations receive
//! an empty range — this is how the compiler masks inactive processors.
//!
//! For BLOCK and CYCLIC the owned iterations always form an arithmetic
//! progression in local index space, so the result is a `(llb, lub, lst)`
//! triple exactly as in the paper. For `CYCLIC(K)` with a non-unit global
//! stride that is no longer true; [`set_bound`] then falls back to an
//! explicit index list (an extension the paper did not need).

use crate::dist::{DimDist, DistKind};
use crate::ext_gcd;

/// A local iteration range `llb..=lub step lst` (empty when `llb > lub`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalRange {
    /// Local lower bound.
    pub lb: i64,
    /// Local upper bound (inclusive, Fortran-style).
    pub ub: i64,
    /// Local stride (positive).
    pub st: i64,
}

impl LocalRange {
    /// The canonical empty range.
    pub const EMPTY: LocalRange = LocalRange {
        lb: 0,
        ub: -1,
        st: 1,
    };

    /// `true` when the range contains no iterations.
    pub fn is_empty(&self) -> bool {
        self.lb > self.ub
    }

    /// Number of iterations.
    pub fn len(&self) -> i64 {
        if self.is_empty() {
            0
        } else {
            (self.ub - self.lb) / self.st + 1
        }
    }

    /// Iterate the local indices.
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        let (lb, ub, st) = (self.lb, self.ub, self.st);
        (0..self.len())
            .map(move |k| lb + k * st)
            .filter(move |&l| l <= ub)
    }
}

/// Result of [`set_bound`]: an arithmetic local range when one exists,
/// otherwise an explicit list of local indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocalIter {
    /// Arithmetic progression of local indices.
    Range(LocalRange),
    /// Explicit local index list (only for `CYCLIC(K)` with stride > 1).
    List(Vec<i64>),
}

impl LocalIter {
    /// Number of local iterations.
    pub fn len(&self) -> i64 {
        match self {
            LocalIter::Range(r) => r.len(),
            LocalIter::List(v) => v.len() as i64,
        }
    }

    /// `true` when there are no local iterations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Collect the local indices.
    pub fn to_vec(&self) -> Vec<i64> {
        match self {
            LocalIter::Range(r) => r.iter().collect(),
            LocalIter::List(v) => v.clone(),
        }
    }
}

/// The paper's `set_BOUND`: local loop bounds on processor `p` for the
/// global iteration space `glb..=gub step gst` over distribution `dist`.
///
/// `gst` must be positive (the front end normalizes negative strides by
/// reversing the range). `glb`/`gub` are clamped to the dimension extent;
/// a backwards range yields the empty result.
pub fn set_bound(dist: &DimDist, p: i64, glb: i64, gub: i64, gst: i64) -> LocalIter {
    assert!(gst > 0, "set_bound requires a positive global stride");
    assert!((0..dist.nprocs).contains(&p), "processor out of range");
    let glb = glb.max(0);
    let gub = gub.min(dist.extent - 1);
    if glb > gub {
        return LocalIter::Range(LocalRange::EMPTY);
    }
    match dist.kind {
        DistKind::Collapsed => {
            // Every processor owns the whole dimension; the "local" range is
            // the global one. (Iterations of a collapsed dim are replicated
            // unless the caller partitions some other dim.)
            LocalIter::Range(LocalRange {
                lb: glb,
                ub: gub,
                st: gst,
            })
        }
        DistKind::Block => {
            let b = dist.block_size();
            let own_lo = p * b;
            let own_hi = own_lo + dist.local_count(p) - 1;
            if own_hi < own_lo {
                return LocalIter::Range(LocalRange::EMPTY);
            }
            // First iterate >= own_lo, last <= own_hi.
            let lo = own_lo.max(glb);
            let first_k = crate::ceil_div(lo - glb, gst);
            let first_g = glb + first_k * gst;
            if first_g > own_hi || first_g > gub {
                return LocalIter::Range(LocalRange::EMPTY);
            }
            let last_g = {
                let hi = own_hi.min(gub);
                glb + ((hi - glb) / gst) * gst
            };
            LocalIter::Range(LocalRange {
                lb: first_g - own_lo,
                ub: last_g - own_lo,
                st: gst,
            })
        }
        DistKind::Cyclic => {
            let np = dist.nprocs;
            // Solve glb + k*gst ≡ p (mod np) for the smallest k >= 0.
            let (g, x, _) = ext_gcd(gst, np);
            let rhs = (p - glb).rem_euclid(np);
            if rhs % g != 0 {
                return LocalIter::Range(LocalRange::EMPTY);
            }
            let np_g = np / g;
            // k ≡ x * (rhs / g)  (mod np/g)
            let k0 = ((x.rem_euclid(np_g)) * ((rhs / g).rem_euclid(np_g))).rem_euclid(np_g);
            let first_g = glb + k0 * gst;
            if first_g > gub {
                return LocalIter::Range(LocalRange::EMPTY);
            }
            // Successive owned iterations are np/g global steps of gst apart.
            let gstep = gst * np_g;
            let count = (gub - first_g) / gstep + 1;
            let last_g = first_g + (count - 1) * gstep;
            // Local index of global g on cyclic proc p is g / np; the local
            // stride is gstep / np = gst / g.
            debug_assert_eq!(gstep % np, 0);
            LocalIter::Range(LocalRange {
                lb: first_g / np,
                ub: last_g / np,
                st: gstep / np,
            })
        }
        DistKind::BlockCyclic(_) => {
            if gst == 1 {
                // Stride-1 ranges map to a contiguous local interval because
                // local order preserves global order.
                let mut lo = None;
                let mut hi = None;
                for gl in dist.owned_globals(p) {
                    if (glb..=gub).contains(&gl) {
                        let l = dist.local_of(gl);
                        if lo.is_none() {
                            lo = Some(l);
                        }
                        hi = Some(l);
                    }
                }
                match (lo, hi) {
                    (Some(lb), Some(ub)) => LocalIter::Range(LocalRange { lb, ub, st: 1 }),
                    _ => LocalIter::Range(LocalRange::EMPTY),
                }
            } else {
                let list: Vec<i64> = (0..)
                    .map(|k| glb + k * gst)
                    .take_while(|&gl| gl <= gub)
                    .filter(|&gl| dist.proc_of(gl) == p)
                    .map(|gl| dist.local_of(gl))
                    .collect();
                if list.is_empty() {
                    LocalIter::Range(LocalRange::EMPTY)
                } else {
                    LocalIter::List(list)
                }
            }
        }
    }
}

/// Reference (slow) implementation of `set_BOUND` used by tests: walk the
/// global range and keep the iterations `p` owns.
pub fn set_bound_reference(dist: &DimDist, p: i64, glb: i64, gub: i64, gst: i64) -> Vec<i64> {
    let glb = glb.max(0);
    let gub = gub.min(dist.extent - 1);
    let mut out = Vec::new();
    if matches!(dist.kind, DistKind::Collapsed) {
        let mut g = glb;
        while g <= gub {
            out.push(g);
            g += gst;
        }
        return out;
    }
    let mut g = glb;
    while g <= gub {
        if dist.proc_of(g) == p {
            out.push(dist.local_of(g));
        }
        g += gst;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_full_range() {
        let d = DimDist::new(DistKind::Block, 16, 4);
        for p in 0..4 {
            let li = set_bound(&d, p, 0, 15, 1);
            assert_eq!(li.to_vec(), vec![0, 1, 2, 3], "proc {p}");
        }
    }

    #[test]
    fn block_partial_range_masks_procs() {
        // paper §4: global bounds not covering the whole array mask
        // processors that own no iterations.
        let d = DimDist::new(DistKind::Block, 16, 4);
        let li = set_bound(&d, 0, 6, 11, 1);
        assert!(li.is_empty() || li.to_vec().iter().all(|&l| l >= 0)); // p0 owns 0..4
        assert!(set_bound(&d, 0, 6, 11, 1).is_empty());
        assert_eq!(set_bound(&d, 1, 6, 11, 1).to_vec(), vec![2, 3]); // g 6,7
        assert_eq!(set_bound(&d, 2, 6, 11, 1).to_vec(), vec![0, 1, 2, 3]); // g 8..12
        assert!(set_bound(&d, 3, 6, 11, 1).is_empty());
    }

    #[test]
    fn cyclic_with_stride() {
        let d = DimDist::new(DistKind::Cyclic, 20, 4);
        // globals 1,4,7,10,13,16,19; proc of g is g%4
        // p0 owns 4,16 → locals 1,4 stride 3
        let li = set_bound(&d, 0, 1, 19, 3);
        assert_eq!(li.to_vec(), vec![1, 4]);
        match li {
            LocalIter::Range(r) => assert_eq!(r.st, 3),
            _ => panic!("cyclic must give a range"),
        }
    }

    #[test]
    fn cyclic_stride_sharing_factor_with_p() {
        // gst=2, P=4: only even-residue procs get work from an even start.
        let d = DimDist::new(DistKind::Cyclic, 32, 4);
        assert!(!set_bound(&d, 0, 0, 31, 2).is_empty());
        assert!(set_bound(&d, 1, 0, 31, 2).is_empty());
        assert!(!set_bound(&d, 2, 0, 31, 2).is_empty());
        assert!(set_bound(&d, 3, 0, 31, 2).is_empty());
    }

    #[test]
    fn matches_reference_exhaustively() {
        for kind in [DistKind::Block, DistKind::Cyclic, DistKind::BlockCyclic(3)] {
            for n in [7i64, 16, 23] {
                for p in [1i64, 2, 3, 4] {
                    let d = DimDist::new(kind, n, p);
                    for glb in 0..n {
                        for gub in glb..n {
                            for gst in 1..=4 {
                                for proc in 0..p {
                                    let fast = set_bound(&d, proc, glb, gub, gst).to_vec();
                                    let slow = set_bound_reference(&d, proc, glb, gub, gst);
                                    assert_eq!(
                                        fast, slow,
                                        "{kind:?} n={n} p={p} proc={proc} range={glb}..={gub}:{gst}"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn out_of_extent_bounds_clamped() {
        let d = DimDist::new(DistKind::Block, 10, 2);
        let li = set_bound(&d, 1, 0, 99, 1);
        assert_eq!(li.to_vec(), vec![0, 1, 2, 3, 4]); // g 5..10
    }

    #[test]
    fn empty_global_range() {
        let d = DimDist::new(DistKind::Block, 10, 2);
        assert!(set_bound(&d, 0, 5, 4, 1).is_empty());
    }

    #[test]
    fn local_range_len_and_iter() {
        let r = LocalRange {
            lb: 2,
            ub: 10,
            st: 3,
        };
        assert_eq!(r.len(), 3);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![2, 5, 8]);
        assert!(LocalRange::EMPTY.is_empty());
        assert_eq!(LocalRange::EMPTY.len(), 0);
    }
}
