//! Stage 1 — alignment of arrays to templates (the `ALIGN` directive).
//!
//! `ALIGN A(I, J) WITH T(f1(I), f2(J))` maps each array element onto a
//! template cell through per-dimension affine functions `f(i) = a*i + b`.
//! The compiler computes `f` and `f⁻¹` (paper §3, stage 1); `f` carries
//! array indices onto the common template index domain, `f⁻¹` recovers the
//! original indices when needed.

use serde::{Deserialize, Serialize};

/// An affine one-dimensional alignment function `f(i) = stride * i + offset`.
///
/// `stride` may be negative (reversal alignment) but never zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlignExpr {
    /// Multiplier `a` in `f(i) = a*i + b`.
    pub stride: i64,
    /// Offset `b` in `f(i) = a*i + b`.
    pub offset: i64,
}

impl AlignExpr {
    /// The identity alignment `f(i) = i`.
    pub const IDENTITY: AlignExpr = AlignExpr {
        stride: 1,
        offset: 0,
    };

    /// Build `f(i) = stride*i + offset`.
    ///
    /// # Panics
    /// Panics when `stride == 0`: a zero stride collapses the whole array
    /// dimension onto one template cell, which Fortran D expresses with a
    /// *replicated/collapsed* alignment instead (see [`AxisAlign`]).
    pub fn new(stride: i64, offset: i64) -> Self {
        assert!(stride != 0, "alignment stride must be non-zero");
        AlignExpr { stride, offset }
    }

    /// Apply `f` to an array index, yielding a template index.
    #[inline]
    pub fn apply(&self, i: i64) -> i64 {
        self.stride * i + self.offset
    }

    /// Apply `f⁻¹` to a template index. Returns `None` when the template
    /// cell is not the image of any array index (i.e. `(t - b)` is not a
    /// multiple of `a`).
    #[inline]
    pub fn invert(&self, t: i64) -> Option<i64> {
        let num = t - self.offset;
        if num % self.stride == 0 {
            Some(num / self.stride)
        } else {
            None
        }
    }

    /// `true` for the identity alignment.
    pub fn is_identity(&self) -> bool {
        *self == Self::IDENTITY
    }
}

/// How one axis of an array relates to the template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AxisAlign {
    /// The array axis is aligned to template dimension `template_dim`
    /// through the affine function `expr`.
    Aligned {
        /// Index of the template dimension this axis maps to.
        template_dim: usize,
        /// The affine alignment function.
        expr: AlignExpr,
    },
    /// The array axis does not correspond to any template dimension; the
    /// whole axis is co-located wherever the remaining axes place it
    /// (written `A(I, *)` on the array side of an ALIGN in Fortran D).
    Collapsed,
}

/// The complete alignment of an array to a template.
///
/// In addition to per-axis mappings, a template dimension that no array
/// axis maps to *replicates* the array along that dimension (each processor
/// row/column along it holds a full copy). `replicated_template_dims` lists
/// those dimensions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Alignment {
    /// One entry per array dimension.
    pub axes: Vec<AxisAlign>,
    /// Template dimensions that replicate the array.
    pub replicated_template_dims: Vec<usize>,
}

impl Alignment {
    /// The identity alignment of a rank-`rank` array onto a rank-`rank`
    /// template: axis `d` ↦ template dim `d` with `f(i) = i`.
    pub fn identity(rank: usize) -> Self {
        Alignment {
            axes: (0..rank)
                .map(|d| AxisAlign::Aligned {
                    template_dim: d,
                    expr: AlignExpr::IDENTITY,
                })
                .collect(),
            replicated_template_dims: Vec::new(),
        }
    }

    /// Number of array dimensions described.
    pub fn rank(&self) -> usize {
        self.axes.len()
    }

    /// The template dimension array axis `axis` is aligned with, if any.
    pub fn template_dim_of(&self, axis: usize) -> Option<usize> {
        match self.axes[axis] {
            AxisAlign::Aligned { template_dim, .. } => Some(template_dim),
            AxisAlign::Collapsed => None,
        }
    }

    /// The array axis aligned with template dimension `tdim`, if any.
    pub fn axis_of_template_dim(&self, tdim: usize) -> Option<usize> {
        self.axes.iter().position(
            |a| matches!(a, AxisAlign::Aligned { template_dim, .. } if *template_dim == tdim),
        )
    }

    /// Map a full array index vector to the template cells it occupies on
    /// the aligned dimensions. Returns `(template_dim, template_index)`
    /// pairs, one per aligned axis.
    pub fn apply(&self, index: &[i64]) -> Vec<(usize, i64)> {
        assert_eq!(index.len(), self.rank());
        self.axes
            .iter()
            .zip(index)
            .filter_map(|(ax, &i)| match ax {
                AxisAlign::Aligned { template_dim, expr } => Some((*template_dim, expr.apply(i))),
                AxisAlign::Collapsed => None,
            })
            .collect()
    }

    /// Check structural validity against template and array shapes:
    /// every aligned axis must land inside the template for all of
    /// `0..extent` and no two axes may target the same template dimension.
    pub fn validate(&self, array_extents: &[i64], template_extents: &[i64]) -> Result<(), String> {
        if array_extents.len() != self.rank() {
            return Err(format!(
                "alignment rank {} does not match array rank {}",
                self.rank(),
                array_extents.len()
            ));
        }
        let mut seen = vec![false; template_extents.len()];
        for (axis, ax) in self.axes.iter().enumerate() {
            if let AxisAlign::Aligned { template_dim, expr } = ax {
                if *template_dim >= template_extents.len() {
                    return Err(format!(
                        "axis {axis} aligned to non-existent template dim {template_dim}"
                    ));
                }
                if seen[*template_dim] {
                    return Err(format!(
                        "two array axes aligned to template dim {template_dim}"
                    ));
                }
                seen[*template_dim] = true;
                let n = array_extents[axis];
                let lo = expr.apply(0);
                let hi = expr.apply(n - 1);
                let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
                let text = template_extents[*template_dim];
                if lo < 0 || hi >= text {
                    return Err(format!(
                        "axis {axis} maps [0,{}) to [{lo},{hi}] outside template dim {template_dim} extent {text}",
                        n
                    ));
                }
            }
        }
        for &r in &self.replicated_template_dims {
            if r >= template_extents.len() {
                return Err(format!("replication over non-existent template dim {r}"));
            }
            if seen[r] {
                return Err(format!(
                    "template dim {r} both aligned and marked replicated"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_roundtrip() {
        let f = AlignExpr::new(2, 1);
        for i in -10..10 {
            assert_eq!(f.invert(f.apply(i)), Some(i));
        }
        // 2i + 1 is always odd, so even template cells have no preimage.
        assert_eq!(f.invert(4), None);
    }

    #[test]
    fn negative_stride_reversal() {
        let f = AlignExpr::new(-1, 9); // f(i) = 9 - i maps 0..10 onto 9..=0
        assert_eq!(f.apply(0), 9);
        assert_eq!(f.apply(9), 0);
        assert_eq!(f.invert(0), Some(9));
    }

    #[test]
    fn identity_alignment_maps_straight_through() {
        let a = Alignment::identity(2);
        assert_eq!(a.apply(&[3, 5]), vec![(0, 3), (1, 5)]);
        assert_eq!(a.template_dim_of(0), Some(0));
        assert_eq!(a.axis_of_template_dim(1), Some(1));
    }

    #[test]
    fn collapsed_axis_is_skipped() {
        let a = Alignment {
            axes: vec![
                AxisAlign::Aligned {
                    template_dim: 0,
                    expr: AlignExpr::IDENTITY,
                },
                AxisAlign::Collapsed,
            ],
            replicated_template_dims: vec![],
        };
        assert_eq!(a.apply(&[3, 77]), vec![(0, 3)]);
        assert_eq!(a.template_dim_of(1), None);
    }

    #[test]
    fn validate_catches_out_of_bounds() {
        let a = Alignment {
            axes: vec![AxisAlign::Aligned {
                template_dim: 0,
                expr: AlignExpr::new(1, 5),
            }],
            replicated_template_dims: vec![],
        };
        // array 0..10 shifted by 5 needs template extent >= 15
        assert!(a.validate(&[10], &[14]).is_err());
        assert!(a.validate(&[10], &[15]).is_ok());
    }

    #[test]
    fn validate_catches_double_alignment() {
        let a = Alignment {
            axes: vec![
                AxisAlign::Aligned {
                    template_dim: 0,
                    expr: AlignExpr::IDENTITY,
                },
                AxisAlign::Aligned {
                    template_dim: 0,
                    expr: AlignExpr::IDENTITY,
                },
            ],
            replicated_template_dims: vec![],
        };
        assert!(a.validate(&[4, 4], &[4, 4]).is_err());
    }

    #[test]
    fn validate_catches_replicated_and_aligned() {
        let mut a = Alignment::identity(1);
        a.replicated_template_dims.push(0);
        assert!(a.validate(&[4], &[4]).is_err());
    }
}
