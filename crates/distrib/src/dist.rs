//! Stage 2 — distribution of template dimensions over the logical grid
//! (the `DISTRIBUTE` directive).
//!
//! `BLOCK` divides a template dimension into contiguous chunks; `CYCLIC`
//! deals elements round-robin; `CYCLIC(K)` (HPF extension, not in the
//! paper's Table set) deals blocks of `K` round-robin. The mapping
//! functions `μ` (global → (proc, local)) and `μ⁻¹` (proc, local → global)
//! of paper §3 stage 2 live here.

use serde::{Deserialize, Serialize};

/// The distribution attribute of one template dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DistKind {
    /// Contiguous chunks of size `ceil(N/P)`.
    Block,
    /// Round-robin single elements: global `g` lives on proc `g mod P`.
    Cyclic,
    /// Round-robin blocks of `K` elements (HPF `CYCLIC(K)`).
    BlockCyclic(i64),
    /// `*` — the dimension is not distributed; every processor along the
    /// corresponding grid axis (if any) holds the whole extent.
    Collapsed,
}

impl DistKind {
    /// `true` when this dimension is actually spread over processors.
    pub fn is_distributed(&self) -> bool {
        !matches!(self, DistKind::Collapsed)
    }
}

/// The concrete distribution of one template dimension over `nprocs`
/// processors of one logical-grid axis: the `μ` / `μ⁻¹` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DimDist {
    /// Distribution attribute.
    pub kind: DistKind,
    /// Global extent `N` of the dimension.
    pub extent: i64,
    /// Number of processors `P` along the grid axis this dimension maps to
    /// (1 for collapsed dimensions).
    pub nprocs: i64,
}

impl DimDist {
    /// Build a distribution; normalizes `CYCLIC(1)` to `CYCLIC` and any
    /// distribution over one processor behaves like `Collapsed` for
    /// ownership (but keeps its kind for descriptor fidelity).
    ///
    /// # Panics
    /// Panics on non-positive extent, non-positive processor count, or a
    /// non-positive block size in `CYCLIC(K)`.
    pub fn new(kind: DistKind, extent: i64, nprocs: i64) -> Self {
        assert!(extent > 0, "extent must be positive");
        assert!(nprocs > 0, "processor count must be positive");
        let kind = match kind {
            DistKind::BlockCyclic(k) => {
                assert!(k > 0, "CYCLIC(K) block size must be positive");
                if k == 1 {
                    DistKind::Cyclic
                } else {
                    DistKind::BlockCyclic(k)
                }
            }
            other => other,
        };
        DimDist {
            kind,
            extent,
            nprocs,
        }
    }

    /// Block size `b = ceil(N/P)` for BLOCK; `K` for CYCLIC(K); 1 for
    /// CYCLIC; the full extent for collapsed.
    pub fn block_size(&self) -> i64 {
        match self.kind {
            DistKind::Block => crate::ceil_div(self.extent, self.nprocs),
            DistKind::Cyclic => 1,
            DistKind::BlockCyclic(k) => k,
            DistKind::Collapsed => self.extent,
        }
    }

    /// `μ`: the grid coordinate owning global index `g`.
    #[inline]
    pub fn proc_of(&self, g: i64) -> i64 {
        debug_assert!((0..self.extent).contains(&g), "index {g} out of range");
        match self.kind {
            DistKind::Block => (g / self.block_size()).min(self.nprocs - 1),
            DistKind::Cyclic => g % self.nprocs,
            DistKind::BlockCyclic(k) => (g / k) % self.nprocs,
            DistKind::Collapsed => 0,
        }
    }

    /// `μ`: the local index of global `g` on its owning processor.
    #[inline]
    pub fn local_of(&self, g: i64) -> i64 {
        match self.kind {
            DistKind::Block => g - self.proc_of(g) * self.block_size(),
            DistKind::Cyclic => g / self.nprocs,
            DistKind::BlockCyclic(k) => (g / (k * self.nprocs)) * k + g % k,
            DistKind::Collapsed => g,
        }
    }

    /// `μ` as a pair: `(proc, local)`.
    #[inline]
    pub fn global_to_local(&self, g: i64) -> (i64, i64) {
        (self.proc_of(g), self.local_of(g))
    }

    /// `μ⁻¹`: the global index of local `l` on processor `p`. Returns
    /// `None` when `(p, l)` names no element (past the edge of the last
    /// block, or a processor that owns fewer cycles).
    pub fn global_of(&self, p: i64, l: i64) -> Option<i64> {
        if !(0..self.nprocs).contains(&p) || l < 0 {
            return None;
        }
        let g = match self.kind {
            DistKind::Block => p * self.block_size() + l,
            DistKind::Cyclic => l * self.nprocs + p,
            DistKind::BlockCyclic(k) => (l / k) * k * self.nprocs + p * k + l % k,
            DistKind::Collapsed => l,
        };
        if (0..self.extent).contains(&g) && self.local_of(g) == l && self.proc_of(g) == p {
            Some(g)
        } else {
            None
        }
    }

    /// Number of elements processor `p` owns.
    pub fn local_count(&self, p: i64) -> i64 {
        debug_assert!((0..self.nprocs).contains(&p));
        match self.kind {
            DistKind::Block => {
                let b = self.block_size();
                (self.extent - p * b).clamp(0, b)
            }
            DistKind::Cyclic => {
                let n = self.extent;
                if p < n % self.nprocs {
                    n / self.nprocs + 1
                } else if p < n {
                    n / self.nprocs
                } else {
                    0
                }
            }
            DistKind::BlockCyclic(k) => {
                let cycle = k * self.nprocs;
                let full_cycles = self.extent / cycle;
                let rem = self.extent % cycle;
                let extra = (rem - p * k).clamp(0, k);
                full_cycles * k + extra
            }
            DistKind::Collapsed => self.extent,
        }
    }

    /// Maximum local count over all processors — the local allocation size
    /// a compiler must reserve on every node for this dimension.
    pub fn max_local_count(&self) -> i64 {
        (0..self.nprocs).map(|p| self.local_count(p)).max().unwrap()
    }

    /// Iterate the global indices owned by processor `p`, in increasing
    /// global (= increasing local) order.
    pub fn owned_globals(&self, p: i64) -> impl Iterator<Item = i64> + '_ {
        let count = self.local_count(p);
        (0..count).map(move |l| self.global_of(p, l).expect("local < count must map"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds(extent: i64, p: i64) -> Vec<DimDist> {
        vec![
            DimDist::new(DistKind::Block, extent, p),
            DimDist::new(DistKind::Cyclic, extent, p),
            DimDist::new(DistKind::BlockCyclic(3), extent, p),
            DimDist::new(DistKind::Collapsed, extent, 1),
        ]
    }

    #[test]
    fn block_basic() {
        let d = DimDist::new(DistKind::Block, 10, 4); // b = 3: [0..3)[3..6)[6..9)[9..10)
        assert_eq!(d.block_size(), 3);
        assert_eq!(d.proc_of(0), 0);
        assert_eq!(d.proc_of(2), 0);
        assert_eq!(d.proc_of(3), 1);
        assert_eq!(d.proc_of(9), 3);
        assert_eq!(d.local_of(4), 1);
        assert_eq!(d.local_count(0), 3);
        assert_eq!(d.local_count(3), 1);
    }

    #[test]
    fn block_last_proc_may_be_empty() {
        // N=9, P=4 → b=3 → procs own 3,3,3,0
        let d = DimDist::new(DistKind::Block, 9, 4);
        assert_eq!(d.local_count(3), 0);
        assert_eq!(d.global_of(3, 0), None);
    }

    #[test]
    fn cyclic_basic() {
        let d = DimDist::new(DistKind::Cyclic, 10, 3);
        assert_eq!(d.proc_of(0), 0);
        assert_eq!(d.proc_of(4), 1);
        assert_eq!(d.local_of(4), 1);
        assert_eq!(d.local_count(0), 4); // 0,3,6,9
        assert_eq!(d.local_count(1), 3); // 1,4,7
        assert_eq!(d.local_count(2), 3); // 2,5,8
    }

    #[test]
    fn block_cyclic_basic() {
        let d = DimDist::new(DistKind::BlockCyclic(2), 12, 3);
        // blocks of 2 dealt round robin: p0: 0,1,6,7  p1: 2,3,8,9  p2: 4,5,10,11
        assert_eq!(d.proc_of(0), 0);
        assert_eq!(d.proc_of(2), 1);
        assert_eq!(d.proc_of(6), 0);
        assert_eq!(d.local_of(6), 2);
        assert_eq!(d.local_of(7), 3);
        assert_eq!(d.local_count(0), 4);
        assert_eq!(d.owned_globals(1).collect::<Vec<_>>(), vec![2, 3, 8, 9]);
    }

    #[test]
    fn cyclic_one_normalizes() {
        let d = DimDist::new(DistKind::BlockCyclic(1), 10, 3);
        assert_eq!(d.kind, DistKind::Cyclic);
    }

    #[test]
    fn roundtrip_every_element() {
        for n in [1, 2, 7, 10, 16, 33] {
            for p in [1, 2, 3, 4, 7] {
                for d in all_kinds(n, p) {
                    let mut seen = vec![false; n as usize];
                    for proc in 0..d.nprocs {
                        for g in d.owned_globals(proc) {
                            assert!(!seen[g as usize], "{d:?} double-owns {g}");
                            seen[g as usize] = true;
                            let (pp, ll) = d.global_to_local(g);
                            assert_eq!(pp, proc);
                            assert_eq!(d.global_of(pp, ll), Some(g));
                        }
                    }
                    assert!(seen.iter().all(|&s| s), "{d:?} misses elements");
                }
            }
        }
    }

    #[test]
    fn counts_sum_to_extent() {
        for n in [1, 5, 9, 10, 64, 100] {
            for p in [1, 2, 3, 8, 16] {
                for d in [
                    DimDist::new(DistKind::Block, n, p),
                    DimDist::new(DistKind::Cyclic, n, p),
                    DimDist::new(DistKind::BlockCyclic(4), n, p),
                ] {
                    let total: i64 = (0..p).map(|q| d.local_count(q)).sum();
                    assert_eq!(total, n, "{d:?}");
                    assert!(d.max_local_count() >= crate::ceil_div(n, p));
                }
            }
        }
    }

    #[test]
    fn more_procs_than_elements() {
        let d = DimDist::new(DistKind::Block, 2, 8); // b = 1
        assert_eq!(d.local_count(0), 1);
        assert_eq!(d.local_count(1), 1);
        for p in 2..8 {
            assert_eq!(d.local_count(p), 0, "proc {p}");
        }
        let d = DimDist::new(DistKind::Cyclic, 2, 8);
        assert_eq!(d.local_count(0), 1);
        assert_eq!(d.local_count(7), 0);
    }
}
