//! Templates — the paper's `DECOMPOSITION` directive.
//!
//! A template declares the name, dimensionality and size of a problem
//! domain. Arrays are aligned to templates (stage 1) and templates are
//! distributed over the logical processor grid (stage 2).

use serde::{Deserialize, Serialize};

/// An abstract index domain declared by `DECOMPOSITION T(N, M, ...)`
/// (Fortran D) or `TEMPLATE T(N, M, ...)` (HPF).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Template {
    /// Source-level name of the template.
    pub name: String,
    /// Extent of each template dimension (0-based domain `0..extent`).
    pub extents: Vec<i64>,
}

impl Template {
    /// Create a template with the given name and per-dimension extents.
    ///
    /// # Panics
    /// Panics if any extent is non-positive: a template declares a
    /// non-empty problem domain.
    pub fn new(name: impl Into<String>, extents: &[i64]) -> Self {
        assert!(
            extents.iter().all(|&e| e > 0),
            "template extents must be positive"
        );
        Template {
            name: name.into(),
            extents: extents.to_vec(),
        }
    }

    /// Number of dimensions of the template.
    pub fn rank(&self) -> usize {
        self.extents.len()
    }

    /// Extent of dimension `dim`.
    pub fn extent(&self, dim: usize) -> i64 {
        self.extents[dim]
    }

    /// Total number of template cells.
    pub fn size(&self) -> i64 {
        self.extents.iter().product()
    }

    /// `true` when `index` lies inside the template domain.
    pub fn contains(&self, index: &[i64]) -> bool {
        index.len() == self.rank()
            && index
                .iter()
                .zip(&self.extents)
                .all(|(&i, &e)| (0..e).contains(&i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_properties() {
        let t = Template::new("TEMPL", &[100, 200]);
        assert_eq!(t.rank(), 2);
        assert_eq!(t.extent(0), 100);
        assert_eq!(t.extent(1), 200);
        assert_eq!(t.size(), 20_000);
    }

    #[test]
    fn contains_checks_every_dim() {
        let t = Template::new("T", &[10, 10]);
        assert!(t.contains(&[0, 0]));
        assert!(t.contains(&[9, 9]));
        assert!(!t.contains(&[10, 0]));
        assert!(!t.contains(&[0, -1]));
        assert!(!t.contains(&[3])); // wrong rank
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_rejected() {
        Template::new("T", &[0]);
    }
}
