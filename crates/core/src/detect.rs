//! Communication detection — paper §5.2, Algorithm 1, Tables 1 and 2.
//!
//! For every RHS array reference of a FORALL, each subscript is paired
//! with the LHS subscript aligned to the same template dimension and the
//! pair is matched against Table 1 (structured patterns). Dimensions left
//! untagged fall to Table 2 (unstructured): invertible `f(i)` →
//! `precomp_read`/`postcomp_write`, vector-valued `V(i)` →
//! `gather`/`scatter`, unknown → `gather`/`scatter`. An undistributed
//! LHS tags distributed RHS arrays with `concatenation` (step 11).
//!
//! Structured tags are only emitted when both arrays are aligned to the
//! same template with unit alignment stride on the paired dimension —
//! non-unit alignments route through the (always-correct) unstructured
//! path, as DESIGN.md documents.

use std::collections::HashMap;

use f90d_frontend::ast::{BinOp, Expr, Subscript, UnOp};
use f90d_frontend::sema::{affine_of, expr_uses_var};

/// Classification of one subscript expression relative to the FORALL
/// index variables.
#[derive(Debug, Clone, PartialEq)]
pub enum SubPattern {
    /// `a*v + b` for exactly one index variable `v`.
    Affine {
        /// The variable.
        var: String,
        /// Stride.
        a: i64,
        /// Offset.
        b: i64,
    },
    /// `v + s` where `s` is a loop-invariant scalar expression (the
    /// paper's `(i, i±s)` rows).
    VarPlusScalar {
        /// The variable.
        var: String,
        /// The scalar shift expression (may be negative via `Sub`).
        shift: Expr,
    },
    /// No index variable at all: compile-time constant or scalar.
    ScalarInvariant(Expr),
    /// Contains an array reference subscripted by an index variable
    /// (vector-valued, `V(i)`).
    VectorValued,
    /// Anything else (e.g. `i + j`, `i*i`).
    Unknown,
}

/// Classify one subscript expression.
pub fn classify_subscript(e: &Expr, vars: &[String], params: &HashMap<String, i64>) -> SubPattern {
    // Vector-valued: any array-style Ref inside that uses an index var.
    if contains_indexed_ref(e, vars) {
        return SubPattern::VectorValued;
    }
    let used: Vec<&String> = vars.iter().filter(|v| expr_uses_var(e, v)).collect();
    match used.len() {
        0 => SubPattern::ScalarInvariant(e.clone()),
        1 => {
            let var = used[0].clone();
            if let Some((a, b)) = affine_of(e, &var, params) {
                return SubPattern::Affine { var, a, b };
            }
            // General linear split: e = a*var + rest with a loop-invariant
            // symbolic rest (the paper's `i ± s` rows).
            if let Some((1, rest)) = split_linear(e, &var, params) {
                return SubPattern::VarPlusScalar {
                    var,
                    shift: f90d_frontend::normalize::simplify(rest),
                };
            }
            SubPattern::Unknown
        }
        _ => SubPattern::Unknown,
    }
}

/// Split `e` as `coeff*var + rest` where `rest` does not mention `var`.
/// Returns `None` when `e` is not linear in `var` with a literal
/// coefficient.
pub fn split_linear(e: &Expr, var: &str, params: &HashMap<String, i64>) -> Option<(i64, Expr)> {
    if !expr_uses_var(e, var) {
        return Some((0, e.clone()));
    }
    match e {
        Expr::Var(n) if n == var => Some((1, Expr::Int(0))),
        Expr::Un(UnOp::Neg, x) => {
            let (c, r) = split_linear(x, var, params)?;
            Some((-c, Expr::Un(UnOp::Neg, Box::new(r))))
        }
        Expr::Bin(BinOp::Add, l, r) => {
            let (c1, r1) = split_linear(l, var, params)?;
            let (c2, r2) = split_linear(r, var, params)?;
            Some((c1 + c2, Expr::bin(BinOp::Add, r1, r2)))
        }
        Expr::Bin(BinOp::Sub, l, r) => {
            let (c1, r1) = split_linear(l, var, params)?;
            let (c2, r2) = split_linear(r, var, params)?;
            Some((c1 - c2, Expr::bin(BinOp::Sub, r1, r2)))
        }
        Expr::Bin(BinOp::Mul, l, r) => {
            // One side must be a literal constant for the coefficient to
            // stay a compile-time integer.
            let lc = f90d_frontend::sema::const_eval(l, params).ok();
            let rc = f90d_frontend::sema::const_eval(r, params).ok();
            if let Some(k) = lc {
                let (c, rest) = split_linear(r, var, params)?;
                return Some((k * c, Expr::bin(BinOp::Mul, Expr::Int(k), rest)));
            }
            if let Some(k) = rc {
                let (c, rest) = split_linear(l, var, params)?;
                return Some((k * c, Expr::bin(BinOp::Mul, rest, Expr::Int(k))));
            }
            None
        }
        _ => None,
    }
}

fn contains_indexed_ref(e: &Expr, vars: &[String]) -> bool {
    match e {
        Expr::Ref(_, subs) => subs.iter().any(|s| match s {
            Subscript::Index(ix) => {
                vars.iter().any(|v| expr_uses_var(ix, v)) || contains_indexed_ref(ix, vars)
            }
            _ => false,
        }),
        Expr::Bin(_, l, r) => contains_indexed_ref(l, vars) || contains_indexed_ref(r, vars),
        Expr::Un(_, x) => contains_indexed_ref(x, vars),
        _ => false,
    }
}

/// The structured/unstructured tag of one RHS dimension (Table 1 third
/// column / Table 2 third column).
#[derive(Debug, Clone, PartialEq)]
pub enum DimTag {
    /// `(i, i)` — no communication.
    NoComm,
    /// `(i, i±c)` — shift into the overlap area, compile-time `c`.
    OverlapShift(i64),
    /// `(i, i±s)` — shift into a temporary, runtime amount.
    TempShift(Expr),
    /// `(i, s)` — broadcast the slab at `s` along this dimension's axis.
    Multicast(Expr),
    /// `(d, s)` — single line to single line.
    Transfer {
        /// RHS fixed index.
        src: Expr,
        /// LHS fixed index (its owners receive).
        dst: Expr,
    },
    /// Fall through to Table 2 for the whole reference.
    Unstructured(UnstructKind),
}

/// Table 2 family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnstructKind {
    /// Invertible `f(i)` — local-only preprocessing.
    PrecompRead,
    /// `V(i)` or unknown — preprocessing needs communication.
    Gather,
}

/// Per-dimension alignment summary used by the pair matcher: unit-stride
/// alignment offset onto the shared template dimension, or `None` when
/// the alignment is not unit-stride / dims are not co-aligned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DimAlign {
    /// Template dimension both array dims map to.
    pub tdim: usize,
    /// Alignment offset (template = index + off), requires stride 1.
    pub off: i64,
    /// `true` when the template dimension is BLOCK-distributed (enables
    /// `overlap_shift`; CYCLIC shifts use the temporary form).
    pub block: bool,
}

/// Match one `(lhs, rhs)` subscript pair (paper Table 1). `la`/`ra` are
/// the unit-stride alignment summaries of the two dimensions onto the
/// same template dimension; pass `None` to force the unstructured path.
pub fn classify_pair(
    lhs: &SubPattern,
    rhs: &SubPattern,
    la: Option<DimAlign>,
    ra: Option<DimAlign>,
) -> DimTag {
    let (Some(la), Some(ra)) = (la, ra) else {
        return DimTag::Unstructured(unstructured_of(rhs));
    };
    if la.tdim != ra.tdim {
        return DimTag::Unstructured(unstructured_of(rhs));
    }
    match (lhs, rhs) {
        // rows 2,3,7: (i, i±c) including c = 0
        (
            SubPattern::Affine {
                var: lv,
                a: 1,
                b: lb,
            },
            SubPattern::Affine {
                var: rv,
                a: 1,
                b: rb,
            },
        ) if lv == rv => {
            // Template-space shift.
            let c = (rb + ra.off) - (lb + la.off);
            if c == 0 {
                DimTag::NoComm
            } else if la.off != ra.off {
                // Differently-offset alignments: the receiving line may
                // own no source elements at all, so the ghost/temporary
                // shift machinery does not apply — take the (always
                // correct) invertible unstructured path.
                DimTag::Unstructured(UnstructKind::PrecompRead)
            } else if ra.block {
                DimTag::OverlapShift(c)
            } else {
                DimTag::TempShift(Expr::Int(c))
            }
        }
        // rows 4,5: (i, i±s)
        (
            SubPattern::Affine {
                var: lv,
                a: 1,
                b: lb,
            },
            SubPattern::VarPlusScalar { var: rv, shift },
        ) if lv == rv && la.off == ra.off => DimTag::TempShift(fold_add(shift.clone(), -lb)),
        // row 1: (i, s)
        (SubPattern::Affine { a: 1, .. }, SubPattern::ScalarInvariant(s)) => {
            DimTag::Multicast(s.clone())
        }
        // row 6: (d, s)
        (SubPattern::ScalarInvariant(d), SubPattern::ScalarInvariant(s)) => DimTag::Transfer {
            src: s.clone(),
            dst: d.clone(),
        },
        // Everything else is unstructured (including stride ≠ 1 affines,
        // which are invertible → precomp_read).
        _ => DimTag::Unstructured(unstructured_of(rhs)),
    }
}

/// Table 2: the unstructured family of a subscript pattern.
pub fn unstructured_of(p: &SubPattern) -> UnstructKind {
    match p {
        SubPattern::Affine { .. }
        | SubPattern::ScalarInvariant(_)
        | SubPattern::VarPlusScalar { .. } => UnstructKind::PrecompRead,
        SubPattern::VectorValued | SubPattern::Unknown => UnstructKind::Gather,
    }
}

fn fold_add(e: Expr, c: i64) -> Expr {
    f90d_frontend::normalize::simplify(e.plus(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars() -> Vec<String> {
        vec!["I".into(), "J".into()]
    }

    fn params() -> HashMap<String, i64> {
        HashMap::from([("N".into(), 64)])
    }

    fn var(n: &str) -> Expr {
        Expr::Var(n.into())
    }

    fn cls(e: Expr) -> SubPattern {
        classify_subscript(&e, &vars(), &params())
    }

    fn al(block: bool) -> Option<DimAlign> {
        Some(DimAlign {
            tdim: 0,
            off: 0,
            block,
        })
    }

    // ---- Table 1 rows (EXP-T1) -----------------------------------------

    #[test]
    fn table1_row1_multicast() {
        // (i, s): FORALL(I) … = B(…, S)
        let lhs = cls(var("I"));
        let rhs = cls(var("S")); // scalar, undeclared var is loop-invariant
        assert_eq!(
            classify_pair(&lhs, &rhs, al(true), al(true)),
            DimTag::Multicast(var("S"))
        );
    }

    #[test]
    fn table1_rows2_3_overlap_shift() {
        // (i, i+c) / (i, i-c) on BLOCK
        for (c, expect) in [(2i64, 2i64), (-3, -3)] {
            let lhs = cls(var("I"));
            let rhs = cls(var("I").plus(c));
            assert_eq!(
                classify_pair(&lhs, &rhs, al(true), al(true)),
                DimTag::OverlapShift(expect),
                "c={c}"
            );
        }
    }

    #[test]
    fn table1_rows4_5_temporary_shift() {
        // (i, i+s) with runtime s
        let lhs = cls(var("I"));
        let rhs = cls(Expr::bin(BinOp::Add, var("I"), var("S")));
        assert_eq!(
            classify_pair(&lhs, &rhs, al(true), al(true)),
            DimTag::TempShift(var("S"))
        );
        let rhs2 = cls(Expr::bin(BinOp::Sub, var("I"), var("S")));
        match classify_pair(&lhs, &rhs2, al(true), al(true)) {
            DimTag::TempShift(Expr::Un(UnOp::Neg, inner)) => {
                assert_eq!(*inner, var("S"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn table1_row6_transfer() {
        // (d, s): A(I, 8) = B(I, 3) second dimension
        let lhs = cls(Expr::Int(7)); // 0-based 8
        let rhs = cls(Expr::Int(2)); // 0-based 3
        assert_eq!(
            classify_pair(&lhs, &rhs, al(true), al(true)),
            DimTag::Transfer {
                src: Expr::Int(2),
                dst: Expr::Int(7)
            }
        );
    }

    #[test]
    fn table1_row7_no_communication() {
        let lhs = cls(var("I"));
        let rhs = cls(var("I"));
        assert_eq!(
            classify_pair(&lhs, &rhs, al(true), al(true)),
            DimTag::NoComm
        );
    }

    #[test]
    fn cyclic_shift_uses_temporary() {
        // The paper presents Table 1 for BLOCK; cyclic analogues exist but
        // shifts land in temporaries.
        let lhs = cls(var("I"));
        let rhs = cls(var("I").plus(1));
        assert_eq!(
            classify_pair(&lhs, &rhs, al(false), al(false)),
            DimTag::TempShift(Expr::Int(1))
        );
    }

    #[test]
    fn alignment_offsets_route_unstructured() {
        // LHS aligned with offset 1, RHS identity: the receiving grid
        // line may own no RHS elements, so the pair is not a structured
        // shift — it routes through precomp_read.
        let lhs = cls(var("I"));
        let rhs = cls(var("I"));
        let la = Some(DimAlign {
            tdim: 0,
            off: 1,
            block: true,
        });
        let ra = Some(DimAlign {
            tdim: 0,
            off: 0,
            block: true,
        });
        assert_eq!(
            classify_pair(&lhs, &rhs, la, ra),
            DimTag::Unstructured(UnstructKind::PrecompRead)
        );
        // Co-aligned offsets keep the structured shift.
        let both = Some(DimAlign {
            tdim: 0,
            off: 1,
            block: true,
        });
        let rhs2 = cls(var("I").plus(1));
        assert_eq!(
            classify_pair(&lhs, &rhs2, both, both),
            DimTag::OverlapShift(1)
        );
    }

    #[test]
    fn different_template_dims_fall_through() {
        let lhs = cls(var("I"));
        let rhs = cls(var("I"));
        let la = Some(DimAlign {
            tdim: 0,
            off: 0,
            block: true,
        });
        let ra = Some(DimAlign {
            tdim: 1,
            off: 0,
            block: true,
        });
        assert_eq!(
            classify_pair(&lhs, &rhs, la, ra),
            DimTag::Unstructured(UnstructKind::PrecompRead)
        );
    }

    // ---- Table 2 rows (EXP-T2) -----------------------------------------

    #[test]
    fn table2_row1_invertible() {
        // f(i) = 2i + 1 — invertible → precomp_read / postcomp_write.
        let lhs = cls(var("I"));
        let rhs = cls(Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, Expr::Int(2), var("I")),
            Expr::Int(1),
        ));
        assert_eq!(
            rhs,
            SubPattern::Affine {
                var: "I".into(),
                a: 2,
                b: 1
            }
        );
        assert_eq!(
            classify_pair(&lhs, &rhs, al(true), al(true)),
            DimTag::Unstructured(UnstructKind::PrecompRead)
        );
    }

    #[test]
    fn table2_row2_vector_valued() {
        // V(i) → gather / scatter.
        let rhs = cls(Expr::Ref("V".into(), vec![Subscript::Index(var("I"))]));
        assert_eq!(rhs, SubPattern::VectorValued);
        assert_eq!(unstructured_of(&rhs), UnstructKind::Gather);
    }

    #[test]
    fn table2_row3_unknown() {
        // i + j involves two FORALL indices → unknown → gather / scatter.
        let rhs = cls(Expr::bin(BinOp::Add, var("I"), var("J")));
        assert_eq!(rhs, SubPattern::Unknown);
        assert_eq!(unstructured_of(&rhs), UnstructKind::Gather);
    }

    #[test]
    fn non_canonical_lhs_detected_as_affine() {
        // The FFT example: x(i + 2*incrm*j + incrm) uses two vars.
        let e = Expr::bin(
            BinOp::Add,
            var("I"),
            Expr::bin(BinOp::Mul, var("J"), Expr::Int(8)),
        );
        assert_eq!(cls(e), SubPattern::Unknown);
        // whereas a single-var non-canonical stays affine:
        assert_eq!(
            cls(Expr::bin(BinOp::Mul, Expr::Int(2), var("I"))),
            SubPattern::Affine {
                var: "I".into(),
                a: 2,
                b: 0
            }
        );
    }

    #[test]
    fn scalar_invariant_with_params() {
        assert_eq!(
            cls(Expr::bin(BinOp::Sub, var("N"), Expr::Int(1))),
            SubPattern::ScalarInvariant(Expr::bin(BinOp::Sub, var("N"), Expr::Int(1)))
        );
    }
}
