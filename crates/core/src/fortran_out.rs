//! Pretty-printer: render a compiled [`SProgram`] as the "Fortran 77 +
//! Message Passing" node listing the paper's compiler emits (§5.3
//! examples). This is a faithful *display* of the IR — the executable
//! form is the IR itself — and is what the golden tests check against
//! the paper's generated-code shapes.

use std::fmt::Write;

use crate::ir::*;

/// Render the whole node program.
pub fn to_fortran77(prog: &SProgram) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "C     Fortran 90D/HPF compiler output (SPMD node program)"
    );
    let _ = writeln!(
        out,
        "C     logical grid: ({})   [0-based internal indices]",
        prog.grid_shape
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    let _ = writeln!(out, "      PROGRAM NODE");
    for a in &prog.arrays {
        let shape = a.dad.local_shape();
        let dims = shape
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let kind = if a.is_temp { "C     temp " } else { "C     " };
        let _ = writeln!(
            out,
            "{kind}{}({dims}) local segment{}",
            a.name,
            if a.ghost > 0 {
                format!(" + overlap({})", a.ghost)
            } else {
                String::new()
            }
        );
    }
    let mut p = Printer { out, indent: 6 };
    p.stmts(&prog.stmts, prog);
    let mut out = p.out;
    let _ = writeln!(out, "      END");
    out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn line(&mut self, s: &str) {
        let _ = writeln!(self.out, "{:width$}{s}", "", width = self.indent);
    }

    fn stmts(&mut self, stmts: &[SStmt], prog: &SProgram) {
        for s in stmts {
            self.stmt(s, prog);
        }
    }

    fn stmt(&mut self, s: &SStmt, prog: &SProgram) {
        match s {
            SStmt::Comm(c) => self.comm(c, prog),
            SStmt::Forall(f) => self.forall(f, prog),
            SStmt::ScalarAssign { name, rhs } => {
                let line = format!("{name} = {}", expr(rhs, prog));
                self.line(&line);
            }
            SStmt::OwnerAssign { arr, subs, rhs } => {
                let line = format!(
                    "if (my_proc_owns({})) {}({}) = {}",
                    prog.arrays[*arr].name,
                    prog.arrays[*arr].name,
                    exprs(subs, prog),
                    expr(rhs, prog)
                );
                self.line(&line);
            }
            SStmt::DoSeq {
                var,
                lb,
                ub,
                st,
                body,
            } => {
                let line = format!(
                    "DO {var} = {}, {}, {}",
                    expr(lb, prog),
                    expr(ub, prog),
                    expr(st, prog)
                );
                self.line(&line);
                self.indent += 2;
                self.stmts(body, prog);
                self.indent -= 2;
                self.line("END DO");
            }
            SStmt::If { cond, then, else_ } => {
                let line = format!("IF ({}) THEN", expr(cond, prog));
                self.line(&line);
                self.indent += 2;
                self.stmts(then, prog);
                self.indent -= 2;
                if !else_.is_empty() {
                    self.line("ELSE");
                    self.indent += 2;
                    self.stmts(else_, prog);
                    self.indent -= 2;
                }
                self.line("END IF");
            }
            SStmt::Print { items } => {
                let rendered: Vec<String> = items
                    .iter()
                    .map(|it| match it {
                        PrintItem::Text(t) => format!("'{t}'"),
                        PrintItem::Val(v) => expr(v, prog),
                    })
                    .collect();
                let line = format!("PRINT *, {}", rendered.join(","));
                self.line(&line);
            }
            SStmt::Runtime(call) => {
                let line = match call {
                    RtCall::CShift {
                        src,
                        dst,
                        dim,
                        shift,
                    } => format!(
                        "call cshift({}, {}, dim={}, shift={})",
                        prog.arrays[*dst].name,
                        prog.arrays[*src].name,
                        dim + 1,
                        expr(shift, prog)
                    ),
                    RtCall::EoShift {
                        src,
                        dst,
                        dim,
                        shift,
                        boundary,
                    } => format!(
                        "call eoshift({}, {}, dim={}, shift={}, boundary={})",
                        prog.arrays[*dst].name,
                        prog.arrays[*src].name,
                        dim + 1,
                        expr(shift, prog),
                        expr(boundary, prog)
                    ),
                    RtCall::Transpose { src, dst } => format!(
                        "call transpose({}, {})",
                        prog.arrays[*dst].name, prog.arrays[*src].name
                    ),
                    RtCall::Matmul { a, b, c } => format!(
                        "call matmul({}, {}, {})",
                        prog.arrays[*c].name, prog.arrays[*a].name, prog.arrays[*b].name
                    ),
                    RtCall::Redistribute { arr, .. } => {
                        format!("call redistribute({})", prog.arrays[*arr].name)
                    }
                    RtCall::RemapCopy { src, dst } => format!(
                        "call redistribute_copy({}, {})",
                        prog.arrays[*src].name, prog.arrays[*dst].name
                    ),
                };
                self.line(&line);
            }
        }
    }

    fn comm(&mut self, c: &CommStmt, prog: &SProgram) {
        let line = match c {
            CommStmt::Multicast { src, tmp, dim, src_g } => {
                let n = &prog.arrays[*src].name;
                format!(
                    "call set_DAD({n}_DAD, ...)\n{:width$}call multicast({n}, {n}_DAD, {}, source_proc=global_to_proc({}), dim={})",
                    "",
                    prog.arrays[*tmp].name,
                    expr(src_g, prog),
                    dim + 1,
                    width = self.indent
                )
            }
            CommStmt::Transfer { src, tmp, src_g, dst_g, .. } => {
                let n = &prog.arrays[*src].name;
                format!(
                    "call set_DAD({n}_DAD, ...)\n{:width$}call transfer({n}, {n}_DAD, {}, source=global_to_proc({}), dest=global_to_proc({}))",
                    "",
                    prog.arrays[*tmp].name,
                    expr(src_g, prog),
                    expr(dst_g, prog),
                    width = self.indent
                )
            }
            CommStmt::OverlapShift { arr, dim, c } => format!(
                "call overlap_shift({}, dim={}, width={c})",
                prog.arrays[*arr].name,
                dim + 1
            ),
            CommStmt::TempShift { src, tmp, dim, amount } => format!(
                "call temporary_shift({}, {}, dim={}, shift={})",
                prog.arrays[*src].name,
                prog.arrays[*tmp].name,
                dim + 1,
                expr(amount, prog)
            ),
            CommStmt::MulticastShift { src, tmp, mdim, src_g, sdim, amount } => format!(
                "call multicast_shift({}, {}_DAD, {}, source=global_to_proc({}), shift={}, multicast_dim={}, shift_dim={})",
                prog.arrays[*src].name,
                prog.arrays[*src].name,
                prog.arrays[*tmp].name,
                expr(src_g, prog),
                expr(amount, prog),
                mdim + 1,
                sdim + 1
            ),
            CommStmt::Concat { src, tmp } => format!(
                "call concatenation({}, {})",
                prog.arrays[*src].name, prog.arrays[*tmp].name
            ),
            CommStmt::BroadcastElem { arr, subs, target } => format!(
                "call broadcast_element({}({}), {target})",
                prog.arrays[*arr].name,
                exprs(subs, prog)
            ),
            CommStmt::ReduceScalar { kind, arr, arr2, target } => {
                let f = match kind {
                    ReduceKind::Sum => "sum_reduce",
                    ReduceKind::Product => "product_reduce",
                    ReduceKind::MaxVal => "maxval_reduce",
                    ReduceKind::MinVal => "minval_reduce",
                    ReduceKind::Count => "count_reduce",
                    ReduceKind::All => "all_reduce",
                    ReduceKind::Any => "any_reduce",
                    ReduceKind::DotProduct => "dotproduct_reduce",
                };
                match arr2 {
                    Some(b) => format!(
                        "call {f}({}, {}, {target})",
                        prog.arrays[*arr].name, prog.arrays[*b].name
                    ),
                    None => format!("call {f}({}, {target})", prog.arrays[*arr].name),
                }
            }
        };
        self.line(&line);
    }

    fn forall(&mut self, f: &ForallNode, prog: &SProgram) {
        for c in &f.pre {
            self.comm(c, prog);
        }
        for g in &f.gathers {
            let sched = if g.local_only {
                "schedule1"
            } else {
                "schedule2"
            };
            let line = format!("isch = {sched}(receive_list, send_list, local_list, count)");
            self.line(&line);
            let prim = if g.local_only {
                "precomp_read"
            } else {
                "gather"
            };
            let line = format!(
                "call {prim}(isch, {}, {})",
                prog.arrays[g.tmp].name, prog.arrays[g.src].name
            );
            self.line(&line);
        }
        for (k, spec) in f.vars.iter().enumerate() {
            let bound = match &spec.part {
                Partition::OwnerDim { .. } => format!(
                    "call set_BOUND(lb{k},ub{k},st{k},{},{},{})",
                    expr(&spec.lb, prog),
                    expr(&spec.ub, prog),
                    expr(&spec.st, prog)
                ),
                Partition::BlockIter => format!(
                    "call set_BOUND_block_iter(lb{k},ub{k},st{k},{},{},{})",
                    expr(&spec.lb, prog),
                    expr(&spec.ub, prog),
                    expr(&spec.st, prog)
                ),
                Partition::Replicate => format!(
                    "lb{k} = {}; ub{k} = {}; st{k} = {}",
                    expr(&spec.lb, prog),
                    expr(&spec.ub, prog),
                    expr(&spec.st, prog)
                ),
            };
            self.line(&bound);
            let line = format!("DO {} = lb{k}, ub{k}, st{k}", spec.var);
            self.line(&line);
            self.indent += 2;
        }
        if let Some(mask) = &f.mask {
            let line = format!("IF ({}) THEN", expr(mask, prog));
            self.line(&line);
            self.indent += 2;
        }
        for b in &f.body {
            let target = match b.write {
                WritePlan::Owned => {
                    format!("{}({})", prog.arrays[b.arr].name, exprs(&b.subs, prog))
                }
                WritePlan::ScatterSeq { .. } => "buf(count); count = count+1".to_string(),
            };
            let line = format!("{target} = {}", expr(&b.rhs, prog));
            self.line(&line);
        }
        if f.mask.is_some() {
            self.indent -= 2;
            self.line("END IF");
        }
        for _ in &f.vars {
            self.indent -= 2;
            self.line("END DO");
        }
        for b in &f.body {
            if let WritePlan::ScatterSeq { invertible } = b.write {
                let (sched, prim) = if invertible {
                    ("schedule1", "postcomp_write")
                } else {
                    ("schedule3", "scatter")
                };
                let line = format!("isch = {sched}(proc_to, local_to, count)");
                self.line(&line);
                let line = format!("call {prim}(isch, {}, buf)", prog.arrays[b.arr].name);
                self.line(&line);
            }
        }
    }
}

fn exprs(es: &[SExpr], prog: &SProgram) -> String {
    es.iter()
        .map(|e| expr(e, prog))
        .collect::<Vec<_>>()
        .join(",")
}

fn expr(e: &SExpr, prog: &SProgram) -> String {
    use f90d_frontend::ast::BinOp::*;
    match e {
        SExpr::Const(v) => v.to_string(),
        SExpr::Scalar(n) => n.clone(),
        SExpr::LoopVar(n) => n.clone(),
        SExpr::Bin(op, l, r) => {
            let o = match op {
                Add => "+",
                Sub => "-",
                Mul => "*",
                Div => "/",
                Pow => "**",
                Eq => ".EQ.",
                Ne => ".NE.",
                Lt => ".LT.",
                Le => ".LE.",
                Gt => ".GT.",
                Ge => ".GE.",
                And => ".AND.",
                Or => ".OR.",
            };
            format!("({}{o}{})", expr(l, prog), expr(r, prog))
        }
        SExpr::Un(op, x) => match op {
            f90d_frontend::ast::UnOp::Neg => format!("(-{})", expr(x, prog)),
            f90d_frontend::ast::UnOp::Not => format!(".NOT.{}", expr(x, prog)),
        },
        SExpr::Elemental(n, args) => format!("{n}({})", exprs(args, prog)),
        SExpr::Read { arr, plan, subs } => {
            let name = &prog.arrays[*arr].name;
            match plan {
                ReadPlan::Owned | ReadPlan::Replicated => {
                    format!("{name}(global_to_local({}))", exprs(subs, prog))
                }
                ReadPlan::SlabTmp { fixed_dim, .. } => {
                    let rest: Vec<String> = subs
                        .iter()
                        .enumerate()
                        .filter(|&(d, _)| d != *fixed_dim)
                        .map(|(_, s)| expr(s, prog))
                        .collect();
                    format!("{name}({})", rest.join(","))
                }
                ReadPlan::SameTmp { .. } => format!("{name}({})", exprs(subs, prog)),
                ReadPlan::Seq { .. } => format!("{name}(count); count = count+1"),
            }
        }
    }
}
