//! Lowering the normalized AST to the SPMD IR: data partitioning
//! (paper §3), computation partitioning (§4), communication detection and
//! insertion (§5), subroutine inlining with boundary redistribution (§6).

use std::collections::HashMap;

use f90d_distrib::{
    AlignExpr, Alignment, AxisAlign, Dad, DadBuilder, DistKind, ProcGrid, Template,
};
use f90d_frontend::ast::{self, BinOp, Expr, LhsRef, Stmt, Subscript, Ty};
use f90d_frontend::sema::{AnalyzedProgram, ArrayMapping, AxisAlignSpec, DistKindSpec, UnitInfo};
use f90d_machine::{ElemType, Value};

use crate::detect::{
    classify_pair, classify_subscript, unstructured_of, DimAlign, DimTag, SubPattern, UnstructKind,
};
use crate::ir::*;
use crate::options::CompileOptions;

/// Compilation error.
#[derive(Debug, Clone)]
pub struct CodegenError(pub String);

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for CodegenError {}

type CResult<T> = Result<T, CodegenError>;

fn cerr<T>(msg: impl Into<String>) -> CResult<T> {
    Err(CodegenError(msg.into()))
}

/// Validate a const-evaluated `CYCLIC(K)` block size. `DimDist::new`
/// asserts `K > 0`, but by the time a descriptor is built (possibly at
/// run time, for `REDISTRIBUTE`) the surface syntax is gone — so both
/// codegen sites that accept a `CYCLIC(K)` spec (the `DISTRIBUTE`
/// directive in `build_dad` and the `REDISTRIBUTE` statement) must turn
/// a non-positive `K` into a [`CodegenError`] here instead of panicking
/// deep inside `f90d_distrib`.
fn cyclic_block_kind(array: &str, k: i64) -> CResult<DistKind> {
    if k <= 0 {
        return cerr(format!("{array}: CYCLIC({k}) block size must be positive"));
    }
    Ok(DistKind::BlockCyclic(k))
}

fn elem_type(ty: Ty) -> ElemType {
    match ty {
        Ty::Integer => ElemType::Int,
        Ty::Real => ElemType::Real,
        Ty::Logical => ElemType::Bool,
        Ty::Complex => ElemType::Complex,
    }
}

/// Lower an analyzed+normalized program.
pub fn lower(prog: &AnalyzedProgram, opts: &CompileOptions) -> CResult<SProgram> {
    let main_idx = prog
        .program
        .units
        .iter()
        .position(|u| !u.is_subroutine)
        .ok_or_else(|| CodegenError("no main program".into()))?;
    let main_info = &prog.units[main_idx];
    let grid_shape = opts
        .grid_shape
        .clone()
        .or_else(|| {
            if main_info.grid_shape.is_empty() {
                None
            } else {
                Some(main_info.grid_shape.clone())
            }
        })
        .unwrap_or_else(|| vec![1]);
    let grid = ProcGrid::new(&grid_shape);

    let mut cg = Codegen {
        prog,
        opts,
        grid,
        arrays: Vec::new(),
        scalars: Vec::new(),
        tmp_counter: 0,
        call_depth: 0,
    };
    // Declare main-unit arrays and scalars.
    let name_map = cg.declare_unit(main_info, "")?;
    let stmts = cg.lower_stmts(&prog.program.units[main_idx].body, main_info, &name_map, "")?;
    // Overlap areas: size every array's ghost width by the widest
    // compile-time shift the detector emitted for it (Gerndt-style
    // overlap analysis over the generated communication).
    assign_ghosts(&stmts, &mut cg.arrays);
    Ok(SProgram {
        grid_shape,
        arrays: cg.arrays,
        scalars: cg.scalars,
        stmts,
    })
}

struct Codegen<'a> {
    prog: &'a AnalyzedProgram,
    opts: &'a CompileOptions,
    grid: ProcGrid,
    arrays: Vec<ArrayDecl>,
    scalars: Vec<(String, ElemType)>,
    tmp_counter: usize,
    call_depth: usize,
}

/// Name-resolution context: source name → array id, plus a prefix for
/// scalars of inlined subroutines.
type NameMap = HashMap<String, ArrId>;

impl<'a> Codegen<'a> {
    // ---- declarations ----------------------------------------------------

    fn declare_unit(&mut self, info: &UnitInfo, prefix: &str) -> CResult<NameMap> {
        let mut map = NameMap::new();
        let mut names: Vec<&String> = info.arrays.keys().collect();
        names.sort(); // deterministic ids
        for name in names {
            let arr = &info.arrays[name];
            let dad = self.build_dad(
                &format!("{prefix}{name}"),
                &arr.extents,
                info.mappings.get(name),
            )?;
            let id = self.arrays.len();
            self.arrays.push(ArrayDecl {
                name: format!("{prefix}{name}"),
                ty: elem_type(arr.ty),
                dad,
                ghost: 0,
                is_temp: false,
            });
            map.insert(name.clone(), id);
        }
        let mut snames: Vec<&String> = info.scalars.keys().collect();
        snames.sort();
        for s in snames {
            self.scalars
                .push((format!("{prefix}{s}"), elem_type(info.scalars[s])));
        }
        Ok(map)
    }

    fn build_dad(
        &self,
        name: &str,
        extents: &[i64],
        mapping: Option<&ArrayMapping>,
    ) -> CResult<Dad> {
        let builder = match mapping {
            None => {
                // No directive: replicated (every node holds a copy).
                DadBuilder::new(name, extents)
                    .distribute(&vec![DistKind::Collapsed; extents.len()])
                    .grid(self.grid.clone())
            }
            Some(m) => {
                let template = Template::new(m.template.clone(), &m.template_extents);
                let axes: Vec<AxisAlign> = m
                    .axes
                    .iter()
                    .map(|a| match a {
                        AxisAlignSpec::Aligned {
                            tdim,
                            stride,
                            offset,
                        } => AxisAlign::Aligned {
                            template_dim: *tdim,
                            expr: AlignExpr::new(*stride, *offset),
                        },
                        AxisAlignSpec::Collapsed => AxisAlign::Collapsed,
                    })
                    .collect();
                let align = Alignment {
                    axes,
                    replicated_template_dims: m.replicated_tdims.clone(),
                };
                let kinds: Vec<DistKind> = m
                    .dist_kinds
                    .iter()
                    .map(|k| match k {
                        DistKindSpec::Block => Ok(DistKind::Block),
                        DistKindSpec::Cyclic => Ok(DistKind::Cyclic),
                        DistKindSpec::BlockCyclic(k) => cyclic_block_kind(name, *k),
                        DistKindSpec::Star => Ok(DistKind::Collapsed),
                    })
                    .collect::<CResult<_>>()?;
                DadBuilder::new(name, extents)
                    .template(template)
                    .align(align)
                    .distribute(&kinds)
                    .grid(self.grid.clone())
            }
        };
        builder.build().map_err(CodegenError)
    }

    fn fresh_tmp(&mut self, base: &str, ty: ElemType, dad: Dad) -> ArrId {
        self.tmp_counter += 1;
        let id = self.arrays.len();
        self.arrays.push(ArrayDecl {
            name: format!("__TMP{}_{base}", self.tmp_counter),
            ty,
            dad,
            ghost: 0,
            is_temp: true,
        });
        id
    }

    /// Slab temporary for fixed dimension `dim` of array `src`: the
    /// source DAD with that dimension removed and its grid axis marked
    /// replicated.
    fn slab_dad(&self, src: ArrId, dim: usize) -> Dad {
        let d = &self.arrays[src].dad;
        let mut dims = d.dims.clone();
        let removed = dims.remove(dim);
        let mut shape = d.shape.clone();
        shape.remove(dim);
        if shape.is_empty() {
            shape.push(1);
            dims.push(f90d_distrib::ArrayDimMap {
                extent: 1,
                align: AlignExpr::IDENTITY,
                dist: f90d_distrib::DimDist::new(DistKind::Collapsed, 1, 1),
                grid_axis: None,
            });
        }
        let mut replicated = d.replicated_axes.clone();
        if let Some(ax) = removed.grid_axis {
            replicated.push(ax);
            replicated.sort_unstable();
            replicated.dedup();
        }
        Dad {
            name: String::new(),
            shape,
            dims,
            replicated_axes: replicated,
            grid: d.grid.clone(),
        }
    }

    /// Replicated full-shape DAD (concatenation target).
    fn replicated_dad(&self, src: ArrId) -> Dad {
        let d = &self.arrays[src].dad;
        DadBuilder::new("", &d.shape)
            .distribute(&vec![DistKind::Collapsed; d.shape.len()])
            .grid(self.grid.clone())
            .build()
            .expect("replicated dad")
    }

    // ---- statement lowering ------------------------------------------------

    fn lower_stmts(
        &mut self,
        stmts: &[Stmt],
        info: &UnitInfo,
        names: &NameMap,
        prefix: &str,
    ) -> CResult<Vec<SStmt>> {
        let mut out = Vec::new();
        for s in stmts {
            self.lower_stmt(s, info, names, prefix, &mut out)?;
        }
        Ok(out)
    }

    fn lower_stmt(
        &mut self,
        s: &Stmt,
        info: &UnitInfo,
        names: &NameMap,
        prefix: &str,
        out: &mut Vec<SStmt>,
    ) -> CResult<()> {
        match s {
            Stmt::Assign { lhs, rhs } => self.lower_assign(lhs, rhs, info, names, prefix, out),
            Stmt::Forall {
                indices,
                mask,
                body,
            } => {
                // A FORALL construct runs each assignment to completion
                // before the next: split into one node per assignment.
                for b in body {
                    let Stmt::Assign { lhs, rhs } = b else {
                        return cerr("FORALL bodies must be assignments");
                    };
                    let node =
                        self.lower_forall(indices, mask.as_ref(), lhs, rhs, info, names, prefix)?;
                    out.push(SStmt::Forall(node));
                }
                Ok(())
            }
            Stmt::Do {
                var,
                lb,
                ub,
                st,
                body,
            } => {
                let (mut pre, lb) = self.scalar_expr(lb, info, names, prefix)?;
                let (pre2, ub) = self.scalar_expr(ub, info, names, prefix)?;
                let (pre3, st) = self.scalar_expr(st, info, names, prefix)?;
                pre.extend(pre2);
                pre.extend(pre3);
                out.extend(pre);
                let body = self.lower_stmts(body, info, names, prefix)?;
                out.push(SStmt::DoSeq {
                    var: format!("{prefix}{var}"),
                    lb,
                    ub,
                    st,
                    body,
                });
                Ok(())
            }
            Stmt::If { cond, then, else_ } => {
                let (pre, cond) = self.scalar_expr(cond, info, names, prefix)?;
                out.extend(pre);
                let then = self.lower_stmts(then, info, names, prefix)?;
                let else_ = self.lower_stmts(else_, info, names, prefix)?;
                out.push(SStmt::If { cond, then, else_ });
                Ok(())
            }
            Stmt::Print { items } => {
                let mut lowered = Vec::new();
                for e in items {
                    if let Expr::Str(text) = e {
                        lowered.push(PrintItem::Text(text.clone()));
                        continue;
                    }
                    let (pre, se) = self.scalar_expr(e, info, names, prefix)?;
                    out.extend(pre);
                    lowered.push(PrintItem::Val(se));
                }
                out.push(SStmt::Print { items: lowered });
                Ok(())
            }
            Stmt::Call { name, args } => self.lower_call(name, args, info, names, prefix, out),
            Stmt::Redistribute { array, dist } => {
                let arr = *names
                    .get(array)
                    .ok_or_else(|| CodegenError(format!("REDISTRIBUTE unknown array {array}")))?;
                let kinds: Vec<DistKind> = dist
                    .iter()
                    .map(|k| match k {
                        ast::DistSpec::Block => Ok(DistKind::Block),
                        ast::DistSpec::Cyclic => Ok(DistKind::Cyclic),
                        ast::DistSpec::BlockCyclic(e) => {
                            let v = f90d_frontend::sema::const_eval(e, &info.params)
                                .map_err(|e| CodegenError(e.to_string()))?;
                            cyclic_block_kind(array, v)
                        }
                        ast::DistSpec::Star => Ok(DistKind::Collapsed),
                    })
                    .collect::<CResult<_>>()?;
                let shape = self.arrays[arr].dad.shape.clone();
                let new_dad = DadBuilder::new(self.arrays[arr].name.clone(), &shape)
                    .distribute(&kinds)
                    .grid(self.grid.clone())
                    .build()
                    .map_err(CodegenError)?;
                out.push(SStmt::Runtime(RtCall::Redistribute { arr, new_dad }));
                Ok(())
            }
            Stmt::Where { .. } => cerr("WHERE must be normalized away before lowering"),
        }
    }

    fn lower_assign(
        &mut self,
        lhs: &LhsRef,
        rhs: &Expr,
        info: &UnitInfo,
        names: &NameMap,
        prefix: &str,
        out: &mut Vec<SStmt>,
    ) -> CResult<()> {
        // Whole-array intrinsic statement?
        if lhs.subs.is_empty() && names.contains_key(&lhs.name) {
            if let Expr::Ref(fname, args) = rhs {
                if !info.arrays.contains_key(fname) {
                    return self.lower_array_intrinsic(lhs, fname, args, info, names, out);
                }
            }
        }
        if let Some(&arr) = names.get(&lhs.name) {
            // Element assignment A(c1, c2) = rhs on the owners.
            let mut subs = Vec::new();
            let mut pre = Vec::new();
            for s in &lhs.subs {
                let Subscript::Index(e) = s else {
                    return cerr("sections must be normalized away");
                };
                let (p, se) = self.scalar_expr(e, info, names, prefix)?;
                pre.extend(p);
                subs.push(se);
            }
            let (p2, rhs) = self.scalar_expr(rhs, info, names, prefix)?;
            pre.extend(p2);
            out.extend(pre);
            out.push(SStmt::OwnerAssign { arr, subs, rhs });
            Ok(())
        } else {
            // Replicated scalar assignment.
            let (pre, rhs) = self.scalar_expr(rhs, info, names, prefix)?;
            out.extend(pre);
            out.push(SStmt::ScalarAssign {
                name: format!("{prefix}{}", lhs.name),
                rhs,
            });
            Ok(())
        }
    }

    fn lower_array_intrinsic(
        &mut self,
        lhs: &LhsRef,
        fname: &str,
        args: &[Subscript],
        info: &UnitInfo,
        names: &NameMap,
        out: &mut Vec<SStmt>,
    ) -> CResult<()> {
        let dst = names[&lhs.name];
        let arg_expr = |k: usize| -> CResult<&Expr> {
            match args.get(k) {
                Some(Subscript::Index(e)) => Ok(e),
                _ => cerr(format!("{fname}: missing argument {k}")),
            }
        };
        let arg_arr = |k: usize| -> CResult<ArrId> {
            match arg_expr(k)? {
                Expr::Var(n) => names
                    .get(n)
                    .copied()
                    .ok_or_else(|| CodegenError(format!("{fname}: `{n}` is not an array"))),
                other => cerr(format!("{fname}: expected array name, got {other:?}")),
            }
        };
        let call = match fname {
            "CSHIFT" | "EOSHIFT" => {
                let src = arg_arr(0)?;
                let (pre, shift) = self.scalar_expr(arg_expr(1)?, info, names, "")?;
                out.extend(pre);
                // optional DIM argument (1-based in source, default 1)
                let dim = match args.get(if fname == "CSHIFT" { 2 } else { 3 }) {
                    Some(Subscript::Index(e)) => {
                        (f90d_frontend::sema::const_eval(e, &info.params)
                            .map_err(|e| CodegenError(e.to_string()))?
                            - 1) as usize
                    }
                    _ => 0,
                };
                if fname == "CSHIFT" {
                    RtCall::CShift {
                        src,
                        dst,
                        dim,
                        shift,
                    }
                } else {
                    let (pre, boundary) = self.scalar_expr(arg_expr(2)?, info, names, "")?;
                    out.extend(pre);
                    RtCall::EoShift {
                        src,
                        dst,
                        dim,
                        shift,
                        boundary,
                    }
                }
            }
            "TRANSPOSE" => RtCall::Transpose {
                src: arg_arr(0)?,
                dst,
            },
            "MATMUL" => RtCall::Matmul {
                a: arg_arr(0)?,
                b: arg_arr(1)?,
                c: dst,
            },
            other => {
                return cerr(format!(
                    "array-valued intrinsic `{other}` not supported as statement"
                ))
            }
        };
        out.push(SStmt::Runtime(call));
        Ok(())
    }

    fn lower_call(
        &mut self,
        name: &str,
        args: &[Expr],
        info: &UnitInfo,
        names: &NameMap,
        prefix: &str,
        out: &mut Vec<SStmt>,
    ) -> CResult<()> {
        if self.call_depth > 8 {
            return cerr("CALL nesting too deep (recursion is not supported)");
        }
        let callee = self
            .prog
            .program
            .subroutine(name)
            .ok_or_else(|| CodegenError(format!("unknown subroutine {name}")))?;
        let callee_info = self
            .prog
            .unit_info(name)
            .ok_or_else(|| CodegenError(format!("no info for subroutine {name}")))?;
        let sub_prefix = format!("{prefix}{name}__");
        // Declare callee locals + dummies.
        let mut callee_names = self.declare_unit(callee_info, &sub_prefix)?;
        let mut epilogue = Vec::new();
        for (dummy, actual) in callee.args.iter().zip(args) {
            if callee_info.arrays.contains_key(dummy) {
                let Expr::Var(actual_name) = actual else {
                    return cerr(format!("array dummy `{dummy}` needs an array actual"));
                };
                let actual_id = *names
                    .get(actual_name)
                    .ok_or_else(|| CodegenError(format!("unknown array `{actual_name}`")))?;
                let dummy_id = callee_names[dummy];
                if self.arrays[actual_id].dad.shape != self.arrays[dummy_id].dad.shape {
                    return cerr(format!(
                        "array `{actual_name}` shape differs from dummy `{dummy}`"
                    ));
                }
                let same_mapping = {
                    let (a, d) = (&self.arrays[actual_id].dad, &self.arrays[dummy_id].dad);
                    a.dims == d.dims && a.replicated_axes == d.replicated_axes
                };
                if same_mapping {
                    // Alias: no boundary redistribution needed.
                    callee_names.insert(dummy.clone(), actual_id);
                } else {
                    // Automatic redistribution on entry and exit (paper §6).
                    out.push(SStmt::Runtime(RtCall::RemapCopy {
                        src: actual_id,
                        dst: dummy_id,
                    }));
                    epilogue.push(SStmt::Runtime(RtCall::RemapCopy {
                        src: dummy_id,
                        dst: actual_id,
                    }));
                }
            } else {
                // Scalar dummy: copy-in.
                let (pre, se) = self.scalar_expr(actual, info, names, prefix)?;
                out.extend(pre);
                out.push(SStmt::ScalarAssign {
                    name: format!("{sub_prefix}{dummy}"),
                    rhs: se,
                });
                if !self
                    .scalars
                    .iter()
                    .any(|(n, _)| n == &format!("{sub_prefix}{dummy}"))
                {
                    self.scalars
                        .push((format!("{sub_prefix}{dummy}"), ElemType::Int));
                }
            }
        }
        self.call_depth += 1;
        let body = self.lower_stmts(&callee.body, callee_info, &callee_names, &sub_prefix)?;
        self.call_depth -= 1;
        out.extend(body);
        out.extend(epilogue);
        Ok(())
    }

    // ---- scalar-context expressions ----------------------------------------

    /// Lower an expression evaluated in replicated scalar context. Reads
    /// of distributed elements hoist to `BroadcastElem`; reductions hoist
    /// to `ReduceScalar`.
    fn scalar_expr(
        &mut self,
        e: &Expr,
        info: &UnitInfo,
        names: &NameMap,
        prefix: &str,
    ) -> CResult<(Vec<SStmt>, SExpr)> {
        let mut pre = Vec::new();
        let se = self.scalar_expr_inner(e, info, names, prefix, &mut pre)?;
        Ok((pre, se))
    }

    fn scalar_expr_inner(
        &mut self,
        e: &Expr,
        info: &UnitInfo,
        names: &NameMap,
        prefix: &str,
        pre: &mut Vec<SStmt>,
    ) -> CResult<SExpr> {
        match e {
            Expr::Int(v) => Ok(SExpr::Const(Value::Int(*v))),
            Expr::Real(v) => Ok(SExpr::Const(Value::Real(*v))),
            Expr::Logical(b) => Ok(SExpr::Const(Value::Bool(*b))),
            Expr::Str(_) => cerr("character values only in PRINT"),
            Expr::Var(n) => {
                if let Some(&v) = info.params.get(n) {
                    Ok(SExpr::Const(Value::Int(v)))
                } else if names.contains_key(n) {
                    cerr(format!("whole array `{n}` in scalar context"))
                } else {
                    Ok(SExpr::Scalar(format!("{prefix}{n}")))
                }
            }
            Expr::Bin(op, l, r) => {
                let l = self.scalar_expr_inner(l, info, names, prefix, pre)?;
                let r = self.scalar_expr_inner(r, info, names, prefix, pre)?;
                Ok(SExpr::Bin(*op, Box::new(l), Box::new(r)))
            }
            Expr::Un(op, x) => {
                let x = self.scalar_expr_inner(x, info, names, prefix, pre)?;
                Ok(SExpr::Un(*op, Box::new(x)))
            }
            Expr::Ref(name, subs) => {
                if let Some(&arr) = names.get(name) {
                    // Element read.
                    let mut s_subs = Vec::new();
                    for s in subs {
                        let Subscript::Index(ix) = s else {
                            return cerr("array section in scalar context");
                        };
                        s_subs.push(self.scalar_expr_inner(ix, info, names, prefix, pre)?);
                    }
                    if self.arrays[arr].dad.is_replicated() {
                        Ok(SExpr::Read {
                            arr,
                            plan: ReadPlan::Replicated,
                            subs: s_subs,
                        })
                    } else {
                        // Hoist: broadcast the element into a scalar.
                        self.tmp_counter += 1;
                        let target = format!("__BC{}", self.tmp_counter);
                        self.scalars.push((target.clone(), self.arrays[arr].ty));
                        pre.push(SStmt::Comm(CommStmt::BroadcastElem {
                            arr,
                            subs: s_subs,
                            target: target.clone(),
                        }));
                        Ok(SExpr::Scalar(target))
                    }
                } else if let Some(kind) = reduce_kind(name) {
                    // Reduction intrinsic in scalar context.
                    let arr_of = |e: &Expr| -> CResult<ArrId> {
                        match e {
                            Expr::Var(n) => names.get(n).copied().ok_or_else(|| {
                                CodegenError(format!("{name}: `{n}` is not an array"))
                            }),
                            _ => cerr(format!("{name}: only whole-array operands are supported")),
                        }
                    };
                    let first = match subs.first() {
                        Some(Subscript::Index(e)) => e,
                        _ => return cerr(format!("{name}: missing operand")),
                    };
                    let arr = arr_of(first)?;
                    let arr2 = if kind == ReduceKind::DotProduct {
                        let second = match subs.get(1) {
                            Some(Subscript::Index(e)) => e,
                            _ => return cerr("DOTPRODUCT needs two operands"),
                        };
                        Some(arr_of(second)?)
                    } else {
                        None
                    };
                    self.tmp_counter += 1;
                    let target = format!("__RED{}", self.tmp_counter);
                    let ty = match kind {
                        ReduceKind::Count => ElemType::Int,
                        ReduceKind::All | ReduceKind::Any => ElemType::Bool,
                        _ => self.arrays[arr].ty,
                    };
                    self.scalars.push((target.clone(), ty));
                    pre.push(SStmt::Comm(CommStmt::ReduceScalar {
                        kind,
                        arr,
                        arr2,
                        target: target.clone(),
                    }));
                    Ok(SExpr::Scalar(target))
                } else {
                    // Elemental intrinsic.
                    let mut args = Vec::new();
                    for s in subs {
                        let Subscript::Index(ix) = s else {
                            return cerr(format!("bad argument to {name}"));
                        };
                        args.push(self.scalar_expr_inner(ix, info, names, prefix, pre)?);
                    }
                    Ok(SExpr::Elemental(name.clone(), args))
                }
            }
        }
    }

    // ---- FORALL lowering ------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn lower_forall(
        &mut self,
        indices: &[ast::ForallIndex],
        mask: Option<&Expr>,
        lhs: &LhsRef,
        rhs: &Expr,
        info: &UnitInfo,
        names: &NameMap,
        prefix: &str,
    ) -> CResult<ForallNode> {
        let vars: Vec<String> = indices.iter().map(|i| i.var.clone()).collect();
        let lhs_arr = *names
            .get(&lhs.name)
            .ok_or_else(|| CodegenError(format!("FORALL assigns to non-array `{}`", lhs.name)))?;
        let lhs_decl = self.arrays[lhs_arr].clone();

        // ---- computation partitioning (paper §4) ----
        // Classify each LHS dim.
        let mut lhs_pats = Vec::new();
        for s in &lhs.subs {
            let Subscript::Index(e) = s else {
                return cerr("FORALL LHS sections must be normalized away");
            };
            lhs_pats.push(classify_subscript(e, &vars, &info.params));
        }
        // A var may bind at most one distributed dim.
        let mut var_dim: HashMap<String, (usize, i64, i64)> = HashMap::new();
        let mut owner_ok = true;
        let mut owner_filter = Vec::new();
        for (d, pat) in lhs_pats.iter().enumerate() {
            let distributed = lhs_decl.dad.dims[d].is_distributed();
            match pat {
                SubPattern::Affine { var, a, b } => {
                    if distributed {
                        if var_dim.contains_key(var) {
                            owner_ok = false;
                        } else {
                            var_dim.insert(var.clone(), (d, *a, *b));
                        }
                    }
                }
                SubPattern::ScalarInvariant(e) => {
                    if distributed {
                        let (pre_ignored, se) = self.scalar_expr(e, info, names, prefix)?;
                        if !pre_ignored.is_empty() {
                            return cerr("distributed element read inside FORALL LHS subscript");
                        }
                        owner_filter.push((lhs_arr, d, se));
                    }
                }
                _ => {
                    if distributed {
                        owner_ok = false;
                    }
                }
            }
        }
        let lhs_replicated = lhs_decl.dad.is_replicated();
        let write_plan;
        let mut specs = Vec::new();
        if lhs_replicated {
            // Undistributed LHS: replicate iterations everywhere
            // (Algorithm 1 step 11 concatenates distributed RHS data).
            write_plan = WritePlan::Owned;
            for ix in indices {
                let (lbp, lb) = self.scalar_expr(&ix.lb, info, names, prefix)?;
                let (ubp, ub) = self.scalar_expr(&ix.ub, info, names, prefix)?;
                let (stp, st) = self.scalar_expr(&ix.st, info, names, prefix)?;
                if !(lbp.is_empty() && ubp.is_empty() && stp.is_empty()) {
                    return cerr("FORALL bounds must be scalar expressions");
                }
                specs.push(LoopSpec {
                    var: ix.var.clone(),
                    lb,
                    ub,
                    st,
                    part: Partition::Replicate,
                });
            }
        } else if owner_ok {
            write_plan = WritePlan::Owned;
            for ix in indices {
                let (lbp, lb) = self.scalar_expr(&ix.lb, info, names, prefix)?;
                let (ubp, ub) = self.scalar_expr(&ix.ub, info, names, prefix)?;
                let (stp, st) = self.scalar_expr(&ix.st, info, names, prefix)?;
                if !(lbp.is_empty() && ubp.is_empty() && stp.is_empty()) {
                    return cerr("FORALL bounds must be scalar expressions");
                }
                let part = match var_dim.get(&ix.var) {
                    Some(&(dim, a, b)) => Partition::OwnerDim {
                        arr: lhs_arr,
                        dim,
                        a,
                        b,
                    },
                    None => Partition::Replicate,
                };
                specs.push(LoopSpec {
                    var: ix.var.clone(),
                    lb,
                    ub,
                    st,
                    part,
                });
            }
        } else {
            // Non-canonical / vector-valued LHS: block-partition the
            // iteration space, write through postcomp_write or scatter
            // (paper §4 examples 2 and 3).
            let invertible = lhs_pats.iter().all(|p| {
                matches!(
                    p,
                    SubPattern::Affine { .. } | SubPattern::ScalarInvariant(_)
                )
            });
            write_plan = WritePlan::ScatterSeq { invertible };
            for (k, ix) in indices.iter().enumerate() {
                let (lbp, lb) = self.scalar_expr(&ix.lb, info, names, prefix)?;
                let (ubp, ub) = self.scalar_expr(&ix.ub, info, names, prefix)?;
                let (stp, st) = self.scalar_expr(&ix.st, info, names, prefix)?;
                if !(lbp.is_empty() && ubp.is_empty() && stp.is_empty()) {
                    return cerr("FORALL bounds must be scalar expressions");
                }
                specs.push(LoopSpec {
                    var: ix.var.clone(),
                    lb,
                    ub,
                    st,
                    // Block-split the first var only; others replicate.
                    part: if k == 0 {
                        Partition::BlockIter
                    } else {
                        Partition::Replicate
                    },
                });
            }
        }

        // ---- communication detection (paper §5.2) ----
        let mut pre = Vec::new();
        let mut gathers = Vec::new();
        let mut seq_slots = 0usize;
        let owned_write = write_plan == WritePlan::Owned && !lhs_replicated;
        let lhs_subs_expr: Vec<&Expr> = lhs
            .subs
            .iter()
            .map(|s| match s {
                Subscript::Index(e) => e,
                _ => unreachable!(),
            })
            .collect();
        let mut ctx = RefCtx {
            vars: &vars,
            info,
            names,
            prefix,
            lhs_arr,
            lhs_pats: &lhs_pats,
            owned_write,
            lhs_replicated,
        };
        let rhs_expr =
            self.lower_elem_expr(rhs, &mut ctx, &mut pre, &mut gathers, &mut seq_slots)?;
        let mask_expr = match mask {
            Some(m) => {
                Some(self.lower_elem_expr(m, &mut ctx, &mut pre, &mut gathers, &mut seq_slots)?)
            }
            None => None,
        };

        // LHS subscripts as loop-var expressions.
        let mut lsubs = Vec::new();
        for e in &lhs_subs_expr {
            lsubs.push(self.loopvar_expr(e, &vars, info, names, prefix)?);
        }

        Ok(ForallNode {
            vars: specs,
            mask: mask_expr,
            pre,
            gathers,
            owner_filter,
            body: vec![ElemAssign {
                arr: lhs_arr,
                subs: lsubs,
                write: write_plan,
                rhs: rhs_expr,
            }],
            plan: None,
        })
    }

    /// Lower an expression used inside a FORALL body (element context):
    /// loop variables bind to their global values, array refs get read
    /// plans and communication statements.
    fn lower_elem_expr(
        &mut self,
        e: &Expr,
        ctx: &mut RefCtx<'_>,
        pre: &mut Vec<CommStmt>,
        gathers: &mut Vec<GatherSpec>,
        seq_slots: &mut usize,
    ) -> CResult<SExpr> {
        match e {
            Expr::Int(v) => Ok(SExpr::Const(Value::Int(*v))),
            Expr::Real(v) => Ok(SExpr::Const(Value::Real(*v))),
            Expr::Logical(b) => Ok(SExpr::Const(Value::Bool(*b))),
            Expr::Str(_) => cerr("character value in FORALL"),
            Expr::Var(n) => {
                if ctx.vars.contains(n) {
                    Ok(SExpr::LoopVar(n.clone()))
                } else if let Some(&v) = ctx.info.params.get(n) {
                    Ok(SExpr::Const(Value::Int(v)))
                } else if ctx.names.contains_key(n) {
                    cerr(format!("whole array `{n}` inside FORALL body"))
                } else {
                    Ok(SExpr::Scalar(format!("{}{n}", ctx.prefix)))
                }
            }
            Expr::Bin(op, l, r) => {
                let l = self.lower_elem_expr(l, ctx, pre, gathers, seq_slots)?;
                let r = self.lower_elem_expr(r, ctx, pre, gathers, seq_slots)?;
                Ok(SExpr::Bin(*op, Box::new(l), Box::new(r)))
            }
            Expr::Un(op, x) => {
                let x = self.lower_elem_expr(x, ctx, pre, gathers, seq_slots)?;
                Ok(SExpr::Un(*op, Box::new(x)))
            }
            Expr::Ref(name, subs) => {
                if let Some(&arr) = ctx.names.get(name) {
                    self.lower_array_read(arr, subs, ctx, pre, gathers, seq_slots)
                } else {
                    // Elemental intrinsic in element context.
                    let mut args = Vec::new();
                    for s in subs {
                        let Subscript::Index(ix) = s else {
                            return cerr(format!("bad argument to {name} in FORALL"));
                        };
                        args.push(self.lower_elem_expr(ix, ctx, pre, gathers, seq_slots)?);
                    }
                    Ok(SExpr::Elemental(name.clone(), args))
                }
            }
        }
    }

    fn lower_array_read(
        &mut self,
        arr: ArrId,
        subs: &[Subscript],
        ctx: &mut RefCtx<'_>,
        pre: &mut Vec<CommStmt>,
        gathers: &mut Vec<GatherSpec>,
        seq_slots: &mut usize,
    ) -> CResult<SExpr> {
        let decl = self.arrays[arr].clone();
        // Subscript expressions + patterns.
        let mut sub_exprs = Vec::new();
        let mut pats = Vec::new();
        for s in subs {
            let Subscript::Index(e) = s else {
                return cerr("RHS sections must be normalized away");
            };
            pats.push(classify_subscript(e, ctx.vars, &ctx.info.params));
            sub_exprs.push(e.clone());
        }
        let sub_sexprs: Vec<SExpr> = sub_exprs
            .iter()
            .map(|e| self.loopvar_expr(e, ctx.vars, ctx.info, ctx.names, ctx.prefix))
            .collect::<CResult<_>>()?;

        // Replicated arrays are readable everywhere.
        if decl.dad.is_replicated() {
            return Ok(SExpr::Read {
                arr,
                plan: ReadPlan::Replicated,
                subs: sub_sexprs,
            });
        }
        // Undistributed LHS (Algorithm 1 step 11): concatenate.
        if ctx.lhs_replicated {
            let tmp = self.fresh_tmp("CONCAT", decl.ty, self.replicated_dad(arr));
            pre.push(CommStmt::Concat { src: arr, tmp });
            return Ok(SExpr::Read {
                arr: tmp,
                plan: ReadPlan::Replicated,
                subs: sub_sexprs,
            });
        }
        // Non-owner-computes loops fetch all remote data unstructured.
        if !ctx.owned_write {
            return self.emit_gather(arr, &sub_exprs, &pats, ctx, gathers, seq_slots);
        }

        // Structured detection per dimension (Algorithm 1 steps 2–9).
        let lhs_mapping = ctx.info.mappings.get(&self.arrays[ctx.lhs_arr].base_name());
        let rhs_mapping = ctx.info.mappings.get(&decl.base_name());
        let mut tags: Vec<DimTag> = Vec::with_capacity(pats.len());
        for (d, pat) in pats.iter().enumerate() {
            if !decl.dad.dims[d].is_distributed() {
                tags.push(DimTag::NoComm);
                continue;
            }
            let ra = dim_align(rhs_mapping, &decl, d);
            // Find the LHS dim aligned to the same template dimension.
            let mut tag = DimTag::Unstructured(unstructured_of(pat));
            if let (Some(ra_), Some(lhs_map)) = (ra, lhs_mapping) {
                let same_template = rhs_mapping.map(|m| &m.template) == Some(&lhs_map.template);
                if same_template {
                    for (ld, lpat) in ctx.lhs_pats.iter().enumerate() {
                        let la = dim_align(lhs_mapping, &self.arrays[ctx.lhs_arr], ld);
                        if let Some(la_) = la {
                            if la_.tdim == ra_.tdim {
                                tag = classify_pair(lpat, pat, Some(la_), Some(ra_));
                                break;
                            }
                        }
                    }
                }
            } else if rhs_mapping.is_none() && lhs_mapping.is_none() {
                // Both arrays use the default identity mapping onto their
                // own templates — only identical shapes co-align, which
                // is the replicated case already handled. Fall through.
            }
            tags.push(tag);
        }
        // Whole-ref unstructured if any dim fell through.
        if tags.iter().any(|t| matches!(t, DimTag::Unstructured(_))) {
            return self.emit_gather(arr, &sub_exprs, &pats, ctx, gathers, seq_slots);
        }
        // Assemble structured plan.
        let mut mcast: Option<(usize, Expr)> = None;
        let mut transfer: Option<(usize, Expr, Expr)> = None;
        let mut tshift: Option<(usize, Expr)> = None;
        let mut oshifts: Vec<(usize, i64)> = Vec::new();
        for (d, t) in tags.iter().enumerate() {
            match t {
                DimTag::NoComm => {}
                DimTag::OverlapShift(c) => {
                    // Reject shift constants at or past the dimension
                    // extent up front: every read would land outside the
                    // array, and downstream ghost allocation would have
                    // to widen to |c| (for adversarial magnitudes like
                    // i64::MIN that arithmetic only stays total because
                    // `Margins`/`assign_ghosts` saturate). A real code
                    // never shifts a whole array width.
                    if c.unsigned_abs() >= decl.dad.dims[d].extent as u64 {
                        return cerr(format!(
                            "shift constant {c} out of range for dimension {d} of extent {} \
                             (|shift| must be < extent)",
                            decl.dad.dims[d].extent
                        ));
                    }
                    if self.opts.opt.overlap_shift {
                        oshifts.push((d, *c))
                    } else {
                        // Optimization disabled: use the temporary form.
                        if tshift.is_some() {
                            return self
                                .emit_gather(arr, &sub_exprs, &pats, ctx, gathers, seq_slots);
                        }
                        tshift = Some((d, Expr::Int(*c)));
                    }
                }
                DimTag::TempShift(s) => {
                    if tshift.is_some() {
                        return self.emit_gather(arr, &sub_exprs, &pats, ctx, gathers, seq_slots);
                    }
                    tshift = Some((d, s.clone()));
                }
                DimTag::Multicast(s) => {
                    if mcast.is_some() {
                        return self.emit_gather(arr, &sub_exprs, &pats, ctx, gathers, seq_slots);
                    }
                    mcast = Some((d, s.clone()));
                }
                DimTag::Transfer { src, dst } => {
                    if transfer.is_some() {
                        return self.emit_gather(arr, &sub_exprs, &pats, ctx, gathers, seq_slots);
                    }
                    transfer = Some((d, src.clone(), dst.clone()));
                }
                DimTag::Unstructured(_) => unreachable!(),
            }
        }
        if transfer.is_some() && (mcast.is_some() || tshift.is_some()) {
            return self.emit_gather(arr, &sub_exprs, &pats, ctx, gathers, seq_slots);
        }

        // Emit overlap shifts (ghost fills).
        for &(d, c) in &oshifts {
            pre.push(CommStmt::OverlapShift { arr, dim: d, c });
        }
        match (mcast, transfer, tshift) {
            (None, None, None) => Ok(SExpr::Read {
                arr,
                plan: ReadPlan::Owned,
                subs: sub_sexprs,
            }),
            (None, Some((d, src_g, dst_g)), None) => {
                let tmp = self.fresh_tmp("XFER", decl.ty, self.slab_dad(arr, d));
                let src_g = self.loopvar_expr(&src_g, ctx.vars, ctx.info, ctx.names, ctx.prefix)?;
                // Destination: the LHS dim whose pattern matched (d, s):
                // find the lhs dim aligned to the same template dim.
                let (dst_arr, dst_dim) = (ctx.lhs_arr, self.matching_lhs_dim(ctx, &decl, d));
                let dst_g = self.loopvar_expr(&dst_g, ctx.vars, ctx.info, ctx.names, ctx.prefix)?;
                pre.push(CommStmt::Transfer {
                    src: arr,
                    tmp,
                    dim: d,
                    src_g,
                    dst_g,
                    dst_arr,
                    dst_dim,
                });
                Ok(SExpr::Read {
                    arr: tmp,
                    plan: ReadPlan::SlabTmp { tmp, fixed_dim: d },
                    subs: sub_sexprs,
                })
            }
            (Some((d, src_g)), None, None) => {
                let tmp = self.fresh_tmp("MCAST", decl.ty, self.slab_dad(arr, d));
                let src_g = self.loopvar_expr(&src_g, ctx.vars, ctx.info, ctx.names, ctx.prefix)?;
                pre.push(CommStmt::Multicast {
                    src: arr,
                    tmp,
                    dim: d,
                    src_g,
                });
                Ok(SExpr::Read {
                    arr: tmp,
                    plan: ReadPlan::SlabTmp { tmp, fixed_dim: d },
                    subs: sub_sexprs,
                })
            }
            (None, None, Some((d, amount))) => {
                let tmp = self.fresh_tmp("SHIFT", decl.ty, decl.dad.clone());
                let amount =
                    self.loopvar_expr(&amount, ctx.vars, ctx.info, ctx.names, ctx.prefix)?;
                pre.push(CommStmt::TempShift {
                    src: arr,
                    tmp,
                    dim: d,
                    amount: amount.clone(),
                });
                // Read the temporary at the canonical (unshifted)
                // position: subscript - shift.
                let mut subs2 = sub_sexprs.clone();
                subs2[d] = SExpr::Bin(BinOp::Sub, Box::new(subs2[d].clone()), Box::new(amount));
                Ok(SExpr::Read {
                    arr: tmp,
                    plan: ReadPlan::SameTmp { tmp },
                    subs: subs2,
                })
            }
            (Some((md, src_g)), None, Some((sd, amount))) => {
                let src_g = self.loopvar_expr(&src_g, ctx.vars, ctx.info, ctx.names, ctx.prefix)?;
                let amount_se =
                    self.loopvar_expr(&amount, ctx.vars, ctx.info, ctx.names, ctx.prefix)?;
                let mut subs2 = sub_sexprs.clone();
                subs2[sd] = SExpr::Bin(
                    BinOp::Sub,
                    Box::new(subs2[sd].clone()),
                    Box::new(amount_se.clone()),
                );
                if self.opts.opt.fuse_multicast_shift {
                    let tmp = self.fresh_tmp("MCSH", decl.ty, self.slab_dad(arr, md));
                    pre.push(CommStmt::MulticastShift {
                        src: arr,
                        tmp,
                        mdim: md,
                        src_g,
                        sdim: sd,
                        amount: amount_se,
                    });
                    Ok(SExpr::Read {
                        arr: tmp,
                        plan: ReadPlan::SlabTmp { tmp, fixed_dim: md },
                        subs: subs2,
                    })
                } else {
                    // Two-step composition: shift whole array, then
                    // multicast the shifted slab.
                    let t1 = self.fresh_tmp("SHIFT", decl.ty, decl.dad.clone());
                    pre.push(CommStmt::TempShift {
                        src: arr,
                        tmp: t1,
                        dim: sd,
                        amount: amount_se,
                    });
                    let t2 = self.fresh_tmp("MCAST", decl.ty, self.slab_dad(arr, md));
                    pre.push(CommStmt::Multicast {
                        src: t1,
                        tmp: t2,
                        dim: md,
                        src_g,
                    });
                    Ok(SExpr::Read {
                        arr: t2,
                        plan: ReadPlan::SlabTmp {
                            tmp: t2,
                            fixed_dim: md,
                        },
                        subs: subs2,
                    })
                }
            }
            _ => self.emit_gather(arr, &sub_exprs, &pats, ctx, gathers, seq_slots),
        }
    }

    fn matching_lhs_dim(&self, ctx: &RefCtx<'_>, rhs_decl: &ArrayDecl, rhs_dim: usize) -> usize {
        let lhs_decl = &self.arrays[ctx.lhs_arr];
        let rhs_axis = rhs_decl.dad.dims[rhs_dim].grid_axis;
        lhs_decl
            .dad
            .dims
            .iter()
            .position(|d| d.grid_axis == rhs_axis && d.is_distributed())
            .unwrap_or(rhs_dim.min(lhs_decl.dad.rank() - 1))
    }

    fn emit_gather(
        &mut self,
        arr: ArrId,
        sub_exprs: &[Expr],
        pats: &[SubPattern],
        ctx: &mut RefCtx<'_>,
        gathers: &mut Vec<GatherSpec>,
        seq_slots: &mut usize,
    ) -> CResult<SExpr> {
        let decl = &self.arrays[arr];
        let local_only = pats
            .iter()
            .all(|p| matches!(unstructured_of(p), UnstructKind::PrecompRead));
        // Placeholder 1-element replicated dad; the executor sizes the
        // buffer per rank.
        let dad = DadBuilder::new("", &[1])
            .distribute(&[DistKind::Collapsed])
            .grid(self.grid.clone())
            .build()
            .expect("seq dad");
        let tmp = self.fresh_tmp("SEQ", decl.ty, dad);
        let subs: Vec<SExpr> = sub_exprs
            .iter()
            .map(|e| self.loopvar_expr(e, ctx.vars, ctx.info, ctx.names, ctx.prefix))
            .collect::<CResult<_>>()?;
        let slot = *seq_slots;
        *seq_slots += 1;
        gathers.push(GatherSpec {
            src: arr,
            tmp,
            subs: subs.clone(),
            local_only,
        });
        Ok(SExpr::Read {
            arr: tmp,
            plan: ReadPlan::Seq { tmp, slot },
            subs,
        })
    }

    /// Lower an expression over loop variables + scalars (used for
    /// subscripts, comm arguments, forall bounds with vars).
    fn loopvar_expr(
        &mut self,
        e: &Expr,
        vars: &[String],
        info: &UnitInfo,
        names: &NameMap,
        prefix: &str,
    ) -> CResult<SExpr> {
        match e {
            Expr::Int(v) => Ok(SExpr::Const(Value::Int(*v))),
            Expr::Real(v) => Ok(SExpr::Const(Value::Real(*v))),
            Expr::Logical(b) => Ok(SExpr::Const(Value::Bool(*b))),
            Expr::Str(_) => cerr("character value in index expression"),
            Expr::Var(n) => {
                if vars.contains(n) {
                    Ok(SExpr::LoopVar(n.clone()))
                } else if let Some(&v) = info.params.get(n) {
                    Ok(SExpr::Const(Value::Int(v)))
                } else {
                    Ok(SExpr::Scalar(format!("{prefix}{n}")))
                }
            }
            Expr::Bin(op, l, r) => Ok(SExpr::Bin(
                *op,
                Box::new(self.loopvar_expr(l, vars, info, names, prefix)?),
                Box::new(self.loopvar_expr(r, vars, info, names, prefix)?),
            )),
            Expr::Un(op, x) => Ok(SExpr::Un(
                *op,
                Box::new(self.loopvar_expr(x, vars, info, names, prefix)?),
            )),
            Expr::Ref(name, subs) => {
                if let Some(&arr) = names.get(name) {
                    let mut s_subs = Vec::new();
                    for s in subs {
                        let Subscript::Index(ix) = s else {
                            return cerr("section in index expression");
                        };
                        s_subs.push(self.loopvar_expr(ix, vars, info, names, prefix)?);
                    }
                    // Vector-subscript array: must be replicated to be
                    // readable during inspection (the paper replicates
                    // indirection arrays; §5.3.2 example 2).
                    let plan = if self.arrays[arr].dad.is_replicated() {
                        ReadPlan::Replicated
                    } else {
                        ReadPlan::Owned
                    };
                    Ok(SExpr::Read {
                        arr,
                        plan,
                        subs: s_subs,
                    })
                } else {
                    let mut args = Vec::new();
                    for s in subs {
                        let Subscript::Index(ix) = s else {
                            return cerr(format!("bad argument to {name}"));
                        };
                        args.push(self.loopvar_expr(ix, vars, info, names, prefix)?);
                    }
                    Ok(SExpr::Elemental(name.clone(), args))
                }
            }
        }
    }
}

/// Walk the generated IR and widen each array's ghost allocation to the
/// largest `overlap_shift` constant that targets it.
fn assign_ghosts(stmts: &[SStmt], arrays: &mut [ArrayDecl]) {
    fn comm(c: &CommStmt, arrays: &mut [ArrayDecl]) {
        if let CommStmt::OverlapShift { arr, c, .. } = c {
            // Saturating: the compiler rejects |c| >= extent, but keep
            // this total for IR built by hand (c == i64::MIN would
            // panic under plain `abs`).
            arrays[*arr].ghost = arrays[*arr].ghost.max(c.saturating_abs());
        }
    }
    fn walk(stmts: &[SStmt], arrays: &mut [ArrayDecl]) {
        for s in stmts {
            match s {
                SStmt::Comm(c) => comm(c, arrays),
                SStmt::Forall(f) => {
                    for c in &f.pre {
                        comm(c, arrays);
                    }
                }
                SStmt::DoSeq { body, .. } => walk(body, arrays),
                SStmt::If { then, else_, .. } => {
                    walk(then, arrays);
                    walk(else_, arrays);
                }
                _ => {}
            }
        }
    }
    walk(stmts, arrays);
}

/// Per-reference lowering context.
struct RefCtx<'a> {
    vars: &'a [String],
    info: &'a UnitInfo,
    names: &'a NameMap,
    prefix: &'a str,
    lhs_arr: ArrId,
    lhs_pats: &'a [SubPattern],
    owned_write: bool,
    lhs_replicated: bool,
}

impl ArrayDecl {
    /// Source-level name with inlining prefixes stripped.
    pub fn base_name(&self) -> String {
        match self.name.rfind("__") {
            Some(k)
                if self.name[..k]
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_') =>
            {
                self.name[k + 2..].to_string()
            }
            _ => self.name.clone(),
        }
    }
}

/// Unit-stride alignment summary of one array dimension, when available.
fn dim_align(mapping: Option<&ArrayMapping>, decl: &ArrayDecl, d: usize) -> Option<DimAlign> {
    let dm = &decl.dad.dims[d];
    if !dm.is_distributed() {
        return None;
    }
    let block = matches!(dm.dist.kind, DistKind::Block);
    match mapping {
        Some(m) => match m.axes.get(d)? {
            AxisAlignSpec::Aligned {
                tdim,
                stride: 1,
                offset,
            } => Some(DimAlign {
                tdim: *tdim,
                off: *offset,
                block,
            }),
            _ => None,
        },
        None => None,
    }
}

fn reduce_kind(name: &str) -> Option<ReduceKind> {
    Some(match name {
        "SUM" => ReduceKind::Sum,
        "PRODUCT" => ReduceKind::Product,
        "MAXVAL" => ReduceKind::MaxVal,
        "MINVAL" => ReduceKind::MinVal,
        "COUNT" => ReduceKind::Count,
        "ALL" => ReduceKind::All,
        "ANY" => ReduceKind::Any,
        "DOTPRODUCT" | "DOT_PRODUCT" => ReduceKind::DotProduct,
        _ => return None,
    })
}
