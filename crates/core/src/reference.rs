//! Sequential reference interpreter over the normalized AST.
//!
//! Executes a program on flat host arrays with textbook Fortran
//! semantics, independent of all distribution machinery. Differential
//! tests run the compiled SPMD program next to this and compare final
//! array contents elementwise — the strongest correctness check we have.

use std::collections::HashMap;

use f90d_frontend::ast::*;
use f90d_frontend::sema::{AnalyzedProgram, UnitInfo};
use f90d_machine::{ArrayData, ElemType, Value};

/// Host-side array.
#[derive(Debug, Clone)]
pub struct HostArray {
    /// Extents.
    pub shape: Vec<i64>,
    /// Row-major data.
    pub data: ArrayData,
}

impl HostArray {
    fn zeros(ty: ElemType, shape: &[i64]) -> Self {
        let n: i64 = shape.iter().product();
        HostArray {
            shape: shape.to_vec(),
            data: ArrayData::zeros(ty, n as usize),
        }
    }

    fn offset(&self, idx: &[i64]) -> usize {
        let mut off = 0i64;
        for (d, (&i, &e)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(
                (0..e).contains(&i),
                "reference: index {} out of bounds on dim {d} (extent {e})",
                i + 1
            );
            off = off * e + i;
        }
        off as usize
    }

    /// Read element at `idx`.
    pub fn get(&self, idx: &[i64]) -> Value {
        self.data.get(self.offset(idx))
    }

    fn set(&mut self, idx: &[i64], v: Value) {
        let off = self.offset(idx);
        self.data.set(off, v);
    }
}

/// Final state of a reference run.
#[derive(Debug, Clone, Default)]
pub struct RefState {
    /// Arrays by source name.
    pub arrays: HashMap<String, HostArray>,
    /// Scalars by source name.
    pub scalars: HashMap<String, Value>,
    /// PRINT output lines.
    pub printed: Vec<String>,
}

fn elem_type(ty: Ty) -> ElemType {
    match ty {
        Ty::Integer => ElemType::Int,
        Ty::Real => ElemType::Real,
        Ty::Logical => ElemType::Bool,
        Ty::Complex => ElemType::Complex,
    }
}

/// Run the normalized program sequentially. `init` pre-seeds arrays
/// (same values the SPMD run scatters) — arrays not seeded start zero.
pub fn run_reference(
    prog: &AnalyzedProgram,
    init: &HashMap<String, ArrayData>,
) -> Result<RefState, String> {
    let main_idx = prog
        .program
        .units
        .iter()
        .position(|u| !u.is_subroutine)
        .ok_or("no main unit")?;
    let info = &prog.units[main_idx];
    let mut st = RefState::default();
    for (name, arr) in &info.arrays {
        let mut h = HostArray::zeros(elem_type(arr.ty), &arr.extents);
        if let Some(d) = init.get(name) {
            assert_eq!(d.len(), h.data.len(), "init size mismatch for {name}");
            h.data = d.clone();
        }
        st.arrays.insert(name.clone(), h);
    }
    for (name, ty) in &info.scalars {
        st.scalars.insert(name.clone(), elem_type(*ty).zero());
    }
    exec_block(
        &prog.program.units[main_idx].body,
        prog,
        info,
        &mut st,
        &mut Vec::new(),
    )?;
    Ok(st)
}

type Frame = Vec<(String, i64)>;

fn exec_block(
    stmts: &[Stmt],
    prog: &AnalyzedProgram,
    info: &UnitInfo,
    st: &mut RefState,
    env: &mut Frame,
) -> Result<(), String> {
    for s in stmts {
        exec_stmt(s, prog, info, st, env)?;
    }
    Ok(())
}

fn exec_stmt(
    s: &Stmt,
    prog: &AnalyzedProgram,
    info: &UnitInfo,
    st: &mut RefState,
    env: &mut Frame,
) -> Result<(), String> {
    match s {
        Stmt::Assign { lhs, rhs } => {
            if st.arrays.contains_key(&lhs.name) {
                if lhs.subs.is_empty() {
                    // Whole-array intrinsic statement.
                    return exec_array_intrinsic(&lhs.name, rhs, info, st, env);
                }
                let idx: Vec<i64> = lhs
                    .subs
                    .iter()
                    .map(|s| match s {
                        Subscript::Index(e) => eval(e, info, st, env).map(|v| v.as_int()),
                        _ => Err("unnormalized section".into()),
                    })
                    .collect::<Result<_, String>>()?;
                let v = eval(rhs, info, st, env)?;
                let ty = st.arrays[&lhs.name].data.elem_type();
                st.arrays
                    .get_mut(&lhs.name)
                    .unwrap()
                    .set(&idx, v.convert_to(ty));
            } else {
                let v = eval(rhs, info, st, env)?;
                st.scalars.insert(lhs.name.clone(), v);
            }
            Ok(())
        }
        Stmt::Forall {
            indices,
            mask,
            body,
        } => {
            // Each body statement runs to completion (F90 construct
            // semantics) with RHS-before-write snapshot staging.
            for b in body {
                let Stmt::Assign { lhs, rhs } = b else {
                    return Err("FORALL body must be assignments".into());
                };
                let mut writes: Vec<(Vec<i64>, Value)> = Vec::new();
                forall_iter(indices, info, st, env, &mut |st2, env2| {
                    if let Some(m) = mask {
                        if !eval(m, info, st2, env2)?.as_bool() {
                            return Ok(());
                        }
                    }
                    let idx: Vec<i64> = lhs
                        .subs
                        .iter()
                        .map(|s| match s {
                            Subscript::Index(e) => eval(e, info, st2, env2).map(|v| v.as_int()),
                            _ => Err("unnormalized section".to_string()),
                        })
                        .collect::<Result<_, String>>()?;
                    let v = eval(rhs, info, st2, env2)?;
                    writes.push((idx, v));
                    Ok(())
                })?;
                let arr = st
                    .arrays
                    .get_mut(&lhs.name)
                    .ok_or_else(|| format!("FORALL assigns unknown array {}", lhs.name))?;
                let ty = arr.data.elem_type();
                for (idx, v) in writes {
                    arr.set(&idx, v.convert_to(ty));
                }
            }
            Ok(())
        }
        Stmt::Do {
            var,
            lb,
            ub,
            st: step,
            body,
        } => {
            let lb = eval(lb, info, st, env)?.as_int();
            let ub = eval(ub, info, st, env)?.as_int();
            let sp = eval(step, info, st, env)?.as_int();
            let mut v = lb;
            while (sp > 0 && v <= ub) || (sp < 0 && v >= ub) {
                env.push((var.clone(), v));
                let r = exec_block(body, prog, info, st, env);
                env.pop();
                r?;
                v += sp;
            }
            Ok(())
        }
        Stmt::If { cond, then, else_ } => {
            if eval(cond, info, st, env)?.as_bool() {
                exec_block(then, prog, info, st, env)
            } else {
                exec_block(else_, prog, info, st, env)
            }
        }
        Stmt::Print { items } => {
            let mut line = String::new();
            for (k, e) in items.iter().enumerate() {
                if k > 0 {
                    line.push(' ');
                }
                match e {
                    Expr::Str(s) => line.push_str(s),
                    other => line.push_str(&eval(other, info, st, env)?.to_string()),
                }
            }
            st.printed.push(line);
            Ok(())
        }
        Stmt::Call { name, args } => {
            let callee = prog
                .program
                .subroutine(name)
                .ok_or_else(|| format!("unknown subroutine {name}"))?;
            let callee_info = prog
                .unit_info(name)
                .ok_or_else(|| format!("no info for {name}"))?;
            // Save caller state, build callee state with arg binding.
            let mut sub = RefState::default();
            for (aname, arr) in &callee_info.arrays {
                sub.arrays.insert(
                    aname.clone(),
                    HostArray::zeros(elem_type(arr.ty), &arr.extents),
                );
            }
            for (sname, ty) in &callee_info.scalars {
                sub.scalars.insert(sname.clone(), elem_type(*ty).zero());
            }
            let mut array_binding: Vec<(String, String)> = Vec::new();
            for (dummy, actual) in callee.args.iter().zip(args) {
                if callee_info.arrays.contains_key(dummy) {
                    let Expr::Var(an) = actual else {
                        return Err(format!("array dummy {dummy} needs array actual"));
                    };
                    sub.arrays.insert(dummy.clone(), st.arrays[an].clone());
                    array_binding.push((dummy.clone(), an.clone()));
                } else {
                    let v = eval(actual, info, st, env)?;
                    sub.scalars.insert(dummy.clone(), v);
                }
            }
            exec_block(&callee.body, prog, callee_info, &mut sub, &mut Vec::new())?;
            for (dummy, actual) in array_binding {
                let out = sub.arrays.remove(&dummy).unwrap();
                st.arrays.insert(actual, out);
            }
            st.printed.extend(sub.printed);
            Ok(())
        }
        Stmt::Redistribute { .. } => Ok(()), // mapping-only, no values move
        Stmt::Where { .. } => Err("unnormalized WHERE".into()),
    }
}

fn forall_iter(
    indices: &[ForallIndex],
    info: &UnitInfo,
    st: &mut RefState,
    env: &mut Frame,
    f: &mut dyn FnMut(&mut RefState, &mut Frame) -> Result<(), String>,
) -> Result<(), String> {
    fn rec(
        k: usize,
        indices: &[ForallIndex],
        info: &UnitInfo,
        st: &mut RefState,
        env: &mut Frame,
        f: &mut dyn FnMut(&mut RefState, &mut Frame) -> Result<(), String>,
    ) -> Result<(), String> {
        if k == indices.len() {
            return f(st, env);
        }
        let ix = &indices[k];
        let lb = eval(&ix.lb, info, st, env)?.as_int();
        let ub = eval(&ix.ub, info, st, env)?.as_int();
        let sp = eval(&ix.st, info, st, env)?.as_int();
        let mut v = lb;
        while v <= ub {
            env.push((ix.var.clone(), v));
            let r = rec(k + 1, indices, info, st, env, f);
            env.pop();
            r?;
            v += sp;
        }
        Ok(())
    }
    rec(0, indices, info, st, env, f)
}

fn exec_array_intrinsic(
    lhs: &str,
    rhs: &Expr,
    info: &UnitInfo,
    st: &mut RefState,
    env: &mut Frame,
) -> Result<(), String> {
    let Expr::Ref(fname, args) = rhs else {
        return Err(format!(
            "whole-array assignment to {lhs} must be an intrinsic"
        ));
    };
    let arg_expr = |k: usize| -> Result<&Expr, String> {
        match args.get(k) {
            Some(Subscript::Index(e)) => Ok(e),
            _ => Err(format!("{fname}: missing argument {k}")),
        }
    };
    let arg_arr = |k: usize| -> Result<String, String> {
        match arg_expr(k)? {
            Expr::Var(n) => Ok(n.clone()),
            _ => Err(format!("{fname}: expected array name")),
        }
    };
    match fname.as_str() {
        "CSHIFT" | "EOSHIFT" => {
            let src = st.arrays[&arg_arr(0)?].clone();
            let shift = eval(arg_expr(1)?, info, st, env)?.as_int();
            let dim = match fname.as_str() {
                "CSHIFT" => args.get(2),
                _ => args.get(3),
            };
            let dim = match dim {
                Some(Subscript::Index(e)) => (eval(e, info, st, env)?.as_int() - 1) as usize,
                _ => 0,
            };
            let boundary = if fname == "EOSHIFT" {
                Some(eval(arg_expr(2)?, info, st, env)?)
            } else {
                None
            };
            let dst = st.arrays.get_mut(lhs).unwrap();
            let n = src.shape[dim];
            let mut idx = vec![0i64; src.shape.len()];
            visit_all(&src.shape, &mut idx, &mut |idx| {
                let mut s = idx.to_vec();
                let shifted = idx[dim] + shift;
                let v = if (0..n).contains(&shifted) {
                    s[dim] = shifted;
                    src.get(&s)
                } else if let Some(b) = boundary {
                    b
                } else {
                    s[dim] = shifted.rem_euclid(n);
                    src.get(&s)
                };
                dst.set(idx, v);
            });
            Ok(())
        }
        "TRANSPOSE" => {
            let src = st.arrays[&arg_arr(0)?].clone();
            let dst = st.arrays.get_mut(lhs).unwrap();
            for i in 0..dst.shape[0] {
                for j in 0..dst.shape[1] {
                    dst.set(&[i, j], src.get(&[j, i]));
                }
            }
            Ok(())
        }
        "MATMUL" => {
            let a = st.arrays[&arg_arr(0)?].clone();
            let b = st.arrays[&arg_arr(1)?].clone();
            let dst = st.arrays.get_mut(lhs).unwrap();
            let kk = a.shape[1];
            for i in 0..dst.shape[0] {
                for j in 0..dst.shape[1] {
                    let mut acc = 0.0;
                    for k in 0..kk {
                        acc += a.get(&[i, k]).as_real() * b.get(&[k, j]).as_real();
                    }
                    dst.set(&[i, j], Value::Real(acc));
                }
            }
            Ok(())
        }
        other => Err(format!("reference: unsupported array intrinsic {other}")),
    }
}

fn visit_all(shape: &[i64], idx: &mut Vec<i64>, f: &mut dyn FnMut(&[i64])) {
    fn rec(d: usize, shape: &[i64], idx: &mut Vec<i64>, f: &mut dyn FnMut(&[i64])) {
        if d == shape.len() {
            f(idx);
            return;
        }
        for i in 0..shape[d] {
            idx[d] = i;
            rec(d + 1, shape, idx, f);
        }
    }
    rec(0, shape, idx, f);
}

fn eval(e: &Expr, info: &UnitInfo, st: &RefState, env: &Frame) -> Result<Value, String> {
    match e {
        Expr::Int(v) => Ok(Value::Int(*v)),
        Expr::Real(v) => Ok(Value::Real(*v)),
        Expr::Logical(b) => Ok(Value::Bool(*b)),
        Expr::Str(_) => Err("character value in expression".into()),
        Expr::Var(n) => {
            if let Some(&(_, v)) = env.iter().rev().find(|(name, _)| name == n) {
                Ok(Value::Int(v))
            } else if let Some(&v) = info.params.get(n) {
                Ok(Value::Int(v))
            } else if let Some(v) = st.scalars.get(n) {
                Ok(*v)
            } else {
                Err(format!("reference: undefined variable {n}"))
            }
        }
        Expr::Bin(op, l, r) => {
            let a = eval(l, info, st, env)?;
            let b = eval(r, info, st, env)?;
            crate::exec::eval_bin_pub(*op, a, b).map_err(|e| e.0)
        }
        Expr::Un(op, x) => {
            let v = eval(x, info, st, env)?;
            crate::exec::eval_un_pub(*op, v).map_err(|e| e.0)
        }
        Expr::Ref(name, subs) => {
            if let Some(arr) = st.arrays.get(name) {
                let idx: Vec<i64> = subs
                    .iter()
                    .map(|s| match s {
                        Subscript::Index(e) => eval(e, info, st, env).map(|v| v.as_int()),
                        _ => Err("section in element context".to_string()),
                    })
                    .collect::<Result<_, String>>()?;
                Ok(arr.get(&idx))
            } else {
                // Intrinsic: reductions over whole arrays, or elemental.
                match name.as_str() {
                    "SUM" | "PRODUCT" | "MAXVAL" | "MINVAL" | "COUNT" | "ALL" | "ANY" => {
                        let Some(Subscript::Index(Expr::Var(an))) = subs.first() else {
                            return Err(format!("{name}: whole-array operand required"));
                        };
                        let arr = &st.arrays[an];
                        let n = arr.data.len();
                        let vals = (0..n).map(|k| arr.data.get(k));
                        Ok(match name.as_str() {
                            "SUM" => Value::Real(vals.map(|v| v.as_real()).sum()),
                            "PRODUCT" => Value::Real(vals.map(|v| v.as_real()).product()),
                            "MAXVAL" => Value::Real(
                                vals.map(|v| v.as_real()).fold(f64::NEG_INFINITY, f64::max),
                            ),
                            "MINVAL" => {
                                Value::Real(vals.map(|v| v.as_real()).fold(f64::INFINITY, f64::min))
                            }
                            "COUNT" => Value::Int(vals.filter(|v| v.as_bool()).count() as i64),
                            "ALL" => Value::Bool(vals.into_iter().all(|v| v.as_bool())),
                            "ANY" => Value::Bool(vals.into_iter().any(|v| v.as_bool())),
                            _ => unreachable!(),
                        })
                    }
                    "DOTPRODUCT" | "DOT_PRODUCT" => {
                        let (
                            Some(Subscript::Index(Expr::Var(a))),
                            Some(Subscript::Index(Expr::Var(b))),
                        ) = (subs.first(), subs.get(1))
                        else {
                            return Err("DOTPRODUCT: two whole arrays required".into());
                        };
                        let (aa, bb) = (&st.arrays[a], &st.arrays[b]);
                        let s: f64 = (0..aa.data.len())
                            .map(|k| aa.data.get(k).as_real() * bb.data.get(k).as_real())
                            .sum();
                        Ok(Value::Real(s))
                    }
                    _ => {
                        let vals: Vec<Value> = subs
                            .iter()
                            .map(|s| match s {
                                Subscript::Index(e) => eval(e, info, st, env),
                                _ => Err("section argument".to_string()),
                            })
                            .collect::<Result<_, String>>()?;
                        crate::exec::eval_elemental_pub(name, &vals).map_err(|e| e.0)
                    }
                }
            }
        }
    }
}
