//! The SPMD intermediate representation.
//!
//! A compiled program is a statement tree in which communication appears
//! as explicit collective calls — the in-memory analogue of the
//! "Fortran 77 + MP" node code the paper's compiler emits (its §5.3
//! listings: `call set_BOUND`, `call multicast`, `call transfer`, loops
//! over local bounds). Execution is loosely synchronous: the tree is
//! walked once, scalar control flow is replicated, FORALLs partition
//! their iterations per rank and communication statements run
//! machine-wide.

use f90d_distrib::Dad;
use f90d_frontend::ast::{BinOp, UnOp};
use f90d_machine::{ElemType, Value};

/// Index of an array in the program's array table.
pub type ArrId = usize;

/// One distributed (or replicated) array of the compiled program.
#[derive(Debug, Clone)]
pub struct ArrayDecl {
    /// Source-level name.
    pub name: String,
    /// Element type.
    pub ty: ElemType,
    /// Three-stage mapping descriptor.
    pub dad: Dad,
    /// Ghost width allocated on every distributed dimension (the maximum
    /// compile-time shift constant the detector saw — Gerndt-style
    /// overlap areas).
    pub ghost: i64,
    /// `true` for compiler temporaries.
    pub is_temp: bool,
}

/// How an array read obtains its element (the communication tag the
/// detector attached — paper Tables 1 and 2 outcomes).
#[derive(Debug, Clone, PartialEq)]
pub enum ReadPlan {
    /// Owner-computes aligned read: subscripts form the global index,
    /// the element is in this rank's own segment (possibly in a ghost
    /// cell filled by `overlap_shift`).
    Owned,
    /// Read the rank-`r-1` slab temporary produced by `multicast` or
    /// `transfer` for fixed dimension `fixed_dim`.
    SlabTmp {
        /// The temporary.
        tmp: ArrId,
        /// The source dimension that was fixed.
        fixed_dim: usize,
    },
    /// Read the same-mapping temporary produced by `temporary_shift`:
    /// index it at the canonical (unshifted) position.
    SameTmp {
        /// The temporary.
        tmp: ArrId,
    },
    /// Read the next element of a sequential unstructured buffer
    /// (`precomp_read` / `gather` result, consumed in iteration order —
    /// the paper's `tmp(count)` idiom).
    Seq {
        /// The buffer.
        tmp: ArrId,
        /// Position of this ref among the forall's unstructured reads.
        slot: usize,
    },
    /// The array (or a concatenation result) is fully replicated: read
    /// directly at the global index.
    Replicated,
}

/// How a FORALL assignment's left-hand side is written.
#[derive(Debug, Clone, PartialEq)]
pub enum WritePlan {
    /// Owner computes: store at the local index of the global subscripts.
    Owned,
    /// Compute into a sequential buffer and `postcomp_write`/`scatter`
    /// to the owners after the loop (paper §4 cases 3/4).
    ScatterSeq {
        /// `true` when the subscripts are invertible (postcomp_write,
        /// schedule1); `false` for vector-valued/unknown (scatter,
        /// schedule3).
        invertible: bool,
    },
}

/// Compiled expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum SExpr {
    /// Literal.
    Const(Value),
    /// Replicated scalar variable.
    Scalar(String),
    /// Global (Fortran-value) of an enclosing FORALL/DO variable.
    LoopVar(String),
    /// Array element read.
    Read {
        /// Which array.
        arr: ArrId,
        /// How to fetch it.
        plan: ReadPlan,
        /// Global subscripts (0-based).
        subs: Vec<SExpr>,
    },
    /// Binary operation.
    Bin(BinOp, Box<SExpr>, Box<SExpr>),
    /// Unary operation.
    Un(UnOp, Box<SExpr>),
    /// Elemental intrinsic (ABS, SQRT, MOD, MIN, MAX, REAL, INT, …).
    Elemental(String, Vec<SExpr>),
}

impl SExpr {
    /// `true` when the subtree mentions any of `vars`.
    pub fn uses_any_var(&self, vars: &[String]) -> bool {
        match self {
            SExpr::LoopVar(n) => vars.iter().any(|v| v == n),
            SExpr::Read { subs, .. } => subs.iter().any(|s| s.uses_any_var(vars)),
            SExpr::Bin(_, l, r) => l.uses_any_var(vars) || r.uses_any_var(vars),
            SExpr::Un(_, x) => x.uses_any_var(vars),
            SExpr::Elemental(_, args) => args.iter().any(|a| a.uses_any_var(vars)),
            _ => false,
        }
    }

    /// Per-iteration element-operation cost after the node compiler's
    /// classic scalar optimizations (paper §7: common subexpression
    /// elimination etc. are "expected of the scalar node compiler"):
    /// subtrees invariant in the loop variables are hoisted and cost
    /// nothing per iteration.
    pub fn op_count_cse(&self, vars: &[String]) -> i64 {
        if !self.uses_any_var(vars) {
            return 0;
        }
        match self {
            SExpr::Const(_) | SExpr::Scalar(_) | SExpr::LoopVar(_) => 0,
            SExpr::Read { subs, .. } => 1 + subs.iter().map(|s| s.op_count_cse(vars)).sum::<i64>(),
            SExpr::Bin(_, l, r) => 1 + l.op_count_cse(vars) + r.op_count_cse(vars),
            SExpr::Un(_, x) => 1 + x.op_count_cse(vars),
            SExpr::Elemental(_, args) => 1 + args.iter().map(|a| a.op_count_cse(vars)).sum::<i64>(),
        }
    }

    /// Number of modelled element operations one evaluation costs.
    pub fn op_count(&self) -> i64 {
        match self {
            SExpr::Const(_) | SExpr::Scalar(_) | SExpr::LoopVar(_) => 0,
            SExpr::Read { subs, .. } => 1 + subs.iter().map(|s| s.op_count()).sum::<i64>(),
            SExpr::Bin(_, l, r) => 1 + l.op_count() + r.op_count(),
            SExpr::Un(_, x) => 1 + x.op_count(),
            SExpr::Elemental(_, args) => 1 + args.iter().map(|a| a.op_count()).sum::<i64>(),
        }
    }
}

/// Reduction kinds supported in scalar context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceKind {
    /// `SUM`
    Sum,
    /// `PRODUCT`
    Product,
    /// `MAXVAL`
    MaxVal,
    /// `MINVAL`
    MinVal,
    /// `COUNT`
    Count,
    /// `ALL`
    All,
    /// `ANY`
    Any,
    /// `DOTPRODUCT`
    DotProduct,
}

/// Collective communication statements (the generated `call …` lines).
#[derive(Debug, Clone, PartialEq)]
pub enum CommStmt {
    /// Broadcast slab `src[.., src_g, ..]` along the grid axis of `dim`
    /// into `tmp` (paper Fig. 4b).
    Multicast {
        /// Source array.
        src: ArrId,
        /// Slab temporary.
        tmp: ArrId,
        /// Fixed dimension.
        dim: usize,
        /// Global index of the slab (0-based).
        src_g: SExpr,
    },
    /// Move slab `src[.., src_g, ..]` to the owners of LHS index `dst_g`
    /// (paper Fig. 4a).
    Transfer {
        /// Source array.
        src: ArrId,
        /// Slab temporary.
        tmp: ArrId,
        /// Fixed dimension (of the source).
        dim: usize,
        /// Source global index.
        src_g: SExpr,
        /// Destination global index, in `dst_arr` index space.
        dst_g: SExpr,
        /// LHS array whose owners of `dst_g` receive the slab.
        dst_arr: ArrId,
        /// LHS dimension of `dst_g`.
        dst_dim: usize,
    },
    /// Fill ghost cells for a compile-time shift by `c` on `dim`.
    OverlapShift {
        /// The array whose overlap area is filled.
        arr: ArrId,
        /// Dimension.
        dim: usize,
        /// Shift constant.
        c: i64,
    },
    /// Runtime-amount shift into a same-mapping temporary.
    TempShift {
        /// Source array.
        src: ArrId,
        /// Temporary (same mapping as `src`).
        tmp: ArrId,
        /// Dimension.
        dim: usize,
        /// Shift amount.
        amount: SExpr,
    },
    /// Fused multicast+shift (paper §5.3.1 example 3).
    MulticastShift {
        /// Source array.
        src: ArrId,
        /// Slab temporary.
        tmp: ArrId,
        /// Broadcast dimension.
        mdim: usize,
        /// Global slab index.
        src_g: SExpr,
        /// Shift dimension.
        sdim: usize,
        /// Shift amount.
        amount: SExpr,
    },
    /// Concatenate a distributed array into a replicated temporary
    /// (Algorithm 1 step 11).
    Concat {
        /// Source array.
        src: ArrId,
        /// Replicated full-shape temporary.
        tmp: ArrId,
    },
    /// Broadcast one element of a distributed array into a replicated
    /// scalar (scalar-context reads of distributed elements).
    BroadcastElem {
        /// Source array.
        arr: ArrId,
        /// Global subscripts.
        subs: Vec<SExpr>,
        /// Destination scalar.
        target: String,
    },
    /// Full reduction into a replicated scalar (Table 3 category 2).
    ReduceScalar {
        /// Reduction operator.
        kind: ReduceKind,
        /// Operand.
        arr: ArrId,
        /// Second operand (DOTPRODUCT).
        arr2: Option<ArrId>,
        /// Destination scalar.
        target: String,
    },
}

/// One unstructured read of a FORALL: `tmp(count) = src(subs(i…))`
/// gathered before the loop.
#[derive(Debug, Clone, PartialEq)]
pub struct GatherSpec {
    /// Source array.
    pub src: ArrId,
    /// Sequential buffer.
    pub tmp: ArrId,
    /// Global subscripts as functions of the loop variables.
    pub subs: Vec<SExpr>,
    /// `true` when preprocessing is local-only (invertible subscripts →
    /// `schedule1`/`precomp_read`); `false` → `schedule2`/`gather`.
    pub local_only: bool,
}

/// One FORALL loop variable with its iteration partitioning.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopSpec {
    /// Variable name.
    pub var: String,
    /// Global lower bound (0-based).
    pub lb: SExpr,
    /// Global upper bound (0-based, inclusive).
    pub ub: SExpr,
    /// Stride (positive).
    pub st: SExpr,
    /// Iteration-to-rank assignment.
    pub part: Partition,
}

/// Iteration-space partitioning of one FORALL variable (paper §4).
#[derive(Debug, Clone, PartialEq)]
pub enum Partition {
    /// Owner-computes through LHS dimension `dim` of `arr`, whose
    /// subscript is `a*var + b`: each rank runs the iterations whose LHS
    /// element it owns (computed with `set_BOUND`).
    OwnerDim {
        /// LHS array.
        arr: ArrId,
        /// LHS dimension.
        dim: usize,
        /// Subscript stride.
        a: i64,
        /// Subscript offset.
        b: i64,
    },
    /// Equal block split of the iteration space over all ranks (paper §4
    /// example 2: non-canonical LHS).
    BlockIter,
    /// Every rank runs every iteration (undistributed LHS dimension).
    Replicate,
}

/// The single elementwise assignment of a FORALL body.
#[derive(Debug, Clone, PartialEq)]
pub struct ElemAssign {
    /// Destination array.
    pub arr: ArrId,
    /// Global subscripts (0-based) as functions of the loop variables.
    pub subs: Vec<SExpr>,
    /// How the write lands.
    pub write: WritePlan,
    /// Value.
    pub rhs: SExpr,
}

/// A compiled FORALL: communication prelude, partitioned local loop,
/// communication postlude.
#[derive(Debug, Clone, PartialEq)]
pub struct ForallNode {
    /// Loop variables (outer to inner).
    pub vars: Vec<LoopSpec>,
    /// Optional mask (evaluated with global loop-variable values).
    pub mask: Option<SExpr>,
    /// Structured communication before the loop.
    pub pre: Vec<CommStmt>,
    /// Unstructured reads (inspector + executor before the loop).
    pub gathers: Vec<GatherSpec>,
    /// Fixed distributed LHS dimensions `(arr, dim, index)`: only ranks
    /// owning `index` on `dim` run the loop (`set_BOUND` masking of
    /// inactive processors, paper §4).
    pub owner_filter: Vec<(ArrId, usize, SExpr)>,
    /// Body assignments.
    pub body: Vec<ElemAssign>,
    /// Comm-phase membership assigned by the phase planner
    /// ([`crate::optimize`], gated by `OptFlags::comm_plan`). `None` for
    /// every FORALL unless the planner grouped this statement: then the
    /// first member of the group is the `Lead` and the rest are
    /// `Member`s, and executors post the whole group's ghost exchanges
    /// as one coalesced batch before running any member's loop. Purely
    /// an annotation — the `pre` lists stay in place, so any executor
    /// that ignores the plan still runs the per-statement schedule.
    pub plan: Option<PhaseRole>,
}

/// Role of a FORALL inside a planner-formed comm phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseRole {
    /// First statement of a phase of `len` consecutive FORALLs
    /// (including itself). The lead's executor batches the ghost
    /// exchanges of all `len` members.
    Lead {
        /// Number of FORALLs in the phase, `>= 1`.
        len: usize,
    },
    /// Non-lead member: its ghost exchanges were posted by the lead, so
    /// its own prelude is skipped when the plan is honoured.
    Member,
}

/// Runtime-library whole-statement calls (array-valued intrinsics and
/// redistribution).
#[derive(Debug, Clone, PartialEq)]
pub enum RtCall {
    /// `dst = CSHIFT(src, shift, dim)`
    CShift {
        /// Source.
        src: ArrId,
        /// Destination.
        dst: ArrId,
        /// Dimension (0-based).
        dim: usize,
        /// Shift amount.
        shift: SExpr,
    },
    /// `dst = EOSHIFT(src, shift, boundary, dim)`
    EoShift {
        /// Source.
        src: ArrId,
        /// Destination.
        dst: ArrId,
        /// Dimension.
        dim: usize,
        /// Shift amount.
        shift: SExpr,
        /// Boundary fill.
        boundary: SExpr,
    },
    /// `dst = TRANSPOSE(src)`
    Transpose {
        /// Source.
        src: ArrId,
        /// Destination.
        dst: ArrId,
    },
    /// `c = MATMUL(a, b)`
    Matmul {
        /// Left operand.
        a: ArrId,
        /// Right operand.
        b: ArrId,
        /// Result.
        c: ArrId,
    },
    /// Change an array's distribution at runtime (extension).
    Redistribute {
        /// The array.
        arr: ArrId,
        /// The new descriptor.
        new_dad: Dad,
    },
    /// Copy `src` into the differently-mapped `dst` (subroutine-boundary
    /// redistribution, paper §6).
    RemapCopy {
        /// Source array.
        src: ArrId,
        /// Destination array (may have any mapping of the same shape).
        dst: ArrId,
    },
}

/// One `PRINT *,` item.
#[derive(Debug, Clone, PartialEq)]
pub enum PrintItem {
    /// A character literal, printed verbatim.
    Text(String),
    /// A scalar expression.
    Val(SExpr),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum SStmt {
    /// A standalone collective call.
    Comm(CommStmt),
    /// A compiled FORALL.
    Forall(ForallNode),
    /// Replicated scalar assignment.
    ScalarAssign {
        /// Scalar name.
        name: String,
        /// Value.
        rhs: SExpr,
    },
    /// Element assignment executed by the owners (`A(3) = …`).
    OwnerAssign {
        /// Destination array.
        arr: ArrId,
        /// Global subscripts.
        subs: Vec<SExpr>,
        /// Value.
        rhs: SExpr,
    },
    /// Sequential DO (replicated control flow).
    DoSeq {
        /// Loop variable (Fortran value semantics — 1-based user values).
        var: String,
        /// Bounds and stride.
        lb: SExpr,
        /// Upper bound.
        ub: SExpr,
        /// Stride.
        st: SExpr,
        /// Body.
        body: Vec<SStmt>,
    },
    /// Replicated conditional.
    If {
        /// Condition.
        cond: SExpr,
        /// Then branch.
        then: Vec<SStmt>,
        /// Else branch.
        else_: Vec<SStmt>,
    },
    /// `PRINT *,` — evaluated once, output collected by the executor.
    Print {
        /// Items.
        items: Vec<PrintItem>,
    },
    /// Runtime-library call.
    Runtime(RtCall),
}

/// A compiled SPMD program.
#[derive(Debug, Clone)]
pub struct SProgram {
    /// Logical grid shape.
    pub grid_shape: Vec<i64>,
    /// Array table.
    pub arrays: Vec<ArrayDecl>,
    /// Scalar names and types (replicated).
    pub scalars: Vec<(String, ElemType)>,
    /// Statements.
    pub stmts: Vec<SStmt>,
}

impl SProgram {
    /// Find an array id by name.
    pub fn array_id(&self, name: &str) -> Option<ArrId> {
        self.arrays.iter().position(|a| a.name == name)
    }

    /// Count communication statements of every kind in the whole tree
    /// (used by optimizer tests).
    pub fn comm_census(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut census = std::collections::BTreeMap::new();
        fn comm_name(c: &CommStmt) -> &'static str {
            match c {
                CommStmt::Multicast { .. } => "multicast",
                CommStmt::Transfer { .. } => "transfer",
                CommStmt::OverlapShift { .. } => "overlap_shift",
                CommStmt::TempShift { .. } => "temporary_shift",
                CommStmt::MulticastShift { .. } => "multicast_shift",
                CommStmt::Concat { .. } => "concatenation",
                CommStmt::BroadcastElem { .. } => "broadcast_elem",
                CommStmt::ReduceScalar { .. } => "reduce",
            }
        }
        fn walk(stmts: &[SStmt], census: &mut std::collections::BTreeMap<&'static str, usize>) {
            for s in stmts {
                match s {
                    SStmt::Comm(c) => *census.entry(comm_name(c)).or_insert(0) += 1,
                    SStmt::Forall(f) => {
                        for c in &f.pre {
                            *census.entry(comm_name(c)).or_insert(0) += 1;
                        }
                        for g in &f.gathers {
                            let name = if g.local_only {
                                "precomp_read"
                            } else {
                                "gather"
                            };
                            *census.entry(name).or_insert(0) += 1;
                        }
                        for b in &f.body {
                            if let WritePlan::ScatterSeq { invertible } = b.write {
                                let name = if invertible {
                                    "postcomp_write"
                                } else {
                                    "scatter"
                                };
                                *census.entry(name).or_insert(0) += 1;
                            }
                        }
                    }
                    SStmt::DoSeq { body, .. } => walk(body, census),
                    SStmt::If { then, else_, .. } => {
                        walk(then, census);
                        walk(else_, census);
                    }
                    _ => {}
                }
            }
        }
        walk(&self.stmts, &mut census);
        census
    }
}
