//! The loosely synchronous executor: walks the SPMD IR once, running
//! local statements per rank and communication statements machine-wide,
//! charging the machine's cost model as it goes (DESIGN.md §4).

use std::collections::HashMap;

use f90d_comm::driver::{self, CommDriver, ComputeSink, PhaseOutcome};
use f90d_comm::op::CommError;
use f90d_comm::overlap::Margins;
use f90d_comm::plan::GhostSpec;
use f90d_comm::sched_cache::RunSchedules;
use f90d_comm::schedule::{self, ElementReq};
use f90d_comm::structured;
use f90d_distrib::{set_bound, ArrayDimMap, Dad, DistKind};
use f90d_frontend::ast::{BinOp, UnOp};
use f90d_machine::{ElemType, LocalArray, Machine, Value};
use f90d_runtime::intrinsics as rt;
use f90d_runtime::DistArray;

use crate::ir::*;

/// Execution error (runtime faults in the compiled program).
#[derive(Debug, Clone)]
pub struct ExecError(pub String);

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for ExecError {}

impl From<CommError> for ExecError {
    fn from(e: CommError) -> Self {
        ExecError(e.0)
    }
}

type EResult<T> = Result<T, ExecError>;

fn eerr<T>(msg: impl Into<String>) -> EResult<T> {
    Err(ExecError(msg.into()))
}

/// Result of one execution.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Modelled elapsed time (seconds on the simulated machine).
    pub elapsed: f64,
    /// Messages sent.
    pub messages: u64,
    /// Payload bytes sent.
    pub bytes: u64,
    /// Collected PRINT output.
    pub printed: Vec<String>,
}

/// Executor state.
pub struct Executor<'p> {
    prog: &'p SProgram,
    /// Runtime descriptors (REDISTRIBUTE may change them).
    dads: Vec<Dad>,
    scalars: HashMap<String, Value>,
    printed: Vec<String>,
    /// Schedule reuse (§7(3), per-run) and the cross-run schedule cache:
    /// toggle `sched.reuse` / `sched.use_global` before running.
    pub sched: RunSchedules,
    /// `OptFlags::comm_compute_overlap`: execute eligible stencil FORALLs
    /// split-phase (ghost-exchange post → interior compute → complete →
    /// boundary compute). Off by default — virtual time changes (that is
    /// the point), array results and PRINT do not.
    pub overlap: bool,
    /// [`CompileOptions::exec_mode`](crate::CompileOptions::exec_mode):
    /// when `Some`, [`Executor::run`] switches the machine to this
    /// local-phase mode (leasing threaded workers from the process-wide
    /// budget) before executing. `None` respects the machine as given.
    /// Virtual metrics are identical either way.
    pub exec: Option<f90d_machine::ExecMode>,
    /// `OptFlags::comm_plan`: honour the phase planner's
    /// [`ForallNode::plan`] annotations, batching each phase's ghost
    /// exchanges through one coalesced exchange sequenced by the shared
    /// [`CommDriver`]. Off (the default) runs the per-statement schedule
    /// even on annotated programs — the annotations are advisory.
    pub plan: bool,
    /// The shared FORALL communication driver (`f90d_comm::driver`):
    /// sequences phase batching, split-phase overlap, and quiescence,
    /// and carries the `comm_plan {groups, fallbacks}` counters the run
    /// trace surfaces.
    pub comm: CommDriver,
}

/// Loop-variable bindings (global Fortran-value semantics).
#[derive(Debug, Clone, Default)]
struct Env {
    vars: Vec<(String, i64)>,
}

impl Env {
    fn get(&self, name: &str) -> Option<i64> {
        self.vars
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    fn push(&mut self, name: &str, v: i64) {
        self.vars.push((name.to_string(), v));
    }

    fn pop(&mut self) {
        self.vars.pop();
    }
}

impl<'p> Executor<'p> {
    /// Prepare an executor and allocate every array on the machine.
    pub fn new(prog: &'p SProgram, m: &mut Machine) -> Self {
        assert_eq!(
            m.grid.shape, prog.grid_shape,
            "machine grid must match the compiled grid"
        );
        for decl in &prog.arrays {
            let shape = decl.dad.local_shape();
            let g: Vec<i64> = decl
                .dad
                .dims
                .iter()
                .map(|d| if d.is_distributed() { decl.ghost } else { 0 })
                .collect();
            for mem in &mut m.mems {
                mem.insert_array(
                    decl.name.clone(),
                    LocalArray::with_ghost_lazy(decl.ty, &shape, &g, &g),
                );
            }
        }
        let mut scalars = HashMap::new();
        for (name, ty) in &prog.scalars {
            scalars.insert(name.clone(), ty.zero());
        }
        Executor {
            prog,
            dads: prog.arrays.iter().map(|a| a.dad.clone()).collect(),
            scalars,
            printed: Vec::new(),
            sched: RunSchedules::new(),
            overlap: false,
            exec: None,
            plan: false,
            comm: CommDriver::new(),
        }
    }

    /// Like [`Executor::new`] but reuses existing array segments on the
    /// machine instead of reallocating them — for running a program
    /// fragment over state produced by an earlier fragment (the
    /// benchmark harness times elimination separately from data
    /// generation this way).
    pub fn new_preserving(prog: &'p SProgram, m: &mut Machine) -> Self {
        for decl in &prog.arrays {
            if !m.mems[0].has_array(&decl.name) {
                let shape = decl.dad.local_shape();
                let g: Vec<i64> = decl
                    .dad
                    .dims
                    .iter()
                    .map(|d| if d.is_distributed() { decl.ghost } else { 0 })
                    .collect();
                for mem in &mut m.mems {
                    mem.insert_array(
                        decl.name.clone(),
                        LocalArray::with_ghost_lazy(decl.ty, &shape, &g, &g),
                    );
                }
            }
        }
        let mut scalars = HashMap::new();
        for (name, ty) in &prog.scalars {
            scalars.insert(name.clone(), ty.zero());
        }
        Executor {
            prog,
            dads: prog.arrays.iter().map(|a| a.dad.clone()).collect(),
            scalars,
            printed: Vec::new(),
            sched: RunSchedules::new(),
            overlap: false,
            exec: None,
            plan: false,
            comm: CommDriver::new(),
        }
    }

    /// Run the whole program. Ends with a transport quiescence check:
    /// leaked in-flight messages or never-completed posted receives
    /// surface as an [`ExecError`] instead of being silently dropped.
    pub fn run(&mut self, m: &mut Machine) -> EResult<ExecReport> {
        if let Some(mode) = self.exec {
            m.set_exec(mode);
        }
        let stmts = &self.prog.stmts;
        let mut env = Env::default();
        self.exec_stmts(stmts, m, &mut env)?;
        driver::quiesce(m)?;
        Ok(ExecReport {
            elapsed: m.elapsed(),
            messages: m.transport.messages,
            bytes: m.transport.bytes,
            printed: std::mem::take(&mut self.printed),
        })
    }

    /// Read a scalar by name (post-run inspection).
    pub fn scalar(&self, name: &str) -> Option<Value> {
        self.scalars.get(name).copied()
    }

    /// Current runtime descriptor of array `id`.
    pub fn dad(&self, id: ArrId) -> &Dad {
        &self.dads[id]
    }

    /// Seed a named array from a host row-major buffer before running
    /// (the input-distribution step of the paper's benchmark programs).
    pub fn seed_array(&self, m: &mut Machine, name: &str, data: &f90d_machine::ArrayData) -> bool {
        let Some(id) = self.prog.array_id(name) else {
            return false;
        };
        let h = DistArray {
            name: self.prog.arrays[id].name.clone(),
            dad: self.dads[id].clone(),
            ty: self.prog.arrays[id].ty,
        };
        h.scatter_host(m, data);
        true
    }

    /// Gather a named array to a host buffer (inspection).
    pub fn gather_array(&self, m: &mut Machine, name: &str) -> Option<f90d_machine::ArrayData> {
        let id = self.prog.array_id(name)?;
        let h = DistArray {
            name: self.prog.arrays[id].name.clone(),
            dad: self.dads[id].clone(),
            ty: self.prog.arrays[id].ty,
        };
        Some(h.gather_host(m))
    }

    fn exec_stmts(&mut self, stmts: &[SStmt], m: &mut Machine, env: &mut Env) -> EResult<()> {
        let mut i = 0;
        while i < stmts.len() {
            if self.plan {
                if let SStmt::Forall(f) = &stmts[i] {
                    if let Some(PhaseRole::Lead { len }) = f.plan {
                        let end = (i + len).min(stmts.len());
                        self.exec_phase(&stmts[i..end], m, env)?;
                        i = end;
                        continue;
                    }
                }
            }
            self.exec_stmt(&stmts[i], m, env)?;
            i += 1;
        }
        Ok(())
    }

    /// Execute one planner-formed comm phase: hand every member's ghost
    /// exchanges (against the **live** descriptors) to the shared driver,
    /// which deduplicates and batches them into one coalesced exchange,
    /// then run the members with their preludes skipped. If runtime
    /// planning refuses the batch, fall back to bit-identical
    /// per-statement execution — the annotations are advisory, the `pre`
    /// lists are still in place.
    fn exec_phase(&mut self, stmts: &[SStmt], m: &mut Machine, env: &mut Env) -> EResult<()> {
        let mut specs: Vec<GhostSpec> = Vec::new();
        for s in stmts {
            let SStmt::Forall(f) = s else {
                return eerr("comm phase contains a non-FORALL statement");
            };
            for c in &f.pre {
                let CommStmt::OverlapShift { arr, dim, c } = c else {
                    return eerr("comm phase member has a non-overlap-shift prelude");
                };
                specs.push(GhostSpec {
                    arr: self.prog.arrays[*arr].name.clone(),
                    dad: self.dads[*arr].clone(),
                    dim: *dim,
                    c: *c,
                });
            }
        }
        match self.comm.phase_exchange(m, specs)? {
            PhaseOutcome::Refused => {
                // Structured fallback: per-statement execution.
                for s in stmts {
                    self.exec_stmt(s, m, env)?;
                }
            }
            PhaseOutcome::Exchanged => {
                for s in stmts {
                    let SStmt::Forall(f) = s else { unreachable!() };
                    self.exec_forall_inner(f, m, env, true)?;
                }
            }
        }
        Ok(())
    }

    fn exec_stmt(&mut self, s: &SStmt, m: &mut Machine, env: &mut Env) -> EResult<()> {
        match s {
            SStmt::Comm(c) => self.exec_comm(c, m, env),
            SStmt::Forall(f) => self.exec_forall(f, m, env),
            SStmt::ScalarAssign { name, rhs } => {
                let ops = rhs.op_count();
                let v = self.eval_scalar(rhs, m, env)?;
                self.scalars.insert(name.clone(), v);
                for r in 0..m.nranks() {
                    m.transport.charge_elem_ops(r, ops.max(1));
                }
                Ok(())
            }
            SStmt::OwnerAssign { arr, subs, rhs } => {
                let g: Vec<i64> = subs
                    .iter()
                    .map(|e| self.eval_scalar(e, m, env).map(|v| v.as_int()))
                    .collect::<EResult<_>>()?;
                let v = self.eval_scalar(rhs, m, env)?;
                let dad = &self.dads[*arr];
                let l = dad.local_index(&g);
                let name = &self.prog.arrays[*arr].name;
                for rank in dad.owner_ranks(&g) {
                    m.mems[rank as usize].array_mut(name).set(&l, v);
                    m.transport.charge_elem_ops(rank, rhs.op_count().max(1));
                }
                Ok(())
            }
            SStmt::DoSeq {
                var,
                lb,
                ub,
                st,
                body,
            } => {
                let lb = self.eval_scalar(lb, m, env)?.as_int();
                let ub = self.eval_scalar(ub, m, env)?.as_int();
                let st = self.eval_scalar(st, m, env)?.as_int();
                if st == 0 {
                    return eerr("DO stride of zero");
                }
                let mut v = lb;
                while (st > 0 && v <= ub) || (st < 0 && v >= ub) {
                    env.push(var, v);
                    let r = self.exec_stmts(body, m, env);
                    env.pop();
                    r?;
                    for rank in 0..m.nranks() {
                        m.transport.charge_elem_ops(rank, 1); // loop control
                    }
                    v += st;
                }
                Ok(())
            }
            SStmt::If { cond, then, else_ } => {
                let c = self.eval_scalar(cond, m, env)?.as_bool();
                for rank in 0..m.nranks() {
                    m.transport.charge_elem_ops(rank, cond.op_count().max(1));
                }
                if c {
                    self.exec_stmts(then, m, env)
                } else {
                    self.exec_stmts(else_, m, env)
                }
            }
            SStmt::Print { items } => {
                let mut line = String::new();
                for (k, e) in items.iter().enumerate() {
                    if k > 0 {
                        line.push(' ');
                    }
                    match e {
                        PrintItem::Text(t) => line.push_str(t),
                        PrintItem::Val(v) => {
                            let v = self.eval_scalar(v, m, env)?;
                            line.push_str(&v.to_string());
                        }
                    }
                }
                self.printed.push(line);
                Ok(())
            }
            SStmt::Runtime(call) => self.exec_runtime(call, m, env),
        }
    }

    fn dist_array(&self, id: ArrId) -> DistArray {
        DistArray {
            name: self.prog.arrays[id].name.clone(),
            dad: self.dads[id].clone(),
            ty: self.prog.arrays[id].ty,
        }
    }

    fn exec_runtime(&mut self, call: &RtCall, m: &mut Machine, env: &mut Env) -> EResult<()> {
        match call {
            RtCall::CShift {
                src,
                dst,
                dim,
                shift,
            } => {
                let s = self.eval_scalar(shift, m, env)?.as_int();
                let (a, b) = (self.dist_array(*src), self.dist_array(*dst));
                rt::cshift(m, &a, &b, *dim, s);
                Ok(())
            }
            RtCall::EoShift {
                src,
                dst,
                dim,
                shift,
                boundary,
            } => {
                let s = self.eval_scalar(shift, m, env)?.as_int();
                let bv = self.eval_scalar(boundary, m, env)?;
                let (a, b) = (self.dist_array(*src), self.dist_array(*dst));
                rt::eoshift(m, &a, &b, *dim, s, bv);
                Ok(())
            }
            RtCall::Transpose { src, dst } => {
                let (a, b) = (self.dist_array(*src), self.dist_array(*dst));
                rt::transpose(m, &a, &b);
                Ok(())
            }
            RtCall::Matmul { a, b, c } => {
                let (aa, bb, cc) = (
                    self.dist_array(*a),
                    self.dist_array(*b),
                    self.dist_array(*c),
                );
                rt::matmul(m, &aa, &bb, &cc);
                Ok(())
            }
            RtCall::Redistribute { arr, new_dad } => {
                let old = self.dist_array(*arr);
                let staging = format!("__REDIST_{}", old.name);
                let mut nd = new_dad.clone();
                nd.name = old.name.clone();
                let target = DistArray::from_dad(m, staging.clone(), old.ty, nd.clone(), 0);
                f90d_comm::redist::redistribute(m, &old.name, &old.dad, &staging, &target.dad)?;
                // Move staged segments under the original name.
                for mem in &mut m.mems {
                    let seg = mem.remove_array(&staging).expect("staging allocated");
                    mem.insert_array(old.name.clone(), seg);
                }
                self.dads[*arr] = nd;
                Ok(())
            }
            RtCall::RemapCopy { src, dst } => {
                let s = self.dist_array(*src);
                let d = self.dist_array(*dst);
                f90d_comm::redist::redistribute(m, &s.name, &s.dad, &d.name, &d.dad)?;
                Ok(())
            }
        }
    }

    fn exec_comm(&mut self, c: &CommStmt, m: &mut Machine, env: &mut Env) -> EResult<()> {
        match c {
            CommStmt::Multicast {
                src,
                tmp,
                dim,
                src_g,
            } => {
                let g = self.eval_scalar(src_g, m, env)?.as_int();
                let dad = self.dads[*src].clone();
                structured::multicast(
                    m,
                    &self.prog.arrays[*src].name,
                    &dad,
                    &self.prog.arrays[*tmp].name,
                    *dim,
                    g,
                )?;
                Ok(())
            }
            CommStmt::Transfer {
                src,
                tmp,
                dim,
                src_g,
                dst_g,
                dst_arr,
                dst_dim,
            } => {
                let sg = self.eval_scalar(src_g, m, env)?.as_int();
                let dg = self.eval_scalar(dst_g, m, env)?.as_int();
                let dst_coord = self.dads[*dst_arr].dims[*dst_dim].proc_of(dg);
                let dad = self.dads[*src].clone();
                structured::transfer(
                    m,
                    &self.prog.arrays[*src].name,
                    &dad,
                    &self.prog.arrays[*tmp].name,
                    *dim,
                    sg,
                    dst_coord,
                )?;
                Ok(())
            }
            CommStmt::OverlapShift { arr, dim, c } => {
                let dad = self.dads[*arr].clone();
                driver::ghost_exchange(m, &self.prog.arrays[*arr].name, &dad, *dim, *c)?;
                Ok(())
            }
            CommStmt::TempShift {
                src,
                tmp,
                dim,
                amount,
            } => {
                let s = self.eval_scalar(amount, m, env)?.as_int();
                let dad = self.dads[*src].clone();
                structured::temporary_shift(
                    m,
                    &self.prog.arrays[*src].name,
                    &dad,
                    &self.prog.arrays[*tmp].name,
                    *dim,
                    s,
                    false,
                )?;
                Ok(())
            }
            CommStmt::MulticastShift {
                src,
                tmp,
                mdim,
                src_g,
                sdim,
                amount,
            } => {
                let g = self.eval_scalar(src_g, m, env)?.as_int();
                let s = self.eval_scalar(amount, m, env)?.as_int();
                let dad = self.dads[*src].clone();
                structured::multicast_shift(
                    m,
                    &self.prog.arrays[*src].name,
                    &dad,
                    &self.prog.arrays[*tmp].name,
                    *mdim,
                    g,
                    *sdim,
                    s,
                )?;
                Ok(())
            }
            CommStmt::Concat { src, tmp } => {
                let dad = self.dads[*src].clone();
                structured::concatenation(
                    m,
                    &self.prog.arrays[*src].name,
                    &dad,
                    &self.prog.arrays[*tmp].name,
                )?;
                Ok(())
            }
            CommStmt::BroadcastElem { arr, subs, target } => {
                let g: Vec<i64> = subs
                    .iter()
                    .map(|e| self.eval_scalar(e, m, env).map(|v| v.as_int()))
                    .collect::<EResult<_>>()?;
                let dad = &self.dads[*arr];
                let owner = dad.owner_ranks(&g)[0];
                let l = dad.local_index(&g);
                let v = m.mems[owner as usize]
                    .array(&self.prog.arrays[*arr].name)
                    .get(&l);
                // Tree broadcast of one element to all ranks.
                let members: Vec<i64> = (0..m.nranks()).collect();
                let root_pos = members.iter().position(|&r| r == owner).unwrap();
                let mut payload = f90d_machine::ArrayData::zeros(v.elem_type(), 1);
                payload.set(0, v);
                m.stats.record("broadcast_elem");
                f90d_comm::helpers::tree_broadcast(m, &members, root_pos, payload, |_, _, _| {})?;
                self.scalars.insert(target.clone(), v);
                Ok(())
            }
            CommStmt::ReduceScalar {
                kind,
                arr,
                arr2,
                target,
            } => {
                let a = self.dist_array(*arr);
                let v = match kind {
                    ReduceKind::Sum => Value::Real(rt::sum(m, &a)),
                    ReduceKind::Product => Value::Real(rt::product(m, &a)),
                    ReduceKind::MaxVal => Value::Real(rt::maxval(m, &a)),
                    ReduceKind::MinVal => Value::Real(rt::minval(m, &a)),
                    ReduceKind::Count => Value::Int(rt::count(m, &a)),
                    ReduceKind::All => Value::Bool(rt::all(m, &a)),
                    ReduceKind::Any => Value::Bool(rt::any(m, &a)),
                    ReduceKind::DotProduct => {
                        let b = self.dist_array(arr2.expect("dotproduct second operand"));
                        Value::Real(rt::dotproduct(m, &a, &b))
                    }
                };
                let v = if self.prog.arrays[*arr].ty == ElemType::Int
                    && matches!(
                        kind,
                        ReduceKind::Sum
                            | ReduceKind::Product
                            | ReduceKind::MaxVal
                            | ReduceKind::MinVal
                    ) {
                    Value::Int(v.as_real() as i64)
                } else {
                    v
                };
                self.scalars.insert(target.clone(), v);
                Ok(())
            }
        }
    }

    // ---- FORALL ------------------------------------------------------------

    fn exec_forall(&mut self, f: &ForallNode, m: &mut Machine, env: &mut Env) -> EResult<()> {
        self.exec_forall_inner(f, m, env, false)
    }

    /// FORALL body with an optional prelude skip: a phase lead already
    /// posted (and completed) this statement's ghost exchanges, so phase
    /// members run with `skip_pre` — which also bypasses the split-phase
    /// overlap path, whose post/finish would re-send the exchanges.
    fn exec_forall_inner(
        &mut self,
        f: &ForallNode,
        m: &mut Machine,
        env: &mut Env,
        skip_pre: bool,
    ) -> EResult<()> {
        if self.overlap && !skip_pre {
            if let Some(margins) = self.overlap_plan(f) {
                return self.exec_forall_overlap(f, m, env, &margins);
            }
        }
        // Communication prelude.
        if !skip_pre {
            for c in &f.pre {
                self.exec_comm(c, m, env)?;
            }
        }
        // Owner filter: which ranks participate.
        let mut active = vec![true; m.nranks() as usize];
        for (arr, dim, idx) in &f.owner_filter {
            let g = self.eval_scalar(idx, m, env)?.as_int();
            let dad = &self.dads[*arr];
            let dm = &dad.dims[*dim];
            let axis = dm.grid_axis.expect("owner filter on distributed dim");
            let owner = dm.proc_of(g);
            for rank in 0..m.nranks() {
                if m.grid.coords_of(rank)[axis] != owner {
                    active[rank as usize] = false;
                }
            }
        }
        // Per-rank iteration lists.
        let mut iter_lists: Vec<Vec<Vec<i64>>> = Vec::with_capacity(m.nranks() as usize);
        for rank in 0..m.nranks() {
            if !active[rank as usize] {
                iter_lists.push(vec![vec![]; f.vars.len()]);
                continue;
            }
            let mut lists = Vec::with_capacity(f.vars.len());
            for spec in &f.vars {
                lists.push(self.iterations_for(spec, m, rank, env)?);
            }
            iter_lists.push(lists);
        }
        // Unstructured reads: inspector + vectorized executor.
        for (slot, g) in f.gathers.iter().enumerate() {
            self.exec_gather(f, g, slot, m, env, &iter_lists)?;
        }
        // Main loop, rank by rank (loosely synchronous local phase).
        let scatter = f.body.iter().find_map(|b| match &b.write {
            WritePlan::ScatterSeq { invertible } => Some(*invertible),
            WritePlan::Owned => None,
        });
        let mut scatter_out: Vec<Vec<(Vec<i64>, Value)>> = vec![Vec::new(); m.nranks() as usize];
        for rank in 0..m.nranks() {
            let lists = &iter_lists[rank as usize];
            if lists.iter().any(|l| l.is_empty()) {
                continue;
            }
            let mut staged: Vec<(usize, Value)> = Vec::new();
            let ops = self.forall_rank_run(
                f,
                m,
                rank,
                env,
                lists,
                &mut staged,
                &mut scatter_out[rank as usize],
            )?;
            // Commit staged owned writes (FORALL RHS-before-LHS semantics
            // within the rank).
            if !staged.is_empty() {
                let name = &self.prog.arrays[f.body[0].arr].name;
                let arr = m.mems[rank as usize].array_mut(name);
                for (off, v) in staged {
                    arr.set_flat(off, v);
                }
            }
            m.transport.charge_elem_ops(rank, ops);
        }
        // Post-loop scatter (paper §4 cases 3/4).
        if let Some(invertible) = scatter {
            self.exec_scatter(f, m, invertible, &scatter_out)?;
        }
        Ok(())
    }

    /// Decide whether `f` is eligible for split-phase execution under
    /// `comm_compute_overlap`, and compute the per-loop-variable ghost
    /// margins if so.
    ///
    /// Eligible: the communication prelude is pure `overlap_shift` (the
    /// canonical BLOCK stencil case the paper's §5.1 overlap areas serve),
    /// no unstructured gathers, no owner filter, owned writes only, and
    /// every shifted dimension maps onto a stride-1 `OwnerDim` loop
    /// variable per the shared [`driver::stencil_margins`] geometry —
    /// that identity is what makes "iteration value within the owned
    /// block interior" imply "every shifted read stays owned". Anything
    /// else falls back to the blocking path (correct for every program;
    /// overlap is a pure virtual-time optimization).
    fn overlap_plan(&self, f: &ForallNode) -> Option<Margins> {
        if f.pre.is_empty() || !f.gathers.is_empty() || !f.owner_filter.is_empty() {
            return None;
        }
        if !f.body.iter().all(|b| matches!(b.write, WritePlan::Owned)) {
            return None;
        }
        let loop_dims: Vec<Option<&ArrayDimMap>> = f
            .vars
            .iter()
            .map(|spec| match &spec.part {
                Partition::OwnerDim {
                    arr: la,
                    dim: ld,
                    a: 1,
                    ..
                } => Some(&self.dads[*la].dims[*ld]),
                _ => None,
            })
            .collect();
        let mut shifts = Vec::with_capacity(f.pre.len());
        for c in &f.pre {
            let CommStmt::OverlapShift {
                arr,
                dim,
                c: amount,
            } = c
            else {
                return None;
            };
            shifts.push((&self.dads[*arr].dims[*dim], *amount));
        }
        driver::stencil_margins(&loop_dims, &shifts)
    }

    /// Split-phase stencil execution (paper §5.1/§7 latency hiding),
    /// sequenced by the shared [`driver::run_overlap`]: the driver posts
    /// the ghost exchanges, runs this backend's interior tree walk while
    /// the strips are on the wire, completes the exchanges, runs the
    /// boundary slabs, and commits — array results are bit-identical to
    /// the blocking path, only the virtual clocks differ.
    fn exec_forall_overlap(
        &mut self,
        f: &ForallNode,
        m: &mut Machine,
        env: &mut Env,
        margins: &Margins,
    ) -> EResult<()> {
        let mut shifts = Vec::with_capacity(f.pre.len());
        for c in &f.pre {
            let CommStmt::OverlapShift {
                arr,
                dim,
                c: amount,
            } = c
            else {
                unreachable!("overlap_plan admitted a non-shift prelude")
            };
            shifts.push(GhostSpec {
                arr: self.prog.arrays[*arr].name.clone(),
                dad: self.dads[*arr].clone(),
                dim: *dim,
                c: *amount,
            });
        }
        // Per-rank iteration lists (no owner filter by eligibility); the
        // driver splits them into interior/boundary via the shared
        // `f90d_comm::overlap` geometry.
        let nranks = m.nranks() as usize;
        let mut iter_lists: Vec<Vec<Vec<i64>>> = Vec::with_capacity(nranks);
        for rank in 0..m.nranks() {
            let mut lists = Vec::with_capacity(f.vars.len());
            for spec in &f.vars {
                lists.push(self.iterations_for(spec, m, rank, env)?);
            }
            iter_lists.push(lists);
        }
        let mut sink = TreeSink {
            ex: self,
            f,
            env,
            staged: vec![Vec::new(); nranks],
        };
        driver::run_overlap(m, &shifts, margins, &iter_lists, &mut sink)
    }

    /// One rank's element loop over the plain cartesian product of
    /// `lists` (the full owned iteration space, an interior sub-product,
    /// or one boundary slab). Owned writes are staged into `staged`
    /// (committed by the caller — after both phases under overlap);
    /// scatter writes accumulate into `scatter_out` for the post-loop
    /// executor. Returns the modelled element-operation cost.
    #[allow(clippy::too_many_arguments)]
    fn forall_rank_run(
        &self,
        f: &ForallNode,
        m: &Machine,
        rank: i64,
        env: &mut Env,
        lists: &[Vec<i64>],
        staged: &mut Vec<(usize, Value)>,
        scatter_out: &mut Vec<(Vec<i64>, Value)>,
    ) -> EResult<i64> {
        if lists.iter().any(|l| l.is_empty()) {
            return Ok(0);
        }
        let var_names: Vec<String> = f.vars.iter().map(|v| v.var.clone()).collect();
        let mask_ops = f.mask.as_ref().map_or(0, |m| m.op_count_cse(&var_names));
        let body_ops: Vec<i64> = f
            .body
            .iter()
            .map(|b| b.rhs.op_count_cse(&var_names) + 2)
            .collect();
        let mut seq_counters = vec![0usize; f.gathers.len()];
        let mut ops: i64 = 0;
        let mut cursor = vec![0usize; lists.len()];
        'iter: loop {
            for (spec, (&c, list)) in f.vars.iter().zip(cursor.iter().zip(lists)) {
                env.push(&spec.var, list[c]);
            }
            let mut run = true;
            if let Some(mask) = &f.mask {
                ops += mask_ops;
                run = self
                    .eval_elem(mask, m, rank, env, &mut seq_counters)?
                    .as_bool();
            }
            if run {
                for (bi, b) in f.body.iter().enumerate() {
                    let v = self.eval_elem(&b.rhs, m, rank, env, &mut seq_counters)?;
                    ops += body_ops[bi];
                    let g: Vec<i64> = b
                        .subs
                        .iter()
                        .map(|e| {
                            self.eval_elem(e, m, rank, env, &mut seq_counters)
                                .map(|x| x.as_int())
                        })
                        .collect::<EResult<_>>()?;
                    match &b.write {
                        WritePlan::Owned => {
                            let off = self.owned_offset(b.arr, m, rank, &g)?;
                            staged.push((off, v));
                        }
                        WritePlan::ScatterSeq { .. } => {
                            scatter_out.push((g, v));
                        }
                    }
                }
            }
            for _ in 0..f.vars.len() {
                env.pop();
            }
            // advance cartesian cursor (last var fastest)
            let mut d = lists.len();
            loop {
                if d == 0 {
                    break 'iter;
                }
                d -= 1;
                cursor[d] += 1;
                if cursor[d] < lists[d].len() {
                    break;
                }
                cursor[d] = 0;
            }
        }
        Ok(ops)
    }

    /// The iterations of `spec` assigned to `rank` — the `set_BOUND`
    /// computation (paper §4), returning **global** iteration values.
    fn iterations_for(
        &mut self,
        spec: &LoopSpec,
        m: &Machine,
        rank: i64,
        env: &mut Env,
    ) -> EResult<Vec<i64>> {
        let lb = self.eval_scalar_m(&spec.lb, m, env)?.as_int();
        let ub = self.eval_scalar_m(&spec.ub, m, env)?.as_int();
        let st = self.eval_scalar_m(&spec.st, m, env)?.as_int();
        if st <= 0 {
            return eerr("FORALL stride must be positive");
        }
        if lb > ub {
            return Ok(vec![]);
        }
        match &spec.part {
            Partition::Replicate => Ok((0..)
                .map(|k| lb + k * st)
                .take_while(|&v| v <= ub)
                .collect()),
            Partition::BlockIter => {
                let count = (ub - lb) / st + 1;
                let p = m.nranks();
                let chunk = (count + p - 1) / p;
                let first = rank * chunk;
                let last = ((rank + 1) * chunk).min(count);
                Ok((first..last).map(|k| lb + k * st).collect())
            }
            Partition::OwnerDim { arr, dim, a, b } => {
                let dad = &self.dads[*arr];
                let dm = &dad.dims[*dim];
                if !dm.is_distributed() {
                    return Ok((0..)
                        .map(|k| lb + k * st)
                        .take_while(|&v| v <= ub)
                        .collect());
                }
                let coord = m.grid.coords_of(rank)[dm.grid_axis.unwrap()];
                // Template progression t(v) = S*v + O.
                let s_align = dm.align.stride;
                let o_align = dm.align.offset;
                let s = s_align * a;
                let o = s_align * b + o_align;
                let t1 = s * lb + o;
                let t2 = s * ub + o;
                let (tlo, thi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
                let tstep = (s * st).abs();
                let li = set_bound(&dm.dist, coord, tlo, thi, tstep);
                let mut out = Vec::with_capacity(li.len() as usize);
                for l in li.to_vec() {
                    let t = dm
                        .dist
                        .global_of(coord, l)
                        .expect("set_bound local maps to global");
                    let num = t - o;
                    if num % s != 0 {
                        continue;
                    }
                    let v = num / s;
                    if v >= lb && v <= ub && (v - lb) % st == 0 {
                        out.push(v);
                    }
                }
                out.sort_unstable();
                Ok(out)
            }
        }
    }

    fn exec_gather(
        &mut self,
        f: &ForallNode,
        g: &GatherSpec,
        _slot: usize,
        m: &mut Machine,
        env: &mut Env,
        iter_lists: &[Vec<Vec<i64>>],
    ) -> EResult<()> {
        let src_name = self.prog.arrays[g.src].name.clone();
        let tmp_name = self.prog.arrays[g.tmp].name.clone();
        let src_dad = self.dads[g.src].clone();
        // Inspector: per rank, evaluate the subscripts for every local
        // iteration (in iteration order), forming the request list.
        let mut reqs: Vec<ElementReq> = Vec::new();
        let mut counts = vec![0usize; m.nranks() as usize];
        for rank in 0..m.nranks() {
            let lists = &iter_lists[rank as usize];
            if lists.iter().any(|l| l.is_empty()) {
                continue;
            }
            let mut dummy_counters = vec![usize::MAX; f.gathers.len()];
            let mut cursor = vec![0usize; lists.len()];
            let mut insp_ops = 0i64;
            'iter: loop {
                for (spec, (&c, list)) in f.vars.iter().zip(cursor.iter().zip(lists)) {
                    env.push(&spec.var, list[c]);
                }
                let mut run = true;
                if let Some(mask) = &f.mask {
                    // Masks must not depend on gathered values.
                    run = self
                        .eval_elem(mask, m, rank, env, &mut dummy_counters)?
                        .as_bool();
                }
                if run {
                    let gidx: Vec<i64> = g
                        .subs
                        .iter()
                        .map(|e| {
                            self.eval_elem(e, m, rank, env, &mut dummy_counters)
                                .map(|x| x.as_int())
                        })
                        .collect::<EResult<_>>()?;
                    insp_ops += 4;
                    let owner = src_dad.owner_ranks(&gidx)[0];
                    let l = src_dad.local_index(&gidx);
                    let src_off = m.mems[owner as usize].array(&src_name).offset(&l);
                    reqs.push(ElementReq {
                        requester: rank,
                        owner,
                        src_off,
                        dst_off: counts[rank as usize],
                    });
                    counts[rank as usize] += 1;
                }
                for _ in 0..f.vars.len() {
                    env.pop();
                }
                let mut d = lists.len();
                loop {
                    if d == 0 {
                        break 'iter;
                    }
                    d -= 1;
                    cursor[d] += 1;
                    if cursor[d] < lists[d].len() {
                        break;
                    }
                    cursor[d] = 0;
                }
            }
            m.transport.charge_elem_ops(rank, insp_ops);
        }
        // Size the sequential buffers.
        let ty = self.prog.arrays[g.tmp].ty;
        for rank in 0..m.nranks() {
            let n = counts[rank as usize].max(1) as i64;
            m.mems[rank as usize].insert_array(tmp_name.clone(), LocalArray::zeros(ty, &[n]));
        }
        // Schedule (per-run §7(3) reuse + cross-run cache); the driver
        // maps (fast_path, read) onto the schedule kind.
        let sched = driver::schedule(m, &mut self.sched, &reqs, g.local_only, false)?;
        schedule::execute_read(m, &sched, &src_name, &tmp_name)?;
        Ok(())
    }

    fn exec_scatter(
        &mut self,
        f: &ForallNode,
        m: &mut Machine,
        invertible: bool,
        outputs: &[Vec<(Vec<i64>, Value)>],
    ) -> EResult<()> {
        let body = &f.body[0];
        let dst = body.arr;
        let dst_name = self.prog.arrays[dst].name.clone();
        let dst_dad = self.dads[dst].clone();
        let ty = self.prog.arrays[dst].ty;
        // Stage values into per-rank sequential source buffers.
        let buf_name = format!("__SCATBUF_{}", dst_name);
        for rank in 0..m.nranks() {
            let vals = &outputs[rank as usize];
            let mut la = LocalArray::zeros(ty, &[vals.len().max(1) as i64]);
            for (k, (_, v)) in vals.iter().enumerate() {
                la.set(&[k as i64], *v);
            }
            m.mems[rank as usize].insert_array(buf_name.clone(), la);
        }
        let mut reqs = Vec::new();
        for rank in 0..m.nranks() {
            for (k, (g, _)) in outputs[rank as usize].iter().enumerate() {
                let src_off = m.mems[rank as usize].array(&buf_name).offset(&[k as i64]);
                for owner in dst_dad.owner_ranks(g) {
                    let l = dst_dad.local_index(g);
                    let dst_off = m.mems[owner as usize].array(&dst_name).offset(&l);
                    reqs.push(ElementReq {
                        // For write schedules the "requester" is the
                        // receiving owner and the "owner" the producer.
                        requester: owner,
                        owner: rank,
                        src_off,
                        dst_off,
                    });
                }
            }
        }
        let sched = driver::schedule(m, &mut self.sched, &reqs, invertible, true)?;
        schedule::execute_write(m, &sched, &buf_name, &dst_name)?;
        Ok(())
    }

    // ---- evaluation ----------------------------------------------------------

    /// Offset of global index `g` in `rank`'s segment of array `arr`,
    /// allowing ghost positions on BLOCK dimensions.
    fn owned_offset(&self, arr: ArrId, m: &Machine, rank: i64, g: &[i64]) -> EResult<usize> {
        let dad = &self.dads[arr];
        let coords = m.grid.coords_of(rank);
        let name = &self.prog.arrays[arr].name;
        let la = m.mems[rank as usize].array(name);
        let mut idx = Vec::with_capacity(g.len());
        for (d, (&gd, dm)) in g.iter().zip(&dad.dims).enumerate() {
            if !(0..dm.extent).contains(&gd) {
                return eerr(format!(
                    "subscript {} out of bounds on dim {d} of {name} (extent {})",
                    gd + 1,
                    dm.extent
                ));
            }
            if !dm.is_distributed() {
                idx.push(gd);
                continue;
            }
            let coord = coords[dm.grid_axis.unwrap()];
            let t = dm.align.apply(gd);
            let l = match dm.dist.kind {
                DistKind::Block => t - coord * dm.dist.block_size(),
                _ => {
                    if dm.dist.proc_of(t) != coord {
                        return eerr(format!(
                            "rank {rank} reads unowned element {:?} of {name}",
                            g
                        ));
                    }
                    dm.dist.local_of(t)
                }
            };
            idx.push(l);
        }
        Ok(la.offset(&idx))
    }

    /// Evaluate in scalar (replicated) context.
    fn eval_scalar(&self, e: &SExpr, m: &Machine, env: &Env) -> EResult<Value> {
        self.eval_scalar_m(e, m, env)
    }

    fn eval_scalar_m(&self, e: &SExpr, m: &Machine, env: &Env) -> EResult<Value> {
        match e {
            SExpr::Const(v) => Ok(*v),
            SExpr::Scalar(n) => {
                // Enclosing DO variables shadow declared scalars.
                if let Some(v) = env.get(n) {
                    return Ok(Value::Int(v));
                }
                self.scalars
                    .get(n)
                    .copied()
                    .ok_or_else(|| ExecError(format!("undefined scalar `{n}`")))
            }
            SExpr::LoopVar(n) => env
                .get(n)
                .map(Value::Int)
                .ok_or_else(|| ExecError(format!("loop variable `{n}` not in scope"))),
            SExpr::Bin(op, l, r) => {
                let a = self.eval_scalar_m(l, m, env)?;
                let b = self.eval_scalar_m(r, m, env)?;
                eval_bin(*op, a, b)
            }
            SExpr::Un(op, x) => eval_un(*op, self.eval_scalar_m(x, m, env)?),
            SExpr::Elemental(name, args) => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| self.eval_scalar_m(a, m, env))
                    .collect::<EResult<_>>()?;
                eval_elemental(name, &vals)
            }
            SExpr::Read { arr, plan, subs } => {
                // Scalar-context reads are only emitted for replicated
                // arrays: every rank holds the value; read from rank 0.
                if !matches!(plan, ReadPlan::Replicated | ReadPlan::Owned) {
                    return eerr("non-replicated read in scalar context");
                }
                let g: Vec<i64> = subs
                    .iter()
                    .map(|s| self.eval_scalar_m(s, m, env).map(|v| v.as_int()))
                    .collect::<EResult<_>>()?;
                let dad = &self.dads[*arr];
                let rank = dad.owner_ranks(&g)[0];
                let l = dad.local_index(&g);
                Ok(m.mems[rank as usize]
                    .array(&self.prog.arrays[*arr].name)
                    .get(&l))
            }
        }
    }

    /// Evaluate in element (per-rank, per-iteration) context.
    fn eval_elem(
        &self,
        e: &SExpr,
        m: &Machine,
        rank: i64,
        env: &Env,
        seq_counters: &mut [usize],
    ) -> EResult<Value> {
        match e {
            SExpr::Const(v) => Ok(*v),
            SExpr::Scalar(n) => {
                if let Some(v) = env.get(n) {
                    return Ok(Value::Int(v));
                }
                self.scalars
                    .get(n)
                    .copied()
                    .ok_or_else(|| ExecError(format!("undefined scalar `{n}`")))
            }
            SExpr::LoopVar(n) => env
                .get(n)
                .map(Value::Int)
                .ok_or_else(|| ExecError(format!("loop variable `{n}` not in scope"))),
            SExpr::Bin(op, l, r) => {
                let a = self.eval_elem(l, m, rank, env, seq_counters)?;
                let b = self.eval_elem(r, m, rank, env, seq_counters)?;
                eval_bin(*op, a, b)
            }
            SExpr::Un(op, x) => eval_un(*op, self.eval_elem(x, m, rank, env, seq_counters)?),
            SExpr::Elemental(name, args) => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| self.eval_elem(a, m, rank, env, seq_counters))
                    .collect::<EResult<_>>()?;
                eval_elemental(name, &vals)
            }
            SExpr::Read { arr, plan, subs } => match plan {
                ReadPlan::Owned | ReadPlan::Replicated => {
                    let g: Vec<i64> = subs
                        .iter()
                        .map(|s| {
                            self.eval_elem(s, m, rank, env, seq_counters)
                                .map(|v| v.as_int())
                        })
                        .collect::<EResult<_>>()?;
                    let off = self.owned_offset(*arr, m, rank, &g)?;
                    Ok(m.mems[rank as usize]
                        .array(&self.prog.arrays[*arr].name)
                        .get_flat(off))
                }
                ReadPlan::SlabTmp { tmp, fixed_dim } => {
                    // Shared rank-1 slab-temp contract: `None` means the
                    // slab is the single dummy extent-1 dimension
                    // `slab_dad` padded in, read at zero.
                    let g: Vec<i64> = match driver::slab_kept_dims(subs.len(), *fixed_dim) {
                        Some(kept) => kept
                            .into_iter()
                            .map(|d| {
                                self.eval_elem(&subs[d], m, rank, env, seq_counters)
                                    .map(|v| v.as_int())
                            })
                            .collect::<EResult<_>>()?,
                        None => vec![0],
                    };
                    let off = self.owned_offset(*tmp, m, rank, &g)?;
                    Ok(m.mems[rank as usize]
                        .array(&self.prog.arrays[*tmp].name)
                        .get_flat(off))
                }
                ReadPlan::SameTmp { tmp } => {
                    let g: Vec<i64> = subs
                        .iter()
                        .map(|s| {
                            self.eval_elem(s, m, rank, env, seq_counters)
                                .map(|v| v.as_int())
                        })
                        .collect::<EResult<_>>()?;
                    let off = self.owned_offset(*tmp, m, rank, &g)?;
                    Ok(m.mems[rank as usize]
                        .array(&self.prog.arrays[*tmp].name)
                        .get_flat(off))
                }
                ReadPlan::Seq { tmp, slot } => {
                    let k = seq_counters[*slot];
                    seq_counters[*slot] += 1;
                    Ok(m.mems[rank as usize]
                        .array(&self.prog.arrays[*tmp].name)
                        .get(&[k as i64]))
                }
            },
        }
    }
}

/// The tree walker's [`ComputeSink`]: the shared driver decides *when*
/// ghost exchanges post, complete, and commit; this sink supplies *how*
/// the interior/boundary element loops evaluate (the plain tree walk of
/// [`Executor::forall_rank_run`]) and how their cost is charged —
/// interior per rank as usual, each rank's boundary slabs as one lump
/// (the VM engine sums identically, keeping backend virtual time
/// bit-equal).
struct TreeSink<'a, 'p> {
    ex: &'a Executor<'p>,
    f: &'a ForallNode,
    env: &'a mut Env,
    staged: Vec<Vec<(usize, Value)>>,
}

impl ComputeSink for TreeSink<'_, '_> {
    type Error = ExecError;

    fn interior(&mut self, m: &mut Machine, lists: &[Vec<Vec<i64>>]) -> EResult<()> {
        for rank in 0..m.nranks() {
            // Overlap-eligible FORALLs have owned writes only.
            let mut no_scatter = Vec::new();
            let ops = self.ex.forall_rank_run(
                self.f,
                m,
                rank,
                self.env,
                &lists[rank as usize],
                &mut self.staged[rank as usize],
                &mut no_scatter,
            )?;
            m.transport.charge_elem_ops(rank, ops);
        }
        Ok(())
    }

    fn boundary(&mut self, m: &mut Machine, slabs: &[Vec<Vec<Vec<i64>>>]) -> EResult<()> {
        for rank in 0..m.nranks() {
            let mut no_scatter = Vec::new();
            let mut ops = 0;
            for slab in &slabs[rank as usize] {
                ops += self.ex.forall_rank_run(
                    self.f,
                    m,
                    rank,
                    self.env,
                    slab,
                    &mut self.staged[rank as usize],
                    &mut no_scatter,
                )?;
            }
            m.transport.charge_elem_ops(rank, ops);
        }
        Ok(())
    }

    fn commit(&mut self, m: &mut Machine) -> EResult<()> {
        let name = &self.ex.prog.arrays[self.f.body[0].arr].name;
        for (rank, writes) in std::mem::take(&mut self.staged).into_iter().enumerate() {
            if writes.is_empty() {
                continue;
            }
            let arr = m.mems[rank].array_mut(name);
            for (off, v) in writes {
                arr.set_flat(off, v);
            }
        }
        Ok(())
    }
}

// ---- value operators ---------------------------------------------------
//
// Operator semantics live in `f90d_vm::ops`, shared with the bytecode
// engine so the two backends cannot drift apart.

/// Public alias of the value-level binary evaluator (shared with the
/// sequential reference interpreter).
pub fn eval_bin_pub(op: BinOp, a: Value, b: Value) -> EResult<Value> {
    eval_bin(op, a, b)
}

/// Public alias of the unary evaluator.
pub fn eval_un_pub(op: UnOp, v: Value) -> EResult<Value> {
    eval_un(op, v)
}

/// Public alias of the elemental-intrinsic evaluator.
pub fn eval_elemental_pub(name: &str, args: &[Value]) -> EResult<Value> {
    eval_elemental(name, args)
}

fn eval_bin(op: BinOp, a: Value, b: Value) -> EResult<Value> {
    f90d_vm::ops::eval_bin(op, a, b).map_err(ExecError)
}

fn eval_un(op: UnOp, v: Value) -> EResult<Value> {
    f90d_vm::ops::eval_un(op, v).map_err(ExecError)
}

fn eval_elemental(name: &str, args: &[Value]) -> EResult<Value> {
    f90d_vm::ops::eval_elemental(name, args).map_err(ExecError)
}
