//! # f90d-core — the Fortran 90D/HPF compiler
//!
//! The paper's primary contribution (its Figure 1 pipeline):
//!
//! ```text
//! Fortran 90D/HPF source
//!   → lexer & parser                 (f90d-frontend)
//!   → normalization to FORALL form   (f90d-frontend::normalize)
//!   → data partitioning              (codegen → f90d-distrib DADs)
//!   → computation partitioning       (codegen, paper §4: owner computes,
//!                                     set_BOUND, non-canonical fallbacks)
//!   → communication detection        (detect, Algorithm 1 + Tables 1/2)
//!   → communication insertion        (codegen → collective calls)
//!   → optimization                   (optimize, paper §7)
//!   → SPMD node program              (ir; displayable as Fortran 77+MP
//!                                     via fortran_out)
//! ```
//!
//! Execution is loosely synchronous over a simulated MIMD machine
//! ([`exec::Executor`] on a [`f90d_machine::Machine`]); correctness is
//! checked against the sequential [`mod@reference`] interpreter.
//!
//! ## Quick example
//!
//! ```
//! use f90d_core::{compile, CompileOptions};
//! use f90d_machine::{Machine, MachineSpec};
//! use f90d_distrib::ProcGrid;
//!
//! let src = "
//! PROGRAM JACOBI1
//! INTEGER, PARAMETER :: N = 16
//! REAL A(N), B(N)
//! C$ PROCESSORS P(4)
//! C$ TEMPLATE T(N)
//! C$ ALIGN A(I) WITH T(I)
//! C$ ALIGN B(I) WITH T(I)
//! C$ DISTRIBUTE T(BLOCK)
//! FORALL (I=1:N) B(I) = 1.0
//! FORALL (I=2:N-1) A(I) = 0.5*(B(I-1) + B(I+1))
//! END
//! ";
//! let compiled = compile(src, &CompileOptions::default()).unwrap();
//! let mut machine = Machine::new(MachineSpec::ipsc860(), ProcGrid::new(&[4]));
//! let report = compiled.run_on(&mut machine).unwrap();
//! assert!(report.elapsed > 0.0);
//! ```

#![warn(missing_docs)]

pub mod codegen;
pub mod detect;
pub mod exec;
pub mod fortran_out;
pub mod ir;
pub mod optimize;
pub mod options;
pub mod reference;

use f90d_frontend::sema::AnalyzedProgram;
use f90d_machine::Machine;

pub use exec::{ExecReport, Executor};
pub use options::{CompileOptions, OptFlags};

/// A compiled program: the SPMD IR plus the analyzed source it came from.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The SPMD node program.
    pub spmd: ir::SProgram,
    /// The analyzed + normalized front-end form (kept for the reference
    /// interpreter and for diagnostics).
    pub analyzed: AnalyzedProgram,
    /// The options it was compiled with.
    pub options: CompileOptions,
}

impl Compiled {
    /// Execute on a machine (which must have the compiled grid shape).
    /// Arrays start zero-initialized; use [`Executor`] directly to seed
    /// inputs first.
    pub fn run_on(&self, m: &mut Machine) -> Result<ExecReport, exec::ExecError> {
        let mut ex = Executor::new(&self.spmd, m);
        ex.schedule_reuse = self.options.opt.schedule_reuse;
        ex.run(m)
    }

    /// Render the generated node program as Fortran 77 + MP text.
    pub fn fortran77(&self) -> String {
        fortran_out::to_fortran77(&self.spmd)
    }
}

/// Compile Fortran 90D/HPF source text.
pub fn compile(source: &str, opts: &CompileOptions) -> Result<Compiled, String> {
    let analyzed = f90d_frontend::compile_front(source)?;
    let mut spmd = codegen::lower(&analyzed, opts).map_err(|e| e.to_string())?;
    optimize::optimize(&mut spmd, &opts.opt);
    Ok(Compiled {
        spmd,
        analyzed,
        options: opts.clone(),
    })
}
