//! # f90d-core — the Fortran 90D/HPF compiler
//!
//! The paper's primary contribution (its Figure 1 pipeline):
//!
//! ```text
//! Fortran 90D/HPF source
//!   → lexer & parser                 (f90d-frontend)
//!   → normalization to FORALL form   (f90d-frontend::normalize)
//!   → data partitioning              (codegen → f90d-distrib DADs)
//!   → computation partitioning       (codegen, paper §4: owner computes,
//!                                     set_BOUND, non-canonical fallbacks)
//!   → communication detection        (detect, Algorithm 1 + Tables 1/2)
//!   → communication insertion        (codegen → collective calls)
//!   → optimization                   (optimize, paper §7)
//!   → SPMD node program              (ir; displayable as Fortran 77+MP
//!                                     via fortran_out)
//! ```
//!
//! Execution is loosely synchronous over a simulated MIMD machine
//! ([`exec::Executor`] on a [`f90d_machine::Machine`]); correctness is
//! checked against the sequential [`mod@reference`] interpreter.
//!
//! ## Quick example
//!
//! ```
//! use f90d_core::{compile, CompileOptions};
//! use f90d_machine::{Machine, MachineSpec};
//! use f90d_distrib::ProcGrid;
//!
//! let src = "
//! PROGRAM JACOBI1
//! INTEGER, PARAMETER :: N = 16
//! REAL A(N), B(N)
//! C$ PROCESSORS P(4)
//! C$ TEMPLATE T(N)
//! C$ ALIGN A(I) WITH T(I)
//! C$ ALIGN B(I) WITH T(I)
//! C$ DISTRIBUTE T(BLOCK)
//! FORALL (I=1:N) B(I) = 1.0
//! FORALL (I=2:N-1) A(I) = 0.5*(B(I-1) + B(I+1))
//! END
//! ";
//! let compiled = compile(src, &CompileOptions::default()).unwrap();
//! let mut machine = Machine::new(MachineSpec::ipsc860(), ProcGrid::new(&[4]));
//! let report = compiled.run_on(&mut machine).unwrap();
//! assert!(report.elapsed > 0.0);
//! ```

#![warn(missing_docs)]

pub mod codegen;
pub mod detect;
pub mod exec;
pub mod fortran_out;
pub mod ir;
pub mod optimize;
pub mod options;
pub mod reference;
pub mod vmlower;

use std::sync::{Arc, OnceLock};

use f90d_frontend::sema::AnalyzedProgram;
use f90d_machine::Machine;
use f90d_vm::cache::fnv1a;
use f90d_vm::{ProgramCache, VmProgram};

pub use exec::{ExecReport, Executor};
pub use options::{Backend, CompileOptions, OptFlags};

/// A compiled program: the SPMD IR plus the analyzed source it came from.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The SPMD node program.
    pub spmd: ir::SProgram,
    /// The analyzed + normalized front-end form (kept for the reference
    /// interpreter and for diagnostics).
    pub analyzed: AnalyzedProgram,
    /// The options it was compiled with.
    pub options: CompileOptions,
    /// Hash of the source text — with the options and grid it keys the
    /// bytecode program cache.
    pub source_hash: u64,
}

/// Per-run cache outcomes of one [`Compiled::run_on_traced`] call. The
/// parallel repro harness records this per matrix cell.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunTrace {
    /// Bytecode program-cache outcome: `Some(true)` hit, `Some(false)`
    /// this run performed the lowering, `None` not consulted (tree walk).
    pub program_cache_hit: Option<bool>,
    /// Cross-run schedule-cache hits (first-per-run patterns found
    /// already built by an earlier run).
    pub sched_hits: u64,
    /// Cross-run schedule-cache misses (inspector builds performed).
    pub sched_misses: u64,
    /// Pool workers the machine held for this run's local phases (0 =
    /// sequential, either by mode or because the process-wide worker
    /// budget was exhausted when the machine leased). Serve telemetry
    /// and `results.json` report this per request/cell.
    pub workers: usize,
    /// FORALL executions dispatched to a native-tier kernel (VM backend
    /// only; always 0 for the tree walker). Informational — the tiers
    /// are bit-identical on every virtual metric.
    pub native_matched: u64,
    /// FORALL executions that ran the bytecode element loop instead: no
    /// kernel was selected at lowering, a dispatch precondition failed,
    /// or the overlap split-phase path ran.
    pub native_fallback: u64,
    /// Comm phases the shared driver posted as one batched, coalesced
    /// ghost exchange (`comm_plan` on; both backends). Informational —
    /// the driver's fallback contract keeps results bit-identical.
    pub comm_groups: u64,
    /// Comm phases the driver refused (planning failed — e.g. mixed
    /// element types) and re-ran statement-by-statement instead.
    pub comm_fallbacks: u64,
}

impl Compiled {
    /// Execute on a machine (which must have the compiled grid shape)
    /// with the backend selected in [`CompileOptions::backend`]. Arrays
    /// start zero-initialized; use [`Executor`] (tree walk) or
    /// [`f90d_vm::Engine`] over [`Compiled::vm_program`] directly to seed
    /// inputs first.
    pub fn run_on(&self, m: &mut Machine) -> Result<ExecReport, exec::ExecError> {
        self.run_on_traced(m).map(|(rep, _)| rep)
    }

    /// [`Compiled::run_on`] that also reports the run's cache outcomes:
    /// the bytecode program-cache lookup (VM backend only) and the
    /// cross-run schedule-cache hit/miss counts (both backends).
    pub fn run_on_traced(
        &self,
        m: &mut Machine,
    ) -> Result<(ExecReport, RunTrace), exec::ExecError> {
        match self.options.backend {
            Backend::TreeWalk => {
                let mut ex = Executor::new(&self.spmd, m);
                ex.sched.reuse = self.options.opt.schedule_reuse;
                ex.sched.use_global = self.options.sched_cache;
                ex.overlap = self.options.opt.comm_compute_overlap;
                ex.plan = self.options.opt.comm_plan;
                ex.exec = self.options.exec_mode;
                let rep = ex.run(m)?;
                let (comm_groups, comm_fallbacks) = ex.comm.counts();
                Ok((
                    rep,
                    RunTrace {
                        program_cache_hit: None,
                        sched_hits: ex.sched.hits(),
                        sched_misses: ex.sched.misses(),
                        workers: m.workers(),
                        native_matched: 0,
                        native_fallback: 0,
                        comm_groups,
                        comm_fallbacks,
                    },
                ))
            }
            Backend::Vm => {
                let (prog, hit) = self.vm_program_traced().map_err(exec::ExecError)?;
                let mut eng = f90d_vm::Engine::new(prog, m);
                eng.sched.reuse = self.options.opt.schedule_reuse;
                eng.sched.use_global = self.options.sched_cache;
                eng.overlap = self.options.opt.comm_compute_overlap;
                eng.plan = self.options.opt.comm_plan;
                eng.exec = self.options.exec_mode;
                let rep = eng.run(m).map_err(|e| exec::ExecError(e.0))?;
                let (native_matched, native_fallback) = eng.native_counts();
                let (comm_groups, comm_fallbacks) = eng.comm.counts();
                Ok((
                    ExecReport {
                        elapsed: rep.elapsed,
                        messages: rep.messages,
                        bytes: rep.bytes,
                        printed: rep.printed,
                    },
                    RunTrace {
                        program_cache_hit: Some(hit),
                        sched_hits: eng.sched.hits(),
                        sched_misses: eng.sched.misses(),
                        workers: m.workers(),
                        native_matched,
                        native_fallback,
                        comm_groups,
                        comm_fallbacks,
                    },
                ))
            }
        }
    }

    /// The lowered bytecode program, via the global cache keyed by
    /// (source hash, options, grid): repeated runs skip lowering.
    pub fn vm_program(&self) -> Result<Arc<VmProgram>, String> {
        self.vm_program_traced().map(|(p, _)| p)
    }

    /// [`Compiled::vm_program`] that also reports whether the lookup was
    /// a cache hit.
    pub fn vm_program_traced(&self) -> Result<(Arc<VmProgram>, bool), String> {
        vm_cache().get_or_lower_traced(self.vm_cache_key(), || {
            vmlower::lower_with(&self.spmd, self.options.opt.native_kernels)
        })
    }

    fn vm_cache_key(&self) -> u64 {
        // Exhaustive destructuring: adding an OptFlags field without
        // extending the cache key is a compile error, not a silent
        // cross-configuration cache hit.
        let OptFlags {
            merge_comm,
            schedule_reuse,
            fuse_multicast_shift,
            hoist_invariant_comm,
            overlap_shift,
            comm_compute_overlap,
            comm_plan,
            native_kernels,
        } = self.options.opt;
        let mut bytes = self.source_hash.to_le_bytes().to_vec();
        for flag in [
            merge_comm,
            schedule_reuse,
            fuse_multicast_shift,
            hoist_invariant_comm,
            overlap_shift,
            comm_compute_overlap,
            comm_plan,
            native_kernels,
        ] {
            bytes.push(flag as u8);
        }
        for e in &self.spmd.grid_shape {
            bytes.extend_from_slice(&e.to_le_bytes());
        }
        fnv1a(&bytes)
    }

    /// Render the generated node program as Fortran 77 + MP text.
    pub fn fortran77(&self) -> String {
        fortran_out::to_fortran77(&self.spmd)
    }
}

/// The process-wide bytecode program cache.
pub fn vm_cache() -> &'static ProgramCache {
    static CACHE: OnceLock<ProgramCache> = OnceLock::new();
    CACHE.get_or_init(ProgramCache::new)
}

// The parallel repro harness compiles once and runs the same `Compiled`
// from many workers sharing one `ProgramCache`; losing either bound (for
// example by putting an `Rc` in the IR) is a compile error here, not a
// runtime surprise there.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Compiled>();
    assert_send_sync::<ProgramCache>();
    assert_send_sync::<Arc<VmProgram>>();
};

/// Compile Fortran 90D/HPF source text.
pub fn compile(source: &str, opts: &CompileOptions) -> Result<Compiled, String> {
    let analyzed = f90d_frontend::compile_front(source)?;
    let mut spmd = codegen::lower(&analyzed, opts).map_err(|e| e.to_string())?;
    optimize::optimize(&mut spmd, &opts.opt);
    Ok(Compiled {
        spmd,
        analyzed,
        options: opts.clone(),
        source_hash: fnv1a(source.as_bytes()),
    })
}
