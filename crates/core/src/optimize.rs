//! Communication optimizations on the SPMD IR (paper §7).
//!
//! * **Duplicate-communication elimination** (§7 optimization 2): two RHS
//!   references that induce the same primitive with the same arguments
//!   inside one FORALL share a single call and temporary — e.g.
//!   `A(I) = B(I+2) + B(I+3)` needs only the wider of the two overlap
//!   shifts, and the Gaussian-elimination kernel's `A(I,K)` and `A(K,K)`
//!   share one column multicast.
//! * **Invariant-communication hoisting** (§7 optimization 4): collective
//!   calls whose arguments do not depend on an enclosing sequential DO
//!   variable and whose source is not written in the loop move out of the
//!   loop (definition-use code motion).
//!
//! (§7 optimization 1, message vectorization, is inherent in the
//! collective primitives; §7 optimization 3, schedule reuse, lives in the
//! executor's schedule cache; the §5.1/§7 communication–computation
//! overlap, [`OptFlags::comm_compute_overlap`], is an execution strategy
//! rather than an IR rewrite — the executors split eligible
//! `overlap_shift` stencil FORALLs into ghost-post → interior →
//! complete → boundary phases at run time, so this pass leaves the
//! statement tree untouched for it.)

use std::collections::{HashMap, HashSet};

use crate::ir::*;
use crate::options::OptFlags;

/// Run the enabled passes.
pub fn optimize(prog: &mut SProgram, flags: &OptFlags) {
    if flags.merge_comm {
        merge_comm(prog);
    }
    if flags.hoist_invariant_comm {
        let mut stmts = std::mem::take(&mut prog.stmts);
        hoist_stmts(&mut stmts, prog);
        prog.stmts = stmts;
    }
}

// ---- duplicate-communication elimination --------------------------------

fn merge_comm(prog: &mut SProgram) {
    let mut stmts = std::mem::take(&mut prog.stmts);
    merge_in(&mut stmts);
    prog.stmts = stmts;
}

fn merge_in(stmts: &mut [SStmt]) {
    for s in stmts {
        match s {
            SStmt::Forall(f) => merge_forall(f),
            SStmt::DoSeq { body, .. } => merge_in(body),
            SStmt::If { then, else_, .. } => {
                merge_in(then);
                merge_in(else_);
            }
            _ => {}
        }
    }
}

/// Key identifying a comm statement up to its temporary.
fn comm_key(c: &CommStmt) -> Option<(String, Option<ArrId>)> {
    match c {
        CommStmt::Multicast {
            src, dim, src_g, ..
        } => Some((format!("mc:{src}:{dim}:{src_g:?}"), None)),
        CommStmt::Transfer {
            src,
            dim,
            src_g,
            dst_g,
            dst_arr,
            dst_dim,
            ..
        } => Some((
            format!("xf:{src}:{dim}:{src_g:?}:{dst_g:?}:{dst_arr}:{dst_dim}"),
            None,
        )),
        CommStmt::TempShift {
            src, dim, amount, ..
        } => Some((format!("ts:{src}:{dim}:{amount:?}"), None)),
        CommStmt::MulticastShift {
            src,
            mdim,
            src_g,
            sdim,
            amount,
            ..
        } => Some((format!("ms:{src}:{mdim}:{src_g:?}:{sdim}:{amount:?}"), None)),
        CommStmt::Concat { src, .. } => Some((format!("cc:{src}"), None)),
        // Overlap shifts merge by (arr, dim, sign) keeping the widest.
        CommStmt::OverlapShift { .. } => None,
        CommStmt::BroadcastElem { .. } | CommStmt::ReduceScalar { .. } => None,
    }
}

fn comm_tmp(c: &CommStmt) -> Option<ArrId> {
    match c {
        CommStmt::Multicast { tmp, .. }
        | CommStmt::Transfer { tmp, .. }
        | CommStmt::TempShift { tmp, .. }
        | CommStmt::MulticastShift { tmp, .. }
        | CommStmt::Concat { tmp, .. } => Some(*tmp),
        _ => None,
    }
}

fn merge_forall(f: &mut ForallNode) {
    let mut seen: HashMap<String, ArrId> = HashMap::new();
    let mut remap: HashMap<ArrId, ArrId> = HashMap::new();
    let mut kept: Vec<CommStmt> = Vec::new();
    // Widest overlap shift per (arr, dim, sign).
    let mut widest: HashMap<(ArrId, usize, bool), i64> = HashMap::new();
    for c in &f.pre {
        if let CommStmt::OverlapShift {
            arr,
            dim,
            c: amount,
        } = c
        {
            let key = (*arr, *dim, *amount > 0);
            let e = widest.entry(key).or_insert(0);
            if amount.abs() > e.abs() {
                *e = *amount;
            }
        }
    }
    let mut emitted_shift: HashSet<(ArrId, usize, bool)> = HashSet::new();
    for c in f.pre.drain(..) {
        match &c {
            CommStmt::OverlapShift {
                arr,
                dim,
                c: amount,
            } => {
                let key = (*arr, *dim, *amount > 0);
                if emitted_shift.insert(key) {
                    kept.push(CommStmt::OverlapShift {
                        arr: *arr,
                        dim: *dim,
                        c: widest[&key],
                    });
                }
            }
            other => match comm_key(other) {
                Some((key, _)) => {
                    let tmp = comm_tmp(other);
                    if let Some(&prev_tmp) = seen.get(&key) {
                        if let Some(t) = tmp {
                            remap.insert(t, prev_tmp);
                        }
                    } else {
                        if let Some(t) = tmp {
                            seen.insert(key, t);
                        }
                        kept.push(c);
                    }
                }
                None => kept.push(c),
            },
        }
    }
    f.pre = kept;
    if remap.is_empty() {
        return;
    }
    // Rewrite reads of dropped temporaries.
    for b in &mut f.body {
        remap_expr(&mut b.rhs, &remap);
        for s in &mut b.subs {
            remap_expr(s, &remap);
        }
    }
    if let Some(mask) = &mut f.mask {
        remap_expr(mask, &remap);
    }
}

fn remap_expr(e: &mut SExpr, remap: &HashMap<ArrId, ArrId>) {
    match e {
        SExpr::Read { arr, plan, subs } => {
            if let Some(&n) = remap.get(arr) {
                *arr = n;
            }
            match plan {
                ReadPlan::SlabTmp { tmp, .. }
                | ReadPlan::SameTmp { tmp }
                | ReadPlan::Seq { tmp, .. } => {
                    if let Some(&n) = remap.get(tmp) {
                        *tmp = n;
                    }
                }
                _ => {}
            }
            for s in subs {
                remap_expr(s, remap);
            }
        }
        SExpr::Bin(_, l, r) => {
            remap_expr(l, remap);
            remap_expr(r, remap);
        }
        SExpr::Un(_, x) => remap_expr(x, remap),
        SExpr::Elemental(_, args) => {
            for a in args {
                remap_expr(a, remap);
            }
        }
        _ => {}
    }
}

// ---- invariant-communication hoisting ------------------------------------

fn hoist_stmts(stmts: &mut Vec<SStmt>, prog: &SProgram) {
    let mut k = 0;
    while k < stmts.len() {
        // Recurse first (innermost loops hoist before outer ones).
        match &mut stmts[k] {
            SStmt::DoSeq { body, .. } => hoist_stmts(body, prog),
            SStmt::If { then, else_, .. } => {
                hoist_stmts(then, prog);
                hoist_stmts(else_, prog);
            }
            _ => {}
        }
        if let SStmt::DoSeq { var, body, .. } = &mut stmts[k] {
            let written = written_arrays(body);
            let var = var.clone();
            let mut hoisted: Vec<SStmt> = Vec::new();
            let mut hoisted_tmps: HashSet<ArrId> = HashSet::new();
            for st in body.iter_mut() {
                if let SStmt::Forall(f) = st {
                    let mut keep = Vec::new();
                    for c in f.pre.drain(..) {
                        if comm_invariant(&c, &var, &written, &hoisted_tmps, prog) {
                            if let Some(t) = comm_tmp(&c) {
                                hoisted_tmps.insert(t);
                            }
                            hoisted.push(SStmt::Comm(c));
                        } else {
                            keep.push(c);
                        }
                    }
                    f.pre = keep;
                }
            }
            if !hoisted.is_empty() {
                for (off, h) in hoisted.into_iter().enumerate() {
                    stmts.insert(k + off, h);
                    k += 1;
                }
            }
        }
        k += 1;
    }
}

fn comm_invariant(
    c: &CommStmt,
    do_var: &str,
    written: &HashSet<ArrId>,
    hoisted_tmps: &HashSet<ArrId>,
    prog: &SProgram,
) -> bool {
    let src_ok = |id: ArrId| {
        !written.contains(&id) && (!prog.arrays[id].is_temp || hoisted_tmps.contains(&id))
    };
    let args_invariant: bool = match c {
        CommStmt::Multicast { src, src_g, .. } => src_ok(*src) && !uses_var(src_g, do_var),
        CommStmt::Transfer {
            src, src_g, dst_g, ..
        } => src_ok(*src) && !uses_var(src_g, do_var) && !uses_var(dst_g, do_var),
        CommStmt::OverlapShift { arr, .. } => src_ok(*arr),
        CommStmt::TempShift { src, amount, .. } => src_ok(*src) && !uses_var(amount, do_var),
        CommStmt::MulticastShift {
            src, src_g, amount, ..
        } => src_ok(*src) && !uses_var(src_g, do_var) && !uses_var(amount, do_var),
        CommStmt::Concat { src, .. } => src_ok(*src),
        CommStmt::BroadcastElem { .. } | CommStmt::ReduceScalar { .. } => false,
    };
    args_invariant
}

fn uses_var(e: &SExpr, var: &str) -> bool {
    match e {
        SExpr::LoopVar(n) | SExpr::Scalar(n) => n == var,
        SExpr::Bin(_, l, r) => uses_var(l, var) || uses_var(r, var),
        SExpr::Un(_, x) => uses_var(x, var),
        SExpr::Elemental(_, args) => args.iter().any(|a| uses_var(a, var)),
        SExpr::Read { subs, .. } => subs.iter().any(|s| uses_var(s, var)),
        SExpr::Const(_) => false,
    }
}

fn written_arrays(stmts: &[SStmt]) -> HashSet<ArrId> {
    let mut out = HashSet::new();
    fn walk(stmts: &[SStmt], out: &mut HashSet<ArrId>) {
        for s in stmts {
            match s {
                SStmt::Forall(f) => {
                    for b in &f.body {
                        out.insert(b.arr);
                    }
                }
                SStmt::OwnerAssign { arr, .. } => {
                    out.insert(*arr);
                }
                SStmt::DoSeq { body, .. } => walk(body, out),
                SStmt::If { then, else_, .. } => {
                    walk(then, out);
                    walk(else_, out);
                }
                SStmt::Runtime(call) => {
                    match call {
                        RtCall::CShift { dst, .. } | RtCall::EoShift { dst, .. } => {
                            out.insert(*dst);
                        }
                        RtCall::Transpose { dst, .. } => {
                            out.insert(*dst);
                        }
                        RtCall::Matmul { c, .. } => {
                            out.insert(*c);
                        }
                        RtCall::Redistribute { arr, .. } => {
                            out.insert(*arr);
                        }
                        RtCall::RemapCopy { dst, .. } => {
                            out.insert(*dst);
                        }
                    };
                }
                _ => {}
            }
        }
    }
    walk(stmts, &mut out);
    out
}
