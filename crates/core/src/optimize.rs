//! Communication optimizations on the SPMD IR (paper §7).
//!
//! * **Duplicate-communication elimination** (§7 optimization 2): two RHS
//!   references that induce the same primitive with the same arguments
//!   inside one FORALL share a single call and temporary — e.g.
//!   `A(I) = B(I+2) + B(I+3)` needs only the wider of the two overlap
//!   shifts, and the Gaussian-elimination kernel's `A(I,K)` and `A(K,K)`
//!   share one column multicast.
//! * **Invariant-communication hoisting** (§7 optimization 4): collective
//!   calls whose arguments do not depend on an enclosing sequential DO
//!   variable and whose source is not written in the loop move out of the
//!   loop (definition-use code motion).
//!
//! * **Phase-level communication planning** ([`OptFlags::comm_plan`],
//!   PARTI-style aggregation extending §7 optimization 1 across statement
//!   boundaries): consecutive FORALLs whose preludes are pure
//!   `overlap_shift` and whose writes do not touch any exchanged array
//!   are grouped into a *comm phase*. The pass only annotates
//!   ([`ForallNode::plan`] — `Lead { len }` on the first member, `Member`
//!   on the rest); the per-statement `pre` lists stay in place, so an
//!   executor that ignores the annotation (or hits a runtime planning
//!   error) falls back to the bit-identical per-statement schedule. The
//!   executors batch a phase's ghost exchanges through
//!   `f90d_comm::plan::PhaseExchange`, which coalesces same-destination
//!   strips into one wire message (one α charge per neighbour instead of
//!   one per statement).
//!
//! (§7 optimization 1, message vectorization, is inherent in the
//! collective primitives; §7 optimization 3, schedule reuse, lives in the
//! executor's schedule cache; the §5.1/§7 communication–computation
//! overlap, [`OptFlags::comm_compute_overlap`], is an execution strategy
//! rather than an IR rewrite — the executors split eligible
//! `overlap_shift` stencil FORALLs into ghost-post → interior →
//! complete → boundary phases at run time, so this pass leaves the
//! statement tree untouched for it.)

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::ir::*;
use crate::options::OptFlags;

/// Run the enabled passes.
pub fn optimize(prog: &mut SProgram, flags: &OptFlags) {
    if flags.merge_comm {
        merge_comm(prog);
    }
    if flags.hoist_invariant_comm {
        let mut stmts = std::mem::take(&mut prog.stmts);
        hoist_stmts(&mut stmts, prog);
        prog.stmts = stmts;
    }
    if flags.comm_plan {
        let mut stmts = std::mem::take(&mut prog.stmts);
        plan_comm_phases(&mut stmts, prog);
        prog.stmts = stmts;
    }
}

// ---- phase-level communication planning ----------------------------------

/// Annotate maximal runs of consecutive phase-eligible FORALLs with
/// [`PhaseRole`]s. Works on every statement list (top level and inside
/// `DO`/`IF` bodies); grouping never crosses a non-FORALL statement, so a
/// `REDISTRIBUTE`, scalar assignment or `PRINT` between two stencils
/// always breaks the phase.
fn plan_comm_phases(stmts: &mut [SStmt], prog: &SProgram) {
    for s in stmts.iter_mut() {
        match s {
            SStmt::DoSeq { body, .. } => plan_comm_phases(body, prog),
            SStmt::If { then, else_, .. } => {
                plan_comm_phases(then, prog);
                plan_comm_phases(else_, prog);
            }
            _ => {}
        }
    }
    let mut i = 0;
    while i < stmts.len() {
        let Some(mut specs) = phase_member(&stmts[i]) else {
            i += 1;
            continue;
        };
        let mut written: HashSet<ArrId> = member_writes(&stmts[i]);
        let mut end = i + 1;
        while end < stmts.len() {
            let Some(next) = phase_member(&stmts[end]) else {
                break;
            };
            // Soundness: a phase posts every member's ghost exchange
            // before any member's loop runs, so no member may write an
            // array any member exchanges (in per-statement order a later
            // exchange would observe that write; batched it would not).
            let w = member_writes(&stmts[end]);
            let exchanged_all = || specs.iter().chain(next.iter()).map(|s| s.0);
            if exchanged_all().any(|a| written.contains(&a) || w.contains(&a)) {
                break;
            }
            // Coalesced payloads are packed per destination, so every
            // exchanged array in a phase must share one element type.
            let ty_of = |a: ArrId| prog.arrays[a].ty;
            let tys: BTreeSet<_> = exchanged_all().map(ty_of).collect();
            if tys.len() > 1 {
                break;
            }
            specs.extend(next);
            written.extend(w);
            end += 1;
        }
        let len = end - i;
        // Profitable when batching actually merges wire traffic: a
        // duplicate (arr, dim, c) exchange collapses, or two strips
        // travel to the same neighbour ((dim, sign) bucket ≥ 2). A
        // multi-array single FORALL can profit alone (len == 1).
        let uniform_ty = specs
            .iter()
            .map(|s| prog.arrays[s.0].ty)
            .collect::<BTreeSet<_>>()
            .len()
            <= 1;
        if uniform_ty && profitable(&specs) {
            for (off, s) in stmts[i..end].iter_mut().enumerate() {
                if let SStmt::Forall(f) = s {
                    f.plan = Some(if off == 0 {
                        PhaseRole::Lead { len }
                    } else {
                        PhaseRole::Member
                    });
                }
            }
        }
        i = end;
    }
}

/// `Some(exchange specs)` when this statement can join a comm phase: a
/// FORALL whose prelude is non-empty pure `overlap_shift`, with no
/// unstructured gathers and no owner filter.
fn phase_member(s: &SStmt) -> Option<Vec<(ArrId, usize, i64)>> {
    let SStmt::Forall(f) = s else { return None };
    if f.pre.is_empty() || !f.gathers.is_empty() || !f.owner_filter.is_empty() {
        return None;
    }
    let mut specs = Vec::new();
    for c in &f.pre {
        let CommStmt::OverlapShift { arr, dim, c } = c else {
            return None;
        };
        specs.push((*arr, *dim, *c));
    }
    Some(specs)
}

fn member_writes(s: &SStmt) -> HashSet<ArrId> {
    let SStmt::Forall(f) = s else {
        return HashSet::new();
    };
    f.body.iter().map(|b| b.arr).collect()
}

fn profitable(specs: &[(ArrId, usize, i64)]) -> bool {
    let dedup: BTreeSet<_> = specs.iter().copied().collect();
    if dedup.len() < specs.len() {
        return true;
    }
    let mut buckets: HashMap<(usize, bool), usize> = HashMap::new();
    for &(_, dim, c) in &dedup {
        *buckets.entry((dim, c > 0)).or_insert(0) += 1;
    }
    buckets.values().any(|&n| n >= 2)
}

// ---- duplicate-communication elimination --------------------------------

fn merge_comm(prog: &mut SProgram) {
    let mut stmts = std::mem::take(&mut prog.stmts);
    merge_in(&mut stmts);
    prog.stmts = stmts;
}

fn merge_in(stmts: &mut [SStmt]) {
    for s in stmts {
        match s {
            SStmt::Forall(f) => merge_forall(f),
            SStmt::DoSeq { body, .. } => merge_in(body),
            SStmt::If { then, else_, .. } => {
                merge_in(then);
                merge_in(else_);
            }
            _ => {}
        }
    }
}

/// Key identifying a comm statement up to its temporary.
fn comm_key(c: &CommStmt) -> Option<(String, Option<ArrId>)> {
    match c {
        CommStmt::Multicast {
            src, dim, src_g, ..
        } => Some((format!("mc:{src}:{dim}:{src_g:?}"), None)),
        CommStmt::Transfer {
            src,
            dim,
            src_g,
            dst_g,
            dst_arr,
            dst_dim,
            ..
        } => Some((
            format!("xf:{src}:{dim}:{src_g:?}:{dst_g:?}:{dst_arr}:{dst_dim}"),
            None,
        )),
        CommStmt::TempShift {
            src, dim, amount, ..
        } => Some((format!("ts:{src}:{dim}:{amount:?}"), None)),
        CommStmt::MulticastShift {
            src,
            mdim,
            src_g,
            sdim,
            amount,
            ..
        } => Some((format!("ms:{src}:{mdim}:{src_g:?}:{sdim}:{amount:?}"), None)),
        CommStmt::Concat { src, .. } => Some((format!("cc:{src}"), None)),
        // Overlap shifts merge by (arr, dim, sign) keeping the widest.
        CommStmt::OverlapShift { .. } => None,
        CommStmt::BroadcastElem { .. } | CommStmt::ReduceScalar { .. } => None,
    }
}

fn comm_tmp(c: &CommStmt) -> Option<ArrId> {
    match c {
        CommStmt::Multicast { tmp, .. }
        | CommStmt::Transfer { tmp, .. }
        | CommStmt::TempShift { tmp, .. }
        | CommStmt::MulticastShift { tmp, .. }
        | CommStmt::Concat { tmp, .. } => Some(*tmp),
        _ => None,
    }
}

fn merge_forall(f: &mut ForallNode) {
    let mut seen: HashMap<String, ArrId> = HashMap::new();
    let mut remap: HashMap<ArrId, ArrId> = HashMap::new();
    let mut kept: Vec<CommStmt> = Vec::new();
    // Widest overlap shift per (arr, dim, sign).
    let mut widest: HashMap<(ArrId, usize, bool), i64> = HashMap::new();
    for c in &f.pre {
        if let CommStmt::OverlapShift {
            arr,
            dim,
            c: amount,
        } = c
        {
            let key = (*arr, *dim, *amount > 0);
            let e = widest.entry(key).or_insert(0);
            if amount.abs() > e.abs() {
                *e = *amount;
            }
        }
    }
    let mut emitted_shift: HashSet<(ArrId, usize, bool)> = HashSet::new();
    for c in f.pre.drain(..) {
        match &c {
            CommStmt::OverlapShift {
                arr,
                dim,
                c: amount,
            } => {
                let key = (*arr, *dim, *amount > 0);
                if emitted_shift.insert(key) {
                    kept.push(CommStmt::OverlapShift {
                        arr: *arr,
                        dim: *dim,
                        c: widest[&key],
                    });
                }
            }
            other => match comm_key(other) {
                Some((key, _)) => {
                    let tmp = comm_tmp(other);
                    if let Some(&prev_tmp) = seen.get(&key) {
                        if let Some(t) = tmp {
                            remap.insert(t, prev_tmp);
                        }
                    } else {
                        if let Some(t) = tmp {
                            seen.insert(key, t);
                        }
                        kept.push(c);
                    }
                }
                None => kept.push(c),
            },
        }
    }
    f.pre = kept;
    if remap.is_empty() {
        return;
    }
    // Rewrite reads of dropped temporaries.
    for b in &mut f.body {
        remap_expr(&mut b.rhs, &remap);
        for s in &mut b.subs {
            remap_expr(s, &remap);
        }
    }
    if let Some(mask) = &mut f.mask {
        remap_expr(mask, &remap);
    }
}

fn remap_expr(e: &mut SExpr, remap: &HashMap<ArrId, ArrId>) {
    match e {
        SExpr::Read { arr, plan, subs } => {
            if let Some(&n) = remap.get(arr) {
                *arr = n;
            }
            match plan {
                ReadPlan::SlabTmp { tmp, .. }
                | ReadPlan::SameTmp { tmp }
                | ReadPlan::Seq { tmp, .. } => {
                    if let Some(&n) = remap.get(tmp) {
                        *tmp = n;
                    }
                }
                _ => {}
            }
            for s in subs {
                remap_expr(s, remap);
            }
        }
        SExpr::Bin(_, l, r) => {
            remap_expr(l, remap);
            remap_expr(r, remap);
        }
        SExpr::Un(_, x) => remap_expr(x, remap),
        SExpr::Elemental(_, args) => {
            for a in args {
                remap_expr(a, remap);
            }
        }
        _ => {}
    }
}

// ---- invariant-communication hoisting ------------------------------------

fn hoist_stmts(stmts: &mut Vec<SStmt>, prog: &SProgram) {
    let mut k = 0;
    while k < stmts.len() {
        // Recurse first (innermost loops hoist before outer ones).
        match &mut stmts[k] {
            SStmt::DoSeq { body, .. } => hoist_stmts(body, prog),
            SStmt::If { then, else_, .. } => {
                hoist_stmts(then, prog);
                hoist_stmts(else_, prog);
            }
            _ => {}
        }
        if let SStmt::DoSeq { var, body, .. } = &mut stmts[k] {
            let written = written_arrays(body);
            let mut wscalars = written_scalars(body);
            // The DO variable itself is (re)defined every iteration.
            wscalars.insert(var.clone());
            let mut hoisted: Vec<SStmt> = Vec::new();
            let mut hoisted_tmps: HashSet<ArrId> = HashSet::new();
            for st in body.iter_mut() {
                if let SStmt::Forall(f) = st {
                    let mut keep = Vec::new();
                    for c in f.pre.drain(..) {
                        if comm_invariant(&c, &wscalars, &written, &hoisted_tmps, prog) {
                            if let Some(t) = comm_tmp(&c) {
                                hoisted_tmps.insert(t);
                            }
                            hoisted.push(SStmt::Comm(c));
                        } else {
                            keep.push(c);
                        }
                    }
                    f.pre = keep;
                }
            }
            if !hoisted.is_empty() {
                // Insert the hoisted calls (in drain order) just before
                // the loop. `k` advances past them so the loop itself is
                // processed exactly once; advancing it inside the insert
                // loop as well used to skip ahead of the vector's length
                // and panic once three or more calls hoisted together.
                let n = hoisted.len();
                for (off, h) in hoisted.into_iter().enumerate() {
                    stmts.insert(k + off, h);
                }
                k += n;
            }
        }
        k += 1;
    }
}

fn comm_invariant(
    c: &CommStmt,
    wscalars: &HashSet<String>,
    written: &HashSet<ArrId>,
    hoisted_tmps: &HashSet<ArrId>,
    prog: &SProgram,
) -> bool {
    let src_ok = |id: ArrId| {
        !written.contains(&id) && (!prog.arrays[id].is_temp || hoisted_tmps.contains(&id))
    };
    // An argument expression varies across iterations when it mentions
    // any scalar (re)defined in the loop — the DO variable, a scalar
    // assignment, or a reduction target — or reads an array the loop
    // writes. `uses_var` with only the DO variable used to miss the
    // latter two, hoisting e.g. a pivot-row multicast whose row index is
    // recomputed every iteration.
    let arg_ok = |e: &SExpr| !expr_varies(e, wscalars, written);
    let args_invariant: bool = match c {
        CommStmt::Multicast { src, src_g, .. } => src_ok(*src) && arg_ok(src_g),
        CommStmt::Transfer {
            src,
            src_g,
            dst_g,
            dst_arr,
            ..
        } => {
            // `dst_arr` supplies the destination placement: a loop that
            // writes it is fine (only its dad matters), but one that
            // REDISTRIBUTEs it changes where the transfer must land, so
            // the transfer is pinned. `written` includes redistributed
            // arrays; checking it is conservative but sound.
            src_ok(*src) && !written.contains(dst_arr) && arg_ok(src_g) && arg_ok(dst_g)
        }
        CommStmt::OverlapShift { arr, .. } => src_ok(*arr),
        CommStmt::TempShift { src, amount, .. } => src_ok(*src) && arg_ok(amount),
        CommStmt::MulticastShift {
            src, src_g, amount, ..
        } => src_ok(*src) && arg_ok(src_g) && arg_ok(amount),
        CommStmt::Concat { src, .. } => src_ok(*src),
        CommStmt::BroadcastElem { .. } | CommStmt::ReduceScalar { .. } => false,
    };
    args_invariant
}

fn expr_varies(e: &SExpr, wscalars: &HashSet<String>, written: &HashSet<ArrId>) -> bool {
    match e {
        SExpr::LoopVar(n) | SExpr::Scalar(n) => wscalars.contains(n),
        SExpr::Bin(_, l, r) => {
            expr_varies(l, wscalars, written) || expr_varies(r, wscalars, written)
        }
        SExpr::Un(_, x) => expr_varies(x, wscalars, written),
        SExpr::Elemental(_, args) => args.iter().any(|a| expr_varies(a, wscalars, written)),
        SExpr::Read { arr, subs, .. } => {
            written.contains(arr) || subs.iter().any(|s| expr_varies(s, wscalars, written))
        }
        SExpr::Const(_) => false,
    }
}

/// Scalars (re)defined anywhere in `stmts`: scalar assignments, element
/// broadcasts and scalar-reduction targets, plus inner DO variables.
fn written_scalars(stmts: &[SStmt]) -> HashSet<String> {
    let mut out = HashSet::new();
    fn walk(stmts: &[SStmt], out: &mut HashSet<String>) {
        for s in stmts {
            match s {
                SStmt::ScalarAssign { name, .. } => {
                    out.insert(name.clone());
                }
                SStmt::Comm(CommStmt::BroadcastElem { target, .. })
                | SStmt::Comm(CommStmt::ReduceScalar { target, .. }) => {
                    out.insert(target.clone());
                }
                SStmt::Forall(f) => {
                    for c in &f.pre {
                        if let CommStmt::BroadcastElem { target, .. }
                        | CommStmt::ReduceScalar { target, .. } = c
                        {
                            out.insert(target.clone());
                        }
                    }
                }
                SStmt::DoSeq { var, body, .. } => {
                    out.insert(var.clone());
                    walk(body, out);
                }
                SStmt::If { then, else_, .. } => {
                    walk(then, out);
                    walk(else_, out);
                }
                _ => {}
            }
        }
    }
    walk(stmts, &mut out);
    out
}

fn written_arrays(stmts: &[SStmt]) -> HashSet<ArrId> {
    let mut out = HashSet::new();
    fn walk(stmts: &[SStmt], out: &mut HashSet<ArrId>) {
        for s in stmts {
            match s {
                SStmt::Forall(f) => {
                    for b in &f.body {
                        out.insert(b.arr);
                    }
                }
                SStmt::OwnerAssign { arr, .. } => {
                    out.insert(*arr);
                }
                SStmt::DoSeq { body, .. } => walk(body, out),
                SStmt::If { then, else_, .. } => {
                    walk(then, out);
                    walk(else_, out);
                }
                SStmt::Runtime(call) => {
                    match call {
                        RtCall::CShift { dst, .. } | RtCall::EoShift { dst, .. } => {
                            out.insert(*dst);
                        }
                        RtCall::Transpose { dst, .. } => {
                            out.insert(*dst);
                        }
                        RtCall::Matmul { c, .. } => {
                            out.insert(*c);
                        }
                        RtCall::Redistribute { arr, .. } => {
                            out.insert(*arr);
                        }
                        RtCall::RemapCopy { dst, .. } => {
                            out.insert(*dst);
                        }
                    };
                }
                _ => {}
            }
        }
    }
    walk(stmts, &mut out);
    out
}
