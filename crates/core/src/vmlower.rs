//! Lowering: tree IR → register bytecode.
//!
//! Compiles every expression of the SPMD node program into straight-line
//! register code with a stack-discipline allocator (a subtree's result
//! lands at its stack position, so intrinsic arguments and subscripts
//! come out in consecutive registers for free), resolving scalar and
//! loop-variable names to slots, deduplicating constants and array
//! accessors, folding constant subexpressions, and collapsing integer
//! affine subscripts `a*i + b` into single [`Op::Affine`] instructions.
//! Statement control flow flattens to a jump-linked instruction stream;
//! FORALLs, collectives and runtime calls become table-driven
//! super-instructions carrying the same modelled costs the tree walker
//! charges (`op_count` / `op_count_cse`), so both backends produce
//! identical virtual times as well as identical array contents.

use std::collections::HashMap;

use f90d_frontend::ast::{BinOp, UnOp};
use f90d_machine::{ElemType, Value};
use f90d_vm::bytecode::*;
use f90d_vm::ops::Intrin;

use crate::ir::*;

type LResult<T> = Result<T, String>;

/// Lower a compiled SPMD program to bytecode with the native kernel
/// tier enabled (equivalent to [`lower_with`] with `native_kernels`
/// true — the tiers are bit-identical, so this is always safe).
pub fn lower(prog: &SProgram) -> LResult<VmProgram> {
    lower_with(prog, true)
}

/// Lower a compiled SPMD program to bytecode.
///
/// When `native_kernels` is set, a post-pass runs
/// [`f90d_vm::native::select`] over every lowered FORALL: straight-line
/// REAL bodies with affine subscripts are monomorphized into prebuilt
/// closures ([`f90d_vm::native::NativeKernel`]) that the engine
/// dispatches to instead of the bytecode element loop, falling back per
/// execution when a dispatch precondition fails. Selection never changes
/// any virtual metric or array bit — it only removes per-instruction
/// dispatch from the hot loops.
pub fn lower_with(prog: &SProgram, native_kernels: bool) -> LResult<VmProgram> {
    let mut lw = Lowerer::new(prog);
    lw.lower_stmts(&prog.stmts)?;
    let arrays: Vec<VmArrayDecl> = prog
        .arrays
        .iter()
        .map(|a| VmArrayDecl {
            name: a.name.clone(),
            ty: a.ty,
            dad: a.dad.clone(),
            ghost: a.ghost,
            is_temp: a.is_temp,
        })
        .collect();
    let mut natives = Vec::new();
    if native_kernels {
        for f in &mut lw.foralls {
            if let Some(kernel) =
                f90d_vm::native::select(f, &arrays, &lw.scalars, &lw.consts, &lw.accessors)
            {
                f.native = Some(natives.len());
                natives.push(kernel);
            }
        }
    }
    Ok(VmProgram {
        grid_shape: prog.grid_shape.clone(),
        arrays,
        scalars: lw.scalars,
        nvars: lw.nvars,
        consts: lw.consts,
        accessors: lw.accessors,
        code: lw.code,
        foralls: lw.foralls,
        comms: lw.comms,
        rtcalls: lw.rtcalls,
        prints: lw.prints,
        natives,
    })
}

/// Checked table-index narrowing: the bytecode addresses its tables with
/// `u16`, so a pathologically large generated program must fail loudly
/// instead of silently wrapping into the wrong entry.
fn idx16(len: usize, what: &str) -> u16 {
    u16::try_from(len).unwrap_or_else(|_| panic!("{what} exceeds {} entries", u16::MAX))
}

/// Constant-pool key with exact bit equality for reals.
#[derive(PartialEq, Eq, Hash)]
enum ConstKey {
    Int(i64),
    Real(u64),
    Bool(bool),
    Complex(u64, u64),
}

impl ConstKey {
    fn of(v: Value) -> ConstKey {
        match v {
            Value::Int(x) => ConstKey::Int(x),
            Value::Real(x) => ConstKey::Real(x.to_bits()),
            Value::Bool(x) => ConstKey::Bool(x),
            Value::Complex(r, i) => ConstKey::Complex(r.to_bits(), i.to_bits()),
        }
    }
}

struct Lowerer<'p> {
    prog: &'p SProgram,
    scalars: Vec<(String, ElemType)>,
    scalar_ids: HashMap<String, u16>,
    consts: Vec<Value>,
    const_ids: HashMap<ConstKey, u16>,
    accessors: Vec<AccPlan>,
    acc_ids: HashMap<AccPlan, u16>,
    /// Lexically bound loop variables (DO and FORALL), innermost last.
    scope: Vec<(String, u16)>,
    nvars: usize,
    code: Vec<PInst>,
    foralls: Vec<VmForall>,
    comms: Vec<VmComm>,
    rtcalls: Vec<VmRt>,
    prints: Vec<Vec<VmPrintItem>>,
}

impl<'p> Lowerer<'p> {
    fn new(prog: &'p SProgram) -> Self {
        let scalars: Vec<(String, ElemType)> = prog.scalars.clone();
        let scalar_ids = scalars
            .iter()
            .enumerate()
            .map(|(i, (n, _))| (n.clone(), idx16(i, "scalar table")))
            .collect();
        Lowerer {
            prog,
            scalars,
            scalar_ids,
            consts: Vec::new(),
            const_ids: HashMap::new(),
            accessors: Vec::new(),
            acc_ids: HashMap::new(),
            scope: Vec::new(),
            nvars: 0,
            code: Vec::new(),
            foralls: Vec::new(),
            comms: Vec::new(),
            rtcalls: Vec::new(),
            prints: Vec::new(),
        }
    }

    // ---- tables --------------------------------------------------------

    fn const_id(&mut self, v: Value) -> u16 {
        let key = ConstKey::of(v);
        if let Some(&k) = self.const_ids.get(&key) {
            return k;
        }
        let k = idx16(self.consts.len(), "constant pool");
        self.consts.push(v);
        self.const_ids.insert(key, k);
        k
    }

    fn acc_id(&mut self, plan: AccPlan) -> u16 {
        if let Some(&k) = self.acc_ids.get(&plan) {
            return k;
        }
        let k = idx16(self.accessors.len(), "accessor table");
        self.acc_ids.insert(plan.clone(), k);
        self.accessors.push(plan);
        k
    }

    /// Slot of scalar `name`, creating one for dynamically assigned
    /// targets (reduction/broadcast destinations are always declared, but
    /// mirror the tree walker's by-name insertion just in case).
    fn scalar_slot(&mut self, name: &str) -> u16 {
        if let Some(&s) = self.scalar_ids.get(name) {
            return s;
        }
        let s = idx16(self.scalars.len(), "scalar table");
        self.scalars.push((name.to_string(), ElemType::Int));
        self.scalar_ids.insert(name.to_string(), s);
        s
    }

    fn bind(&mut self, name: &str) -> u16 {
        let slot = idx16(self.nvars, "loop-variable table");
        self.nvars += 1;
        self.scope.push((name.to_string(), slot));
        slot
    }

    fn unbind(&mut self, n: usize) {
        for _ in 0..n {
            self.scope.pop();
        }
    }

    fn lookup_var(&self, name: &str) -> Option<u16> {
        self.scope
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|&(_, s)| s)
    }

    // ---- expressions ---------------------------------------------------

    /// Compile `e` into a fresh expression program.
    fn compile(&mut self, e: &SExpr) -> LResult<ExprCode> {
        let mut ops = Vec::new();
        self.emit(e, 0, &mut ops)?;
        let nregs = code_width(&ops);
        Ok(ExprCode { ops, out: 0, nregs })
    }

    /// Integer affine view of `e` over at most one bound loop variable:
    /// `a * var + b` (slot `None` ⇒ pure constant `b`).
    fn affine_of(&self, e: &SExpr) -> Option<(Option<u16>, i64, i64)> {
        match e {
            SExpr::Const(Value::Int(k)) => Some((None, 0, *k)),
            SExpr::LoopVar(n) | SExpr::Scalar(n) => {
                self.lookup_var(n).map(|slot| (Some(slot), 1, 0))
            }
            SExpr::Un(UnOp::Neg, x) => {
                let (s, a, b) = self.affine_of(x)?;
                Some((s, -a, -b))
            }
            SExpr::Bin(op, l, r) => {
                let (sl, al, bl) = self.affine_of(l)?;
                let (sr, ar, br) = self.affine_of(r)?;
                match op {
                    BinOp::Add | BinOp::Sub => {
                        let sign = if *op == BinOp::Add { 1 } else { -1 };
                        let slot = match (sl, sr) {
                            (Some(x), Some(y)) if x == y => Some(x),
                            (Some(x), None) => Some(x),
                            (None, Some(y)) => Some(y),
                            (None, None) => None,
                            _ => return None,
                        };
                        Some((slot, al + sign * ar, bl + sign * br))
                    }
                    BinOp::Mul => match (sl, sr) {
                        (None, _) => Some((sr, bl * ar, bl * br)),
                        (_, None) => Some((sl, br * al, br * bl)),
                        _ => None,
                    },
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Emit code leaving the value of `e` in register `sp`; subtree
    /// temporaries use `sp+1..`.
    fn emit(&mut self, e: &SExpr, sp: u16, ops: &mut Vec<Op>) -> LResult<()> {
        // Fold integer affine forms (subscripts, bounds) first.
        if let Some((slot, a, b)) = self.affine_of(e) {
            match slot {
                Some(slot) if a == 1 && b == 0 => ops.push(Op::LoadVar { dst: sp, slot }),
                Some(slot) => ops.push(Op::Affine {
                    dst: sp,
                    slot,
                    a,
                    b,
                }),
                None => {
                    let k = self.const_id(Value::Int(b));
                    ops.push(Op::Const { dst: sp, k });
                }
            }
            return Ok(());
        }
        match e {
            SExpr::Const(v) => {
                let k = self.const_id(*v);
                ops.push(Op::Const { dst: sp, k });
            }
            SExpr::LoopVar(n) => match self.lookup_var(n) {
                Some(slot) => ops.push(Op::LoadVar { dst: sp, slot }),
                None => return Err(format!("loop variable `{n}` not in scope")),
            },
            SExpr::Scalar(n) => {
                // Enclosing loop variables shadow declared scalars
                // (handled by affine_of above when bound); here `n` is a
                // plain program scalar.
                match self.scalar_ids.get(n.as_str()) {
                    Some(&slot) => ops.push(Op::LoadScalar { dst: sp, slot }),
                    None => return Err(format!("undefined scalar `{n}`")),
                }
            }
            SExpr::Bin(op, l, r) => {
                // Constant-fold pure subtrees.
                if let Some(v) = self.try_fold(e) {
                    let k = self.const_id(v);
                    ops.push(Op::Const { dst: sp, k });
                    return Ok(());
                }
                self.emit(l, sp, ops)?;
                self.emit(r, sp + 1, ops)?;
                ops.push(Op::Bin {
                    op: *op,
                    dst: sp,
                    a: sp,
                    b: sp + 1,
                });
            }
            SExpr::Un(op, x) => {
                if let Some(v) = self.try_fold(e) {
                    let k = self.const_id(v);
                    ops.push(Op::Const { dst: sp, k });
                    return Ok(());
                }
                self.emit(x, sp, ops)?;
                ops.push(Op::Un {
                    op: *op,
                    dst: sp,
                    a: sp,
                });
            }
            SExpr::Elemental(name, args) => {
                let f = Intrin::from_name(name)
                    .ok_or_else(|| format!("unknown elemental intrinsic `{name}`"))?;
                for (k, a) in args.iter().enumerate() {
                    self.emit(a, sp + k as u16, ops)?;
                }
                ops.push(Op::Intrin {
                    f,
                    dst: sp,
                    base: sp,
                    n: args.len() as u16,
                });
            }
            SExpr::Read { arr, plan, subs } => {
                let zero_sub = SExpr::Const(Value::Int(0));
                let (acc_plan, emit_subs): (AccPlan, Vec<&SExpr>) = match plan {
                    ReadPlan::Owned | ReadPlan::Replicated => {
                        (AccPlan::Owned { arr: *arr }, subs.iter().collect())
                    }
                    ReadPlan::SlabTmp { tmp, fixed_dim } => (
                        AccPlan::Slab {
                            tmp: *tmp,
                            fixed_dim: *fixed_dim,
                        },
                        // The surviving-subscript contract lives in the
                        // shared comm driver, same as the tree walker's
                        // read path: `None` means a rank-1 source whose
                        // dummy extent-1 dimension is indexed at zero.
                        match f90d_comm::driver::slab_kept_dims(subs.len(), *fixed_dim) {
                            Some(kept) => kept.into_iter().map(|d| &subs[d]).collect(),
                            None => vec![&zero_sub],
                        },
                    ),
                    ReadPlan::SameTmp { tmp } => {
                        (AccPlan::Same { tmp: *tmp }, subs.iter().collect())
                    }
                    ReadPlan::Seq { tmp: _, slot } => {
                        ops.push(Op::ReadSeq {
                            dst: sp,
                            gather: *slot as u16,
                        });
                        return Ok(());
                    }
                };
                // The engine decodes subscripts into a fixed 8-wide
                // buffer (Fortran's rank limit is 7); reject anything
                // larger here rather than overrun there.
                if emit_subs.len() > 8 {
                    return Err(format!(
                        "array read of rank {} exceeds the VM subscript limit (8)",
                        emit_subs.len()
                    ));
                }
                let acc = self.acc_id(acc_plan);
                let n = emit_subs.len() as u16;
                for (k, s) in emit_subs.into_iter().enumerate() {
                    self.emit(s, sp + k as u16, ops)?;
                }
                ops.push(Op::Read {
                    dst: sp,
                    acc,
                    base: sp,
                    n,
                });
            }
        }
        Ok(())
    }

    /// Evaluate a closed (constant-only) subtree at lowering time.
    fn try_fold(&self, e: &SExpr) -> Option<Value> {
        match e {
            SExpr::Const(v) => Some(*v),
            SExpr::Bin(op, l, r) => {
                let (a, b) = (self.try_fold(l)?, self.try_fold(r)?);
                f90d_vm::ops::eval_bin(*op, a, b).ok()
            }
            SExpr::Un(op, x) => f90d_vm::ops::eval_un(*op, self.try_fold(x)?).ok(),
            _ => None,
        }
    }

    // ---- statements ----------------------------------------------------

    fn lower_stmts(&mut self, stmts: &[SStmt]) -> LResult<()> {
        for s in stmts {
            self.lower_stmt(s)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, s: &SStmt) -> LResult<()> {
        match s {
            SStmt::Comm(c) => {
                let id = self.lower_comm(c)?;
                self.code.push(PInst::Comm(id));
            }
            SStmt::Forall(f) => {
                let id = self.lower_forall(f)?;
                self.code.push(PInst::Forall(id));
            }
            SStmt::ScalarAssign { name, rhs } => {
                let cost = rhs.op_count().max(1);
                let rhs = self.compile(rhs)?;
                let slot = self.scalar_slot(name);
                self.code.push(PInst::ScalarAssign { slot, rhs, cost });
            }
            SStmt::OwnerAssign { arr, subs, rhs } => {
                let cost = rhs.op_count().max(1);
                let subs = subs
                    .iter()
                    .map(|e| self.compile(e))
                    .collect::<LResult<_>>()?;
                let rhs = self.compile(rhs)?;
                self.code.push(PInst::OwnerAssign {
                    arr: *arr,
                    subs,
                    rhs,
                    cost,
                });
            }
            SStmt::DoSeq {
                var,
                lb,
                ub,
                st,
                body,
            } => {
                let lb = self.compile(lb)?;
                let ub = self.compile(ub)?;
                let st = self.compile(st)?;
                let slot = self.bind(var);
                let start_pc = self.code.len();
                self.code.push(PInst::DoStart {
                    var: slot,
                    lb,
                    ub,
                    st,
                    exit: 0,
                });
                let body_pc = self.code.len();
                self.lower_stmts(body)?;
                self.code.push(PInst::DoNext {
                    var: slot,
                    back: body_pc,
                });
                let exit_pc = self.code.len();
                if let PInst::DoStart { exit, .. } = &mut self.code[start_pc] {
                    *exit = exit_pc;
                }
                self.unbind(1);
            }
            SStmt::If { cond, then, else_ } => {
                let cost = cond.op_count().max(1);
                let cond = self.compile(cond)?;
                let branch_pc = self.code.len();
                self.code.push(PInst::BranchFalse {
                    cond,
                    cost,
                    target: 0,
                });
                self.lower_stmts(then)?;
                let jump_pc = self.code.len();
                self.code.push(PInst::Jump { target: 0 });
                let else_pc = self.code.len();
                self.lower_stmts(else_)?;
                let end_pc = self.code.len();
                if let PInst::BranchFalse { target, .. } = &mut self.code[branch_pc] {
                    *target = else_pc;
                }
                if let PInst::Jump { target } = &mut self.code[jump_pc] {
                    *target = end_pc;
                }
            }
            SStmt::Print { items } => {
                let items = items
                    .iter()
                    .map(|it| {
                        Ok(match it {
                            PrintItem::Text(t) => VmPrintItem::Text(t.clone()),
                            PrintItem::Val(e) => VmPrintItem::Val(self.compile(e)?),
                        })
                    })
                    .collect::<LResult<_>>()?;
                let id = idx16(self.prints.len(), "print table");
                self.prints.push(items);
                self.code.push(PInst::Print(id));
            }
            SStmt::Runtime(call) => {
                let id = self.lower_rt(call)?;
                self.code.push(PInst::Runtime(id));
            }
        }
        Ok(())
    }

    fn lower_comm(&mut self, c: &CommStmt) -> LResult<u16> {
        let vc = match c {
            CommStmt::Multicast {
                src,
                tmp,
                dim,
                src_g,
            } => VmComm::Multicast {
                src: *src,
                tmp: *tmp,
                dim: *dim,
                src_g: self.compile(src_g)?,
            },
            CommStmt::Transfer {
                src,
                tmp,
                dim,
                src_g,
                dst_g,
                dst_arr,
                dst_dim,
            } => VmComm::Transfer {
                src: *src,
                tmp: *tmp,
                dim: *dim,
                src_g: self.compile(src_g)?,
                dst_g: self.compile(dst_g)?,
                dst_arr: *dst_arr,
                dst_dim: *dst_dim,
            },
            CommStmt::OverlapShift { arr, dim, c } => VmComm::OverlapShift {
                arr: *arr,
                dim: *dim,
                c: *c,
            },
            CommStmt::TempShift {
                src,
                tmp,
                dim,
                amount,
            } => VmComm::TempShift {
                src: *src,
                tmp: *tmp,
                dim: *dim,
                amount: self.compile(amount)?,
            },
            CommStmt::MulticastShift {
                src,
                tmp,
                mdim,
                src_g,
                sdim,
                amount,
            } => VmComm::MulticastShift {
                src: *src,
                tmp: *tmp,
                mdim: *mdim,
                src_g: self.compile(src_g)?,
                sdim: *sdim,
                amount: self.compile(amount)?,
            },
            CommStmt::Concat { src, tmp } => VmComm::Concat {
                src: *src,
                tmp: *tmp,
            },
            CommStmt::BroadcastElem { arr, subs, target } => VmComm::BroadcastElem {
                arr: *arr,
                subs: subs
                    .iter()
                    .map(|e| self.compile(e))
                    .collect::<LResult<_>>()?,
                target: self.scalar_slot(target),
            },
            CommStmt::ReduceScalar {
                kind,
                arr,
                arr2,
                target,
            } => {
                let vk = match kind {
                    ReduceKind::Sum => VmReduce::Sum,
                    ReduceKind::Product => VmReduce::Product,
                    ReduceKind::MaxVal => VmReduce::MaxVal,
                    ReduceKind::MinVal => VmReduce::MinVal,
                    ReduceKind::Count => VmReduce::Count,
                    ReduceKind::All => VmReduce::All,
                    ReduceKind::Any => VmReduce::Any,
                    ReduceKind::DotProduct => VmReduce::DotProduct,
                };
                let to_int = self.prog.arrays[*arr].ty == ElemType::Int
                    && matches!(
                        kind,
                        ReduceKind::Sum
                            | ReduceKind::Product
                            | ReduceKind::MaxVal
                            | ReduceKind::MinVal
                    );
                VmComm::Reduce {
                    kind: vk,
                    arr: *arr,
                    arr2: *arr2,
                    target: self.scalar_slot(target),
                    to_int,
                }
            }
        };
        let id = idx16(self.comms.len(), "comm table");
        self.comms.push(vc);
        Ok(id)
    }

    fn lower_rt(&mut self, call: &RtCall) -> LResult<u16> {
        let vr = match call {
            RtCall::CShift {
                src,
                dst,
                dim,
                shift,
            } => VmRt::CShift {
                src: *src,
                dst: *dst,
                dim: *dim,
                shift: self.compile(shift)?,
            },
            RtCall::EoShift {
                src,
                dst,
                dim,
                shift,
                boundary,
            } => VmRt::EoShift {
                src: *src,
                dst: *dst,
                dim: *dim,
                shift: self.compile(shift)?,
                boundary: self.compile(boundary)?,
            },
            RtCall::Transpose { src, dst } => VmRt::Transpose {
                src: *src,
                dst: *dst,
            },
            RtCall::Matmul { a, b, c } => VmRt::Matmul {
                a: *a,
                b: *b,
                c: *c,
            },
            RtCall::Redistribute { arr, new_dad } => VmRt::Redistribute {
                arr: *arr,
                new_dad: new_dad.clone(),
            },
            RtCall::RemapCopy { src, dst } => VmRt::RemapCopy {
                src: *src,
                dst: *dst,
            },
        };
        let id = idx16(self.rtcalls.len(), "runtime-call table");
        self.rtcalls.push(vr);
        Ok(id)
    }

    fn lower_forall(&mut self, f: &ForallNode) -> LResult<u16> {
        // Prelude, owner filter and loop bounds evaluate in the outer
        // scope (before the loop variables exist).
        let pre = f
            .pre
            .iter()
            .map(|c| self.lower_comm(c))
            .collect::<LResult<Vec<u16>>>()?;
        let owner_filter = f
            .owner_filter
            .iter()
            .map(|(arr, dim, idx)| Ok((*arr, *dim, self.compile(idx)?)))
            .collect::<LResult<Vec<_>>>()?;
        let mut specs = Vec::with_capacity(f.vars.len());
        for spec in &f.vars {
            let lb = self.compile(&spec.lb)?;
            let ub = self.compile(&spec.ub)?;
            let st = self.compile(&spec.st)?;
            let part = match &spec.part {
                Partition::OwnerDim { arr, dim, a, b } => VmPartition::OwnerDim {
                    arr: *arr,
                    dim: *dim,
                    a: *a,
                    b: *b,
                },
                Partition::BlockIter => VmPartition::BlockIter,
                Partition::Replicate => VmPartition::Replicate,
            };
            specs.push((lb, ub, st, part));
        }
        // Bind the loop variables for the element-context code.
        let var_names: Vec<String> = f.vars.iter().map(|v| v.var.clone()).collect();
        let vars: Vec<VmLoopSpec> = f
            .vars
            .iter()
            .zip(specs)
            .map(|(spec, (lb, ub, st, part))| VmLoopSpec {
                var: self.bind(&spec.var),
                lb,
                ub,
                st,
                part,
            })
            .collect();
        let mask = f.mask.as_ref().map(|e| self.compile(e)).transpose()?;
        let mask_cost = f.mask.as_ref().map_or(0, |e| e.op_count_cse(&var_names));
        let mut body = Vec::with_capacity(f.body.len());
        for b in &f.body {
            let scatter = match b.write {
                WritePlan::Owned => None,
                WritePlan::ScatterSeq { invertible } => Some(invertible),
            };
            if scatter.is_none() && b.arr != f.body[0].arr {
                // The tree walker commits all staged owned writes into the
                // first body array; reject programs where that would
                // scatter data across arrays rather than silently diverge.
                return Err(format!(
                    "FORALL body writes both `{}` and `{}`: mixed-array owned bodies are unsupported",
                    self.prog.arrays[f.body[0].arr].name, self.prog.arrays[b.arr].name
                ));
            }
            let rhs = self.compile(&b.rhs)?;
            let subs = b
                .subs
                .iter()
                .map(|e| self.compile(e))
                .collect::<LResult<_>>()?;
            let lhs_acc = if scatter.is_none() {
                Some(self.acc_id(AccPlan::Owned { arr: b.arr }))
            } else {
                None
            };
            body.push(VmAssign {
                arr: b.arr,
                subs,
                rhs,
                lhs_acc,
                scatter,
                cost: b.rhs.op_count_cse(&var_names) + 2,
            });
        }
        let gathers = f
            .gathers
            .iter()
            .map(|g| {
                Ok(VmGather {
                    src: g.src,
                    tmp: g.tmp,
                    subs: g
                        .subs
                        .iter()
                        .map(|e| self.compile(e))
                        .collect::<LResult<_>>()?,
                    local_only: g.local_only,
                })
            })
            .collect::<LResult<Vec<_>>>()?;
        self.unbind(f.vars.len());
        // Accessors the element loop touches, for per-rank resolution.
        let mut accs_used: Vec<u16> = Vec::new();
        {
            let add_code = |c: &ExprCode, accs: &mut Vec<u16>| {
                for op in &c.ops {
                    if let Op::Read { acc, .. } = op {
                        if !accs.contains(acc) {
                            accs.push(*acc);
                        }
                    }
                }
            };
            if let Some(mc) = &mask {
                add_code(mc, &mut accs_used);
            }
            for b in &body {
                add_code(&b.rhs, &mut accs_used);
                for s in &b.subs {
                    add_code(s, &mut accs_used);
                }
                if let Some(a) = b.lhs_acc {
                    if !accs_used.contains(&a) {
                        accs_used.push(a);
                    }
                }
            }
            for g in &gathers {
                for s in &g.subs {
                    add_code(s, &mut accs_used);
                }
            }
        }
        let id = idx16(self.foralls.len(), "forall table");
        self.foralls.push(VmForall {
            vars,
            mask,
            mask_cost,
            pre,
            gathers,
            owner_filter,
            body,
            accs_used,
            native: None, // the selection post-pass in `lower_with` fills this
            plan: f.plan.map(|p| match p {
                PhaseRole::Lead { len } => f90d_vm::bytecode::VmPhase::Lead { len: len as u16 },
                PhaseRole::Member => f90d_vm::bytecode::VmPhase::Member,
            }),
        });
        Ok(id)
    }
}

/// Number of registers a compiled op sequence touches.
fn code_width(ops: &[Op]) -> u16 {
    let mut w = 0u16;
    for op in ops {
        let hi = match *op {
            Op::Const { dst, .. }
            | Op::LoadVar { dst, .. }
            | Op::LoadScalar { dst, .. }
            | Op::Affine { dst, .. }
            | Op::ReadSeq { dst, .. } => dst,
            Op::Bin { dst, a, b, .. } => dst.max(a).max(b),
            Op::Un { dst, a, .. } => dst.max(a),
            Op::Intrin { dst, base, n, .. } => dst.max(base + n.saturating_sub(1)),
            Op::Read { dst, base, n, .. } => dst.max(base + n.saturating_sub(1)),
        };
        w = w.max(hi + 1);
    }
    w
}
