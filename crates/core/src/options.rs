//! Compilation options and optimization flags (paper §7).

use f90d_machine::ExecMode;

/// Optimization switches — each corresponds to one of the paper's §7
/// communication optimizations and is exercised by an ablation benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptFlags {
    /// §7(2): replace the union of overlapping communications by a single
    /// primitive (duplicate-comm elimination inside one FORALL).
    pub merge_comm: bool,
    /// §7(3): reuse unstructured schedules when the access pattern
    /// repeats (amortizes the inspector).
    pub schedule_reuse: bool,
    /// §5.3.1 ex. 3: fuse `multicast` ∘ `temporary_shift` into
    /// `multicast_shift`.
    pub fuse_multicast_shift: bool,
    /// §7(4): hoist loop-invariant communication out of sequential DO
    /// loops (definition-use based code motion).
    pub hoist_invariant_comm: bool,
    /// §5.1: use `overlap_shift` into ghost areas for compile-time shift
    /// constants (off ⇒ every shift goes through a temporary).
    pub overlap_shift: bool,
    /// §5.1/§7 communication–computation overlap (opt-in): execute
    /// stencil FORALLs whose prelude is pure `overlap_shift` as
    /// ghost-exchange-post → interior compute → complete → boundary
    /// compute, so interior computation hides the wire time of the ghost
    /// exchange. Array results and PRINT output are bit-identical to the
    /// blocking execution; only the virtual clocks (and therefore the
    /// modelled elapsed time) change, which is why this is off by default
    /// — `BENCH_baseline.json` pins the blocking virtual metrics.
    pub comm_compute_overlap: bool,
    /// Phase-level communication planning (PARTI-style aggregation
    /// across statement boundaries, extending paper §7 optimization 1):
    /// group consecutive eligible stencil FORALLs into a *comm phase*
    /// whose ghost exchanges post together, with same-destination
    /// messages coalesced into a single wire transfer — one α charge
    /// per destination pair instead of one per statement. Both backends
    /// sequence phases through the shared [`f90d_comm::driver`], whose
    /// per-cell group/fallback counters surface in
    /// [`RunTrace`](crate::RunTrace). Array results
    /// and PRINT output are bit-identical to per-statement execution;
    /// only the virtual clocks (and the modelled elapsed time) change,
    /// which is why this is off by default — `BENCH_baseline.json` pins
    /// the per-statement virtual metrics. `repro --exp commplan` is the
    /// on/off ablation.
    pub comm_plan: bool,
    /// Native kernel tier (VM backend only): at lowering time, compile
    /// straight-line affine REAL FORALL bodies into prebuilt
    /// monomorphized closures (`f90d_vm::native`) that the engine
    /// dispatches to instead of the bytecode element loop. Every virtual
    /// metric, PRINT line, and array bit is identical to the bytecode
    /// tier — only host wall clock improves — so this defaults on;
    /// `repro --no-native` is the escape hatch and three-way proof
    /// (`--exp vmcmp`).
    pub native_kernels: bool,
}

impl Default for OptFlags {
    fn default() -> Self {
        OptFlags {
            merge_comm: true,
            schedule_reuse: true,
            fuse_multicast_shift: true,
            hoist_invariant_comm: true,
            overlap_shift: true,
            comm_compute_overlap: false,
            comm_plan: false,
            native_kernels: true,
        }
    }
}

impl OptFlags {
    /// Everything off — the unoptimized baseline of the ablations.
    pub fn none() -> Self {
        OptFlags {
            merge_comm: false,
            schedule_reuse: false,
            fuse_multicast_shift: false,
            hoist_invariant_comm: false,
            overlap_shift: false,
            comm_compute_overlap: false,
            comm_plan: false,
            native_kernels: false,
        }
    }
}

/// Which execution engine [`crate::Compiled::run_on`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Walk the SPMD statement tree directly ([`crate::exec::Executor`]).
    #[default]
    TreeWalk,
    /// Lower once to register bytecode (cached by source/options/grid)
    /// and run it on [`f90d_vm::Engine`].
    Vm,
}

/// Options for one compilation.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Override the `PROCESSORS` grid shape (the benchmarks sweep P
    /// without editing source).
    pub grid_shape: Option<Vec<i64>>,
    /// Optimization flags.
    pub opt: OptFlags,
    /// Execution backend.
    pub backend: Backend,
    /// Consult the process-wide cross-run schedule cache
    /// (`f90d_comm::sched_cache`) when executing. Off is the `repro
    /// --no-sched-cache` escape hatch: every run rebuilds its schedules.
    /// Virtual metrics are identical either way — only host wall clock
    /// changes — and [`OptFlags::schedule_reuse`] (the per-run §7(3)
    /// optimization, which *does* shape virtual time) stays independent.
    pub sched_cache: bool,
    /// Local-phase execution mode applied to the machine when this
    /// program runs (`repro --exec`). `None` (the default) respects
    /// whatever mode the caller configured on the
    /// [`Machine`](f90d_machine::Machine); `Some(mode)` makes
    /// [`Compiled::run_on`](crate::Compiled::run_on) switch the machine
    /// via `Machine::set_exec`, leasing threaded workers from the
    /// process-wide budget. Purely a host-execution choice: every
    /// virtual metric (and the lowered bytecode — this field is
    /// deliberately **not** part of the VM program-cache key) is
    /// identical across modes.
    pub exec_mode: Option<ExecMode>,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            grid_shape: None,
            opt: OptFlags::default(),
            backend: Backend::default(),
            sched_cache: true,
            exec_mode: None,
        }
    }
}

impl CompileOptions {
    /// Default options on an explicit grid.
    pub fn on_grid(shape: &[i64]) -> Self {
        CompileOptions {
            grid_shape: Some(shape.to_vec()),
            ..CompileOptions::default()
        }
    }

    /// Same options with a different backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Same options with an explicit local-phase execution mode.
    pub fn with_exec(mut self, mode: ExecMode) -> Self {
        self.exec_mode = Some(mode);
        self
    }
}
