//! Property-based differential testing (DESIGN.md §7): randomized FORALL
//! programs over random distributions and grid sizes must produce
//! identical array contents under the compiled SPMD execution and the
//! sequential reference interpreter.

use std::collections::HashMap;

use f90d_core::reference::run_reference;
use f90d_core::{compile, CompileOptions, Executor};
use f90d_distrib::ProcGrid;
use f90d_machine::{ArrayData, Machine, MachineSpec};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandProgram {
    n: i64,
    dist: &'static str,
    shift1: i64,
    shift2: i64,
    scale: f64,
    masked: bool,
    grid: i64,
}

fn program(p: &RandProgram) -> String {
    let n = p.n;
    let (lo, hi) = (
        1 + p.shift1.abs().max(p.shift2.abs()),
        n - p.shift1.abs().max(p.shift2.abs()),
    );
    let mask = if p.masked { ", B(I) > 0.0" } else { "" };
    format!(
        "
PROGRAM RAND
INTEGER, PARAMETER :: N = {n}
REAL A(N), B(N), C(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ ALIGN C(I) WITH T(I)
C$ DISTRIBUTE T({dist})
FORALL (I={lo}:{hi}{mask}) A(I) = {scale}*B(I{s1}) + C(I{s2}) - B(I)
FORALL (I={lo}:{hi}) C(I) = A(I) + B(I{s2})
END
",
        dist = p.dist,
        scale = p.scale,
        s1 = offset(p.shift1),
        s2 = offset(p.shift2),
    )
}

fn offset(c: i64) -> String {
    match c.cmp(&0) {
        std::cmp::Ordering::Equal => String::new(),
        std::cmp::Ordering::Greater => format!("+{c}"),
        std::cmp::Ordering::Less => format!("{c}"),
    }
}

fn rand_program() -> impl Strategy<Value = RandProgram> {
    (
        12i64..40,
        prop_oneof![Just("BLOCK"), Just("CYCLIC"), Just("CYCLIC(3)")],
        -2i64..=2,
        -2i64..=2,
        prop_oneof![Just(0.5f64), Just(1.0), Just(-2.0)],
        any::<bool>(),
        1i64..6,
    )
        .prop_map(
            |(n, dist, shift1, shift2, scale, masked, grid)| RandProgram {
                n,
                dist,
                shift1,
                shift2,
                scale,
                masked,
                grid,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_matches_reference(p in rand_program()) {
        let src = program(&p);
        let opts = CompileOptions::on_grid(&[p.grid]);
        let compiled = compile(&src, &opts)
            .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
        let b_init = ArrayData::Real(
            (0..p.n).map(|x| ((x * 13 % 17) as f64) - 6.0).collect(),
        );
        let c_init = ArrayData::Real(
            (0..p.n).map(|x| ((x * 5 % 11) as f64) * 0.5).collect(),
        );
        let inits = HashMap::from([
            ("B".to_string(), b_init),
            ("C".to_string(), c_init),
        ]);
        let reference = run_reference(&compiled.analyzed, &inits).unwrap();
        let mut m = Machine::new(MachineSpec::ideal(), ProcGrid::new(&[p.grid]));
        let mut ex = Executor::new(&compiled.spmd, &mut m);
        for (name, data) in &inits {
            prop_assert!(ex.seed_array(&mut m, name, data));
        }
        ex.run(&mut m).unwrap_or_else(|e| panic!("exec failed: {e}\n{src}"));
        for name in ["A", "B", "C"] {
            let got = ex.gather_array(&mut m, name).unwrap();
            let want = &reference.arrays[name];
            for k in 0..got.len() {
                let (a, b) = (got.get(k).as_real(), want.data.get(k).as_real());
                prop_assert!(
                    (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
                    "{name}[{k}] = {a}, reference {b}\n{src}"
                );
            }
        }
    }
}
