//! Golden tests: the Fortran 77 + MP listings for each of the paper's
//! §5.3 communication-generation examples must contain the same call
//! shapes as the paper's generated-code listings.

use f90d_core::{compile, CompileOptions};

fn f77(src: &str, grid: &[i64]) -> String {
    compile(src, &CompileOptions::on_grid(grid))
        .unwrap_or_else(|e| panic!("{e}\n{src}"))
        .fortran77()
}

const HEADER_2D: &str = "
PROGRAM EX
INTEGER, PARAMETER :: N = 16
REAL A(N,N), B(N,N)
INTEGER S
C$ PROCESSORS P(2,2)
C$ TEMPLATE TEMPL(N,N)
C$ ALIGN A(I,J) WITH TEMPL(I,J)
C$ ALIGN B(I,J) WITH TEMPL(I,J)
C$ DISTRIBUTE TEMPL(BLOCK,BLOCK)
";

#[test]
fn example1_transfer_shape() {
    // Paper §5.3.1 example 1: FORALL(I=1:N) A(I,8)=B(I,3)
    let src = format!("{HEADER_2D}FORALL (I=1:N) A(I,8) = B(I,3)\nEND\n");
    let out = f77(&src, &[2, 2]);
    assert!(out.contains("call transfer(B, B_DAD"), "{out}");
    assert!(out.contains("call set_BOUND("), "{out}");
    assert!(out.contains("source=global_to_proc("), "{out}");
}

#[test]
fn example2_multicast_shape() {
    // Paper §5.3.1 example 2: FORALL(I=1:N,J=1:M) A(I,J)=B(I,3)
    let src = format!("{HEADER_2D}FORALL (I=1:N, J=1:N) A(I,J) = B(I,3)\nEND\n");
    let out = f77(&src, &[2, 2]);
    assert!(out.contains("call multicast(B, B_DAD"), "{out}");
    assert!(out.contains("source_proc=global_to_proc("), "{out}");
    // Two nested local loops.
    assert_eq!(out.matches("END DO").count(), 2, "{out}");
}

#[test]
fn example3_multicast_shift_shape() {
    // Paper §5.3.1 example 3: FORALL(I=1:N,J=1:M) A(I,J)=B(3,J+s) fused.
    let src = format!("{HEADER_2D}S = 2\nFORALL (I=1:N, J=1:N-2) A(I,J) = B(3,J+S)\nEND\n");
    let out = f77(&src, &[2, 2]);
    assert!(out.contains("call multicast_shift(B, B_DAD"), "{out}");
    assert!(out.contains("multicast_dim=1, shift_dim=2"), "{out}");
}

#[test]
fn example3_unfused_two_calls() {
    let src = format!("{HEADER_2D}S = 2\nFORALL (I=1:N, J=1:N-2) A(I,J) = B(3,J+S)\nEND\n");
    let mut opts = CompileOptions::on_grid(&[2, 2]);
    opts.opt.fuse_multicast_shift = false;
    let out = compile(&src, &opts).unwrap().fortran77();
    assert!(out.contains("call temporary_shift("), "{out}");
    assert!(out.contains("call multicast("), "{out}");
    assert!(!out.contains("call multicast_shift("), "{out}");
}

#[test]
fn unstructured_example1_precomp_read_shape() {
    // Paper §5.3.2 example 1: FORALL(I=1:N) A(I)=B(2*I+1)
    let src = "
PROGRAM EX
INTEGER, PARAMETER :: N = 16
REAL A(N), B(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:7) A(I) = B(2*I+1)
END
";
    let out = f77(src, &[4]);
    assert!(
        out.contains("isch = schedule1(receive_list, send_list, local_list, count)"),
        "{out}"
    );
    assert!(out.contains("call precomp_read(isch,"), "{out}");
    // The body reads the buffer with the running counter idiom.
    assert!(out.contains("(count); count = count+1"), "{out}");
}

#[test]
fn unstructured_example2_gather_shape() {
    // Paper §5.3.2 example 2: FORALL(I=1:N) A(I)=B(V(I))
    let src = "
PROGRAM EX
INTEGER, PARAMETER :: N = 16
REAL A(N), B(N)
INTEGER V(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) A(I) = B(V(I))
END
";
    let out = f77(src, &[4]);
    assert!(out.contains("schedule2("), "{out}");
    assert!(out.contains("call gather(isch,"), "{out}");
}

#[test]
fn unstructured_example3_scatter_shape() {
    // Paper §5.3.2 example 3: FORALL(I=1:N) A(U(I))=B(I)
    let src = "
PROGRAM EX
INTEGER, PARAMETER :: N = 16
REAL A(N), B(N)
INTEGER U(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) A(U(I)) = B(I)
END
";
    let out = f77(src, &[4]);
    assert!(
        out.contains("isch = schedule3(proc_to, local_to, count)"),
        "{out}"
    );
    assert!(out.contains("call scatter(isch,"), "{out}");
    assert!(out.contains("call set_BOUND_block_iter("), "{out}");
}

#[test]
fn jacobi_overlap_shift_shape() {
    // Paper §4 example 1 canonical Jacobi reads compile into overlap
    // shifts plus a plain local loop over set_BOUND bounds.
    let src = "
PROGRAM EX
INTEGER, PARAMETER :: N = 16
REAL A(N,N), B(N,N)
C$ TEMPLATE T(N,N)
C$ ALIGN A(I,J) WITH T(I,J)
C$ ALIGN B(I,J) WITH T(I,J)
C$ DISTRIBUTE T(BLOCK,BLOCK)
FORALL (I=2:N-1, J=2:N-1) B(I,J) = 0.25*(A(I-1,J)+A(I+1,J)+A(I,J-1)+A(I,J+1))
END
";
    let out = f77(src, &[2, 2]);
    assert!(
        out.contains("call overlap_shift(A, dim=1, width=-1)"),
        "{out}"
    );
    assert!(
        out.contains("call overlap_shift(A, dim=1, width=1)"),
        "{out}"
    );
    assert!(
        out.contains("call overlap_shift(A, dim=2, width=-1)"),
        "{out}"
    );
    assert!(
        out.contains("call overlap_shift(A, dim=2, width=1)"),
        "{out}"
    );
    assert!(
        out.contains("overlap(1)"),
        "ghost allocation comment: {out}"
    );
}

#[test]
fn ge_listing_single_merged_multicast() {
    let src = "
PROGRAM GE
INTEGER, PARAMETER :: N = 8
REAL A(N,N)
INTEGER K
C$ DISTRIBUTE A(*, BLOCK)
FORALL (I=1:N, J=1:N) A(I,J) = 1.0
DO K = 1, N-1
  FORALL (I=K+1:N, J=K+1:N) A(I,J) = A(I,J) - A(I,K)/A(K,K)*A(K,J)
END DO
END
";
    let out = f77(src, &[4]);
    // Exactly one multicast inside the DO (A(I,K) and A(K,K) merged).
    assert_eq!(out.matches("call multicast(").count(), 1, "{out}");
    assert!(out.contains("DO K = 1, 7, 1"), "{out}");
}
