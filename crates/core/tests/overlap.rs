//! Communication–computation overlap (`OptFlags::comm_compute_overlap`):
//! split-phase stencil execution must strictly lower modelled virtual
//! time on communication-bound Jacobi cells while keeping array results
//! and PRINT output bit-identical — on both machine models and both
//! execution backends. Also covers the redesigned transport's end-of-run
//! quiescence check surfacing as `ExecError`.

use f90d_core::{compile, Backend, CompileOptions, Executor};
use f90d_distrib::ProcGrid;
use f90d_machine::{ArrayData, Machine, MachineSpec, Transport};

// Local copies of the benchmark workloads (`f90d-bench` sits above this
// crate in the dependency graph, so the sources are inlined here).
mod workloads {
    pub fn jacobi(n: i64, iters: i64) -> String {
        format!(
            "
PROGRAM JACOBI
INTEGER, PARAMETER :: N = {n}
REAL A(N, N), B(N, N)
INTEGER IT
C$ TEMPLATE T(N, N)
C$ ALIGN A(I, J) WITH T(I, J)
C$ ALIGN B(I, J) WITH T(I, J)
C$ DISTRIBUTE T(BLOCK, BLOCK)
FORALL (I=1:N, J=1:N) B(I,J) = REAL(I+J)
FORALL (I=1:N, J=1:N) A(I,J) = 0.0
DO IT = 1, {iters}
  FORALL (I=2:N-1, J=2:N-1)&
&   A(I,J) = 0.25*(B(I-1,J)+B(I+1,J)+B(I,J-1)+B(I,J+1))
  FORALL (I=2:N-1, J=2:N-1) B(I,J) = A(I,J)
END DO
END
"
        )
    }

    pub fn gaussian(n: i64) -> String {
        format!(
            "
PROGRAM GAUSS
INTEGER, PARAMETER :: N = {n}
REAL A(N, N)
INTEGER K
C$ DISTRIBUTE A(*, BLOCK)
FORALL (I=1:N, J=1:N) A(I,J) = 1.0/REAL(I+J-1)
FORALL (I=1:N) A(I,I) = A(I,I) + 2.0
DO K = 1, N-1
  FORALL (I=K+1:N, J=K+1:N) A(I,J) = A(I,J) - A(I,K)/A(K,K)*A(K,J)
END DO
END
"
        )
    }

    pub fn irregular(n: i64) -> String {
        format!(
            "
PROGRAM IRREG
INTEGER, PARAMETER :: N = {n}
REAL A(N), B(N), C(N)
INTEGER U(N), V(N)
INTEGER IT
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ ALIGN C(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) B(I) = REAL(I)
FORALL (I=1:N) C(I) = REAL(N - I)
FORALL (I=1:N) U(I) = MOD(I*7, N) + 1
FORALL (I=1:N) V(I) = MOD(I*11, N) + 1
DO IT = 1, 4
  FORALL (I=1:N) A(U(I)) = B(V(I)) + C(I)
END DO
END
"
        )
    }
}

/// Run `src` and return `(elapsed, messages, bytes, printed, arrays)`.
fn run(
    src: &str,
    grid: &[i64],
    spec: &MachineSpec,
    backend: Backend,
    overlap: bool,
    arrays: &[&str],
) -> (f64, u64, u64, Vec<String>, Vec<ArrayData>) {
    let mut opts = CompileOptions::on_grid(grid).with_backend(backend);
    opts.opt.comm_compute_overlap = overlap;
    let compiled = compile(src, &opts).expect("compiles");
    let mut m = Machine::new(spec.clone(), ProcGrid::new(grid));
    match backend {
        Backend::TreeWalk => {
            let mut ex = Executor::new(&compiled.spmd, &mut m);
            ex.overlap = overlap;
            let rep = ex.run(&mut m).expect("runs");
            let data = arrays
                .iter()
                .map(|a| ex.gather_array(&mut m, a).unwrap())
                .collect();
            (rep.elapsed, rep.messages, rep.bytes, rep.printed, data)
        }
        Backend::Vm => {
            let prog = compiled.vm_program().expect("lowers");
            let mut eng = f90d_vm::Engine::new(prog, &mut m);
            eng.overlap = overlap;
            let rep = eng.run(&mut m).expect("runs");
            let data = arrays
                .iter()
                .map(|a| eng.gather_array(&mut m, a).unwrap())
                .collect();
            (rep.elapsed, rep.messages, rep.bytes, rep.printed, data)
        }
    }
}

#[test]
fn overlap_lowers_virtual_time_bit_identical_results() {
    let src = workloads::jacobi(48, 3);
    for spec in [MachineSpec::ipsc860(), MachineSpec::ncube2()] {
        for backend in [Backend::TreeWalk, Backend::Vm] {
            let (t_block, msg_b, by_b, print_b, arr_b) =
                run(&src, &[2, 2], &spec, backend, false, &["A", "B"]);
            let (t_over, msg_o, by_o, print_o, arr_o) =
                run(&src, &[2, 2], &spec, backend, true, &["A", "B"]);
            assert!(
                t_over < t_block,
                "{} {:?}: overlap {t_over} must beat blocking {t_block}",
                spec.name,
                backend
            );
            assert_eq!(msg_o, msg_b, "same messages either way");
            assert_eq!(by_o, by_b, "same bytes either way");
            assert_eq!(print_o, print_b, "same PRINT either way");
            assert_eq!(arr_o, arr_b, "arrays must be bit-identical");
        }
    }
}

#[test]
fn overlap_backends_agree_bit_exactly() {
    let src = workloads::jacobi(32, 2);
    for spec in [MachineSpec::ipsc860(), MachineSpec::ncube2()] {
        let (t_tw, msg_tw, by_tw, print_tw, arr_tw) =
            run(&src, &[2, 2], &spec, Backend::TreeWalk, true, &["A", "B"]);
        let (t_vm, msg_vm, by_vm, print_vm, arr_vm) =
            run(&src, &[2, 2], &spec, Backend::Vm, true, &["A", "B"]);
        assert_eq!(
            t_tw.to_bits(),
            t_vm.to_bits(),
            "{}: overlap virtual time must agree across backends",
            spec.name
        );
        assert_eq!((msg_tw, by_tw), (msg_vm, by_vm));
        assert_eq!(print_tw, print_vm);
        assert_eq!(arr_tw, arr_vm);
    }
}

#[test]
fn overlap_flag_is_inert_for_non_stencil_programs() {
    // Gaussian elimination (multicast preludes) and the irregular kernel
    // (gather/scatter schedules) have no overlap-eligible FORALL: the
    // flag must change nothing, bit for bit.
    for src in [workloads::gaussian(24), workloads::irregular(64)] {
        for backend in [Backend::TreeWalk, Backend::Vm] {
            let spec = MachineSpec::ipsc860();
            let (t0, m0, b0, p0, a0) = run(&src, &[4], &spec, backend, false, &[]);
            let (t1, m1, b1, p1, a1) = run(&src, &[4], &spec, backend, true, &[]);
            assert_eq!(t0.to_bits(), t1.to_bits(), "{backend:?} virtual time");
            assert_eq!((m0, b0, p0, a0), (m1, b1, p1, a1));
        }
    }
}

#[test]
fn overlap_single_rank_matches_blocking() {
    // On one rank every ghost move is a local copy performed at post
    // time; overlap mode must still produce identical arrays and not
    // increase time.
    let src = workloads::jacobi(24, 2);
    let spec = MachineSpec::ipsc860();
    let (t_b, _, _, _, arr_b) = run(&src, &[1, 1], &spec, Backend::TreeWalk, false, &["A", "B"]);
    let (t_o, _, _, _, arr_o) = run(&src, &[1, 1], &spec, Backend::TreeWalk, true, &["A", "B"]);
    assert_eq!(arr_b, arr_o);
    assert!(t_o <= t_b);
}

#[test]
fn leaked_message_surfaces_as_exec_error() {
    // The end-of-run quiescence check: a message posted outside the
    // compiled program (never received) must fail the run with a
    // structured error, not be silently dropped.
    let src = workloads::jacobi(12, 1);
    let compiled = compile(&src, &CompileOptions::on_grid(&[2, 2])).unwrap();
    let mut m = Machine::new(MachineSpec::ipsc860(), ProcGrid::new(&[2, 2]));
    m.transport
        .post_send(0, 1, 999_999, ArrayData::Real(vec![1.0]));
    let mut ex = Executor::new(&compiled.spmd, &mut m);
    let err = ex.run(&mut m).unwrap_err();
    assert!(
        err.0.contains("not quiescent"),
        "expected quiescence failure, got: {err}"
    );
}

#[test]
fn vm_engine_also_checks_quiescence() {
    let src = workloads::jacobi(12, 1);
    let compiled = compile(
        &src,
        &CompileOptions::on_grid(&[2, 2]).with_backend(Backend::Vm),
    )
    .unwrap();
    let prog = compiled.vm_program().unwrap();
    let mut m = Machine::new(MachineSpec::ipsc860(), ProcGrid::new(&[2, 2]));
    m.transport
        .post_send(0, 1, 999_999, ArrayData::Real(vec![1.0]));
    let mut eng = f90d_vm::Engine::new(prog, &mut m);
    let err = eng.run(&mut m).unwrap_err();
    assert!(
        err.0.contains("not quiescent"),
        "expected quiescence failure, got: {err}"
    );
}
