//! Differential property test for the transport redesign: random shift
//! kernels × grids × both backends × both local-phase execution modes
//! (threaded runs lease pool workers from the process-wide budget and
//! must be bit-identical to sequential ones, including under overlap).
//!
//! * **Blocking wrappers**: executing through the posted-operation API's
//!   post-then-finish wrappers must be deterministic and bit-identical
//!   across backends — the committed `BENCH_baseline.json` (CI's
//!   `repro --quick --baseline` gate) pins these same metrics against the
//!   pre-redesign blocking transport, so equality here plus the CI gate
//!   is the "≡ pre-redesign baseline" property.
//! * **Overlap mode**: `comm_compute_overlap` must keep arrays, PRINT,
//!   message and byte counts bit-identical, never increase virtual time,
//!   and strictly decrease it on communication-bound multi-rank stencils.

use f90d_core::{compile, Backend, CompileOptions, Executor};
use f90d_distrib::ProcGrid;
use f90d_machine::{budget, ArrayData, ExecMode, Machine, MachineSpec};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct ShiftKernel {
    n: i64,
    shift1: i64,
    shift2: i64,
    iters: i64,
    grid: Vec<i64>,
    machine: &'static str,
    exec: ExecMode,
}

fn offset(c: i64) -> String {
    match c.cmp(&0) {
        std::cmp::Ordering::Equal => String::new(),
        std::cmp::Ordering::Greater => format!("+{c}"),
        std::cmp::Ordering::Less => format!("{c}"),
    }
}

/// A 1-D stencil whose RHS reads `B(I+s1)` and `B(I+s2)`: with BLOCK
/// distribution the detector emits `overlap_shift` preludes, which is
/// exactly the shape the split-phase path executes.
fn program(p: &ShiftKernel) -> String {
    let pad = p.shift1.abs().max(p.shift2.abs()).max(1);
    let (lo, hi) = (1 + pad, p.n - pad);
    format!(
        "
PROGRAM SHIFTK
INTEGER, PARAMETER :: N = {n}
REAL A(N), B(N)
INTEGER IT
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) B(I) = REAL(I)*0.5
FORALL (I=1:N) A(I) = 0.0
DO IT = 1, {iters}
  FORALL (I={lo}:{hi}) A(I) = B(I{s1}) + 2.0*B(I{s2}) - B(I)
  FORALL (I={lo}:{hi}) B(I) = A(I)
END DO
END
",
        n = p.n,
        iters = p.iters,
        s1 = offset(p.shift1),
        s2 = offset(p.shift2),
    )
}

fn kernels() -> impl Strategy<Value = ShiftKernel> {
    (
        16i64..48,
        -3i64..=3,
        -3i64..=3,
        1i64..=3,
        prop_oneof![Just(vec![1]), Just(vec![2]), Just(vec![4])],
        prop_oneof![Just("ipsc860"), Just("ncube2")],
        prop_oneof![Just(ExecMode::Sequential), Just(ExecMode::Threaded)],
    )
        .prop_map(
            |(n, shift1, shift2, iters, grid, machine, exec)| ShiftKernel {
                n,
                shift1,
                shift2,
                iters,
                grid,
                machine,
                exec,
            },
        )
}

fn spec_of(name: &str) -> MachineSpec {
    match name {
        "ipsc860" => MachineSpec::ipsc860(),
        _ => MachineSpec::ncube2(),
    }
}

type Metrics = (u64, u64, u64, Vec<String>, Vec<ArrayData>);

/// `(virt_bits, messages, bytes, printed, arrays)` of one run under an
/// explicit execution mode, wired through the executor/engine `exec`
/// field exactly as `CompileOptions::exec_mode` is.
fn run_exec(p: &ShiftKernel, backend: Backend, overlap: bool, exec: ExecMode) -> Metrics {
    budget::global().ensure_total_at_least(8);
    let src = program(p);
    let mut opts = CompileOptions::on_grid(&p.grid).with_backend(backend);
    opts.opt.comm_compute_overlap = overlap;
    let compiled = compile(&src, &opts).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    let mut m = Machine::new(spec_of(p.machine), ProcGrid::new(&p.grid));
    match backend {
        Backend::TreeWalk => {
            let mut ex = Executor::new(&compiled.spmd, &mut m);
            ex.overlap = overlap;
            ex.exec = Some(exec);
            let rep = ex
                .run(&mut m)
                .unwrap_or_else(|e| panic!("tree walk failed: {e}\n{src}"));
            let arrays = ["A", "B"]
                .iter()
                .map(|a| ex.gather_array(&mut m, a).unwrap())
                .collect();
            (
                rep.elapsed.to_bits(),
                rep.messages,
                rep.bytes,
                rep.printed,
                arrays,
            )
        }
        Backend::Vm => {
            let prog = compiled
                .vm_program()
                .unwrap_or_else(|e| panic!("lowering failed: {e}\n{src}"));
            let mut eng = f90d_vm::Engine::new(prog, &mut m);
            eng.overlap = overlap;
            eng.exec = Some(exec);
            let rep = eng
                .run(&mut m)
                .unwrap_or_else(|e| panic!("vm failed: {e}\n{src}"));
            let arrays = ["A", "B"]
                .iter()
                .map(|a| eng.gather_array(&mut m, a).unwrap())
                .collect();
            (
                rep.elapsed.to_bits(),
                rep.messages,
                rep.bytes,
                rep.printed,
                arrays,
            )
        }
    }
}

/// [`run_exec`] under the kernel's sampled mode.
fn run(p: &ShiftKernel, backend: Backend, overlap: bool) -> Metrics {
    run_exec(p, backend, overlap, p.exec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn blocking_wrappers_deterministic_and_backend_identical(p in kernels()) {
        let tw = run(&p, Backend::TreeWalk, false);
        let tw2 = run(&p, Backend::TreeWalk, false);
        prop_assert_eq!(&tw, &tw2, "blocking wrappers must be deterministic");
        let vm = run(&p, Backend::Vm, false);
        prop_assert_eq!(&tw, &vm, "blocking metrics must agree across backends");
        // Execution mode must be invisible in every metric: anchor the
        // sampled mode against an explicitly sequential run.
        let seq = run_exec(&p, Backend::TreeWalk, false, ExecMode::Sequential);
        prop_assert_eq!(&tw, &seq, "threaded must be bit-identical to sequential");
    }

    #[test]
    fn overlap_preserves_results_and_never_slows(p in kernels()) {
        // Sequential blocking anchor: the overlap runs below execute in
        // the sampled mode, so this also differentially tests
        // threaded × overlap × schedule-cache against sequential.
        let (tb, msg_b, by_b, pr_b, arr_b) = run_exec(&p, Backend::TreeWalk, false, ExecMode::Sequential);
        for backend in [Backend::TreeWalk, Backend::Vm] {
            let (to, msg_o, by_o, pr_o, arr_o) = run(&p, backend, true);
            prop_assert_eq!(msg_o, msg_b, "messages invariant under overlap");
            prop_assert_eq!(by_o, by_b, "bytes invariant under overlap");
            prop_assert_eq!(&pr_o, &pr_b, "PRINT invariant under overlap");
            prop_assert_eq!(&arr_o, &arr_b, "arrays bit-identical under overlap");
            prop_assert!(
                f64::from_bits(to) <= f64::from_bits(tb),
                "overlap must never increase virtual time ({} vs {})",
                f64::from_bits(to), f64::from_bits(tb)
            );
            // Communication-bound cells (real wire traffic and nonzero
            // shifts) must get strictly faster.
            let shifted = p.shift1 != 0 || p.shift2 != 0;
            if shifted && msg_b > 0 {
                prop_assert!(
                    f64::from_bits(to) < f64::from_bits(tb),
                    "communication-bound stencil must strictly improve\n{}",
                    program(&p)
                );
            }
        }
    }
}
