//! End-to-end differential tests: every program is compiled to SPMD form,
//! executed on a simulated machine for several grid shapes, and the final
//! array contents are compared elementwise against the sequential
//! reference interpreter. This exercises the full paper pipeline —
//! partitioning, detection, communication generation, execution.

use std::collections::HashMap;

use f90d_core::reference::run_reference;
use f90d_core::{compile, CompileOptions, Executor, OptFlags};
use f90d_distrib::ProcGrid;
use f90d_machine::{ArrayData, Machine, MachineSpec};

/// Compile `src` on `grid`, seed `inits`, run, and compare every array
/// against the reference interpreter. Returns the print output.
fn differential(
    src: &str,
    grid: &[i64],
    inits: &HashMap<String, ArrayData>,
    opts: Option<CompileOptions>,
) -> Vec<String> {
    let mut o = opts.unwrap_or_default();
    o.grid_shape = Some(grid.to_vec());
    let compiled = compile(src, &o).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    let reference = run_reference(&compiled.analyzed, inits).expect("reference run");
    let mut m = Machine::new(MachineSpec::ideal(), ProcGrid::new(grid));
    let mut ex = Executor::new(&compiled.spmd, &mut m);
    ex.sched.reuse = o.opt.schedule_reuse;
    for (name, data) in inits {
        assert!(ex.seed_array(&mut m, name, data), "unknown array {name}");
    }
    let report = ex
        .run(&mut m)
        .unwrap_or_else(|e| panic!("exec failed: {e}"));
    for (name, href) in &reference.arrays {
        let got = ex
            .gather_array(&mut m, name)
            .unwrap_or_else(|| panic!("array {name} missing after run"));
        assert_eq!(got.len(), href.data.len(), "size of {name}");
        for k in 0..got.len() {
            let (a, b) = (got.get(k), href.data.get(k));
            let ok = match (a, b) {
                (f90d_machine::Value::Real(x), f90d_machine::Value::Real(y)) => {
                    (x.is_nan() && y.is_nan()) || (x - y).abs() <= 1e-9 * (1.0 + y.abs())
                }
                (a, b) => a == b,
            };
            assert!(
                ok,
                "grid {grid:?}: {name}[{k}] = {a:?}, reference {b:?}\n--- source ---\n{src}"
            );
        }
    }
    assert_eq!(report.printed, reference.printed, "print output differs");
    report.printed
}

fn real_ramp(n: i64) -> ArrayData {
    ArrayData::Real((0..n).map(|x| (x * 7 % 23) as f64 - 5.0).collect())
}

fn grids_1d() -> Vec<Vec<i64>> {
    vec![vec![1], vec![2], vec![4], vec![5]]
}

// ---- canonical FORALL / shifts (paper §4 example 1) -----------------------

#[test]
fn jacobi_1d_block_overlap_shift() {
    let src = "
PROGRAM JAC
INTEGER, PARAMETER :: N = 24
REAL A(N), B(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=2:N-1) A(I) = 0.5*(B(I-1) + B(I+1))
END
";
    let inits = HashMap::from([("B".to_string(), real_ramp(24))]);
    for g in grids_1d() {
        differential(src, &g, &inits, None);
    }
}

#[test]
fn jacobi_2d_block_block() {
    let src = "
PROGRAM JAC2
INTEGER, PARAMETER :: N = 10
REAL A(N,N), B(N,N)
C$ TEMPLATE T(N,N)
C$ ALIGN A(I,J) WITH T(I,J)
C$ ALIGN B(I,J) WITH T(I,J)
C$ DISTRIBUTE T(BLOCK,BLOCK)
FORALL (I=1:N, J=1:N) B(I,J) = REAL(I*3 + J)
FORALL (I=2:N-1, J=2:N-1) A(I,J) = 0.25*(B(I-1,J)+B(I+1,J)+B(I,J-1)+B(I,J+1))
END
";
    let inits = HashMap::new();
    for g in [vec![1, 1], vec![2, 2], vec![2, 3], vec![4, 1]] {
        differential(src, &g, &inits, None);
    }
}

#[test]
fn shifts_on_cyclic_use_temporaries() {
    let src = "
PROGRAM CYC
INTEGER, PARAMETER :: N = 17
REAL A(N), B(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(CYCLIC)
FORALL (I=1:N-3) A(I) = B(I+3) - B(I)
END
";
    let inits = HashMap::from([("B".to_string(), real_ramp(17))]);
    for g in grids_1d() {
        differential(src, &g, &inits, None);
    }
}

#[test]
fn runtime_shift_amount_temporary_shift() {
    let src = "
PROGRAM TSH
INTEGER, PARAMETER :: N = 16
REAL A(N), B(N)
INTEGER S
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
S = 5
FORALL (I=1:N-5) A(I) = B(I+S)
END
";
    let inits = HashMap::from([("B".to_string(), real_ramp(16))]);
    for g in grids_1d() {
        differential(src, &g, &inits, None);
    }
}

// ---- multicast / transfer (paper §5.3.1 examples 1 and 2) -----------------

#[test]
fn transfer_column_to_column() {
    let src = "
PROGRAM XFER
INTEGER, PARAMETER :: N = 8
REAL A(N,N), B(N,N)
C$ PROCESSORS P(2,2)
C$ TEMPLATE T(N,N)
C$ ALIGN A(I,J) WITH T(I,J)
C$ ALIGN B(I,J) WITH T(I,J)
C$ DISTRIBUTE T(BLOCK,BLOCK)
FORALL (I=1:N) A(I,8) = B(I,3)
END
";
    let inits = HashMap::from([(
        "B".to_string(),
        ArrayData::Real((0..64).map(|x| x as f64).collect()),
    )]);
    for g in [vec![2, 2], vec![1, 4], vec![4, 2]] {
        differential(src, &g, &inits, None);
    }
}

#[test]
fn multicast_along_grid_dim() {
    let src = "
PROGRAM MC
INTEGER, PARAMETER :: N = 8
REAL A(N,N), B(N,N)
C$ TEMPLATE T(N,N)
C$ ALIGN A(I,J) WITH T(I,J)
C$ ALIGN B(I,J) WITH T(I,J)
C$ DISTRIBUTE T(BLOCK,BLOCK)
FORALL (I=1:N, J=1:N) A(I,J) = B(I,3)
END
";
    let inits = HashMap::from([(
        "B".to_string(),
        ArrayData::Real((0..64).map(|x| (x * x % 31) as f64).collect()),
    )]);
    for g in [vec![2, 2], vec![1, 4], vec![2, 3]] {
        differential(src, &g, &inits, None);
    }
}

#[test]
fn multicast_shift_fused_and_unfused() {
    let src = "
PROGRAM MCS
INTEGER, PARAMETER :: N = 8
REAL A(N,N), B(N,N)
INTEGER S
C$ TEMPLATE T(N,N)
C$ ALIGN A(I,J) WITH T(I,J)
C$ ALIGN B(I,J) WITH T(I,J)
C$ DISTRIBUTE T(BLOCK,BLOCK)
S = 2
FORALL (I=1:N, J=1:N-2) A(I,J) = B(3,J+S)
END
";
    let inits = HashMap::from([(
        "B".to_string(),
        ArrayData::Real((0..64).map(|x| (x % 13) as f64 * 1.5).collect()),
    )]);
    for fused in [true, false] {
        let mut opts = CompileOptions::default();
        opts.opt.fuse_multicast_shift = fused;
        for g in [vec![2, 2], vec![2, 4]] {
            differential(src, &g, &inits, Some(opts.clone()));
        }
    }
}

// ---- unstructured (paper §5.3.2 examples 1–3, Table 2) --------------------

#[test]
fn precomp_read_invertible_subscript() {
    let src = "
PROGRAM PCR
INTEGER, PARAMETER :: N = 10
REAL A(N), B(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:4) A(I) = B(2*I+1)
END
";
    let inits = HashMap::from([("B".to_string(), real_ramp(10))]);
    for g in grids_1d() {
        differential(src, &g, &inits, None);
    }
}

#[test]
fn gather_vector_subscript() {
    let src = "
PROGRAM GAT
INTEGER, PARAMETER :: N = 12
REAL A(N), B(N)
INTEGER V(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) A(I) = B(V(I))
END
";
    // V replicated (no directives): a permutation, 1-based contents.
    let v: Vec<i64> = (0..12).map(|i| (i * 5) % 12 + 1).collect();
    let inits = HashMap::from([
        ("B".to_string(), real_ramp(12)),
        ("V".to_string(), ArrayData::Int(v)),
    ]);
    for g in grids_1d() {
        differential(src, &g, &inits, None);
    }
}

#[test]
fn scatter_vector_valued_lhs() {
    let src = "
PROGRAM SCA
INTEGER, PARAMETER :: N = 12
REAL A(N), B(N)
INTEGER U(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) A(U(I)) = B(I)
END
";
    let u: Vec<i64> = (0..12).map(|i| (i * 7) % 12 + 1).collect();
    let inits = HashMap::from([
        ("B".to_string(), real_ramp(12)),
        ("U".to_string(), ArrayData::Int(u)),
    ]);
    for g in grids_1d() {
        differential(src, &g, &inits, None);
    }
}

#[test]
fn fft_style_non_canonical_lhs() {
    // Paper §4 example 2: lhs index uses two forall variables.
    let src = "
PROGRAM FFT
INTEGER, PARAMETER :: INCRM = 2, NX = 8
REAL X(32), TERM(32)
C$ TEMPLATE T(32)
C$ ALIGN X(I) WITH T(I)
C$ ALIGN TERM(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:INCRM, J=1:NX/2)&
& X(I+J*INCRM*2-INCRM) = TERM(I+J*INCRM*2-INCRM) + X(I+J*INCRM*2)
END
";
    let inits = HashMap::from([
        ("X".to_string(), real_ramp(32)),
        (
            "TERM".to_string(),
            ArrayData::Real((0..32).map(|x| 0.25 * x as f64).collect()),
        ),
    ]);
    for g in grids_1d() {
        differential(src, &g, &inits, None);
    }
}

// ---- Algorithm 1 step 11: undistributed LHS → concatenation ---------------

#[test]
fn replicated_lhs_concatenates_rhs() {
    let src = "
PROGRAM REP
INTEGER, PARAMETER :: N = 10
REAL A(N), M(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) M(I) = A(I) * 2.0
END
";
    let inits = HashMap::from([("A".to_string(), real_ramp(10))]);
    for g in grids_1d() {
        differential(src, &g, &inits, None);
    }
    // And the compiler must have emitted a concatenation.
    let mut o = CompileOptions::on_grid(&[4]);
    o.opt = OptFlags::default();
    let compiled = compile(src, &o).unwrap();
    assert_eq!(compiled.spmd.comm_census().get("concatenation"), Some(&1));
}

// ---- masks and WHERE -------------------------------------------------------

#[test]
fn masked_forall_and_where() {
    let src = "
PROGRAM MSK
INTEGER, PARAMETER :: N = 14
REAL A(N), B(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N, B(I) > 0.0) A(I) = B(I)
WHERE (B < 0.0)
A = -B
ELSEWHERE
A = A + 1.0
END WHERE
END
";
    let inits = HashMap::from([("B".to_string(), real_ramp(14))]);
    for g in grids_1d() {
        differential(src, &g, &inits, None);
    }
}

// ---- scalar context: reductions, broadcasts, control flow ------------------

#[test]
fn reductions_into_replicated_scalars() {
    let src = "
PROGRAM RED
INTEGER, PARAMETER :: N = 20
REAL A(N), S, MX
C$ DISTRIBUTE A(BLOCK)
FORALL (I=1:N) A(I) = REAL(I*I - 7*I)
S = SUM(A) / REAL(N)
MX = MAXVAL(A) - MINVAL(A)
PRINT *, S, MX
END
";
    let inits = HashMap::new();
    for g in grids_1d() {
        let printed = differential(src, &g, &inits, None);
        assert_eq!(printed.len(), 1);
    }
}

#[test]
fn broadcast_element_in_scalar_context() {
    let src = "
PROGRAM BCE
INTEGER, PARAMETER :: N = 12
REAL A(N), PIV
C$ DISTRIBUTE A(BLOCK)
FORALL (I=1:N) A(I) = REAL(I) * 3.0
PIV = A(7) + A(2)
PRINT *, PIV
END
";
    for g in grids_1d() {
        differential(src, &g, &HashMap::new(), None);
    }
}

#[test]
fn do_loop_with_distributed_updates() {
    let src = "
PROGRAM DOL
INTEGER, PARAMETER :: N = 12
REAL A(N)
INTEGER K
C$ DISTRIBUTE A(BLOCK)
FORALL (I=1:N) A(I) = 1.0
DO K = 1, 4
  FORALL (I=1:N) A(I) = A(I) * 2.0 + REAL(K)
END DO
END
";
    for g in grids_1d() {
        differential(src, &g, &HashMap::new(), None);
    }
}

#[test]
fn if_and_element_assignment() {
    let src = "
PROGRAM IFE
INTEGER, PARAMETER :: N = 9
REAL A(N), S
C$ DISTRIBUTE A(CYCLIC)
FORALL (I=1:N) A(I) = REAL(I)
S = SUM(A)
IF (S > 40.0) THEN
  A(3) = -1.0
ELSE
  A(4) = -2.0
END IF
END
";
    for g in grids_1d() {
        differential(src, &g, &HashMap::new(), None);
    }
}

// ---- distributions: cyclic(k), alignment offsets ----------------------------

#[test]
fn block_cyclic_distribution() {
    let src = "
PROGRAM BCY
INTEGER, PARAMETER :: N = 20
REAL A(N), B(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(CYCLIC(3))
FORALL (I=1:N) A(I) = B(I) + 1.0
END
";
    let inits = HashMap::from([("B".to_string(), real_ramp(20))]);
    for g in grids_1d() {
        differential(src, &g, &inits, None);
    }
}

#[test]
fn alignment_offset_shift_detection() {
    // A aligned to T(I+2): A(i) and B(i) land two template cells apart.
    let src = "
PROGRAM OFS
INTEGER, PARAMETER :: N = 12
REAL A(N), B(N)
C$ TEMPLATE T(14)
C$ ALIGN A(I) WITH T(I+2)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) A(I) = B(I)
END
";
    let inits = HashMap::from([("B".to_string(), real_ramp(12))]);
    for g in grids_1d() {
        differential(src, &g, &inits, None);
    }
}

#[test]
fn column_distribution_star_block() {
    // The Table 4 layout: (*, BLOCK).
    let src = "
PROGRAM COL
INTEGER, PARAMETER :: N = 8
REAL A(N,N)
INTEGER K
C$ DISTRIBUTE A(*, BLOCK)
FORALL (I=1:N, J=1:N) A(I,J) = 1.0/REAL(I+J-1)
DO K = 1, N-1
  FORALL (I=K+1:N, J=K+1:N) A(I,J) = A(I,J) - A(I,K)/A(K,K)*A(K,J)
END DO
END
";
    for g in [vec![1], vec![2], vec![4], vec![8]] {
        differential(src, &g, &HashMap::new(), None);
    }
}

// ---- subroutines and redistribution ----------------------------------------

#[test]
fn call_with_matching_mapping_aliases() {
    let src = "
PROGRAM MAIN
INTEGER, PARAMETER :: N = 8
REAL A(N)
C$ DISTRIBUTE A(BLOCK)
FORALL (I=1:N) A(I) = REAL(I)
CALL DOUBLEIT(A)
END
SUBROUTINE DOUBLEIT(X)
INTEGER, PARAMETER :: N = 8
REAL X(N)
C$ DISTRIBUTE X(BLOCK)
FORALL (I=1:N) X(I) = X(I) * 2.0
END
";
    for g in grids_1d() {
        differential(src, &g, &HashMap::new(), None);
    }
}

#[test]
fn call_with_different_mapping_redistributes() {
    let src = "
PROGRAM MAIN
INTEGER, PARAMETER :: N = 12
REAL A(N)
C$ DISTRIBUTE A(BLOCK)
FORALL (I=1:N) A(I) = REAL(I)
CALL ADDONE(A)
END
SUBROUTINE ADDONE(X)
INTEGER, PARAMETER :: N = 12
REAL X(N)
C$ DISTRIBUTE X(CYCLIC)
FORALL (I=1:N) X(I) = X(I) + 1.0
END
";
    for g in grids_1d() {
        differential(src, &g, &HashMap::new(), None);
    }
    // Entry + exit remap copies must be present.
    let compiled = compile(src, &CompileOptions::on_grid(&[4])).unwrap();
    let remaps = compiled
        .spmd
        .stmts
        .iter()
        .filter(|s| {
            matches!(
                s,
                f90d_core::ir::SStmt::Runtime(f90d_core::ir::RtCall::RemapCopy { .. })
            )
        })
        .count();
    assert_eq!(remaps, 2);
}

#[test]
fn executable_redistribute() {
    let src = "
PROGRAM RED
INTEGER, PARAMETER :: N = 16
REAL A(N)
C$ DISTRIBUTE A(BLOCK)
FORALL (I=1:N) A(I) = REAL(I*I)
C$ REDISTRIBUTE A(CYCLIC)
FORALL (I=1:N) A(I) = A(I) + 1.0
END
";
    for g in grids_1d() {
        differential(src, &g, &HashMap::new(), None);
    }
}

// ---- array-valued intrinsic statements -------------------------------------

#[test]
fn cshift_statement() {
    let src = "
PROGRAM CSH
INTEGER, PARAMETER :: N = 10
REAL A(N), B(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) A(I) = REAL(I)
B = CSHIFT(A, 3)
END
";
    for g in grids_1d() {
        differential(src, &g, &HashMap::new(), None);
    }
}

#[test]
fn transpose_and_matmul_statements() {
    let src = "
PROGRAM TMM
INTEGER, PARAMETER :: N = 6
REAL A(N,N), B(N,N), C(N,N)
C$ TEMPLATE T(N,N)
C$ ALIGN A(I,J) WITH T(I,J)
C$ ALIGN B(I,J) WITH T(I,J)
C$ ALIGN C(I,J) WITH T(I,J)
C$ DISTRIBUTE T(BLOCK,BLOCK)
FORALL (I=1:N, J=1:N) A(I,J) = REAL(I + J*J)
B = TRANSPOSE(A)
C = MATMUL(A, B)
END
";
    for g in [vec![1, 1], vec![2, 2], vec![3, 2]] {
        differential(src, &g, &HashMap::new(), None);
    }
}

// ---- optimization equivalence ----------------------------------------------

#[test]
fn optimizations_do_not_change_results() {
    let src = "
PROGRAM OPT
INTEGER, PARAMETER :: N = 16
REAL A(N), B(N)
INTEGER K
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) B(I) = REAL(I)
DO K = 1, 3
  FORALL (I=1:N-3) A(I) = B(I+2) + B(I+3)
END DO
END
";
    let mut all_on = CompileOptions::default();
    all_on.opt = OptFlags::default();
    let mut all_off = CompileOptions::default();
    all_off.opt = OptFlags::none();
    for opts in [all_on, all_off] {
        for g in grids_1d() {
            differential(src, &g, &HashMap::new(), Some(opts.clone()));
        }
    }
}

#[test]
fn shift_union_elimination_reduces_comm() {
    // §7(2): A(I)=B(I+2)+B(I+3) needs one shift, not two.
    let src = "
PROGRAM UNI
INTEGER, PARAMETER :: N = 16
REAL A(N), B(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N-3) A(I) = B(I+2) + B(I+3)
END
";
    let mut on = CompileOptions::on_grid(&[4]);
    on.opt.merge_comm = true;
    let mut off = CompileOptions::on_grid(&[4]);
    off.opt.merge_comm = false;
    let c_on = compile(src, &on).unwrap();
    let c_off = compile(src, &off).unwrap();
    assert_eq!(c_on.spmd.comm_census()["overlap_shift"], 1);
    assert_eq!(c_off.spmd.comm_census()["overlap_shift"], 2);
}

#[test]
fn ge_kernel_multicast_dedup() {
    // The Gaussian-elimination kernel: A(I,K) and A(K,K) share one column
    // multicast when merge_comm is on — the paper's "extra communication
    // call that can be eliminated".
    let src = "
PROGRAM GEK
INTEGER, PARAMETER :: N = 8
REAL A(N,N)
INTEGER K
C$ DISTRIBUTE A(*, BLOCK)
FORALL (I=1:N, J=1:N) A(I,J) = REAL(I+J) + 0.1
DO K = 1, N-1
  FORALL (I=K+1:N, J=K+1:N) A(I,J) = A(I,J) - A(I,K)/A(K,K)*A(K,J)
END DO
END
";
    let mut on = CompileOptions::on_grid(&[4]);
    on.opt.merge_comm = true;
    let mut off = CompileOptions::on_grid(&[4]);
    off.opt.merge_comm = false;
    assert_eq!(
        compile(src, &on).unwrap().spmd.comm_census()["multicast"],
        1
    );
    assert_eq!(
        compile(src, &off).unwrap().spmd.comm_census()["multicast"],
        2
    );
}

#[test]
fn invariant_comm_hoisted_out_of_do() {
    let src = "
PROGRAM HOI
INTEGER, PARAMETER :: N = 16
REAL A(N), B(N), C(N)
INTEGER K
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ ALIGN C(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) B(I) = REAL(I)
DO K = 1, 5
  FORALL (I=1:N-1) A(I) = A(I) + B(I+1)
END DO
END
";
    let mut on = CompileOptions::on_grid(&[4]);
    on.opt.hoist_invariant_comm = true;
    let compiled = compile(src, &on).unwrap();
    // The overlap shift of B is K-invariant (B never written in the loop)
    // and must sit at top level, not inside the DO.
    let top_level_comm = compiled
        .spmd
        .stmts
        .iter()
        .filter(|s| matches!(s, f90d_core::ir::SStmt::Comm(_)))
        .count();
    assert_eq!(top_level_comm, 1, "shift not hoisted");
    // And the result still matches.
    for g in grids_1d() {
        differential(src, &g, &HashMap::new(), Some(on.clone()));
    }
}

// ---- generated code shape (golden substrings, paper §5.3) -------------------

#[test]
fn fortran77_output_matches_paper_shapes() {
    let src = "
PROGRAM SHAPES
INTEGER, PARAMETER :: N = 8
REAL A(N,N), B(N,N)
C$ TEMPLATE T(N,N)
C$ ALIGN A(I,J) WITH T(I,J)
C$ ALIGN B(I,J) WITH T(I,J)
C$ DISTRIBUTE T(BLOCK,BLOCK)
FORALL (I=1:N, J=1:N) A(I,J) = B(I,3)
END
";
    let compiled = compile(src, &CompileOptions::on_grid(&[2, 2])).unwrap();
    let f77 = compiled.fortran77();
    assert!(f77.contains("call multicast("), "{f77}");
    assert!(f77.contains("call set_BOUND("), "{f77}");
    assert!(f77.contains("DO "), "{f77}");
    let src2 = "
PROGRAM SHAPE2
INTEGER, PARAMETER :: N = 8
REAL A(N), B(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:4) A(I) = B(2*I+1)
END
";
    let c2 = compile(src2, &CompileOptions::on_grid(&[4])).unwrap();
    let f77 = c2.fortran77();
    assert!(f77.contains("schedule1("), "{f77}");
    assert!(f77.contains("call precomp_read(isch"), "{f77}");
}
