//! Differential property test for the execution backends: random FORALL
//! programs (1-D and 2-D, random distributions, shifts, masks) must
//! produce **bit-identical** arrays under `Backend::TreeWalk`,
//! `Backend::Vm` — with the native kernel tier both on (the default;
//! unmasked BLOCK samples dispatch to the monomorphized closures) and
//! explicitly off — and the sequential reference interpreter, across
//! grids `[1]`, `[2]`, and `[2,2]` — under a **sampled local-phase
//! execution mode**: `ExecMode::Threaded` (persistent worker pool,
//! cross-run schedule cache on as everywhere) must be indistinguishable
//! from `ExecMode::Sequential` in arrays, virtual time, and elapsed
//! parity between backends.

use std::collections::HashMap;

use f90d_core::reference::run_reference;
use f90d_core::{compile, Backend, CompileOptions, Executor};
use f90d_distrib::ProcGrid;
use f90d_machine::{budget, ArrayData, ExecMode, Machine, MachineSpec};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandProgram {
    /// 1 or 2 array dimensions.
    ndim: usize,
    n: i64,
    dist: &'static str,
    dist2: &'static str,
    shift1: i64,
    shift2: i64,
    scale: f64,
    masked: bool,
    grid: Vec<i64>,
    exec: ExecMode,
}

fn offset(c: i64) -> String {
    match c.cmp(&0) {
        std::cmp::Ordering::Equal => String::new(),
        std::cmp::Ordering::Greater => format!("+{c}"),
        std::cmp::Ordering::Less => format!("{c}"),
    }
}

fn program(p: &RandProgram) -> String {
    let n = p.n;
    let pad = p.shift1.abs().max(p.shift2.abs());
    let (lo, hi) = (1 + pad, n - pad);
    if p.ndim == 1 {
        let mask = if p.masked { ", B(I) > 0.0" } else { "" };
        format!(
            "
PROGRAM RAND1
INTEGER, PARAMETER :: N = {n}
REAL A(N), B(N), C(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ ALIGN C(I) WITH T(I)
C$ DISTRIBUTE T({dist})
FORALL (I={lo}:{hi}{mask}) A(I) = {scale}*B(I{s1}) + C(I{s2}) - B(I)
FORALL (I={lo}:{hi}) C(I) = A(I) + B(I{s2})
END
",
            dist = p.dist,
            scale = p.scale,
            s1 = offset(p.shift1),
            s2 = offset(p.shift2),
        )
    } else {
        let mask = if p.masked { ", B(I,J) > 0.0" } else { "" };
        format!(
            "
PROGRAM RAND2
INTEGER, PARAMETER :: N = {n}
REAL A(N,N), B(N,N), C(N,N)
C$ TEMPLATE T(N,N)
C$ ALIGN A(I,J) WITH T(I,J)
C$ ALIGN B(I,J) WITH T(I,J)
C$ ALIGN C(I,J) WITH T(I,J)
C$ DISTRIBUTE T({dist}, {dist2})
FORALL (I={lo}:{hi}, J={lo}:{hi}{mask})&
& A(I,J) = {scale}*B(I{s1},J) + C(I,J{s2}) - B(I,J)
FORALL (I={lo}:{hi}, J={lo}:{hi}) C(I,J) = A(I,J) + B(I,J{s2})
END
",
            dist = p.dist,
            dist2 = p.dist2,
            scale = p.scale,
            s1 = offset(p.shift1),
            s2 = offset(p.shift2),
        )
    }
}

fn dists() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("BLOCK"), Just("CYCLIC"), Just("CYCLIC(3)")]
}

fn exec_modes() -> impl Strategy<Value = ExecMode> {
    prop_oneof![Just(ExecMode::Sequential), Just(ExecMode::Threaded)]
}

fn rand_program() -> impl Strategy<Value = RandProgram> {
    (
        1usize..=2,
        10i64..28,
        dists(),
        dists(),
        -2i64..=2,
        -2i64..=2,
        prop_oneof![Just(0.5f64), Just(1.0), Just(-2.0)],
        any::<bool>(),
        0usize..3,
        exec_modes(),
    )
        .prop_map(
            |(ndim, n, dist, dist2, shift1, shift2, scale, masked, grid_pick, exec)| {
                // The issue's grid matrix: [1], [2] for 1-D programs and
                // [1,1], [2,1], [2,2] for 2-D ones.
                let grid = match (ndim, grid_pick) {
                    (1, 0) => vec![1],
                    (1, _) => vec![2],
                    (2, 0) => vec![1, 1],
                    (2, 1) => vec![2, 1],
                    _ => vec![2, 2],
                };
                RandProgram {
                    ndim,
                    n,
                    dist,
                    dist2,
                    shift1,
                    shift2,
                    scale,
                    masked,
                    grid,
                    exec,
                }
            },
        )
}

fn host_inits(p: &RandProgram) -> HashMap<String, ArrayData> {
    let len = if p.ndim == 1 { p.n } else { p.n * p.n };
    let b = ArrayData::Real((0..len).map(|x| ((x * 13 % 17) as f64) - 6.0).collect());
    let c = ArrayData::Real((0..len).map(|x| ((x * 5 % 11) as f64) * 0.5).collect());
    HashMap::from([("B".to_string(), b), ("C".to_string(), c)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn backends_and_reference_bit_identical(p in rand_program()) {
        // Single-core hosts would otherwise degrade every threaded
        // sample to sequential; raise the budget so the pool is real.
        budget::global().ensure_total_at_least(8);
        let src = program(&p);
        let inits = host_inits(&p);
        let names = ["A", "B", "C"];

        // Sequential reference interpreter.
        let opts = CompileOptions::on_grid(&p.grid);
        let compiled = compile(&src, &opts)
            .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
        let reference = run_reference(&compiled.analyzed, &inits).unwrap();

        // Tree walker, under the sampled execution mode.
        let mut m = Machine::with_mode(MachineSpec::ideal(), ProcGrid::new(&p.grid), p.exec);
        let mut ex = Executor::new(&compiled.spmd, &mut m);
        for (name, data) in &inits {
            prop_assert!(ex.seed_array(&mut m, name, data));
        }
        ex.run(&mut m).unwrap_or_else(|e| panic!("tree walk failed: {e}\n{src}"));
        let tw: Vec<ArrayData> = names
            .iter()
            .map(|a| ex.gather_array(&mut m, a).unwrap())
            .collect();

        // Bytecode engine, native kernel tier on (the default).
        let compiled_vm = compile(&src, &opts.clone().with_backend(Backend::Vm)).unwrap();
        let prog = compiled_vm.vm_program().unwrap_or_else(|e| panic!("lowering failed: {e}\n{src}"));
        let mut m2 = Machine::with_mode(MachineSpec::ideal(), ProcGrid::new(&p.grid), p.exec);
        let mut eng = f90d_vm::Engine::new(prog, &mut m2);
        for (name, data) in &inits {
            prop_assert!(eng.seed_array(&mut m2, name, data));
        }
        eng.run(&mut m2).unwrap_or_else(|e| panic!("vm failed: {e}\n{src}"));

        for (k, name) in names.iter().enumerate() {
            let vm = eng.gather_array(&mut m2, name).unwrap();
            prop_assert_eq!(&tw[k], &vm, "array {} differs: tree walk vs vm\n{}", name, src);
            let want = &reference.arrays[*name];
            for i in 0..vm.len() {
                prop_assert!(
                    vm.get(i) == want.data.get(i),
                    "array {}[{}] = {:?}, reference {:?}\n{}",
                    name, i, vm.get(i), want.data.get(i), src
                );
            }
        }
        // Virtual time parity between the distributed backends.
        prop_assert_eq!(m.elapsed(), m2.elapsed(), "virtual time differs\n{}", src);

        // Bytecode engine with the native tier disabled: the pure
        // bytecode element loop must be indistinguishable from the
        // native-on run in arrays and virtual time, and must never
        // report a native dispatch.
        let mut opts_nonative = opts.clone().with_backend(Backend::Vm);
        opts_nonative.opt.native_kernels = false;
        let compiled_nn = compile(&src, &opts_nonative).unwrap();
        let prog_nn = compiled_nn.vm_program().unwrap_or_else(|e| panic!("lowering failed: {e}\n{src}"));
        prop_assert!(prog_nn.natives.is_empty(), "native off must select no kernels\n{}", src);
        let mut m3 = Machine::with_mode(MachineSpec::ideal(), ProcGrid::new(&p.grid), p.exec);
        let mut eng_nn = f90d_vm::Engine::new(prog_nn, &mut m3);
        for (name, data) in &inits {
            prop_assert!(eng_nn.seed_array(&mut m3, name, data));
        }
        eng_nn.run(&mut m3).unwrap_or_else(|e| panic!("vm (no native) failed: {e}\n{src}"));
        prop_assert_eq!(eng_nn.native_counts().0, 0, "native off must never dispatch\n{}", src);
        for name in &names {
            let a = eng.gather_array(&mut m2, name).unwrap();
            let b = eng_nn.gather_array(&mut m3, name).unwrap();
            prop_assert_eq!(&a, &b, "array {} differs: native vs bytecode\n{}", name, src);
        }
        prop_assert_eq!(
            m2.elapsed().to_bits(), m3.elapsed().to_bits(),
            "virtual time must be tier-independent\n{}", src
        );

        // Threaded samples additionally anchor against an explicitly
        // sequential tree-walk run: arrays AND virtual time must be
        // bit-identical across execution modes.
        if p.exec == ExecMode::Threaded {
            let mut ms = Machine::new(MachineSpec::ideal(), ProcGrid::new(&p.grid));
            let mut exs = Executor::new(&compiled.spmd, &mut ms);
            for (name, data) in &inits {
                prop_assert!(exs.seed_array(&mut ms, name, data));
            }
            exs.run(&mut ms).unwrap_or_else(|e| panic!("sequential anchor failed: {e}\n{src}"));
            for (k, name) in names.iter().enumerate() {
                let seq = exs.gather_array(&mut ms, name).unwrap();
                prop_assert_eq!(
                    &tw[k], &seq,
                    "array {} differs: threaded vs sequential\n{}", name, src
                );
            }
            prop_assert_eq!(
                m.elapsed().to_bits(), ms.elapsed().to_bits(),
                "virtual time must be mode-independent\n{}", src
            );
        }
    }
}
