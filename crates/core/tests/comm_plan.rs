//! Phase-level communication planning (`OptFlags::comm_plan`): phase
//! formation on the IR, conflict/separator fallback, bit-exact execution
//! with the plan honoured on both backends — plus the hoist def-use
//! regression battery (WHERE-masked writes, REDISTRIBUTE, and written
//! scalars must all pin their exchanges inside the loop).

use f90d_core::ir::{PhaseRole, SStmt};
use f90d_core::{compile, Backend, CompileOptions, Executor};
use f90d_distrib::ProcGrid;
use f90d_machine::{ArrayData, Machine, MachineSpec};

/// Three co-aligned arrays, three consecutive shift stencils per sweep
/// (the planner's showcase shape), then copy-backs.
fn triple_stencil(n: i64, iters: i64) -> String {
    format!(
        "
PROGRAM MSTEN
INTEGER, PARAMETER :: N = {n}
REAL A(N), B(N), C(N), A2(N), B2(N), C2(N)
INTEGER IT
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ ALIGN C(I) WITH T(I)
C$ ALIGN A2(I) WITH T(I)
C$ ALIGN B2(I) WITH T(I)
C$ ALIGN C2(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) A(I) = REAL(I)
FORALL (I=1:N) B(I) = REAL(2*I)
FORALL (I=1:N) C(I) = REAL(3*I)
DO IT = 1, {iters}
  FORALL (I=2:N-1) A2(I) = 0.5*(A(I-1) + A(I+1))
  FORALL (I=2:N-1) B2(I) = 0.5*(B(I-1) + B(I+1))
  FORALL (I=2:N-1) C2(I) = 0.5*(C(I-1) + C(I+1))
  FORALL (I=2:N-1) A(I) = A2(I)
  FORALL (I=2:N-1) B(I) = B2(I)
  FORALL (I=2:N-1) C(I) = C2(I)
END DO
END
"
    )
}

fn compiled_with_plan(src: &str, grid: &[i64]) -> f90d_core::Compiled {
    let mut opts = CompileOptions::on_grid(grid);
    opts.opt.comm_plan = true;
    compile(src, &opts).unwrap_or_else(|e| panic!("{e}\n{src}"))
}

/// The first DO body in the program.
fn do_body(stmts: &[SStmt]) -> &[SStmt] {
    stmts
        .iter()
        .find_map(|s| match s {
            SStmt::DoSeq { body, .. } => Some(body.as_slice()),
            _ => None,
        })
        .expect("program has a DO loop")
}

fn roles(stmts: &[SStmt]) -> Vec<Option<PhaseRole>> {
    stmts
        .iter()
        .filter_map(|s| match s {
            SStmt::Forall(f) => Some(f.plan),
            _ => None,
        })
        .collect()
}

/// Every FORALL annotation anywhere in the program.
fn all_roles(stmts: &[SStmt]) -> Vec<Option<PhaseRole>> {
    let mut out = Vec::new();
    fn walk(stmts: &[SStmt], out: &mut Vec<Option<PhaseRole>>) {
        for s in stmts {
            match s {
                SStmt::Forall(f) => out.push(f.plan),
                SStmt::DoSeq { body, .. } => walk(body, out),
                SStmt::If { then, else_, .. } => {
                    walk(then, out);
                    walk(else_, out);
                }
                _ => {}
            }
        }
    }
    walk(stmts, &mut out);
    out
}

// ---- phase formation --------------------------------------------------------

#[test]
fn triple_stencil_forms_one_phase_of_three() {
    let c = compiled_with_plan(&triple_stencil(24, 2), &[4]);
    let body = do_body(&c.spmd.stmts);
    assert_eq!(
        roles(body),
        vec![
            Some(PhaseRole::Lead { len: 3 }),
            Some(PhaseRole::Member),
            Some(PhaseRole::Member),
            // Copy-backs read aligned elements — no prelude, no phase.
            None,
            None,
            None,
        ],
        "planner must group exactly the three stencil FORALLs"
    );
    // The annotation must not remove the per-statement preludes (they
    // are the fallback schedule).
    for s in body {
        if let SStmt::Forall(f) = s {
            if f.plan.is_some() {
                assert!(!f.pre.is_empty(), "phase member lost its prelude");
            }
        }
    }
}

#[test]
fn write_read_conflict_prevents_grouping() {
    // Statement 2 exchanges A, which statement 1 writes: grouping them
    // would move A's ghost exchange before A's update. Neither lone
    // statement profits from a phase, so nothing is annotated.
    // `B(I) = C(I)` keeps B loop-varying, so B's exchanges stay pinned
    // in the loop instead of hoisting (empty preludes can't phase).
    let src = "
PROGRAM CONF
INTEGER, PARAMETER :: N = 24
REAL A(N), B(N), C(N)
INTEGER IT
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ ALIGN C(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) B(I) = REAL(I)
DO IT = 1, 2
  FORALL (I=2:N-1) A(I) = 0.5*(B(I-1) + B(I+1))
  FORALL (I=2:N-1) C(I) = B(I) + A(I+1)
  FORALL (I=2:N-1) B(I) = C(I)
END DO
END
";
    let c = compiled_with_plan(src, &[4]);
    assert!(
        all_roles(&c.spmd.stmts).iter().all(|r| r.is_none()),
        "write→read conflict must leave both statements per-statement"
    );
    // Control: with the conflict removed (no A(I+1) read), the two
    // statements share the B(I-1) exchange and must phase.
    let ok = src.replace("C(I) = B(I) + A(I+1)", "C(I) = B(I-1) + A(I)");
    let c = compiled_with_plan(&ok, &[4]);
    let body = do_body(&c.spmd.stmts);
    assert_eq!(
        roles(body),
        vec![
            Some(PhaseRole::Lead { len: 2 }),
            Some(PhaseRole::Member),
            None,
        ],
        "conflict-free pair sharing an exchange must phase\n{ok}"
    );
}

#[test]
fn non_forall_separator_breaks_the_group() {
    // A replicated scalar assignment between the two stencils forces
    // two singleton candidates; neither is profitable alone.
    let src = "
PROGRAM SEP
INTEGER, PARAMETER :: N = 24
REAL A(N), B(N), C(N), D(N)
REAL S
INTEGER IT
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ ALIGN C(I) WITH T(I)
C$ ALIGN D(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) A(I) = REAL(I)
FORALL (I=1:N) B(I) = REAL(N-I)
S = 0.0
DO IT = 1, 2
  FORALL (I=2:N-1) C(I) = A(I-1) + A(I+1)
  S = S + 1.0
  FORALL (I=2:N-1) D(I) = B(I-1) + B(I+1)
END DO
END
";
    let c = compiled_with_plan(src, &[4]);
    assert!(
        all_roles(&c.spmd.stmts).iter().all(|r| r.is_none()),
        "separated stencils must not phase across the scalar assignment"
    );
}

#[test]
fn plan_off_leaves_no_annotations() {
    let c = compile(
        &triple_stencil(24, 2),
        &CompileOptions::on_grid(&[4]), // comm_plan defaults to false
    )
    .unwrap();
    assert!(
        all_roles(&c.spmd.stmts).iter().all(|r| r.is_none()),
        "default flags must never annotate (baseline pinning)"
    );
}

#[test]
fn multi_array_single_forall_phases_alone() {
    // One FORALL reading two shifted arrays: a len-1 phase coalescing
    // the two same-direction strips into one message per neighbour.
    let src = "
PROGRAM ONEF
INTEGER, PARAMETER :: N = 24
REAL A(N), B(N), C(N)
INTEGER IT
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ ALIGN C(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) B(I) = REAL(I)
FORALL (I=1:N) C(I) = REAL(N-I)
DO IT = 1, 2
  FORALL (I=2:N-1) A(I) = B(I+1) + C(I+1)
  FORALL (I=2:N-1) B(I) = A(I)
  FORALL (I=2:N-1) C(I) = 0.5*A(I)
END DO
END
";
    let c = compiled_with_plan(src, &[4]);
    let body = do_body(&c.spmd.stmts);
    assert_eq!(
        roles(body),
        vec![Some(PhaseRole::Lead { len: 1 }), None, None],
        "two same-direction strips in one FORALL justify a len-1 phase"
    );
}

// ---- execution: the plan must be invisible in results -----------------------

type Outcome = (f64, u64, u64, Vec<String>, Vec<ArrayData>);

fn run(src: &str, grid: &[i64], backend: Backend, plan: bool, arrays: &[&str]) -> Outcome {
    let mut opts = CompileOptions::on_grid(grid).with_backend(backend);
    opts.opt.comm_plan = plan;
    let compiled = compile(src, &opts).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let mut m = Machine::new(MachineSpec::ipsc860(), ProcGrid::new(grid));
    match backend {
        Backend::TreeWalk => {
            let mut ex = Executor::new(&compiled.spmd, &mut m);
            ex.plan = plan;
            let rep = ex.run(&mut m).unwrap_or_else(|e| panic!("{e}\n{src}"));
            let data = arrays
                .iter()
                .map(|a| ex.gather_array(&mut m, a).unwrap())
                .collect();
            (rep.elapsed, rep.messages, rep.bytes, rep.printed, data)
        }
        Backend::Vm => {
            let prog = compiled.vm_program().unwrap();
            let mut eng = f90d_vm::Engine::new(prog, &mut m);
            eng.plan = plan;
            let rep = eng.run(&mut m).unwrap_or_else(|e| panic!("{e}\n{src}"));
            let data = arrays
                .iter()
                .map(|a| eng.gather_array(&mut m, a).unwrap())
                .collect();
            (rep.elapsed, rep.messages, rep.bytes, rep.printed, data)
        }
    }
}

#[test]
fn plan_execution_bit_identical_and_coalesces() {
    let src = triple_stencil(32, 3);
    let arrays = ["A", "B", "C", "A2", "B2", "C2"];
    for backend in [Backend::TreeWalk, Backend::Vm] {
        let (t_off, msg_off, by_off, pr_off, arr_off) = run(&src, &[4], backend, false, &arrays);
        let (t_on, msg_on, by_on, pr_on, arr_on) = run(&src, &[4], backend, true, &arrays);
        assert_eq!(
            arr_on, arr_off,
            "arrays must be bit-identical ({backend:?})"
        );
        assert_eq!(pr_on, pr_off, "PRINT must be identical ({backend:?})");
        assert_eq!(by_on, by_off, "coalescing repacks, never re-sends bytes");
        assert!(
            msg_on < msg_off,
            "phase must coalesce wire messages ({backend:?}): {msg_on} vs {msg_off}"
        );
        assert!(
            t_on < t_off,
            "saved message startups must show in virtual time ({backend:?}): {t_on} vs {t_off}"
        );
    }
}

#[test]
fn plan_execution_identical_across_backends() {
    let src = triple_stencil(32, 3);
    let arrays = ["A", "B", "C", "A2", "B2", "C2"];
    let tw = run(&src, &[4], Backend::TreeWalk, true, &arrays);
    let vm = run(&src, &[4], Backend::Vm, true, &arrays);
    assert_eq!(tw.0.to_bits(), vm.0.to_bits(), "virtual time must agree");
    assert_eq!((tw.1, tw.2), (vm.1, vm.2), "messages/bytes must agree");
    assert_eq!(tw.3, vm.3, "PRINT must agree");
    assert_eq!(tw.4, vm.4, "arrays must agree");
}

// ---- hoist def-use regressions ----------------------------------------------

/// `top_level_comm == expected` plus hoist-on vs hoist-off result
/// equality on the tree walker.
fn check_hoist(src: &str, grid: &[i64], arrays: &[&str], expected_hoisted: usize) {
    let mut on = CompileOptions::on_grid(grid);
    on.opt.hoist_invariant_comm = true;
    let compiled = compile(src, &on).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let hoisted = compiled
        .spmd
        .stmts
        .iter()
        .filter(|s| matches!(s, SStmt::Comm(_)))
        .count();
    assert_eq!(hoisted, expected_hoisted, "wrong hoist count\n{src}");
    let on_res = run(src, grid, Backend::TreeWalk, false, arrays);
    let mut off = CompileOptions::on_grid(grid);
    off.opt.hoist_invariant_comm = false;
    let c_off = compile(src, &off).unwrap();
    let mut m = Machine::new(MachineSpec::ipsc860(), ProcGrid::new(grid));
    let mut ex = Executor::new(&c_off.spmd, &mut m);
    ex.run(&mut m).unwrap();
    let off_arrays: Vec<ArrayData> = arrays
        .iter()
        .map(|a| ex.gather_array(&mut m, a).unwrap())
        .collect();
    assert_eq!(on_res.4, off_arrays, "hoist changed results\n{src}");
}

#[test]
fn where_masked_write_pins_exchange() {
    // The WHERE normalizes to a masked FORALL writing B; B's shift for
    // the stencil must therefore stay inside the loop.
    let src = "
PROGRAM WPIN
INTEGER, PARAMETER :: N = 16
REAL A(N), B(N)
INTEGER K
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) B(I) = REAL(I)
FORALL (I=1:N) A(I) = 0.0
DO K = 1, 3
  FORALL (I=1:N-1) A(I) = A(I) + B(I+1)
  WHERE (B > 4.0) B = B - 1.0
END DO
END
";
    check_hoist(src, &[4], &["A", "B"], 0);
}

#[test]
fn redistribute_in_loop_pins_exchange() {
    // REDISTRIBUTE counts as a write: B's placement changes each trip,
    // so its exchange cannot move out.
    let src = "
PROGRAM RPIN
INTEGER, PARAMETER :: N = 16
REAL A(N), B(N)
INTEGER K
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
C$ DISTRIBUTE B(BLOCK)
FORALL (I=1:N) B(I) = REAL(I)
FORALL (I=1:N) A(I) = 0.0
DO K = 1, 2
  FORALL (I=1:N-1) A(I) = A(I) + B(I+1)
C$ REDISTRIBUTE B(CYCLIC)
C$ REDISTRIBUTE B(BLOCK)
END DO
END
";
    check_hoist(src, &[4], &["A"], 0);
}

#[test]
fn written_scalar_pins_broadcast() {
    // S is reassigned every iteration by a scalar assignment (not a DO
    // variable): the broadcast of B(S) must stay inside the loop. The
    // old def-use audit only checked the DO variable.
    let src = "
PROGRAM SPIN
INTEGER, PARAMETER :: N = 16
REAL A(N), B(N)
INTEGER K, S
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) B(I) = REAL(I)
FORALL (I=1:N) A(I) = 0.0
S = 0
DO K = 1, 3
  S = S + 2
  FORALL (I=1:N) A(I) = A(I) + B(S)
END DO
END
";
    check_hoist(src, &[4], &["A", "B"], 0);
}

#[test]
fn invariant_exchange_still_hoists() {
    // Guard against over-pinning: the classic invariant shift must keep
    // hoisting (B never written, no scalars in its arguments).
    let src = "
PROGRAM HSTILL
INTEGER, PARAMETER :: N = 16
REAL A(N), B(N)
INTEGER K
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) B(I) = REAL(I)
FORALL (I=1:N) A(I) = 0.0
DO K = 1, 3
  FORALL (I=1:N-1) A(I) = A(I) + B(I+1)
END DO
END
";
    check_hoist(src, &[4], &["A", "B"], 1);
}
