//! Flag cross-product differential property test for the shared comm
//! driver: every combination of `comm_compute_overlap` × `comm_plan` ×
//! `native_kernels` × local-phase execution mode, on both backends, over
//! random multi-statement shift kernels — all sequenced by
//! `f90d_comm::driver`, all compared against the all-flags-off
//! sequential tree walk.
//!
//! The driver's contract, flag by flag:
//!
//! * arrays and PRINT output are bit-identical under EVERY combination;
//! * payload bytes never change (coalescing repacks, overlap re-orders —
//!   neither re-sends);
//! * messages only change under `comm_plan` (coalescing, never more);
//! * virtual time only changes under `comm_plan` (strictly fewer
//!   startups) or `comm_compute_overlap` (different charge interleaving
//!   by design);
//! * at equal flags the two backends and both native tiers agree on
//!   every metric bit-for-bit.

use f90d_core::{compile, Backend, CompileOptions, Executor};
use f90d_distrib::ProcGrid;
use f90d_machine::{budget, ArrayData, ExecMode, Machine, MachineSpec};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Kernel {
    n: i64,
    /// Stencil statements per sweep.
    k: usize,
    /// Two shift constants per statement.
    shifts: [(i64, i64); 2],
    iters: i64,
    grid: Vec<i64>,
    exec: ExecMode,
}

fn offset(c: i64) -> String {
    match c.cmp(&0) {
        std::cmp::Ordering::Equal => String::new(),
        std::cmp::Ordering::Greater => format!("+{c}"),
        std::cmp::Ordering::Less => format!("{c}"),
    }
}

/// `k` independent two-shift stencils plus copy-backs inside a DO sweep —
/// the shape that is simultaneously overlap-eligible (pure ghost-shift
/// preludes), plan-eligible (consecutive exchanges to batch), and
/// native-eligible (affine REAL bodies), so every flag in the matrix has
/// something to act on.
fn program(p: &Kernel) -> String {
    let pad = p
        .shifts
        .iter()
        .take(p.k)
        .flat_map(|&(a, b)| [a.abs(), b.abs()])
        .max()
        .unwrap()
        .max(1);
    let (lo, hi) = (1 + pad, p.n - pad);
    let mut decls = String::new();
    let mut aligns = String::new();
    let mut inits = String::new();
    let mut stencils = String::new();
    let mut copies = String::new();
    for j in 1..=p.k {
        decls.push_str(&format!("REAL A{j}(N), B{j}(N)\n"));
        aligns.push_str(&format!(
            "C$ ALIGN A{j}(I) WITH T(I)\nC$ ALIGN B{j}(I) WITH T(I)\n"
        ));
        inits.push_str(&format!("FORALL (I=1:N) B{j}(I) = REAL({j}+I)*0.25\n"));
        let (s1, s2) = p.shifts[j - 1];
        stencils.push_str(&format!(
            "  FORALL (I={lo}:{hi}) A{j}(I) = 0.5*B{j}(I{o1}) + B{j}(I{o2})\n",
            o1 = offset(s1),
            o2 = offset(s2),
        ));
        copies.push_str(&format!("  FORALL (I={lo}:{hi}) B{j}(I) = A{j}(I)\n"));
    }
    format!(
        "
PROGRAM FLAGMAT
INTEGER, PARAMETER :: N = {n}
{decls}INTEGER IT
C$ TEMPLATE T(N)
{aligns}C$ DISTRIBUTE T(BLOCK)
{inits}DO IT = 1, {iters}
{stencils}{copies}END DO
PRINT *, 'DONE', B1(2)
END
",
        n = p.n,
        iters = p.iters,
    )
}

fn kernels() -> impl Strategy<Value = Kernel> {
    (
        (24i64..48, 1usize..=2, 1i64..=2),
        (-2i64..=2, -2i64..=2),
        (-2i64..=2, -2i64..=2),
        prop_oneof![Just(vec![1]), Just(vec![2]), Just(vec![4])],
        prop_oneof![Just(ExecMode::Sequential), Just(ExecMode::Threaded)],
    )
        .prop_map(|(nki, s1, s2, grid, exec)| {
            let (n, k, iters) = nki;
            Kernel {
                n,
                k,
                shifts: [s1, s2],
                iters,
                grid,
                exec,
            }
        })
}

type Metrics = (u64, u64, u64, Vec<String>, Vec<ArrayData>);

/// One run at a full flag assignment; returns
/// `(virt_bits, messages, bytes, printed, arrays)`.
fn run_cfg(
    p: &Kernel,
    backend: Backend,
    overlap: bool,
    plan: bool,
    native: bool,
    exec: ExecMode,
) -> Metrics {
    budget::global().ensure_total_at_least(8);
    let src = program(p);
    let mut opts = CompileOptions::on_grid(&p.grid).with_backend(backend);
    opts.opt.comm_compute_overlap = overlap;
    opts.opt.comm_plan = plan;
    opts.opt.native_kernels = native;
    let compiled = compile(&src, &opts).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    let mut m = Machine::new(MachineSpec::ipsc860(), ProcGrid::new(&p.grid));
    let names: Vec<String> = (1..=p.k)
        .flat_map(|j| [format!("A{j}"), format!("B{j}")])
        .collect();
    match backend {
        Backend::TreeWalk => {
            let mut ex = Executor::new(&compiled.spmd, &mut m);
            ex.overlap = overlap;
            ex.plan = plan;
            ex.exec = Some(exec);
            let rep = ex
                .run(&mut m)
                .unwrap_or_else(|e| panic!("tree walk failed: {e}\n{src}"));
            let arrays = names
                .iter()
                .map(|a| ex.gather_array(&mut m, a).unwrap())
                .collect();
            (
                rep.elapsed.to_bits(),
                rep.messages,
                rep.bytes,
                rep.printed,
                arrays,
            )
        }
        Backend::Vm => {
            let prog = compiled
                .vm_program()
                .unwrap_or_else(|e| panic!("lowering failed: {e}\n{src}"));
            let mut eng = f90d_vm::Engine::new(prog, &mut m);
            eng.overlap = overlap;
            eng.plan = plan;
            eng.exec = Some(exec);
            let rep = eng
                .run(&mut m)
                .unwrap_or_else(|e| panic!("vm failed: {e}\n{src}"));
            let arrays = names
                .iter()
                .map(|a| eng.gather_array(&mut m, a).unwrap())
                .collect();
            (
                rep.elapsed.to_bits(),
                rep.messages,
                rep.bytes,
                rep.printed,
                arrays,
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_flag_combination_matches_the_reference(p in kernels()) {
        // The all-flags-off sequential tree walk is the semantic anchor.
        let (tb, msg_b, by_b, pr_b, arr_b) =
            run_cfg(&p, Backend::TreeWalk, false, false, false, ExecMode::Sequential);
        for overlap in [false, true] {
            for plan in [false, true] {
                // Tree walk ignores `native`; run the VM tier both ways
                // and require all three agree with each other exactly.
                let tw = run_cfg(&p, Backend::TreeWalk, overlap, plan, false, p.exec);
                let vm = run_cfg(&p, Backend::Vm, overlap, plan, false, p.exec);
                let nat = run_cfg(&p, Backend::Vm, overlap, plan, true, p.exec);
                prop_assert_eq!(&tw, &vm,
                    "backends must agree at overlap={} plan={}", overlap, plan);
                prop_assert_eq!(&vm, &nat,
                    "native tier must be invisible at overlap={} plan={}", overlap, plan);

                let (to, msg_o, by_o, pr_o, arr_o) = tw;
                prop_assert_eq!(&arr_o, &arr_b,
                    "arrays bit-identical at overlap={} plan={}", overlap, plan);
                prop_assert_eq!(&pr_o, &pr_b,
                    "PRINT invariant at overlap={} plan={}", overlap, plan);
                prop_assert_eq!(by_o, by_b, "no flag may change payload bytes");
                if plan {
                    prop_assert!(msg_o <= msg_b, "the plan must never add messages");
                } else {
                    prop_assert_eq!(msg_o, msg_b,
                        "only comm_plan may change message counts (overlap={})", overlap);
                }
                if !plan && !overlap {
                    prop_assert_eq!(to, tb,
                        "virtual time must be bit-identical with both timing flags off");
                } else if plan && !overlap {
                    prop_assert!(
                        f64::from_bits(to) <= f64::from_bits(tb),
                        "the plan must never increase virtual time"
                    );
                }
                // overlap on: virtual time differs by design (interior
                // compute charges against wire time); the cross-backend
                // equality above is the invariant that matters.
            }
        }
    }

    #[test]
    fn full_flag_runs_are_deterministic(p in kernels()) {
        // Everything on at once, twice, both backends: the driver's
        // sequencing must be a pure function of the program.
        let a = run_cfg(&p, Backend::Vm, true, true, true, p.exec);
        let b = run_cfg(&p, Backend::Vm, true, true, true, p.exec);
        prop_assert_eq!(&a, &b, "all-flags-on VM run must be deterministic");
        let tw = run_cfg(&p, Backend::TreeWalk, true, true, true, p.exec);
        prop_assert_eq!(&a, &tw, "all-flags-on metrics must agree across backends");
    }
}
