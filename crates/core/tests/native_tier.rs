//! Contract of the native kernel tier (the third execution tier above
//! the bytecode VM): selection at lowering time is invisible in every
//! observable — array bits, virtual time, messages, bytes, PRINT — and
//! the engine's `native_counts` trace proves which tier actually ran.
//! Non-matching shapes (masks, unstructured subscripts) and non-binding
//! dispatches (CYCLIC mappings) must fall back to bytecode, counted.

use f90d_core::{compile, Backend, CompileOptions, RunTrace};
use f90d_distrib::ProcGrid;
use f90d_machine::{ArrayData, Machine, MachineSpec};

fn jacobi(n: i64, iters: i64) -> String {
    format!(
        "
PROGRAM JACOBI
INTEGER, PARAMETER :: N = {n}
REAL A(N, N), B(N, N)
INTEGER IT
C$ TEMPLATE T(N, N)
C$ ALIGN A(I, J) WITH T(I, J)
C$ ALIGN B(I, J) WITH T(I, J)
C$ DISTRIBUTE T(BLOCK, BLOCK)
FORALL (I=1:N, J=1:N) B(I,J) = REAL(I+J)
FORALL (I=1:N, J=1:N) A(I,J) = 0.0
DO IT = 1, {iters}
  FORALL (I=2:N-1, J=2:N-1)&
&   A(I,J) = 0.25*(B(I-1,J)+B(I+1,J)+B(I,J-1)+B(I,J+1))
  FORALL (I=2:N-1, J=2:N-1) B(I,J) = A(I,J)
END DO
END
"
    )
}

/// Run under the VM backend; return gathered images + report metrics +
/// the run trace (for the native counters).
fn run_vm(
    src: &str,
    grid: &[i64],
    arrays: &[&str],
    native: bool,
) -> (Vec<ArrayData>, f64, u64, u64, Vec<String>, RunTrace) {
    let mut opts = CompileOptions::on_grid(grid).with_backend(Backend::Vm);
    opts.opt.native_kernels = native;
    let compiled = compile(src, &opts).expect("compiles");
    let mut m = Machine::new(MachineSpec::ipsc860(), ProcGrid::new(grid));
    let (rep, trace) = compiled.run_on_traced(&mut m).expect("runs");
    let prog = compiled.vm_program().expect("lowers");
    let eng = f90d_vm::Engine::new_preserving(prog, &mut m);
    let imgs = arrays
        .iter()
        .map(|a| eng.gather_array(&mut m, a).expect("array exists"))
        .collect();
    (
        imgs,
        rep.elapsed,
        rep.messages,
        rep.bytes,
        rep.printed,
        trace,
    )
}

fn run_treewalk(src: &str, grid: &[i64], arrays: &[&str]) -> (Vec<ArrayData>, f64, u64, u64) {
    let opts = CompileOptions::on_grid(grid).with_backend(Backend::TreeWalk);
    let compiled = compile(src, &opts).expect("compiles");
    let mut m = Machine::new(MachineSpec::ipsc860(), ProcGrid::new(grid));
    let rep = compiled.run_on(&mut m).expect("runs");
    let ex = f90d_core::Executor::new_preserving(&compiled.spmd, &mut m);
    let imgs = arrays
        .iter()
        .map(|a| ex.gather_array(&mut m, a).expect("array exists"))
        .collect();
    (imgs, rep.elapsed, rep.messages, rep.bytes)
}

/// Jacobi's four FORALL shapes (index-cast fill, constant fill, scaled
/// 4-point stencil, copy) all dispatch native on a BLOCK×BLOCK grid, and
/// the three tiers agree bit-for-bit on every observable.
#[test]
fn jacobi_dispatches_native_and_tiers_agree() {
    let src = jacobi(16, 3);
    let arrays = ["A", "B"];
    let (nat, nat_t, nat_msg, nat_b, nat_out, nat_tr) = run_vm(&src, &[2, 2], &arrays, true);
    let (vm, vm_t, vm_msg, vm_b, vm_out, vm_tr) = run_vm(&src, &[2, 2], &arrays, false);
    let (tw, tw_t, tw_msg, tw_b) = run_treewalk(&src, &[2, 2], &arrays);

    // 2 init FORALLs + 2 per sweep × 3 sweeps, every one on the native
    // tier; with the tier disabled, every one is a bytecode fallback.
    assert_eq!(
        (nat_tr.native_matched, nat_tr.native_fallback),
        (8, 0),
        "all jacobi FORALLs should dispatch native"
    );
    assert_eq!((vm_tr.native_matched, vm_tr.native_fallback), (0, 8));

    assert_eq!(nat, vm, "native vs bytecode array images");
    assert_eq!(nat, tw, "native vs tree-walk array images");
    assert_eq!((nat_t, nat_msg, nat_b), (vm_t, vm_msg, vm_b));
    assert_eq!((nat_t, nat_msg, nat_b), (tw_t, tw_msg, tw_b));
    assert_eq!(nat_out, vm_out);
}

/// The reduction-accumulate FORALLs feeding a SUM-into-scalar reduction
/// (`S = S + A` and `S = S + W*B`) dispatch on the fused
/// `reduce_accumulate` template instead of composed generic closures,
/// and the three tiers agree on every observable including the reduced
/// PRINT value.
#[test]
fn sum_accumulate_dispatches_native() {
    let src = "
PROGRAM ACCUM
INTEGER, PARAMETER :: N = 16
REAL A(N), B(N), S(N)
REAL W, SS
INTEGER IT
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ ALIGN S(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
W = 0.5
FORALL (I=1:N) A(I) = REAL(I)
FORALL (I=1:N) B(I) = REAL(N-I)
FORALL (I=1:N) S(I) = 0.0
DO IT = 1, 3
  FORALL (I=1:N) S(I) = S(I) + A(I)
  FORALL (I=1:N) S(I) = S(I) + W*B(I)
END DO
SS = SUM(S)
PRINT *, 'ACC', SS
END
";
    let arrays = ["S"];
    let (nat, nat_t, nat_msg, nat_b, nat_out, nat_tr) = run_vm(src, &[4], &arrays, true);
    // 3 inits + 3 sweeps x 2 accumulates, all native; no fallbacks.
    assert_eq!(
        (nat_tr.native_matched, nat_tr.native_fallback),
        (9, 0),
        "accumulate FORALLs should all dispatch native"
    );
    let (vm, vm_t, vm_msg, vm_b, vm_out, vm_tr) = run_vm(src, &[4], &arrays, false);
    assert_eq!((vm_tr.native_matched, vm_tr.native_fallback), (0, 9));
    let (tw, tw_t, tw_msg, tw_b) = run_treewalk(src, &[4], &arrays);
    assert_eq!(nat, vm, "native vs bytecode array images");
    assert_eq!(nat, tw, "native vs tree-walk array images");
    assert_eq!((nat_t, nat_msg, nat_b), (vm_t, vm_msg, vm_b));
    assert_eq!((nat_t, nat_msg, nat_b), (tw_t, tw_msg, tw_b));
    assert_eq!(nat_out, vm_out);
    assert!(nat_out.iter().any(|l| l.contains("ACC")), "PRINT ran");
}

/// A WHERE-masked FORALL never selects a kernel: masks change which
/// iterations execute (and charge mask cost), which the closures do not
/// model. The trace counter proves bytecode ran it.
#[test]
fn masked_forall_falls_back_to_bytecode() {
    let src = "
PROGRAM MASKED
INTEGER, PARAMETER :: N = 16
REAL A(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) A(I) = REAL(I)
FORALL (I=1:N, A(I) > 8.0) A(I) = 0.0
END
";
    let (_, _, _, _, _, tr) = run_vm(src, &[4], &["A"], true);
    assert_eq!(tr.native_matched, 1, "the unmasked init still matches");
    assert_eq!(tr.native_fallback, 1, "the masked FORALL must fall back");
}

/// Indirect (non-affine) subscripts go through the unstructured gather
/// machinery — never native.
#[test]
fn non_affine_subscript_falls_back_to_bytecode() {
    let src = "
PROGRAM INDIRECT
INTEGER, PARAMETER :: N = 16
REAL A(N), B(N)
INTEGER U(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ ALIGN U(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) B(I) = REAL(I) * 0.5
FORALL (I=1:N) U(I) = MOD(I*5, N) + 1
FORALL (I=1:N) A(I) = B(U(I))
END
";
    let (nat, .., tr) = run_vm(src, &[4], &["A"], true);
    // B's init matches; U writes an INTEGER array and A reads through
    // a gathered temporary — both must fall back.
    assert_eq!((tr.native_matched, tr.native_fallback), (1, 2));
    let (vm, .., vm_tr) = run_vm(src, &[4], &["A"], false);
    assert_eq!(vm_tr.native_matched, 0);
    assert_eq!(nat, vm);
}

/// CYCLIC mappings select a kernel (the body is affine REAL) but can
/// never bind at dispatch: local indexing needs per-element ownership
/// math (`RDim::General`), so every execution is a counted fallback with
/// bit-identical results.
#[test]
fn cyclic_mapping_falls_back_at_dispatch() {
    let src = "
PROGRAM CYC
INTEGER, PARAMETER :: N = 24
REAL A(N), B(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(CYCLIC)
FORALL (I=1:N) B(I) = REAL(I)
FORALL (I=1:N) A(I) = B(I) * 2.0
END
";
    let (nat, nat_t, nat_msg, nat_b, _, tr) = run_vm(src, &[4], &["A", "B"], true);
    assert_eq!(tr.native_matched, 0, "CYCLIC must never dispatch native");
    assert_eq!(tr.native_fallback, 2);
    let (tw, tw_t, tw_msg, tw_b) = run_treewalk(src, &[4], &["A", "B"]);
    assert_eq!(nat, tw);
    assert_eq!((nat_t, nat_msg, nat_b), (tw_t, tw_msg, tw_b));
}

/// The overlap split-phase path always runs bytecode (boundary/interior
/// staging), even when the same FORALL dispatches native in blocking
/// mode — and the fallback counter records it.
#[test]
fn overlap_split_phase_counts_as_fallback() {
    let src = jacobi(16, 2);
    let mut opts = CompileOptions::on_grid(&[2, 2]).with_backend(Backend::Vm);
    opts.opt.comm_compute_overlap = true;
    let compiled = compile(&src, &opts).expect("compiles");
    let mut m = Machine::new(MachineSpec::ipsc860(), ProcGrid::new(&[2, 2]));
    let (_, tr) = compiled.run_on_traced(&mut m).expect("runs");
    // The 2 stencil sweeps run split-phase (fallback); the non-stencil
    // FORALLs (2 inits + 2 copies) still dispatch native.
    assert_eq!((tr.native_matched, tr.native_fallback), (4, 2));
}
