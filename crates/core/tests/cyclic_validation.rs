//! Regression tests: a const-evaluated `CYCLIC(K)` block size of `K ≤ 0`
//! must surface as a compile-time `CodegenError` at **both** codegen
//! sites that accept a distribution spec — the `DISTRIBUTE` directive
//! (`build_dad`) and the executable `REDISTRIBUTE` statement — instead
//! of tripping the `K > 0` assert inside `f90d_distrib::DimDist::new`
//! (a panic, for `REDISTRIBUTE` formerly at *run* time).

use f90d_core::{compile, CompileOptions};

/// Site 1: the `DISTRIBUTE` directive, literal zero.
#[test]
fn distribute_cyclic_zero_is_codegen_error() {
    let src = "
PROGRAM BADDIST
INTEGER, PARAMETER :: N = 16
REAL A(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ DISTRIBUTE T(CYCLIC(0))
FORALL (I=1:N) A(I) = 1.0
END
";
    let err = compile(src, &CompileOptions::on_grid(&[4]))
        .expect_err("CYCLIC(0) must be rejected, not panic");
    assert!(
        err.contains("CYCLIC(0)") && err.contains("positive"),
        "diagnostic must name the bad spec: {err}"
    );
}

/// Site 1 again, with the non-positive size hidden behind a PARAMETER
/// expression so only const evaluation can see it.
#[test]
fn distribute_cyclic_negative_parameter_is_codegen_error() {
    let src = "
PROGRAM BADDIST2
INTEGER, PARAMETER :: N = 16, K = 2
REAL A(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ DISTRIBUTE T(CYCLIC(K - 4))
FORALL (I=1:N) A(I) = 1.0
END
";
    let err = compile(src, &CompileOptions::on_grid(&[4]))
        .expect_err("CYCLIC(-2) must be rejected, not panic");
    assert!(err.contains("CYCLIC(-2)"), "{err}");
}

/// Site 2: the executable `REDISTRIBUTE` statement. Before the fix this
/// compiled fine and the `DimDist::new` assert fired when the program
/// ran; now it is a compile-time error like the directive site.
#[test]
fn redistribute_cyclic_zero_is_codegen_error() {
    let src = "
PROGRAM BADRED
INTEGER, PARAMETER :: N = 16, K = 0
REAL A(N)
C$ DISTRIBUTE A(BLOCK)
FORALL (I=1:N) A(I) = REAL(I*I)
C$ REDISTRIBUTE A(CYCLIC(K))
FORALL (I=1:N) A(I) = A(I) + 1.0
END
";
    let err = compile(src, &CompileOptions::on_grid(&[4]))
        .expect_err("REDISTRIBUTE CYCLIC(0) must be rejected, not panic at run time");
    assert!(
        err.contains("CYCLIC(0)") && err.contains("positive"),
        "diagnostic must name the bad spec: {err}"
    );
}

/// Positive sizes keep working at both sites (and `CYCLIC(1)` still
/// normalizes to plain `CYCLIC` inside the descriptor).
#[test]
fn positive_cyclic_k_still_compiles_at_both_sites() {
    let src = "
PROGRAM GOODK
INTEGER, PARAMETER :: N = 16
REAL A(N)
C$ DISTRIBUTE A(CYCLIC(3))
FORALL (I=1:N) A(I) = REAL(I)
C$ REDISTRIBUTE A(CYCLIC(2))
FORALL (I=1:N) A(I) = A(I) + 1.0
END
";
    compile(src, &CompileOptions::on_grid(&[4])).expect("positive K compiles");
}
