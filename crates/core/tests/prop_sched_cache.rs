//! Differential property test for the cross-run schedule cache: random
//! unstructured (PARTI-style) request patterns × grids × both execution
//! backends must produce **bit-identical** virtual time, message/byte
//! counts, PRINT output and machine stats whether the process-wide
//! schedule cache is cold, warm (the hit path that skips the inspector
//! rebuild), or disabled (`repro --no-sched-cache`) — and whichever
//! local-phase execution mode (`CompileOptions::exec_mode`) is sampled,
//! so threaded × schedule-cache interactions are differentially tested
//! against sequential through the same `run_on` path the harness uses.

use f90d_core::{compile, Backend, CompileOptions, ExecReport};
use f90d_distrib::ProcGrid;
use f90d_machine::{budget, ExecMode, Machine, MachineSpec};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandIrregular {
    n: i64,
    /// Multipliers of the two indirection fills `MOD(I*k, N) + 1` — the
    /// scatter (LHS) and gather (RHS) patterns.
    ku: i64,
    kv: i64,
    iters: i64,
    dist: &'static str,
    grid: Vec<i64>,
    backend: Backend,
    exec: ExecMode,
}

/// An irregular kernel in the shape of the paper's §4 example 3: a
/// vector-valued subscript on each side, so the compiler emits a gather
/// schedule (`B(V(I))`) and a scatter schedule (`A(U(I))`), repeated
/// over a DO loop (exercising within-run reuse on top of the cache).
fn program(p: &RandIrregular) -> String {
    format!(
        "
PROGRAM PSCHED
INTEGER, PARAMETER :: N = {n}
REAL A(N), B(N), C(N)
INTEGER U(N), V(N)
INTEGER IT
REAL S
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ ALIGN C(I) WITH T(I)
C$ DISTRIBUTE T({dist})
FORALL (I=1:N) B(I) = REAL(I)
FORALL (I=1:N) C(I) = REAL(N - I)
FORALL (I=1:N) U(I) = MOD(I*{ku}, N) + 1
FORALL (I=1:N) V(I) = MOD(I*{kv}, N) + 1
DO IT = 1, {iters}
  FORALL (I=1:N) A(U(I)) = B(V(I)) + C(I)
END DO
S = SUM(A)
PRINT *, 'CHECK', S
END
",
        n = p.n,
        ku = p.ku,
        kv = p.kv,
        iters = p.iters,
        dist = p.dist,
    )
}

fn rand_irregular() -> impl Strategy<Value = RandIrregular> {
    (
        8i64..40,
        1i64..12,
        1i64..12,
        1i64..=3,
        prop_oneof![Just("BLOCK"), Just("CYCLIC"), Just("CYCLIC(3)")],
        0usize..3,
        any::<bool>(),
        prop_oneof![Just(ExecMode::Sequential), Just(ExecMode::Threaded)],
    )
        .prop_map(
            |(n, ku, kv, iters, dist, grid_pick, vm, exec)| RandIrregular {
                n,
                ku,
                kv,
                iters,
                dist,
                grid: match grid_pick {
                    0 => vec![1],
                    1 => vec![2],
                    _ => vec![4],
                },
                backend: if vm { Backend::Vm } else { Backend::TreeWalk },
                exec,
            },
        )
}

/// One full run on a fresh machine; returns the report plus the sorted
/// machine stats (schedule builders must be *recorded* identically even
/// when the cache skips the rebuild).
fn run(src: &str, p: &RandIrregular, sched_cache: bool) -> (ExecReport, Vec<(&'static str, u64)>) {
    budget::global().ensure_total_at_least(8);
    let mut opts = CompileOptions::on_grid(&p.grid).with_backend(p.backend);
    opts.sched_cache = sched_cache;
    opts.exec_mode = Some(p.exec);
    let compiled = compile(src, &opts).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    let mut m = Machine::new(MachineSpec::ipsc860(), ProcGrid::new(&p.grid));
    let rep = compiled
        .run_on(&mut m)
        .unwrap_or_else(|e| panic!("run failed: {e}\n{src}"));
    (rep, m.stats.sorted())
}

fn assert_bit_identical(a: &ExecReport, b: &ExecReport, what: &str, src: &str) {
    assert_eq!(
        a.elapsed.to_bits(),
        b.elapsed.to_bits(),
        "virtual time differs: {what}\n{src}"
    );
    assert_eq!(a.messages, b.messages, "messages differ: {what}\n{src}");
    assert_eq!(a.bytes, b.bytes, "bytes differ: {what}\n{src}");
    assert_eq!(a.printed, b.printed, "PRINT differs: {what}\n{src}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cached_and_uncached_runs_bit_identical(p in rand_irregular()) {
        let src = program(&p);
        // Cold-or-warm cache (whatever this process has seen), then a
        // guaranteed-warm rerun (the hit path), then the escape hatch.
        let (cold, stats_cold) = run(&src, &p, true);
        let (warm, stats_warm) = run(&src, &p, true);
        let (off, stats_off) = run(&src, &p, false);
        // Execution-mode anchor: the same cell explicitly sequential.
        let seq = RandIrregular { exec: ExecMode::Sequential, ..p.clone() };
        let (seq_rep, stats_seq) = run(&src, &seq, true);
        assert_bit_identical(&cold, &seq_rep, "sampled exec mode vs sequential", &src);
        prop_assert_eq!(&stats_cold, &stats_seq, "stats differ threaded vs sequential\n{}", &src);
        assert_bit_identical(&cold, &warm, "first cached vs warm rerun", &src);
        assert_bit_identical(&cold, &off, "cached vs --no-sched-cache", &src);
        prop_assert_eq!(&stats_cold, &stats_warm, "stats differ cached vs warm\n{}", &src);
        prop_assert_eq!(&stats_cold, &stats_off, "stats differ cached vs off\n{}", &src);
        // The kernel really went through the unstructured path (on one
        // rank everything is owner-local and no schedule is needed).
        if p.grid.iter().product::<i64>() > 1 {
            let gathers = stats_cold.iter().any(|&(n, _)| n == "gather" || n == "precomp_read");
            let scatters = stats_cold.iter().any(|&(n, _)| n == "scatter" || n == "postcomp_write");
            prop_assert!(gathers && scatters, "expected gather+scatter schedules, got {:?}\n{}", stats_cold, &src);
        }
    }

    /// Both backends, same pattern, both cache modes: one modelled
    /// machine. (The backend-equivalence suite proves this broadly; this
    /// narrows it to programs whose communication is schedule-dominated.)
    #[test]
    fn backends_agree_under_the_cache(p in rand_irregular()) {
        let src = program(&p);
        let tw = RandIrregular { backend: Backend::TreeWalk, ..p.clone() };
        let vm = RandIrregular { backend: Backend::Vm, ..p };
        let (a, _) = run(&src, &tw, true);
        let (b, _) = run(&src, &vm, true);
        assert_bit_identical(&a, &b, "treewalk vs vm (cached)", &src);
    }
}
