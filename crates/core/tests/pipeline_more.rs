//! Second differential batch: elementals, EOSHIFT, FORALL constructs,
//! strided iteration spaces, Gray-code machine grids, scalar control
//! flow around distributed state.

use std::collections::HashMap;

use f90d_core::reference::run_reference;
use f90d_core::{compile, CompileOptions, Executor};
use f90d_distrib::ProcGrid;
use f90d_machine::{ArrayData, Machine, MachineSpec};

fn differential(src: &str, grid: &[i64], inits: &HashMap<String, ArrayData>) -> Vec<String> {
    let o = CompileOptions::on_grid(grid);
    let compiled = compile(src, &o).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    let reference = run_reference(&compiled.analyzed, inits).expect("reference run");
    let mut m = Machine::new(MachineSpec::ideal(), ProcGrid::new(grid));
    let mut ex = Executor::new(&compiled.spmd, &mut m);
    for (name, data) in inits {
        assert!(ex.seed_array(&mut m, name, data), "unknown array {name}");
    }
    let report = ex
        .run(&mut m)
        .unwrap_or_else(|e| panic!("exec failed: {e}\n{src}"));
    for (name, href) in &reference.arrays {
        let got = ex.gather_array(&mut m, name).unwrap();
        for k in 0..got.len() {
            let (a, b) = (got.get(k), href.data.get(k));
            let ok = match (a, b) {
                (f90d_machine::Value::Real(x), f90d_machine::Value::Real(y)) => {
                    (x.is_nan() && y.is_nan()) || (x - y).abs() <= 1e-9 * (1.0 + y.abs())
                }
                (a, b) => a == b,
            };
            assert!(ok, "grid {grid:?}: {name}[{k}] = {a:?} want {b:?}\n{src}");
        }
    }
    assert_eq!(report.printed, reference.printed);
    report.printed
}

#[test]
fn elemental_intrinsics_in_forall() {
    let src = "
PROGRAM ELEM
INTEGER, PARAMETER :: N = 12
REAL A(N), B(N)
C$ DISTRIBUTE A(BLOCK)
C$ DISTRIBUTE B(BLOCK)
FORALL (I=1:N) B(I) = REAL(I) - 6.5
FORALL (I=1:N) A(I) = ABS(B(I)) + SQRT(REAL(I)) + MAX(B(I), 0.0) + MOD(I, 3)
END
";
    for g in [vec![1], vec![3], vec![4]] {
        differential(src, &g, &HashMap::new());
    }
}

#[test]
fn eoshift_statement_with_boundary() {
    let src = "
PROGRAM EOS
INTEGER, PARAMETER :: N = 10
REAL A(N), B(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) A(I) = REAL(I)
B = EOSHIFT(A, 2, -9.0)
END
";
    for g in [vec![1], vec![2], vec![5]] {
        differential(src, &g, &HashMap::new());
    }
}

#[test]
fn forall_construct_statements_run_in_order() {
    // F90 FORALL-construct semantics: each statement completes before the
    // next starts, so the second line reads the first line's results.
    let src = "
PROGRAM FCON
INTEGER, PARAMETER :: N = 10
REAL A(N), B(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) B(I) = REAL(I)
FORALL (I=2:N-1)
A(I) = B(I-1) + B(I+1)
B(I) = A(I) * 2.0
END FORALL
END
";
    for g in [vec![1], vec![2], vec![4]] {
        differential(src, &g, &HashMap::new());
    }
}

#[test]
fn strided_forall_iteration_space() {
    let src = "
PROGRAM STRD
INTEGER, PARAMETER :: N = 20
REAL A(N), B(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) A(I) = -1.0
FORALL (I=1:N:3) A(I) = B(I)
END
";
    let inits = HashMap::from([(
        "B".to_string(),
        ArrayData::Real((0..20).map(|x| x as f64).collect()),
    )]);
    for g in [vec![1], vec![2], vec![4], vec![7]] {
        differential(src, &g, &inits);
    }
}

#[test]
fn strided_forall_on_cyclic() {
    let src = "
PROGRAM STRC
INTEGER, PARAMETER :: N = 21
REAL A(N), B(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(CYCLIC)
FORALL (I=2:N:2) A(I) = B(I) + 1.0
END
";
    let inits = HashMap::from([(
        "B".to_string(),
        ArrayData::Real((0..21).map(|x| (x * 3 % 7) as f64).collect()),
    )]);
    for g in [vec![1], vec![2], vec![3], vec![4]] {
        differential(src, &g, &inits);
    }
}

#[test]
fn self_referential_forall_snapshot_semantics() {
    // A(I) = A(I-1) must read pre-statement values everywhere (FORALL
    // snapshot rule) — the staging + ghost machinery must not leak
    // partially-updated values.
    let src = "
PROGRAM SNAP
INTEGER, PARAMETER :: N = 16
REAL A(N)
C$ DISTRIBUTE A(BLOCK)
FORALL (I=1:N) A(I) = REAL(I)
FORALL (I=2:N) A(I) = A(I-1)
END
";
    for g in [vec![1], vec![2], vec![4], vec![8]] {
        differential(src, &g, &HashMap::new());
    }
}

#[test]
fn nested_do_loops_with_distributed_kernel() {
    let src = "
PROGRAM NEST
INTEGER, PARAMETER :: N = 8
REAL A(N,N)
INTEGER K, L
C$ DISTRIBUTE A(BLOCK, BLOCK)
FORALL (I=1:N, J=1:N) A(I,J) = 0.0
DO K = 1, 3
  DO L = 1, 2
    FORALL (I=1:N, J=1:N) A(I,J) = A(I,J) + REAL(K*L)
  END DO
END DO
END
";
    for g in [vec![1, 1], vec![2, 2], vec![2, 4]] {
        differential(src, &g, &HashMap::new());
    }
}

#[test]
fn print_strings_and_values() {
    let src = "
PROGRAM PRT
INTEGER, PARAMETER :: N = 6
REAL A(N), S
C$ DISTRIBUTE A(CYCLIC)
FORALL (I=1:N) A(I) = REAL(I*I)
S = MAXVAL(A)
PRINT *, 'max', S, 'count', COUNT(A > 10.0)
END
";
    // COUNT over a comparison expression is not a whole-array operand —
    // the compiler should reject it cleanly rather than miscompile.
    let r = compile(src, &CompileOptions::on_grid(&[2]));
    assert!(
        r.is_err(),
        "array-expression reduction operands unsupported"
    );
    let src2 = "
PROGRAM PRT
INTEGER, PARAMETER :: N = 6
REAL A(N), S
C$ DISTRIBUTE A(CYCLIC)
FORALL (I=1:N) A(I) = REAL(I*I)
S = MAXVAL(A)
PRINT *, 'max', S
END
";
    let printed = differential(src2, &[2], &HashMap::new());
    assert_eq!(printed, vec!["max 36.000000".to_string()]);
}

#[test]
fn gray_code_machine_grid_runs_compiled_code() {
    use f90d_distrib::GridEmbedding;
    let src = "
PROGRAM GRAY
INTEGER, PARAMETER :: N = 16
REAL A(N), B(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) B(I) = REAL(I)
FORALL (I=1:N-1) A(I) = B(I+1)
END
";
    let compiled = compile(src, &CompileOptions::on_grid(&[4])).unwrap();
    let reference = run_reference(&compiled.analyzed, &HashMap::new()).unwrap();
    // Gray-code embedding: grid neighbours are hypercube neighbours.
    let grid = ProcGrid::with_embedding(&[4], GridEmbedding::GrayCode);
    let mut m = Machine::new(MachineSpec::ipsc860(), grid);
    let mut ex = Executor::new(&compiled.spmd, &mut m);
    ex.run(&mut m).unwrap();
    let got = ex.gather_array(&mut m, "A").unwrap();
    let want = &reference.arrays["A"];
    for k in 0..got.len() {
        assert_eq!(got.get(k), want.data.get(k), "A[{k}]");
    }
}

#[test]
fn integer_arrays_and_mixed_arithmetic() {
    let src = "
PROGRAM MIX
INTEGER, PARAMETER :: N = 12
INTEGER V(N)
REAL A(N)
C$ TEMPLATE T(N)
C$ ALIGN V(I) WITH T(I)
C$ ALIGN A(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) V(I) = I*I - 3
FORALL (I=1:N) A(I) = REAL(V(I)) / 2.0
END
";
    for g in [vec![1], vec![3], vec![4]] {
        differential(src, &g, &HashMap::new());
    }
}

#[test]
fn empty_iteration_spaces_are_harmless() {
    let src = "
PROGRAM EMPT
INTEGER, PARAMETER :: N = 8
REAL A(N)
C$ DISTRIBUTE A(BLOCK)
FORALL (I=1:N) A(I) = 1.0
FORALL (I=5:4) A(I) = 99.0
END
";
    for g in [vec![1], vec![4]] {
        let printed = differential(src, &g, &HashMap::new());
        assert!(printed.is_empty());
    }
}

#[test]
fn more_procs_than_elements() {
    let src = "
PROGRAM TINY
INTEGER, PARAMETER :: N = 3
REAL A(N), B(N)
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) B(I) = REAL(I)
FORALL (I=1:N-1) A(I) = B(I+1)
END
";
    for g in [vec![5], vec![8]] {
        differential(src, &g, &HashMap::new());
    }
}
