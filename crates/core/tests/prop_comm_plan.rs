//! Differential property test for phase-level communication planning
//! (`OptFlags::comm_plan`): random multi-FORALL shift kernels × grids ×
//! machine models × both backends × both local-phase execution modes.
//!
//! * **Bit-exactness**: the plan is a pure execution-order optimization —
//!   arrays and PRINT output must be bit-identical with the plan on and
//!   off, on both backends, in both execution modes.
//! * **Traffic**: coalescing repacks strips into fewer messages; it must
//!   never move more bytes, never send more messages, and never increase
//!   virtual time. When it does remove wire messages the saved startups
//!   must show up as strictly lower virtual time.

use f90d_core::{compile, Backend, CompileOptions, Executor};
use f90d_distrib::ProcGrid;
use f90d_machine::{budget, ArrayData, ExecMode, Machine, MachineSpec};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct PhaseKernel {
    n: i64,
    /// Number of stencil statements per sweep (2 or 3).
    k: usize,
    /// Two shift constants per statement (up to three statements).
    shifts: [(i64, i64); 3],
    iters: i64,
    grid: Vec<i64>,
    machine: &'static str,
    exec: ExecMode,
}

fn offset(c: i64) -> String {
    match c.cmp(&0) {
        std::cmp::Ordering::Equal => String::new(),
        std::cmp::Ordering::Greater => format!("+{c}"),
        std::cmp::Ordering::Less => format!("{c}"),
    }
}

/// `k` consecutive independent stencils (statement `j` reads `Bj` with
/// two shifts and writes `Aj`) followed by `k` copy-backs. The
/// copy-backs keep every `Bj` loop-varying so the exchanges stay pinned
/// in the loop — exactly the shape the planner groups.
fn program(p: &PhaseKernel) -> String {
    let pad = p
        .shifts
        .iter()
        .take(p.k)
        .flat_map(|&(a, b)| [a.abs(), b.abs()])
        .max()
        .unwrap()
        .max(1);
    let (lo, hi) = (1 + pad, p.n - pad);
    let mut decls = String::new();
    let mut aligns = String::new();
    let mut inits = String::new();
    let mut stencils = String::new();
    let mut copies = String::new();
    for j in 1..=p.k {
        decls.push_str(&format!("REAL A{j}(N), B{j}(N)\n"));
        aligns.push_str(&format!(
            "C$ ALIGN A{j}(I) WITH T(I)\nC$ ALIGN B{j}(I) WITH T(I)\n"
        ));
        inits.push_str(&format!("FORALL (I=1:N) B{j}(I) = REAL({j}*I)*0.5\n"));
        let (s1, s2) = p.shifts[j - 1];
        stencils.push_str(&format!(
            "  FORALL (I={lo}:{hi}) A{j}(I) = B{j}(I{o1}) + 2.0*B{j}(I{o2})\n",
            o1 = offset(s1),
            o2 = offset(s2),
        ));
        copies.push_str(&format!("  FORALL (I={lo}:{hi}) B{j}(I) = A{j}(I)\n"));
    }
    format!(
        "
PROGRAM PHASEK
INTEGER, PARAMETER :: N = {n}
{decls}INTEGER IT
C$ TEMPLATE T(N)
{aligns}C$ DISTRIBUTE T(BLOCK)
{inits}DO IT = 1, {iters}
{stencils}{copies}END DO
END
",
        n = p.n,
        iters = p.iters,
    )
}

fn kernels() -> impl Strategy<Value = PhaseKernel> {
    (
        (24i64..56, 2usize..=3, 1i64..=2),
        (-3i64..=3, -3i64..=3),
        (-3i64..=3, -3i64..=3),
        (-3i64..=3, -3i64..=3),
        (
            prop_oneof![Just(vec![1]), Just(vec![2]), Just(vec![4])],
            prop_oneof![Just("ipsc860"), Just("ncube2")],
            prop_oneof![Just(ExecMode::Sequential), Just(ExecMode::Threaded)],
        ),
    )
        .prop_map(|(nki, s1, s2, s3, gme)| {
            let (n, k, iters) = nki;
            let (grid, machine, exec) = gme;
            PhaseKernel {
                n,
                k,
                shifts: [s1, s2, s3],
                iters,
                grid,
                machine,
                exec,
            }
        })
}

fn spec_of(name: &str) -> MachineSpec {
    match name {
        "ipsc860" => MachineSpec::ipsc860(),
        _ => MachineSpec::ncube2(),
    }
}

type Metrics = (u64, u64, u64, Vec<String>, Vec<ArrayData>);

/// `(virt_bits, messages, bytes, printed, arrays)` of one run.
fn run_exec(p: &PhaseKernel, backend: Backend, plan: bool, exec: ExecMode) -> Metrics {
    budget::global().ensure_total_at_least(8);
    let src = program(p);
    let mut opts = CompileOptions::on_grid(&p.grid).with_backend(backend);
    opts.opt.comm_plan = plan;
    let compiled = compile(&src, &opts).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    let mut m = Machine::new(spec_of(p.machine), ProcGrid::new(&p.grid));
    let names: Vec<String> = (1..=p.k)
        .flat_map(|j| [format!("A{j}"), format!("B{j}")])
        .collect();
    match backend {
        Backend::TreeWalk => {
            let mut ex = Executor::new(&compiled.spmd, &mut m);
            ex.plan = plan;
            ex.exec = Some(exec);
            let rep = ex
                .run(&mut m)
                .unwrap_or_else(|e| panic!("tree walk failed: {e}\n{src}"));
            let arrays = names
                .iter()
                .map(|a| ex.gather_array(&mut m, a).unwrap())
                .collect();
            (
                rep.elapsed.to_bits(),
                rep.messages,
                rep.bytes,
                rep.printed,
                arrays,
            )
        }
        Backend::Vm => {
            let prog = compiled
                .vm_program()
                .unwrap_or_else(|e| panic!("lowering failed: {e}\n{src}"));
            let mut eng = f90d_vm::Engine::new(prog, &mut m);
            eng.plan = plan;
            eng.exec = Some(exec);
            let rep = eng
                .run(&mut m)
                .unwrap_or_else(|e| panic!("vm failed: {e}\n{src}"));
            let arrays = names
                .iter()
                .map(|a| eng.gather_array(&mut m, a).unwrap())
                .collect();
            (
                rep.elapsed.to_bits(),
                rep.messages,
                rep.bytes,
                rep.printed,
                arrays,
            )
        }
    }
}

fn run(p: &PhaseKernel, backend: Backend, plan: bool) -> Metrics {
    run_exec(p, backend, plan, p.exec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn plan_preserves_results_and_never_slows(p in kernels()) {
        // Sequential plan-off anchor: the plan-on runs execute in the
        // sampled mode, so this also differentially tests threaded ×
        // plan × schedule-cache against sequential.
        let (tb, msg_b, by_b, pr_b, arr_b) =
            run_exec(&p, Backend::TreeWalk, false, ExecMode::Sequential);
        for backend in [Backend::TreeWalk, Backend::Vm] {
            let (to, msg_o, by_o, pr_o, arr_o) = run(&p, backend, true);
            prop_assert_eq!(&arr_o, &arr_b, "arrays bit-identical under the plan");
            prop_assert_eq!(&pr_o, &pr_b, "PRINT invariant under the plan");
            prop_assert_eq!(by_o, by_b, "coalescing repacks, never re-sends bytes");
            prop_assert!(msg_o <= msg_b, "plan must never add messages");
            prop_assert!(
                f64::from_bits(to) <= f64::from_bits(tb),
                "plan must never increase virtual time ({} vs {})",
                f64::from_bits(to), f64::from_bits(tb)
            );
            // Every coalesced message is a saved startup: fewer wire
            // messages must mean strictly lower virtual time.
            if msg_o < msg_b {
                prop_assert!(
                    f64::from_bits(to) < f64::from_bits(tb),
                    "coalesced cell must strictly improve\n{}",
                    program(&p)
                );
            }
        }
        // Comm-bound multi-array cells: multiple ranks, every stencil
        // genuinely shifted — the planner must find a coalesce and win.
        let comm_bound = p.grid[0] > 1
            && p.shifts.iter().take(p.k).all(|&(a, b)| a != 0 && b != 0);
        if comm_bound && msg_b > 0 {
            let (to, msg_o, _, _, _) = run(&p, Backend::TreeWalk, true);
            prop_assert!(
                msg_o < msg_b && f64::from_bits(to) < f64::from_bits(tb),
                "comm-bound multi-array cell must coalesce and strictly improve\n{}",
                program(&p)
            );
        }
    }

    #[test]
    fn plan_identical_across_backends_and_deterministic(p in kernels()) {
        let tw = run(&p, Backend::TreeWalk, true);
        let tw2 = run(&p, Backend::TreeWalk, true);
        prop_assert_eq!(&tw, &tw2, "planned execution must be deterministic");
        let vm = run(&p, Backend::Vm, true);
        prop_assert_eq!(&tw, &vm, "planned metrics must agree across backends");
        // Execution mode must stay invisible under the plan.
        let seq = run_exec(&p, Backend::TreeWalk, true, ExecMode::Sequential);
        prop_assert_eq!(&tw, &seq, "threaded must be bit-identical to sequential");
    }
}
