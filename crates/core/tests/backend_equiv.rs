//! The bytecode backend must be indistinguishable from the tree walker:
//! identical array contents, identical PRINT output, and identical
//! virtual time / message counts on every workload shape the paper's
//! evaluation uses (Jacobi, Gaussian elimination, FFT butterfly,
//! irregular), in both local-phase execution modes.

use f90d_core::{compile, vm_cache, Backend, CompileOptions, Executor};
use f90d_distrib::ProcGrid;
use f90d_machine::{ArrayData, ExecMode, Machine, MachineSpec};

fn gaussian(n: i64) -> String {
    format!(
        "
PROGRAM GAUSS
INTEGER, PARAMETER :: N = {n}
REAL A(N, N)
INTEGER K
C$ DISTRIBUTE A(*, BLOCK)
FORALL (I=1:N, J=1:N) A(I,J) = 1.0/REAL(I+J-1)
FORALL (I=1:N) A(I,I) = A(I,I) + 2.0
DO K = 1, N-1
  FORALL (I=K+1:N, J=K+1:N) A(I,J) = A(I,J) - A(I,K)/A(K,K)*A(K,J)
END DO
END
"
    )
}

fn jacobi(n: i64, iters: i64) -> String {
    format!(
        "
PROGRAM JACOBI
INTEGER, PARAMETER :: N = {n}
REAL A(N, N), B(N, N)
INTEGER IT
C$ TEMPLATE T(N, N)
C$ ALIGN A(I, J) WITH T(I, J)
C$ ALIGN B(I, J) WITH T(I, J)
C$ DISTRIBUTE T(BLOCK, BLOCK)
FORALL (I=1:N, J=1:N) B(I,J) = REAL(I+J)
FORALL (I=1:N, J=1:N) A(I,J) = 0.0
DO IT = 1, {iters}
  FORALL (I=2:N-1, J=2:N-1)&
&   A(I,J) = 0.25*(B(I-1,J)+B(I+1,J)+B(I,J-1)+B(I,J+1))
  FORALL (I=2:N-1, J=2:N-1) B(I,J) = A(I,J)
END DO
END
"
    )
}

fn fft_butterfly(nx: i64, incrm: i64) -> String {
    let size = 2 * nx * incrm;
    format!(
        "
PROGRAM FFTB
INTEGER, PARAMETER :: NX = {nx}, INCRM = {incrm}, M = {size}
REAL X(M), TERM2(M)
C$ TEMPLATE T(M)
C$ ALIGN X(I) WITH T(I)
C$ ALIGN TERM2(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:M) X(I) = REAL(I) * 0.5
FORALL (I=1:M) TERM2(I) = REAL(M - I)
FORALL (I=1:INCRM, J=1:NX/2)&
& X(I+J*INCRM*2-INCRM) = X(I+J*INCRM*2) - TERM2(I+J*INCRM*2-INCRM)
END
"
    )
}

fn irregular(n: i64) -> String {
    format!(
        "
PROGRAM IRREG
INTEGER, PARAMETER :: N = {n}
REAL A(N), B(N), C(N)
INTEGER U(N), V(N)
INTEGER IT
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ ALIGN C(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) B(I) = REAL(I)
FORALL (I=1:N) C(I) = REAL(N - I)
FORALL (I=1:N) U(I) = MOD(I*7, N) + 1
FORALL (I=1:N) V(I) = MOD(I*11, N) + 1
DO IT = 1, 4
  FORALL (I=1:N) A(U(I)) = B(V(I)) + C(I)
END DO
END
"
    )
}

/// Run `src` under one backend; return per-array host images plus the
/// execution report data.
fn run_backend(
    src: &str,
    grid: &[i64],
    arrays: &[&str],
    backend: Backend,
    mode: ExecMode,
) -> (Vec<ArrayData>, f64, u64, u64, Vec<String>) {
    // Threaded runs must get a real pool even on single-core CI hosts,
    // where the default worker budget would degrade them to sequential.
    f90d_machine::budget::global().ensure_total_at_least(8);
    let opts = CompileOptions::on_grid(grid).with_backend(backend);
    let compiled = compile(src, &opts).expect("compiles");
    let mut m = Machine::with_mode(MachineSpec::ipsc860(), ProcGrid::new(grid), mode);
    let report = compiled.run_on(&mut m).expect("runs");
    let imgs = match backend {
        Backend::TreeWalk => {
            let ex = Executor::new_preserving(&compiled.spmd, &mut m);
            arrays
                .iter()
                .map(|a| ex.gather_array(&mut m, a).expect("array exists"))
                .collect()
        }
        Backend::Vm => {
            let prog = compiled.vm_program().expect("lowers");
            let eng = f90d_vm::Engine::new_preserving(prog, &mut m);
            arrays
                .iter()
                .map(|a| eng.gather_array(&mut m, a).expect("array exists"))
                .collect()
        }
    };
    (
        imgs,
        report.elapsed,
        report.messages,
        report.bytes,
        report.printed,
    )
}

fn assert_backends_agree(name: &str, src: &str, grid: &[i64], arrays: &[&str]) {
    for mode in [ExecMode::Sequential, ExecMode::Threaded] {
        let (tw, tw_t, tw_msg, tw_bytes, tw_out) =
            run_backend(src, grid, arrays, Backend::TreeWalk, ExecMode::Sequential);
        let (vm, vm_t, vm_msg, vm_bytes, vm_out) =
            run_backend(src, grid, arrays, Backend::Vm, mode);
        for (k, (a, b)) in tw.iter().zip(&vm).enumerate() {
            assert_eq!(
                a, b,
                "{name} ({mode:?}): array {} differs between backends",
                arrays[k]
            );
        }
        assert_eq!(tw_t, vm_t, "{name} ({mode:?}): virtual time differs");
        assert_eq!(tw_msg, vm_msg, "{name} ({mode:?}): message count differs");
        assert_eq!(tw_bytes, vm_bytes, "{name} ({mode:?}): byte count differs");
        assert_eq!(tw_out, vm_out, "{name} ({mode:?}): PRINT output differs");
    }
}

#[test]
fn jacobi_matches_on_four_nodes() {
    assert_backends_agree("jacobi", &jacobi(16, 3), &[2, 2], &["A", "B"]);
}

#[test]
fn jacobi_matches_on_one_node() {
    assert_backends_agree("jacobi-1", &jacobi(12, 2), &[1, 1], &["A", "B"]);
}

#[test]
fn gaussian_matches_across_grids() {
    for p in [1i64, 2, 4] {
        assert_backends_agree("gaussian", &gaussian(16), &[p], &["A"]);
    }
}

#[test]
fn fft_butterfly_matches() {
    assert_backends_agree("fft", &fft_butterfly(8, 2), &[4], &["X", "TERM2"]);
}

#[test]
fn irregular_matches() {
    assert_backends_agree(
        "irregular",
        &irregular(16),
        &[4],
        &["A", "B", "C", "U", "V"],
    );
}

#[test]
fn print_and_reduction_match() {
    let src = "
PROGRAM SUMS
INTEGER, PARAMETER :: N = 24
REAL A(N), S
C$ TEMPLATE T(N)
C$ ALIGN A(I) WITH T(I)
C$ DISTRIBUTE T(BLOCK)
FORALL (I=1:N) A(I) = REAL(I)
S = SUM(A)
PRINT *, 'sum:', S
END
";
    assert_backends_agree("sums", src, &[4], &["A"]);
}

#[test]
fn vm_program_is_cached_across_runs() {
    let src = jacobi(8, 1);
    let opts = CompileOptions::on_grid(&[2, 2]).with_backend(Backend::Vm);
    let compiled = compile(&src, &opts).unwrap();
    let p1 = compiled.vm_program().unwrap();
    let misses = vm_cache().misses();
    let p2 = compiled.vm_program().unwrap();
    assert!(
        std::sync::Arc::ptr_eq(&p1, &p2),
        "cache must return the same program"
    );
    assert_eq!(
        vm_cache().misses(),
        misses,
        "second lookup must not re-lower"
    );
    // A different grid is a different program.
    let other = compile(
        &src,
        &CompileOptions::on_grid(&[1, 1]).with_backend(Backend::Vm),
    )
    .unwrap();
    let p3 = other.vm_program().unwrap();
    assert!(!std::sync::Arc::ptr_eq(&p1, &p3));
}
