//! End-to-end concurrency: many workers compiling and running the same
//! and different programs through the process-wide VM program cache must
//! produce bit-identical reports, share one lowering per key, and keep
//! the counters exact.
//!
//! Everything lives in ONE test function: the assertions are deltas on
//! the global `vm_cache()` counters, so no other cache user may run
//! concurrently inside this test binary.

use std::sync::Barrier;

use f90d_core::{compile, vm_cache, Backend, CompileOptions};
use f90d_distrib::ProcGrid;
use f90d_machine::{Machine, MachineSpec};

fn jacobi(n: i64) -> String {
    format!(
        "
PROGRAM JAC
INTEGER, PARAMETER :: N = {n}
REAL A(N, N), B(N, N)
C$ TEMPLATE T(N, N)
C$ ALIGN A(I, J) WITH T(I, J)
C$ ALIGN B(I, J) WITH T(I, J)
C$ DISTRIBUTE T(BLOCK, BLOCK)
FORALL (I=1:N, J=1:N) B(I,J) = REAL(I+J)
FORALL (I=2:N-1, J=2:N-1)&
&   A(I,J) = 0.25*(B(I-1,J)+B(I+1,J)+B(I,J-1)+B(I,J+1))
END
"
    )
}

#[test]
fn concurrent_compiled_runs_share_one_lowering() {
    const THREADS: usize = 8;
    let opts = CompileOptions::on_grid(&[2, 2]).with_backend(Backend::Vm);

    // Phase 1 — same program from every worker: one lowering, identical
    // bit-exact reports, per-job machines untouched by each other.
    let src = jacobi(10); // even: disjoint from phase 2's odd size list
    let (h0, m0) = (vm_cache().hits(), vm_cache().misses());
    let barrier = Barrier::new(THREADS);
    let reports: Vec<(f64, u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let (src, opts, barrier) = (&src, &opts, &barrier);
                s.spawn(move || {
                    let compiled = compile(src, opts).unwrap();
                    barrier.wait(); // race the cold cache key
                    let mut m = Machine::new(MachineSpec::ipsc860(), ProcGrid::new(&[2, 2]));
                    let (rep, _) = compiled.run_on_traced(&mut m).unwrap();
                    (rep.elapsed, rep.messages, rep.bytes)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &reports[1..] {
        assert_eq!(
            r.0.to_bits(),
            reports[0].0.to_bits(),
            "virtual time drifted"
        );
        assert_eq!((r.1, r.2), (reports[0].1, reports[0].2), "traffic drifted");
    }
    assert_eq!(
        vm_cache().misses() - m0,
        1,
        "same key must lower exactly once"
    );
    assert_eq!(vm_cache().hits() - h0, THREADS as u64 - 1);

    // Phase 2 — different programs concurrently: one lowering each, and
    // every concurrent result matches its own serial rerun bit-exactly.
    let sizes: Vec<i64> = (0..THREADS as i64).map(|t| 9 + 2 * t).collect();
    let (h1, m1) = (vm_cache().hits(), vm_cache().misses());
    let barrier = Barrier::new(THREADS);
    let concurrent: Vec<(f64, u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = sizes
            .iter()
            .map(|&n| {
                let (opts, barrier) = (&opts, &barrier);
                s.spawn(move || {
                    let compiled = compile(&jacobi(n), opts).unwrap();
                    barrier.wait();
                    let mut m = Machine::new(MachineSpec::ncube2(), ProcGrid::new(&[2, 2]));
                    let (rep, _) = compiled.run_on_traced(&mut m).unwrap();
                    (rep.elapsed, rep.messages, rep.bytes)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(vm_cache().misses() - m1, THREADS as u64);
    assert_eq!(vm_cache().hits() - h1, 0);
    for (&n, conc) in sizes.iter().zip(&concurrent) {
        let compiled = compile(&jacobi(n), &opts).unwrap();
        let mut m = Machine::new(MachineSpec::ncube2(), ProcGrid::new(&[2, 2]));
        let (rep, trace) = compiled.run_on_traced(&mut m).unwrap();
        assert_eq!(
            trace.program_cache_hit,
            Some(true),
            "serial rerun must hit the cache"
        );
        assert_eq!(rep.elapsed.to_bits(), conc.0.to_bits(), "n={n}");
        assert_eq!((rep.messages, rep.bytes), (conc.1, conc.2), "n={n}");
    }
}
