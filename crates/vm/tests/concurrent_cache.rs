//! Concurrency contract of the sharded [`ProgramCache`]: racing workers
//! never lower the same key twice, never deadlock across keys, and the
//! hit/miss counters stay exact under contention.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use f90d_vm::{ProgramCache, VmProgram};

fn dummy(tag: usize) -> VmProgram {
    VmProgram {
        grid_shape: vec![tag as i64 + 1],
        arrays: vec![],
        scalars: vec![],
        nvars: 0,
        consts: vec![],
        accessors: vec![],
        code: vec![],
        foralls: vec![],
        comms: vec![],
        rtcalls: vec![],
        prints: vec![],
        natives: vec![],
    }
}

#[test]
fn same_key_races_lower_exactly_once() {
    const THREADS: usize = 16;
    let cache = ProgramCache::new();
    let builds = AtomicUsize::new(0);
    let barrier = Barrier::new(THREADS);
    let programs: Vec<Arc<VmProgram>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                s.spawn(|| {
                    barrier.wait(); // all threads hit the cold key together
                    cache
                        .get_or_lower(42, || {
                            builds.fetch_add(1, Ordering::SeqCst);
                            Ok(dummy(0))
                        })
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(builds.load(Ordering::SeqCst), 1, "duplicate lowering");
    for p in &programs[1..] {
        assert!(Arc::ptr_eq(&programs[0], p), "distinct programs returned");
    }
    assert_eq!(cache.misses(), 1);
    assert_eq!(cache.hits(), THREADS as u64 - 1);
    assert_eq!(cache.len(), 1);
}

#[test]
fn distinct_keys_lower_independently() {
    const THREADS: usize = 12;
    const ROUNDS: usize = 4;
    let cache = ProgramCache::new();
    let builds = AtomicUsize::new(0);
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = &cache;
            let builds = &builds;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                // Every thread touches every key, several times, in a
                // thread-dependent order (covers same-shard neighbours).
                for r in 0..ROUNDS {
                    for k in 0..THREADS {
                        let key = ((t + k + r) % THREADS) as u64;
                        let p = cache
                            .get_or_lower(key, || {
                                builds.fetch_add(1, Ordering::SeqCst);
                                Ok(dummy(key as usize))
                            })
                            .unwrap();
                        assert_eq!(p.grid_shape, vec![key as i64 + 1], "wrong program");
                    }
                }
            });
        }
    });
    assert_eq!(builds.load(Ordering::SeqCst), THREADS, "one build per key");
    assert_eq!(cache.misses(), THREADS as u64);
    assert_eq!(
        cache.hits(),
        (THREADS * THREADS * ROUNDS - THREADS) as u64,
        "every non-first lookup is a hit"
    );
    assert_eq!(cache.len(), THREADS);
}

#[test]
fn failed_builds_retry_under_contention() {
    const THREADS: usize = 8;
    let cache = ProgramCache::new();
    let attempts = AtomicUsize::new(0);
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let cache = &cache;
            let attempts = &attempts;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                // First attempt per thread fails; error must not be
                // cached, so a later success fills the slot.
                let n = attempts.fetch_add(1, Ordering::SeqCst);
                let r = cache.get_or_lower(7, move || {
                    if n == 0 {
                        Err("transient".into())
                    } else {
                        Ok(dummy(7))
                    }
                });
                if n > 0 {
                    r.unwrap();
                }
            });
        }
    });
    assert_eq!(cache.len(), 1, "eventually cached");
    let p = cache
        .get_or_lower(7, || panic!("must be cached by now"))
        .unwrap();
    assert_eq!(p.grid_shape, vec![8]);
}
