//! The native kernel tier: FORALL superinstructions compiled to
//! monomorphized Rust closures at lowering time.
//!
//! This is the third execution tier (tree walk → bytecode → native).
//! There is no run-time code generation: [`select`] runs once per
//! lowered FORALL inside `f90d-core::vmlower`, symbolically evaluates
//! the straight-line body over the register code, and — when every
//! subscript is affine in the loop variables and every value is REAL
//! arithmetic the closures can reproduce bit-for-bit — emits a
//! [`NativeKernel`]: per-body element closures ([`ElemFn`]) plus the
//! affine read/write site descriptions the engine binds against each
//! rank's resolved accessors at dispatch time.
//!
//! The contract is strict bit-identity with the bytecode engine (and
//! therefore with the tree walker): same f64 operation tree in the same
//! association order, same integer→real promotion points, same staged
//! RHS-before-LHS commit, and the same modelled element-operation cost.
//! Anything the symbolic pass cannot prove equivalent — masks, gathers,
//! scatters, CYCLIC subscript maps, integer division/exponentiation,
//! intrinsics other than `REAL()` — is left to the bytecode tier, and
//! the engine counts the fallback.

use std::fmt;
use std::sync::Arc;

use f90d_frontend::ast::{BinOp, UnOp};
use f90d_machine::{ElemType, Value};

use crate::bytecode::{AccPlan, ExprCode, Op, VmArrayDecl, VmForall};
use crate::ops::Intrin;

/// Index of a [`NativeKernel`] in [`VmProgram::natives`](crate::bytecode::VmProgram::natives).
pub type KernelId = usize;

/// An integer value that is affine in the FORALL loop variables and the
/// program's INTEGER scalars: `base + Σ aᵢ·var(slotᵢ) + Σ bⱼ·scalar(slotⱼ)`.
///
/// Subscripts, loop-variable casts, and owner offsets all reduce to this
/// form; at dispatch time the engine folds the scalar terms (which must
/// hold `Value::Int` — otherwise the whole FORALL falls back) and any
/// loop variables bound outside this FORALL into the base.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lin {
    /// Constant term.
    pub base: i64,
    /// Loop-variable terms `(var slot, coefficient)`.
    pub vterms: Vec<(u16, i64)>,
    /// INTEGER-scalar terms `(scalar slot, coefficient)`.
    pub sterms: Vec<(u16, i64)>,
}

impl Lin {
    fn konst(k: i64) -> Lin {
        Lin {
            base: k,
            vterms: Vec::new(),
            sterms: Vec::new(),
        }
    }

    fn var(slot: u16) -> Lin {
        Lin {
            base: 0,
            vterms: vec![(slot, 1)],
            sterms: Vec::new(),
        }
    }

    fn affine(slot: u16, a: i64, b: i64) -> Lin {
        Lin {
            base: b,
            vterms: vec![(slot, a)],
            sterms: Vec::new(),
        }
    }

    fn scalar(slot: u16) -> Lin {
        Lin {
            base: 0,
            vterms: Vec::new(),
            sterms: vec![(slot, 1)],
        }
    }

    fn as_const(&self) -> Option<i64> {
        (self.vterms.is_empty() && self.sterms.is_empty()).then_some(self.base)
    }

    fn combine(&self, other: &Lin, sign: i64) -> Lin {
        let mut out = self.clone();
        out.base += sign * other.base;
        for &(s, a) in &other.vterms {
            merge_term(&mut out.vterms, s, sign * a);
        }
        for &(s, a) in &other.sterms {
            merge_term(&mut out.sterms, s, sign * a);
        }
        out
    }

    fn scale(&self, k: i64) -> Lin {
        Lin {
            base: self.base * k,
            vterms: self.vterms.iter().map(|&(s, a)| (s, a * k)).collect(),
            sterms: self.sterms.iter().map(|&(s, a)| (s, a * k)).collect(),
        }
    }
}

fn merge_term(terms: &mut Vec<(u16, i64)>, slot: u16, coeff: i64) {
    if let Some(i) = terms.iter().position(|&(s, _)| s == slot) {
        terms[i].1 += coeff;
        if terms[i].1 == 0 {
            // Keep cancelled terms out so `as_const` sees `I - I` shapes.
            terms.remove(i);
        }
    } else if coeff != 0 {
        terms.push((slot, coeff));
    }
}

/// The REAL expression tree a body's RHS reduced to. Leaves index the
/// owning [`NativeBody`]'s `reads` / `lins` / `scalar_slots` tables;
/// interior nodes reproduce `ops::eval_bin`'s REAL arithmetic exactly
/// (same association order, `Div` is IEEE `/`, `Pow` is `powf`).
#[derive(Debug, Clone, PartialEq)]
pub enum NExpr {
    /// A REAL literal (including integer constants the bytecode would
    /// promote via `as_real` at this point of the tree).
    Lit(f64),
    /// A REAL program scalar: index into [`NativeBody::scalar_slots`].
    Scalar(usize),
    /// An integer affine value promoted to REAL here: index into
    /// [`NativeBody::lins`].
    Cast(usize),
    /// An array element read: index into [`NativeBody::reads`].
    Read(usize),
    /// Unary negation.
    Neg(Box<NExpr>),
    /// Binary REAL arithmetic (`Add`/`Sub`/`Mul`/`Div`/`Pow` only).
    Bin(BinOp, Box<NExpr>, Box<NExpr>),
}

/// Per-element inputs handed to an [`ElemFn`]: the fetched read values,
/// the evaluated affine integers, and the REAL scalar snapshot, each in
/// the order of the owning [`NativeBody`]'s tables.
pub struct ElemArgs<'a> {
    /// One value per [`NativeBody::reads`] site.
    pub reads: &'a [f64],
    /// One value per [`NativeBody::lins`] entry.
    pub lins: &'a [i64],
    /// One value per [`NativeBody::scalar_slots`] entry.
    pub scalars: &'a [f64],
}

/// A monomorphized element kernel: the entire RHS of one body as a
/// single closure call, no per-instruction dispatch.
pub type ElemFn = Arc<dyn Fn(&ElemArgs<'_>) -> f64 + Send + Sync>;

/// One array read site: which accessor, and the affine global subscripts
/// (still including any slab-dropped dimension, exactly as the bytecode
/// `Read` would present them to `ResolvedAcc::offset`).
#[derive(Debug, Clone)]
pub struct ReadSite {
    /// Accessor-table index.
    pub acc: u16,
    /// Affine global subscripts, one per source dimension.
    pub subs: Vec<Lin>,
}

/// One compiled body assignment of a [`NativeKernel`].
#[derive(Clone)]
pub struct NativeBody {
    /// Which template matched (`"generic"` for composed closures) —
    /// diagnostic only.
    pub template: &'static str,
    /// The element kernel.
    pub func: ElemFn,
    /// Array read sites feeding [`ElemArgs::reads`].
    pub reads: Vec<ReadSite>,
    /// Affine integers feeding [`ElemArgs::lins`].
    pub lins: Vec<Lin>,
    /// REAL scalar slots feeding [`ElemArgs::scalars`] (must hold
    /// `Value::Real` at dispatch or the FORALL falls back).
    pub scalar_slots: Vec<u16>,
    /// LHS accessor (owned write).
    pub lhs_acc: u16,
    /// Affine global subscripts of the write.
    pub lhs_subs: Vec<Lin>,
    /// Modelled element-operation cost per iteration (identical to the
    /// bytecode body's `cost`).
    pub cost: i64,
}

impl fmt::Debug for NativeBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NativeBody")
            .field("template", &self.template)
            .field("reads", &self.reads)
            .field("lins", &self.lins)
            .field("scalar_slots", &self.scalar_slots)
            .field("lhs_acc", &self.lhs_acc)
            .field("lhs_subs", &self.lhs_subs)
            .field("cost", &self.cost)
            .finish_non_exhaustive()
    }
}

/// A FORALL compiled to the native tier: one [`NativeBody`] per body
/// assignment, plus the loop-variable slots (outer to inner) the affine
/// forms are expressed over.
#[derive(Debug, Clone)]
pub struct NativeKernel {
    /// Loop-variable slots of the FORALL, outer to inner — the dispatch
    /// binding maps [`Lin::vterms`] coefficients onto iteration-list
    /// positions through this table.
    pub var_slots: Vec<u16>,
    /// Compiled bodies, in source order.
    pub bodies: Vec<NativeBody>,
}

// ---- selection (lowering-time symbolic evaluation) ---------------------

/// Symbolic value of one bytecode register during selection.
#[derive(Debug, Clone)]
enum Sym {
    /// Integer, affine in loop variables and INTEGER scalars.
    Int(Lin),
    /// REAL expression tree.
    Real(NExpr),
    /// Anything the native tier cannot reproduce bit-exactly.
    Opaque,
}

struct BodyCtx<'a> {
    arrays: &'a [VmArrayDecl],
    scalars: &'a [(String, ElemType)],
    consts: &'a [Value],
    accessors: &'a [AccPlan],
    reads: Vec<ReadSite>,
    lins: Vec<Lin>,
    scalar_slots: Vec<u16>,
}

impl BodyCtx<'_> {
    fn real_scalar(&mut self, slot: u16) -> usize {
        if let Some(i) = self.scalar_slots.iter().position(|&s| s == slot) {
            i
        } else {
            self.scalar_slots.push(slot);
            self.scalar_slots.len() - 1
        }
    }

    /// Promote to REAL exactly where the bytecode would call `as_real`.
    fn promote_real(&mut self, s: Sym) -> Sym {
        match s {
            Sym::Int(lin) => match lin.as_const() {
                Some(k) => Sym::Real(NExpr::Lit(k as f64)),
                None => {
                    self.lins.push(lin);
                    Sym::Real(NExpr::Cast(self.lins.len() - 1))
                }
            },
            real @ Sym::Real(_) => real,
            Sym::Opaque => Sym::Opaque,
        }
    }

    fn eval_bin(&mut self, op: BinOp, a: Sym, b: Sym) -> Sym {
        use BinOp::*;
        if op.is_logical() || op.is_comparison() {
            return Sym::Opaque; // LOGICAL values never reach a REAL store.
        }
        if let (Sym::Int(x), Sym::Int(y)) = (&a, &b) {
            return match op {
                Add => Sym::Int(x.combine(y, 1)),
                Sub => Sym::Int(x.combine(y, -1)),
                Mul => {
                    if let Some(k) = x.as_const() {
                        Sym::Int(y.scale(k))
                    } else if let Some(k) = y.as_const() {
                        Sym::Int(x.scale(k))
                    } else {
                        Sym::Opaque // nonlinear
                    }
                }
                // Integer division truncates and faults on zero; integer
                // exponentiation clamps and faults on negatives. Leave
                // both to the bytecode tier.
                _ => Sym::Opaque,
            };
        }
        let (Sym::Real(l), Sym::Real(r)) = (self.promote_real(a), self.promote_real(b)) else {
            return Sym::Opaque;
        };
        match op {
            Add | Sub | Mul | Div | Pow => Sym::Real(NExpr::Bin(op, Box::new(l), Box::new(r))),
            _ => Sym::Opaque,
        }
    }

    /// Abstractly execute one expression program; returns its output
    /// register's symbolic value.
    fn eval_code(&mut self, code: &ExprCode) -> Sym {
        let mut regs: Vec<Sym> = vec![Sym::Opaque; code.nregs as usize];
        for op in &code.ops {
            match *op {
                Op::Const { dst, k } => {
                    regs[dst as usize] = match self.consts[k as usize] {
                        Value::Int(v) => Sym::Int(Lin::konst(v)),
                        Value::Real(v) => Sym::Real(NExpr::Lit(v)),
                        _ => Sym::Opaque,
                    }
                }
                Op::LoadVar { dst, slot } => regs[dst as usize] = Sym::Int(Lin::var(slot)),
                Op::LoadScalar { dst, slot } => {
                    regs[dst as usize] = match self.scalars[slot as usize].1 {
                        ElemType::Int => Sym::Int(Lin::scalar(slot)),
                        ElemType::Real => {
                            let i = self.real_scalar(slot);
                            Sym::Real(NExpr::Scalar(i))
                        }
                        _ => Sym::Opaque,
                    }
                }
                Op::Affine { dst, slot, a, b } => {
                    regs[dst as usize] = Sym::Int(Lin::affine(slot, a, b))
                }
                Op::Bin { op, dst, a, b } => {
                    let (x, y) = (regs[a as usize].clone(), regs[b as usize].clone());
                    regs[dst as usize] = self.eval_bin(op, x, y);
                }
                Op::Un { op, dst, a } => {
                    regs[dst as usize] = match (op, regs[a as usize].clone()) {
                        (UnOp::Neg, Sym::Int(lin)) => Sym::Int(lin.scale(-1)),
                        (UnOp::Neg, Sym::Real(e)) => Sym::Real(NExpr::Neg(Box::new(e))),
                        _ => Sym::Opaque,
                    }
                }
                Op::Intrin { f, dst, base, n } => {
                    regs[dst as usize] = if f == Intrin::ToReal && n == 1 {
                        let arg = regs[base as usize].clone();
                        self.promote_real(arg)
                    } else {
                        Sym::Opaque // transcendental results won't drift, but MOD/MIN/MAX/INT have integer paths — leave all to bytecode
                    }
                }
                Op::Read { dst, acc, base, n } => {
                    let mut subs = Vec::with_capacity(n as usize);
                    for r in &regs[base as usize..(base + n) as usize] {
                        match r {
                            Sym::Int(lin) => subs.push(lin.clone()),
                            _ => {
                                subs.clear();
                                break;
                            }
                        }
                    }
                    let target = self.accessors[acc as usize].target();
                    regs[dst as usize] =
                        if subs.len() == n as usize && self.arrays[target].ty == ElemType::Real {
                            self.reads.push(ReadSite { acc, subs });
                            Sym::Real(NExpr::Read(self.reads.len() - 1))
                        } else {
                            Sym::Opaque
                        };
                }
                Op::ReadSeq { dst, .. } => regs[dst as usize] = Sym::Opaque,
            }
        }
        regs[code.out as usize].clone()
    }
}

/// Try to compile a lowered FORALL to the native tier. Returns `None`
/// when any body falls outside what the closures can reproduce
/// bit-exactly; the bytecode element loop remains the executor then.
pub fn select(
    f: &VmForall,
    arrays: &[VmArrayDecl],
    scalars: &[(String, ElemType)],
    consts: &[Value],
    accessors: &[AccPlan],
) -> Option<NativeKernel> {
    // Masks change which iterations execute (and charge mask cost);
    // gathers introduce sequential ReadSeq state; scatters leave the
    // rank. All are bytecode-only.
    if f.mask.is_some() || !f.gathers.is_empty() || f.body.is_empty() {
        return None;
    }
    let mut bodies = Vec::with_capacity(f.body.len());
    for b in &f.body {
        if b.scatter.is_some() || b.arr != f.body[0].arr {
            return None;
        }
        let lhs_acc = b.lhs_acc?;
        if arrays[b.arr].ty != ElemType::Real {
            return None;
        }
        let mut ctx = BodyCtx {
            arrays,
            scalars,
            consts,
            accessors,
            reads: Vec::new(),
            lins: Vec::new(),
            scalar_slots: Vec::new(),
        };
        // RHS first (bytecode evaluation order), then the subscripts.
        let rhs = ctx.eval_code(&b.rhs);
        let Sym::Real(expr) = ctx.promote_real(rhs) else {
            return None;
        };
        let mut lhs_subs = Vec::with_capacity(b.subs.len());
        for s in &b.subs {
            match ctx.eval_code(s) {
                Sym::Int(lin) => lhs_subs.push(lin),
                _ => return None,
            }
        }
        let (template, func) = match_template(&expr);
        bodies.push(NativeBody {
            template,
            func,
            reads: ctx.reads,
            lins: ctx.lins,
            scalar_slots: ctx.scalar_slots,
            lhs_acc,
            lhs_subs,
            cost: b.cost,
        });
    }
    Some(NativeKernel {
        var_slots: f.vars.iter().map(|s| s.var).collect(),
        bodies,
    })
}

// ---- template registry -------------------------------------------------

/// Match the reduced RHS against the fused templates (the paper's hot
/// shapes: stencil update, rank-1 row elimination, axpy, accumulate) and
/// fall back to recursive closure composition. Both paths produce the
/// identical f64 operation sequence; the fused names exist so the
/// single-closure fast path covers the benchmark corpus and the
/// template name is visible in diagnostics.
fn match_template(e: &NExpr) -> (&'static str, ElemFn) {
    use BinOp::{Add, Div, Mul, Sub};
    use NExpr::*;
    match e {
        Lit(c) => {
            let c = *c;
            return ("fill_const", Arc::new(move |_| c));
        }
        Read(i) => {
            let i = *i;
            return ("copy", Arc::new(move |a: &ElemArgs| a.reads[i]));
        }
        Cast(i) => {
            let i = *i;
            return ("index_cast", Arc::new(move |a: &ElemArgs| a.lins[i] as f64));
        }
        Scalar(i) => {
            let i = *i;
            return ("scalar_fill", Arc::new(move |a: &ElemArgs| a.scalars[i]));
        }
        _ => {}
    }
    // c*(((r0+r1)+r2)+r3) — the four-point Jacobi stencil exactly as the
    // parser associates it.
    if let Bin(Mul, l, r) = e {
        if let (Lit(c), Bin(Add, x, y)) = (&**l, &**r) {
            if let (Bin(Add, p, q), Read(i3)) = (&**x, &**y) {
                if let (Bin(Add, a0, a1), Read(i2)) = (&**p, &**q) {
                    if let (Read(i0), Read(i1)) = (&**a0, &**a1) {
                        let (c, i0, i1, i2, i3) = (*c, *i0, *i1, *i2, *i3);
                        let f: ElemFn = Arc::new(move |a: &ElemArgs| {
                            c * (((a.reads[i0] + a.reads[i1]) + a.reads[i2]) + a.reads[i3])
                        });
                        return ("stencil4_scale", f);
                    }
                }
            }
        }
    }
    // r0 - (r1/r2)*r3 — Gaussian elimination's rank-1 row update.
    if let Bin(Sub, l, r) = e {
        if let (Read(i0), Bin(Mul, m1, m2)) = (&**l, &**r) {
            if let (Bin(Div, n1, n2), Read(i3)) = (&**m1, &**m2) {
                if let (Read(i1), Read(i2)) = (&**n1, &**n2) {
                    let (i0, i1, i2, i3) = (*i0, *i1, *i2, *i3);
                    let f: ElemFn = Arc::new(move |a: &ElemArgs| {
                        a.reads[i0] - (a.reads[i1] / a.reads[i2]) * a.reads[i3]
                    });
                    return ("rank1_update", f);
                }
            }
        }
    }
    if let Bin(Add, l, r) = e {
        // r0 + r1 — reduction accumulate, the partial-sum FORALL feeding
        // a SUM-into-scalar reduction.
        if let (Read(i0), Read(i1)) = (&**l, &**r) {
            let (i0, i1) = (*i0, *i1);
            let f: ElemFn = Arc::new(move |a: &ElemArgs| a.reads[i0] + a.reads[i1]);
            return ("reduce_accumulate", f);
        }
        if let (Read(i0), Bin(Mul, m1, m2)) = (&**l, &**r) {
            // r0 + c*r1 — axpy.
            if let (Lit(c), Read(i1)) = (&**m1, &**m2) {
                let (c, i0, i1) = (*c, *i0, *i1);
                let f: ElemFn = Arc::new(move |a: &ElemArgs| a.reads[i0] + c * a.reads[i1]);
                return ("axpy", f);
            }
            // r0 + s*r1 — scalar-weighted reduction accumulate.
            if let (Scalar(s), Read(i1)) = (&**m1, &**m2) {
                let (s, i0, i1) = (*s, *i0, *i1);
                let f: ElemFn =
                    Arc::new(move |a: &ElemArgs| a.reads[i0] + a.scalars[s] * a.reads[i1]);
                return ("reduce_accumulate", f);
            }
            // r0 + r1*r2 — reduction/product accumulate.
            if let (Read(i1), Read(i2)) = (&**m1, &**m2) {
                let (i0, i1, i2) = (*i0, *i1, *i2);
                let f: ElemFn =
                    Arc::new(move |a: &ElemArgs| a.reads[i0] + a.reads[i1] * a.reads[i2]);
                return ("multiply_accumulate", f);
            }
        }
    }
    ("generic", compose(e))
}

/// Recursive closure composition for shapes with no fused template.
/// Mirrors `ops::eval_bin`'s REAL arithmetic node for node.
fn compose(e: &NExpr) -> ElemFn {
    match e {
        NExpr::Lit(c) => {
            let c = *c;
            Arc::new(move |_| c)
        }
        NExpr::Scalar(i) => {
            let i = *i;
            Arc::new(move |a: &ElemArgs| a.scalars[i])
        }
        NExpr::Cast(i) => {
            let i = *i;
            Arc::new(move |a: &ElemArgs| a.lins[i] as f64)
        }
        NExpr::Read(i) => {
            let i = *i;
            Arc::new(move |a: &ElemArgs| a.reads[i])
        }
        NExpr::Neg(x) => {
            let f = compose(x);
            Arc::new(move |a: &ElemArgs| -f(a))
        }
        NExpr::Bin(op, l, r) => {
            let (fl, fr) = (compose(l), compose(r));
            match op {
                BinOp::Add => Arc::new(move |a: &ElemArgs| fl(a) + fr(a)),
                BinOp::Sub => Arc::new(move |a: &ElemArgs| fl(a) - fr(a)),
                BinOp::Mul => Arc::new(move |a: &ElemArgs| fl(a) * fr(a)),
                BinOp::Div => Arc::new(move |a: &ElemArgs| fl(a) / fr(a)),
                BinOp::Pow => Arc::new(move |a: &ElemArgs| fl(a).powf(fr(a))),
                _ => unreachable!("selection admits arithmetic ops only"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lin_combines_and_scales() {
        let a = Lin::affine(0, 2, 3); // 2*v0 + 3
        let b = Lin::var(1);
        let s = a.combine(&b, 1).scale(4); // 8*v0 + 4*v1 + 12
        assert_eq!(s.base, 12);
        assert_eq!(s.vterms, vec![(0, 8), (1, 4)]);
        assert_eq!(a.combine(&a, -1).as_const(), Some(0));
    }

    #[test]
    fn templates_match_hot_shapes() {
        use NExpr::*;
        let stencil = Bin(
            BinOp::Mul,
            Box::new(Lit(0.25)),
            Box::new(Bin(
                BinOp::Add,
                Box::new(Bin(
                    BinOp::Add,
                    Box::new(Bin(BinOp::Add, Box::new(Read(0)), Box::new(Read(1)))),
                    Box::new(Read(2)),
                )),
                Box::new(Read(3)),
            )),
        );
        let (name, f) = match_template(&stencil);
        assert_eq!(name, "stencil4_scale");
        let args = ElemArgs {
            reads: &[1.0, 2.0, 3.0, 4.0],
            lins: &[],
            scalars: &[],
        };
        assert_eq!(f(&args), 2.5);

        let (name, f) = match_template(&Bin(
            BinOp::Sub,
            Box::new(Read(0)),
            Box::new(Bin(
                BinOp::Mul,
                Box::new(Bin(BinOp::Div, Box::new(Read(1)), Box::new(Read(2)))),
                Box::new(Read(3)),
            )),
        ));
        assert_eq!(name, "rank1_update");
        assert_eq!(f(&args), 1.0 - (2.0 / 3.0) * 4.0);

        // A shape with no fused template composes the same value.
        let odd = Bin(BinOp::Pow, Box::new(Read(0)), Box::new(Lit(2.0)));
        let (name, f) = match_template(&odd);
        assert_eq!(name, "generic");
        assert_eq!(f(&args), 1.0f64.powf(2.0));
    }

    #[test]
    fn reduce_accumulate_matches_both_shapes() {
        use NExpr::*;
        // r0 + r1 — the plain partial-sum accumulate.
        let (name, f) = match_template(&Bin(BinOp::Add, Box::new(Read(0)), Box::new(Read(1))));
        assert_eq!(name, "reduce_accumulate");
        let args = ElemArgs {
            reads: &[1.5, 2.25],
            lins: &[],
            scalars: &[4.0],
        };
        assert_eq!(f(&args), 1.5 + 2.25);

        // r0 + s*r1 — scalar-weighted accumulate.
        let (name, f) = match_template(&Bin(
            BinOp::Add,
            Box::new(Read(0)),
            Box::new(Bin(BinOp::Mul, Box::new(Scalar(0)), Box::new(Read(1)))),
        ));
        assert_eq!(name, "reduce_accumulate");
        assert_eq!(f(&args), 1.5 + 4.0 * 2.25);
    }
}
