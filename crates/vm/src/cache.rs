//! Keyed program cache: repeated runs of the same (source, options,
//! grid) triple — the bench harness's inner loops — skip lowering and
//! share one immutable [`VmProgram`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::bytecode::VmProgram;

/// A concurrent key → `Arc<VmProgram>` map with hit/miss counters.
#[derive(Default)]
pub struct ProgramCache {
    map: Mutex<HashMap<u64, Arc<VmProgram>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProgramCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up `key`, lowering with `build` on a miss. `build` errors are
    /// not cached.
    pub fn get_or_lower(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<VmProgram, String>,
    ) -> Result<Arc<VmProgram>, String> {
        if let Some(p) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(p.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let p = Arc::new(build()?);
        self.map
            .lock()
            .unwrap()
            .entry(key)
            .or_insert_with(|| p.clone());
        Ok(p)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (lowerings performed) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached programs.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached program (tests).
    pub fn clear(&self) {
        self.map.lock().unwrap().clear();
    }
}

/// FNV-1a over a byte string — the workspace's standard cache-key hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> VmProgram {
        VmProgram {
            grid_shape: vec![1],
            arrays: vec![],
            scalars: vec![],
            nvars: 0,
            consts: vec![],
            accessors: vec![],
            code: vec![],
            foralls: vec![],
            comms: vec![],
            rtcalls: vec![],
            prints: vec![],
        }
    }

    #[test]
    fn hit_returns_same_program() {
        let c = ProgramCache::new();
        let a = c.get_or_lower(7, || Ok(dummy())).unwrap();
        let b = c.get_or_lower(7, || panic!("must not re-lower")).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((c.hits(), c.misses(), c.len()), (1, 1, 1));
    }

    #[test]
    fn errors_are_not_cached() {
        let c = ProgramCache::new();
        assert!(c.get_or_lower(1, || Err("nope".into())).is_err());
        assert!(c.is_empty());
        assert!(c.get_or_lower(1, || Ok(dummy())).is_ok());
    }
}
