//! Keyed program cache: repeated runs of the same (source, options,
//! grid) triple — the bench harness's inner loops — skip lowering and
//! share one immutable [`VmProgram`].
//!
//! The map is **sharded** so concurrent harness workers contend only on
//! the shard owning their key, and each key gets a per-key slot lock so
//! that N workers racing on the same cold key perform exactly **one**
//! lowering: the first locks the slot and builds, the rest block on the
//! slot (not the shard) and observe a hit. Lowerings of *different* keys
//! proceed fully in parallel, even within one shard.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::bytecode::VmProgram;

/// Shard count. A small power of two: the workspace caches tens of
/// programs, so this bounds contention, not capacity.
const SHARDS: usize = 16;

/// Per-key slot: the program once lowered, `None` while cold (or after a
/// failed build, which is never cached).
#[derive(Default)]
struct Slot {
    program: Mutex<Option<Arc<VmProgram>>>,
}

/// A sharded concurrent key → `Arc<VmProgram>` map with hit/miss
/// counters. Shared by every harness worker (`Send + Sync`).
pub struct ProgramCache {
    shards: Vec<Mutex<HashMap<u64, Arc<Slot>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for ProgramCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramCache {
    /// Empty cache.
    pub fn new() -> Self {
        ProgramCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, Arc<Slot>>> {
        &self.shards[(key % SHARDS as u64) as usize]
    }

    /// Lock, recovering from poison: `build` runs user lowering code
    /// under the slot lock, and a panic there (e.g. a too-large program
    /// table) must surface once — not cascade as `PoisonError` panics in
    /// every other worker of that key. A poisoned slot still holds
    /// `None`, so the next caller simply retries the build.
    fn recover<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
        lock.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Look up `key`, lowering with `build` on a miss. `build` errors are
    /// not cached. Concurrent callers with the same key block on the
    /// per-key slot until the one lowering finishes, then all share it.
    pub fn get_or_lower(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<VmProgram, String>,
    ) -> Result<Arc<VmProgram>, String> {
        self.get_or_lower_traced(key, build).map(|(p, _)| p)
    }

    /// [`ProgramCache::get_or_lower`] that also reports whether this call
    /// was a cache hit (`true`) or performed the lowering (`false`).
    pub fn get_or_lower_traced(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<VmProgram, String>,
    ) -> Result<(Arc<VmProgram>, bool), String> {
        let slot = {
            let mut map = Self::recover(self.shard(key));
            map.entry(key).or_default().clone()
        };
        // Shard lock released: the build below serializes only callers of
        // this key.
        let mut program = Self::recover(&slot.program);
        if let Some(p) = program.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((p.clone(), true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let p = Arc::new(build()?);
        *program = Some(p.clone());
        Ok((p, false))
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (lowerings performed) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached programs (slots holding a finished lowering).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                // Snapshot the slots, then release the shard lock before
                // touching any slot mutex: a slot may be mid-lowering,
                // and holding the shard lock while waiting on it would
                // stall lookups of every other key in the shard.
                let slots: Vec<Arc<Slot>> = Self::recover(s).values().cloned().collect();
                slots
                    .iter()
                    .filter(|slot| Self::recover(&slot.program).is_some())
                    .count()
            })
            .sum()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached program (tests).
    pub fn clear(&self) {
        for s in &self.shards {
            Self::recover(s).clear();
        }
    }
}

/// FNV-1a over a byte string — the workspace's standard cache-key hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> VmProgram {
        VmProgram {
            grid_shape: vec![1],
            arrays: vec![],
            scalars: vec![],
            nvars: 0,
            consts: vec![],
            accessors: vec![],
            code: vec![],
            foralls: vec![],
            comms: vec![],
            rtcalls: vec![],
            prints: vec![],
            natives: vec![],
        }
    }

    #[test]
    fn hit_returns_same_program() {
        let c = ProgramCache::new();
        let a = c.get_or_lower(7, || Ok(dummy())).unwrap();
        let b = c.get_or_lower(7, || panic!("must not re-lower")).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((c.hits(), c.misses(), c.len()), (1, 1, 1));
    }

    #[test]
    fn traced_reports_miss_then_hit() {
        let c = ProgramCache::new();
        let (_, hit0) = c.get_or_lower_traced(3, || Ok(dummy())).unwrap();
        let (_, hit1) = c.get_or_lower_traced(3, || Ok(dummy())).unwrap();
        assert!(!hit0);
        assert!(hit1);
    }

    #[test]
    fn errors_are_not_cached() {
        let c = ProgramCache::new();
        assert!(c.get_or_lower(1, || Err("nope".into())).is_err());
        assert!(c.is_empty());
        assert!(c.get_or_lower(1, || Ok(dummy())).is_ok());
    }

    #[test]
    fn build_panic_does_not_poison_the_key() {
        let c = ProgramCache::new();
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = c.get_or_lower(5, || -> Result<VmProgram, String> {
                panic!("lowering bug")
            });
        }));
        assert!(panicked.is_err());
        // The slot is recoverable, not poisoned: the next caller retries
        // the build instead of cascading a PoisonError panic.
        let p = c.get_or_lower(5, || Ok(dummy())).unwrap();
        assert_eq!(p.grid_shape, vec![1]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn keys_spread_over_shards() {
        let c = ProgramCache::new();
        for k in 0..64 {
            c.get_or_lower(k, || Ok(dummy())).unwrap();
        }
        assert_eq!(c.len(), 64);
        assert!(c.shards.iter().all(|s| !s.lock().unwrap().is_empty()));
    }
}
