//! # f90d-vm — register-bytecode execution engine for SPMD node programs
//!
//! The tree-walking executor in `f90d-core` re-dispatches on the IR enum
//! for every element of every FORALL on every node. This crate is the
//! standard interpreter→bytecode step: the compiler lowers each node
//! program once into a compact register bytecode ([`bytecode::VmProgram`])
//! — flat instruction streams, resolved array/scalar/loop-variable slots,
//! constant-folded affine subscript forms — and the [`engine::Engine`]
//! runs it with a flat fetch/decode loop, charging the **same**
//! virtual-time cost model as the tree walker, under both sequential and
//! threaded local-phase execution.
//!
//! Layering: this crate sits beside the runtime — it depends on the
//! machine, mapping, communication and runtime crates but *not* on the
//! compiler. The lowering pass (tree IR → bytecode) lives in
//! `f90d-core::vmlower`; selecting the backend happens through
//! `CompileOptions::backend` there. FORALL communication — ghost
//! exchanges, phase batching, the overlap split, schedule selection,
//! quiescence — is *not* re-implemented here: the engine drives the
//! shared `f90d_comm::driver` (plugging in element evaluation through
//! its `ComputeSink` contract), exactly like the tree walker, so the
//! two backends sequence communication from one code path.
//!
//! * [`bytecode`] — instruction set, expression code, program tables.
//! * [`engine`] — the execution engine (mirrors the tree walker's
//!   `Executor` API: seed, run, gather, scalar inspection).
//! * [`native`] — the third tier: FORALL superinstructions selected at
//!   lowering time and monomorphized into prebuilt Rust closures; the
//!   engine dispatches to them per execution and falls back to bytecode
//!   when a kernel's preconditions fail.
//! * [`ops`] — value-level operator semantics, shared with the tree
//!   walker so the two backends cannot diverge.
//! * [`cache`] — keyed program cache so repeated runs skip lowering.

#![warn(missing_docs)]

pub mod bytecode;
pub mod cache;
pub mod engine;
pub mod native;
pub mod ops;

pub use bytecode::VmProgram;
pub use cache::ProgramCache;
pub use engine::{Engine, RunReport, VmError};
