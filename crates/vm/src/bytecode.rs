//! The register bytecode a compiled SPMD node program lowers to.
//!
//! Expressions become flat [`ExprCode`] register programs — no tree
//! recursion, no name lookups: scalars, loop variables, constants and
//! array accessors are all resolved to table slots at lowering time, and
//! affine subscripts (`a*i + b`) collapse to a single [`Op::Affine`].
//! Statement-level control flow is a flat [`PInst`] stream with explicit
//! jump targets; FORALL loops, communication calls and runtime calls are
//! table-driven super-instructions executed by [`crate::engine::Engine`].

use f90d_distrib::Dad;
use f90d_frontend::ast::{BinOp, UnOp};
use f90d_machine::{ElemType, Value};

use crate::ops::Intrin;

/// Index of an array in the program's array table.
pub type ArrId = usize;

/// A register index within one [`ExprCode`].
pub type Reg = u16;

/// One declared array of the lowered program (copied from the IR so the
/// engine is self-contained).
#[derive(Debug, Clone)]
pub struct VmArrayDecl {
    /// Source-level (or temporary) name, as allocated on node memories.
    pub name: String,
    /// Element type.
    pub ty: ElemType,
    /// Compile-time mapping descriptor (REDISTRIBUTE may replace it at
    /// run time; the engine tracks live descriptors separately).
    pub dad: Dad,
    /// Ghost width on distributed dimensions.
    pub ghost: i64,
    /// `true` for compiler temporaries.
    pub is_temp: bool,
}

/// How a `Read` instruction locates its element (static half; the engine
/// resolves this against the live descriptors per FORALL execution).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AccPlan {
    /// Owner-computes read of the rank's own segment (ghosts allowed);
    /// also used for fully replicated arrays.
    Owned {
        /// The array.
        arr: ArrId,
    },
    /// Read a slab temporary produced by multicast/transfer; the
    /// subscript of `fixed_dim` is dropped.
    Slab {
        /// The temporary.
        tmp: ArrId,
        /// Fixed source dimension.
        fixed_dim: usize,
    },
    /// Read a same-mapping temporary at the canonical position.
    Same {
        /// The temporary.
        tmp: ArrId,
    },
}

impl AccPlan {
    /// The array actually read.
    pub fn target(&self) -> ArrId {
        match *self {
            AccPlan::Owned { arr } => arr,
            AccPlan::Slab { tmp, .. } | AccPlan::Same { tmp } => tmp,
        }
    }

    /// The dropped source dimension, for slab reads.
    pub fn dropped_dim(&self) -> Option<usize> {
        match *self {
            AccPlan::Slab { fixed_dim, .. } => Some(fixed_dim),
            _ => None,
        }
    }
}

/// One bytecode instruction of an expression program.
#[derive(Debug, Clone, Copy)]
pub enum Op {
    /// `r[dst] = consts[k]`
    Const {
        /// Destination register.
        dst: Reg,
        /// Constant-table index.
        k: u16,
    },
    /// `r[dst] = Int(vars[slot])` — a loop variable.
    LoadVar {
        /// Destination register.
        dst: Reg,
        /// Loop-variable slot.
        slot: u16,
    },
    /// `r[dst] = scalars[slot]` — a replicated program scalar.
    LoadScalar {
        /// Destination register.
        dst: Reg,
        /// Scalar slot.
        slot: u16,
    },
    /// `r[dst] = Int(a * vars[slot] + b)` — a folded affine subscript.
    Affine {
        /// Destination register.
        dst: Reg,
        /// Loop-variable slot.
        slot: u16,
        /// Stride.
        a: i64,
        /// Offset.
        b: i64,
    },
    /// `r[dst] = r[a] <op> r[b]`
    Bin {
        /// Operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
    },
    /// `r[dst] = <op> r[a]`
    Un {
        /// Operator.
        op: UnOp,
        /// Destination register.
        dst: Reg,
        /// Operand register.
        a: Reg,
    },
    /// `r[dst] = f(r[base..base+n])`
    Intrin {
        /// Resolved intrinsic.
        f: Intrin,
        /// Destination register.
        dst: Reg,
        /// First argument register (arguments are consecutive).
        base: Reg,
        /// Argument count.
        n: u16,
    },
    /// `r[dst] = element of accessors[acc] at subscripts r[base..base+n]`
    Read {
        /// Destination register.
        dst: Reg,
        /// Accessor-table index.
        acc: u16,
        /// First subscript register (subscripts are consecutive,
        /// evaluated as integers).
        base: Reg,
        /// Subscript count (the source array rank, before any slab
        /// dimension drop).
        n: u16,
    },
    /// `r[dst] = next element of gather buffer `gather`` (sequential
    /// `tmp(count)` read; bumps the per-rank counter).
    ReadSeq {
        /// Destination register.
        dst: Reg,
        /// Index into the enclosing FORALL's gather list.
        gather: u16,
    },
}

/// A compiled expression: straight-line register program.
#[derive(Debug, Clone, Default)]
pub struct ExprCode {
    /// Instructions in evaluation order.
    pub ops: Vec<Op>,
    /// Register holding the result.
    pub out: Reg,
    /// Number of registers the program needs.
    pub nregs: u16,
}

/// Iteration-to-rank partitioning of one FORALL variable (mirror of the
/// IR's `Partition`, with resolved array ids).
#[derive(Debug, Clone)]
pub enum VmPartition {
    /// Owner-computes over LHS dimension `dim` of `arr` with subscript
    /// `a*var + b` (`set_BOUND`).
    OwnerDim {
        /// LHS array.
        arr: ArrId,
        /// LHS dimension.
        dim: usize,
        /// Subscript stride.
        a: i64,
        /// Subscript offset.
        b: i64,
    },
    /// Equal block split of the iteration space over all ranks.
    BlockIter,
    /// Every rank runs every iteration.
    Replicate,
}

/// One FORALL loop variable with compiled bounds.
#[derive(Debug, Clone)]
pub struct VmLoopSpec {
    /// Loop-variable slot.
    pub var: u16,
    /// Lower bound (scalar context).
    pub lb: ExprCode,
    /// Upper bound (inclusive).
    pub ub: ExprCode,
    /// Stride (positive).
    pub st: ExprCode,
    /// Partitioning.
    pub part: VmPartition,
}

/// One unstructured gather of a FORALL.
#[derive(Debug, Clone)]
pub struct VmGather {
    /// Source array.
    pub src: ArrId,
    /// Sequential buffer.
    pub tmp: ArrId,
    /// Subscripts as functions of the loop variables.
    pub subs: Vec<ExprCode>,
    /// `true` → `schedule1`/`precomp_read`; `false` → `schedule2`/`gather`.
    pub local_only: bool,
}

/// One elementwise assignment of a FORALL body.
#[derive(Debug, Clone)]
pub struct VmAssign {
    /// Destination array.
    pub arr: ArrId,
    /// Global subscripts.
    pub subs: Vec<ExprCode>,
    /// Value.
    pub rhs: ExprCode,
    /// Accessor used to compute owned-write offsets (`None` for scatter
    /// writes).
    pub lhs_acc: Option<u16>,
    /// `Some(invertible)` for scatter writes.
    pub scatter: Option<bool>,
    /// Modelled element-operation cost per executed iteration.
    pub cost: i64,
}

/// A lowered FORALL super-instruction.
#[derive(Debug, Clone)]
pub struct VmForall {
    /// Loop variables, outer to inner.
    pub vars: Vec<VmLoopSpec>,
    /// Optional mask (element context).
    pub mask: Option<ExprCode>,
    /// Modelled cost of one mask evaluation.
    pub mask_cost: i64,
    /// Communication prelude (comm-table indices).
    pub pre: Vec<u16>,
    /// Unstructured reads.
    pub gathers: Vec<VmGather>,
    /// `set_BOUND` masking of inactive processors.
    pub owner_filter: Vec<(ArrId, usize, ExprCode)>,
    /// Body assignments.
    pub body: Vec<VmAssign>,
    /// Accessor ids the element loop references (for per-rank resolution).
    pub accs_used: Vec<u16>,
    /// Native-tier kernel selected at lowering time
    /// ([`VmProgram::natives`] index), or `None` when the bytecode
    /// element loop is the only executor. Even with a kernel present the
    /// engine re-checks dispatch preconditions per execution (live
    /// descriptors, scalar value types, iteration-box bounds) and falls
    /// back to bytecode — counted in `Engine::native_counts` — when any
    /// fails.
    pub native: Option<crate::native::KernelId>,
    /// Comm-phase membership copied from the IR planner annotation
    /// (`ForallNode::plan`). The engine batches the ghost exchanges of a
    /// `Lead` and its following `len - 1` members into one coalesced
    /// exchange when `Engine::plan` is on; otherwise (or on a runtime
    /// planning refusal) the per-statement `pre` lists run as usual.
    pub plan: Option<VmPhase>,
}

/// Mirror of the IR's `PhaseRole` for lowered FORALLs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmPhase {
    /// First member of a phase of `len` consecutive FORALL instructions.
    Lead {
        /// Phase length including the lead.
        len: u16,
    },
    /// Non-lead member (prelude posted by the lead).
    Member,
}

/// Reduction kinds (mirror of the IR's `ReduceKind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmReduce {
    /// `SUM`
    Sum,
    /// `PRODUCT`
    Product,
    /// `MAXVAL`
    MaxVal,
    /// `MINVAL`
    MinVal,
    /// `COUNT`
    Count,
    /// `ALL`
    All,
    /// `ANY`
    Any,
    /// `DOTPRODUCT`
    DotProduct,
}

/// A lowered collective communication statement.
#[derive(Debug, Clone)]
pub enum VmComm {
    /// Broadcast slab along the grid axis of `dim`.
    Multicast {
        /// Source array.
        src: ArrId,
        /// Slab temporary.
        tmp: ArrId,
        /// Fixed dimension.
        dim: usize,
        /// Global slab index.
        src_g: ExprCode,
    },
    /// Move a slab to the owners of an LHS index.
    Transfer {
        /// Source array.
        src: ArrId,
        /// Slab temporary.
        tmp: ArrId,
        /// Fixed source dimension.
        dim: usize,
        /// Source global index.
        src_g: ExprCode,
        /// Destination global index.
        dst_g: ExprCode,
        /// LHS array.
        dst_arr: ArrId,
        /// LHS dimension.
        dst_dim: usize,
    },
    /// Fill ghost cells for a compile-time shift.
    OverlapShift {
        /// The array.
        arr: ArrId,
        /// Dimension.
        dim: usize,
        /// Shift constant.
        c: i64,
    },
    /// Runtime-amount shift into a same-mapping temporary.
    TempShift {
        /// Source array.
        src: ArrId,
        /// Temporary.
        tmp: ArrId,
        /// Dimension.
        dim: usize,
        /// Shift amount.
        amount: ExprCode,
    },
    /// Fused multicast + shift.
    MulticastShift {
        /// Source array.
        src: ArrId,
        /// Slab temporary.
        tmp: ArrId,
        /// Broadcast dimension.
        mdim: usize,
        /// Global slab index.
        src_g: ExprCode,
        /// Shift dimension.
        sdim: usize,
        /// Shift amount.
        amount: ExprCode,
    },
    /// Concatenate into a replicated temporary.
    Concat {
        /// Source array.
        src: ArrId,
        /// Replicated temporary.
        tmp: ArrId,
    },
    /// Broadcast one element into a replicated scalar.
    BroadcastElem {
        /// Source array.
        arr: ArrId,
        /// Global subscripts.
        subs: Vec<ExprCode>,
        /// Destination scalar slot.
        target: u16,
    },
    /// Full reduction into a replicated scalar.
    Reduce {
        /// Reduction operator.
        kind: VmReduce,
        /// Operand.
        arr: ArrId,
        /// Second operand (DOTPRODUCT).
        arr2: Option<ArrId>,
        /// Destination scalar slot.
        target: u16,
        /// Convert the (real) reduction result back to INTEGER.
        to_int: bool,
    },
}

/// A lowered runtime-library call.
#[derive(Debug, Clone)]
pub enum VmRt {
    /// `dst = CSHIFT(src, shift, dim)`
    CShift {
        /// Source.
        src: ArrId,
        /// Destination.
        dst: ArrId,
        /// Dimension.
        dim: usize,
        /// Shift amount.
        shift: ExprCode,
    },
    /// `dst = EOSHIFT(src, shift, boundary, dim)`
    EoShift {
        /// Source.
        src: ArrId,
        /// Destination.
        dst: ArrId,
        /// Dimension.
        dim: usize,
        /// Shift amount.
        shift: ExprCode,
        /// Boundary fill.
        boundary: ExprCode,
    },
    /// `dst = TRANSPOSE(src)`
    Transpose {
        /// Source.
        src: ArrId,
        /// Destination.
        dst: ArrId,
    },
    /// `c = MATMUL(a, b)`
    Matmul {
        /// Left operand.
        a: ArrId,
        /// Right operand.
        b: ArrId,
        /// Result.
        c: ArrId,
    },
    /// Change an array's distribution at run time.
    Redistribute {
        /// The array.
        arr: ArrId,
        /// New descriptor.
        new_dad: Dad,
    },
    /// Copy into a differently mapped destination.
    RemapCopy {
        /// Source.
        src: ArrId,
        /// Destination.
        dst: ArrId,
    },
}

/// One `PRINT *,` item.
#[derive(Debug, Clone)]
pub enum VmPrintItem {
    /// Verbatim text.
    Text(String),
    /// A scalar expression.
    Val(ExprCode),
}

/// One statement-level instruction of the flat program.
#[derive(Debug, Clone)]
pub enum PInst {
    /// Replicated scalar assignment; charges `cost` on every rank.
    ScalarAssign {
        /// Destination scalar slot.
        slot: u16,
        /// Value.
        rhs: ExprCode,
        /// Modelled cost per rank.
        cost: i64,
    },
    /// Element assignment executed by the owners.
    OwnerAssign {
        /// Destination array.
        arr: ArrId,
        /// Global subscripts.
        subs: Vec<ExprCode>,
        /// Value.
        rhs: ExprCode,
        /// Modelled cost per owner.
        cost: i64,
    },
    /// A standalone collective call (comm-table index).
    Comm(u16),
    /// A FORALL (forall-table index).
    Forall(u16),
    /// A runtime-library call (rt-table index).
    Runtime(u16),
    /// A `PRINT *,` (print-table index).
    Print(u16),
    /// Evaluate `cond`, charge `cost` on every rank, jump to `target`
    /// when false.
    BranchFalse {
        /// Condition.
        cond: ExprCode,
        /// Modelled cost per rank.
        cost: i64,
        /// Jump target when false.
        target: usize,
    },
    /// Unconditional jump.
    Jump {
        /// Target pc.
        target: usize,
    },
    /// Enter a sequential DO: evaluate bounds, bind the variable, push a
    /// loop frame; jump to `exit` when the range is empty.
    DoStart {
        /// Loop-variable slot.
        var: u16,
        /// Lower bound.
        lb: ExprCode,
        /// Upper bound.
        ub: ExprCode,
        /// Stride.
        st: ExprCode,
        /// pc just past the matching `DoNext`.
        exit: usize,
    },
    /// Bottom of a DO: charge loop control, step, jump to `back` while
    /// iterations remain (pops the loop frame on exit).
    DoNext {
        /// Loop-variable slot.
        var: u16,
        /// pc of the first body instruction.
        back: usize,
    },
}

/// A complete lowered SPMD program.
#[derive(Debug, Clone)]
pub struct VmProgram {
    /// Logical grid shape.
    pub grid_shape: Vec<i64>,
    /// Array table.
    pub arrays: Vec<VmArrayDecl>,
    /// Scalar slots (name, type), replicated.
    pub scalars: Vec<(String, ElemType)>,
    /// Number of loop-variable slots.
    pub nvars: usize,
    /// Constant pool.
    pub consts: Vec<Value>,
    /// Accessor table.
    pub accessors: Vec<AccPlan>,
    /// Flat instruction stream.
    pub code: Vec<PInst>,
    /// FORALL table.
    pub foralls: Vec<VmForall>,
    /// Communication table.
    pub comms: Vec<VmComm>,
    /// Runtime-call table.
    pub rtcalls: Vec<VmRt>,
    /// Print table.
    pub prints: Vec<Vec<VmPrintItem>>,
    /// Native-tier kernel table ([`VmForall::native`] indexes into it).
    /// Empty when lowering ran with `native_kernels` off.
    pub natives: Vec<crate::native::NativeKernel>,
}

impl VmProgram {
    /// Find an array id by name.
    pub fn array_id(&self, name: &str) -> Option<ArrId> {
        self.arrays.iter().position(|a| a.name == name)
    }

    /// Find a scalar slot by name.
    pub fn scalar_slot(&self, name: &str) -> Option<u16> {
        self.scalars
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| i as u16)
    }

    /// Total number of expression ops across the program (diagnostics).
    pub fn op_count(&self) -> usize {
        fn code_ops(c: &ExprCode) -> usize {
            c.ops.len()
        }
        let mut n = 0;
        for i in &self.code {
            n += match i {
                PInst::ScalarAssign { rhs, .. } => code_ops(rhs),
                PInst::OwnerAssign { subs, rhs, .. } => {
                    subs.iter().map(code_ops).sum::<usize>() + code_ops(rhs)
                }
                PInst::BranchFalse { cond, .. } => code_ops(cond),
                PInst::DoStart { lb, ub, st, .. } => code_ops(lb) + code_ops(ub) + code_ops(st),
                _ => 0,
            };
        }
        for f in &self.foralls {
            n += f.mask.as_ref().map_or(0, code_ops);
            for v in &f.vars {
                n += code_ops(&v.lb) + code_ops(&v.ub) + code_ops(&v.st);
            }
            for b in &f.body {
                n += code_ops(&b.rhs) + b.subs.iter().map(code_ops).sum::<usize>();
            }
            for g in &f.gathers {
                n += g.subs.iter().map(code_ops).sum::<usize>();
            }
        }
        n
    }

    /// One-line shape summary (diagnostics / logs).
    pub fn summary(&self) -> String {
        format!(
            "{} insts, {} foralls ({} native), {} comms, {} rtcalls, {} arrays, {} accessors, {} expr ops",
            self.code.len(),
            self.foralls.len(),
            self.natives.len(),
            self.comms.len(),
            self.rtcalls.len(),
            self.arrays.len(),
            self.accessors.len(),
            self.op_count()
        )
    }
}
