//! Value-level operator semantics shared by every executor.
//!
//! Both the tree-walking interpreter (`f90d-core::exec`) and the bytecode
//! engine in this crate evaluate scalar operations through these
//! functions, so the two backends cannot drift apart on promotion,
//! division, or intrinsic edge cases.

use f90d_frontend::ast::{BinOp, UnOp};
use f90d_machine::Value;

/// Operator evaluation error (runtime faults such as division by zero).
pub type OpResult = Result<Value, String>;

/// Apply a binary operator with Fortran promotion rules.
pub fn eval_bin(op: BinOp, a: Value, b: Value) -> OpResult {
    use BinOp::*;
    if op.is_logical() {
        let (x, y) = (a.as_bool(), b.as_bool());
        return Ok(Value::Bool(match op {
            And => x && y,
            Or => x || y,
            _ => unreachable!(),
        }));
    }
    if op.is_comparison() {
        // Numeric comparison with promotion.
        let (x, y) = (a.as_real(), b.as_real());
        return Ok(Value::Bool(match op {
            Eq => x == y,
            Ne => x != y,
            Lt => x < y,
            Le => x <= y,
            Gt => x > y,
            Ge => x >= y,
            _ => unreachable!(),
        }));
    }
    // Arithmetic with Fortran promotion.
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(Value::Int(match op {
            Add => x + y,
            Sub => x - y,
            Mul => x * y,
            Div => {
                if y == 0 {
                    return Err("integer division by zero".into());
                }
                x / y
            }
            Pow => {
                if y < 0 {
                    return Err("negative integer exponent".into());
                }
                x.pow(y.min(62) as u32)
            }
            _ => unreachable!(),
        })),
        (Value::Complex(xr, xi), y) => {
            let (yr, yi) = match y {
                Value::Complex(r, i) => (r, i),
                other => (other.as_real(), 0.0),
            };
            complex_bin(op, (xr, xi), (yr, yi))
        }
        (x, Value::Complex(yr, yi)) => complex_bin(op, (x.as_real(), 0.0), (yr, yi)),
        (x, y) => {
            let (x, y) = (x.as_real(), y.as_real());
            Ok(Value::Real(match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => x / y,
                Pow => x.powf(y),
                _ => unreachable!(),
            }))
        }
    }
}

fn complex_bin(op: BinOp, (ar, ai): (f64, f64), (br, bi): (f64, f64)) -> OpResult {
    use BinOp::*;
    let v = match op {
        Add => (ar + br, ai + bi),
        Sub => (ar - br, ai - bi),
        Mul => (ar * br - ai * bi, ar * bi + ai * br),
        Div => {
            let d = br * br + bi * bi;
            ((ar * br + ai * bi) / d, (ai * br - ar * bi) / d)
        }
        _ => return Err("unsupported complex operation".into()),
    };
    Ok(Value::Complex(v.0, v.1))
}

/// Apply a unary operator.
pub fn eval_un(op: UnOp, v: Value) -> OpResult {
    Ok(match op {
        UnOp::Neg => match v {
            Value::Int(x) => Value::Int(-x),
            Value::Real(x) => Value::Real(-x),
            Value::Complex(r, i) => Value::Complex(-r, -i),
            Value::Bool(_) => return Err("negating a LOGICAL".into()),
        },
        UnOp::Not => Value::Bool(!v.as_bool()),
    })
}

/// The elemental intrinsics, resolved at lowering time so the bytecode
/// engine never string-matches in its hot loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intrin {
    /// `ABS`
    Abs,
    /// `SQRT`
    Sqrt,
    /// `EXP`
    Exp,
    /// `LOG`
    Log,
    /// `SIN`
    Sin,
    /// `COS`
    Cos,
    /// `TAN`
    Tan,
    /// `MOD`
    Mod,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
    /// `REAL` / `FLOAT` / `DBLE`
    ToReal,
    /// `INT`
    ToInt,
    /// `NINT`
    Nint,
    /// `SIGN`
    Sign,
}

impl Intrin {
    /// Resolve an intrinsic by its Fortran name.
    pub fn from_name(name: &str) -> Option<Intrin> {
        Some(match name {
            "ABS" => Intrin::Abs,
            "SQRT" => Intrin::Sqrt,
            "EXP" => Intrin::Exp,
            "LOG" => Intrin::Log,
            "SIN" => Intrin::Sin,
            "COS" => Intrin::Cos,
            "TAN" => Intrin::Tan,
            "MOD" => Intrin::Mod,
            "MIN" => Intrin::Min,
            "MAX" => Intrin::Max,
            "REAL" | "FLOAT" | "DBLE" => Intrin::ToReal,
            "INT" => Intrin::ToInt,
            "NINT" => Intrin::Nint,
            "SIGN" => Intrin::Sign,
            _ => return None,
        })
    }
}

/// Apply a resolved elemental intrinsic.
pub fn eval_intrin(f: Intrin, args: &[Value]) -> OpResult {
    let f1 = |f: fn(f64) -> f64| -> OpResult { Ok(Value::Real(f(args[0].as_real()))) };
    match f {
        Intrin::Abs => match args[0] {
            Value::Int(x) => Ok(Value::Int(x.abs())),
            other => Ok(Value::Real(other.as_real().abs())),
        },
        Intrin::Sqrt => f1(f64::sqrt),
        Intrin::Exp => f1(f64::exp),
        Intrin::Log => f1(f64::ln),
        Intrin::Sin => f1(f64::sin),
        Intrin::Cos => f1(f64::cos),
        Intrin::Tan => f1(f64::tan),
        Intrin::Mod => match (args[0], args[1]) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a % b)),
            (a, b) => Ok(Value::Real(a.as_real() % b.as_real())),
        },
        Intrin::Min => Ok(fold_minmax(args, true)),
        Intrin::Max => Ok(fold_minmax(args, false)),
        Intrin::ToReal => Ok(Value::Real(args[0].as_real())),
        Intrin::ToInt => Ok(Value::Int(args[0].as_int())),
        Intrin::Nint => Ok(Value::Int(args[0].as_real().round() as i64)),
        Intrin::Sign => {
            let (a, b) = (args[0].as_real(), args[1].as_real());
            Ok(Value::Real(if b >= 0.0 { a.abs() } else { -a.abs() }))
        }
    }
}

/// Apply an elemental intrinsic by name (tree-walker entry point).
pub fn eval_elemental(name: &str, args: &[Value]) -> OpResult {
    match Intrin::from_name(name) {
        Some(f) => eval_intrin(f, args),
        None => Err(format!("unknown elemental intrinsic `{name}`")),
    }
}

fn fold_minmax(args: &[Value], min: bool) -> Value {
    let all_int = args.iter().all(|v| matches!(v, Value::Int(_)));
    if all_int {
        let it = args.iter().map(|v| v.as_int());
        Value::Int(if min {
            it.min().unwrap()
        } else {
            it.max().unwrap()
        })
    } else {
        let it = args.iter().map(|v| v.as_real());
        Value::Real(if min {
            it.fold(f64::INFINITY, f64::min)
        } else {
            it.fold(f64::NEG_INFINITY, f64::max)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_promotion_and_div() {
        assert_eq!(
            eval_bin(BinOp::Add, Value::Int(2), Value::Int(3)).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            eval_bin(BinOp::Div, Value::Int(7), Value::Int(2)).unwrap(),
            Value::Int(3)
        );
        assert!(eval_bin(BinOp::Div, Value::Int(1), Value::Int(0)).is_err());
        assert_eq!(
            eval_bin(BinOp::Mul, Value::Int(2), Value::Real(1.5)).unwrap(),
            Value::Real(3.0)
        );
    }

    #[test]
    fn intrinsics_resolve() {
        assert_eq!(Intrin::from_name("DBLE"), Some(Intrin::ToReal));
        assert_eq!(Intrin::from_name("NOPE"), None);
        assert_eq!(
            eval_intrin(Intrin::Max, &[Value::Int(2), Value::Int(5)]).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            eval_intrin(Intrin::Min, &[Value::Real(2.0), Value::Int(5)]).unwrap(),
            Value::Real(2.0)
        );
    }
}
