//! The bytecode execution engine.
//!
//! Runs a [`VmProgram`] against a simulated machine with the same
//! loosely synchronous structure and the same virtual-time cost model as
//! the tree-walking executor in `f90d-core` — but the per-element hot
//! path is a flat fetch/decode loop over pre-resolved register code:
//! array accesses go through per-rank *resolved accessors* (affine
//! local-index forms plus a row-major stride sum) instead of per-element
//! descriptor math and name lookups.
//!
//! FORALL local phases run under the machine's
//! [`ExecMode`](f90d_machine::ExecMode) — rank by
//! rank, or all ranks concurrently on scoped threads — because every
//! element read of a compiled FORALL body targets the executing rank's
//! own memory.

use std::sync::Arc;

use f90d_comm::driver::{self, CommDriver, ComputeSink, PhaseOutcome};
use f90d_comm::op::CommError;
use f90d_comm::overlap::Margins;
use f90d_comm::plan::GhostSpec;
use f90d_comm::sched_cache::RunSchedules;
use f90d_comm::schedule::{self, ElementReq};
use f90d_comm::structured;
use f90d_distrib::{set_bound, ArrayDimMap, Dad, DistKind};
use f90d_machine::{ArrayData, LocalArray, Machine, NodeMemory, Value};
use f90d_runtime::intrinsics as rt;
use f90d_runtime::DistArray;

use crate::bytecode::*;
use crate::native::{ElemArgs, ElemFn, Lin, NativeKernel, ReadSite};
use crate::ops;

/// Execution error (runtime faults in the compiled program).
#[derive(Debug, Clone)]
pub struct VmError(pub String);

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for VmError {}

impl From<CommError> for VmError {
    fn from(e: CommError) -> Self {
        VmError(e.0)
    }
}

type VmResult<T> = Result<T, VmError>;

fn verr<T>(msg: impl Into<String>) -> VmResult<T> {
    Err(VmError(msg.into()))
}

/// Result of one execution (mirror of the tree-walker's report).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Modelled elapsed time (seconds on the simulated machine).
    pub elapsed: f64,
    /// Messages sent.
    pub messages: u64,
    /// Payload bytes sent.
    pub bytes: u64,
    /// Collected PRINT output.
    pub printed: Vec<String>,
}

/// One dimension of a resolved accessor: how a global subscript becomes
/// a padded local index on a specific rank.
#[derive(Debug, Clone)]
enum RDim {
    /// `l_pad = a*g + b` (undistributed and BLOCK dimensions — ghost
    /// offset folded into `b`).
    Affine {
        /// Stride.
        a: i64,
        /// Offset (includes the ghost_lo shift).
        b: i64,
    },
    /// CYCLIC / BLOCK-CYCLIC: ownership check plus μ⁻¹ through the
    /// dimension map.
    General {
        /// The composite dimension map.
        dm: ArrayDimMap,
        /// This rank's grid coordinate on the dimension's axis.
        coord: i64,
        /// Ghost cells below.
        ghost_lo: i64,
    },
}

/// A [`AccPlan`] resolved against one rank and the live descriptors:
/// subscripts → flat padded offset with no descriptor math in the loop.
#[derive(Debug, Clone)]
struct ResolvedAcc {
    /// The array actually read/written.
    target: ArrId,
    /// Source dimension dropped before indexing (slab reads).
    drop_dim: Option<usize>,
    /// Per-dimension index transforms.
    dims: Vec<RDim>,
    /// Global extent per dimension (bounds check).
    extents: Vec<i64>,
    /// Padded extent per dimension (ghost-range check).
    padded: Vec<i64>,
    /// Row-major strides over the padded extents.
    strides: Vec<i64>,
}

impl ResolvedAcc {
    /// Flat padded offset of global subscripts `subs` (which still
    /// include any dropped slab dimension).
    #[inline]
    fn offset(&self, subs: &[i64], name: &str, rank: i64) -> Result<usize, String> {
        let mut off: i64 = 0;
        let mut k = 0usize;
        for (d, &g) in subs.iter().enumerate() {
            if Some(d) == self.drop_dim {
                continue;
            }
            if g < 0 || g >= self.extents[k] {
                return Err(format!(
                    "subscript {} out of bounds on dim {d} of {name} (extent {})",
                    g + 1,
                    self.extents[k]
                ));
            }
            let l_pad = match &self.dims[k] {
                RDim::Affine { a, b } => a * g + b,
                RDim::General {
                    dm,
                    coord,
                    ghost_lo,
                } => {
                    let t = dm.align.apply(g);
                    if dm.dist.proc_of(t) != *coord {
                        return Err(format!(
                            "rank {rank} reads unowned element {subs:?} of {name}"
                        ));
                    }
                    dm.dist.local_of(t) + ghost_lo
                }
            };
            if l_pad < 0 || l_pad >= self.padded[k] {
                return Err(format!(
                    "rank {rank} reads outside the padded segment of {name} at {subs:?}"
                ));
            }
            off += l_pad * self.strides[k];
            k += 1;
        }
        Ok(off as usize)
    }
}

/// Engine state: live descriptors, replicated scalars, loop variables.
pub struct Engine {
    prog: Arc<VmProgram>,
    /// Runtime descriptors (REDISTRIBUTE may change them).
    dads: Vec<Dad>,
    scalars: Vec<Value>,
    vars: Vec<i64>,
    printed: Vec<String>,
    /// Schedule reuse (§7(3), per-run) and the cross-run schedule cache:
    /// toggle `sched.reuse` / `sched.use_global` before running.
    pub sched: RunSchedules,
    /// `OptFlags::comm_compute_overlap`: execute eligible stencil FORALLs
    /// split-phase (ghost-exchange post → interior compute → complete →
    /// boundary compute). Off by default — virtual time changes (that is
    /// the point), array results and PRINT do not.
    pub overlap: bool,
    /// `CompileOptions::exec_mode`: when `Some`, [`Engine::run`]
    /// switches the machine to this local-phase mode (leasing threaded
    /// workers from the process-wide `f90d_machine::budget`) before
    /// executing. `None` respects the machine as given. Virtual metrics
    /// are identical either way.
    pub exec: Option<f90d_machine::ExecMode>,
    /// `OptFlags::comm_plan`: honour [`VmPhase`] annotations, batching
    /// each phase's ghost exchanges into one coalesced exchange
    /// sequenced by the shared [`CommDriver`]. Off (the default) runs
    /// the per-statement schedule even on annotated programs.
    pub plan: bool,
    /// The shared FORALL communication driver (`f90d_comm::driver`):
    /// sequences phase batching, split-phase overlap, and quiescence,
    /// and carries the `comm_plan {groups, fallbacks}` counters the run
    /// trace surfaces.
    pub comm: CommDriver,
    /// FORALL executions dispatched to a native-tier kernel.
    native_matched: u64,
    /// FORALL executions that ran the bytecode element loop instead (no
    /// kernel selected, a dispatch precondition failed, or the overlap
    /// split-phase path ran).
    native_fallback: u64,
}

impl Engine {
    /// Prepare an engine and allocate every array on the machine.
    pub fn new(prog: Arc<VmProgram>, m: &mut Machine) -> Self {
        assert_eq!(
            m.grid.shape, prog.grid_shape,
            "machine grid must match the compiled grid"
        );
        for decl in &prog.arrays {
            let (shape, ghost) = decl_alloc(decl);
            for mem in &mut m.mems {
                mem.insert_array(
                    decl.name.clone(),
                    LocalArray::with_ghost_lazy(decl.ty, &shape, &ghost, &ghost),
                );
            }
        }
        Self::fresh(prog)
    }

    /// Like [`Engine::new`] but keeps existing array segments (running a
    /// program fragment over state produced by an earlier fragment).
    pub fn new_preserving(prog: Arc<VmProgram>, m: &mut Machine) -> Self {
        for decl in &prog.arrays {
            if !m.mems[0].has_array(&decl.name) {
                let (shape, ghost) = decl_alloc(decl);
                for mem in &mut m.mems {
                    mem.insert_array(
                        decl.name.clone(),
                        LocalArray::with_ghost_lazy(decl.ty, &shape, &ghost, &ghost),
                    );
                }
            }
        }
        Self::fresh(prog)
    }

    fn fresh(prog: Arc<VmProgram>) -> Self {
        let scalars = prog.scalars.iter().map(|(_, ty)| ty.zero()).collect();
        let dads = prog.arrays.iter().map(|a| a.dad.clone()).collect();
        let nvars = prog.nvars;
        Engine {
            prog,
            dads,
            scalars,
            vars: vec![0; nvars],
            printed: Vec::new(),
            sched: RunSchedules::new(),
            overlap: false,
            exec: None,
            plan: false,
            comm: CommDriver::new(),
            native_matched: 0,
            native_fallback: 0,
        }
    }

    /// `(matched, fallback)` FORALL execution counts for this engine:
    /// how many FORALL executions dispatched to a native-tier kernel vs
    /// ran the bytecode element loop. Informational — the tiers are
    /// bit-identical on every virtual metric.
    pub fn native_counts(&self) -> (u64, u64) {
        (self.native_matched, self.native_fallback)
    }

    /// Read a scalar by name (post-run inspection).
    pub fn scalar(&self, name: &str) -> Option<Value> {
        let slot = self.prog.scalar_slot(name)?;
        Some(self.scalars[slot as usize])
    }

    /// Current runtime descriptor of array `id`.
    pub fn dad(&self, id: ArrId) -> &Dad {
        &self.dads[id]
    }

    /// Seed a named array from a host row-major buffer before running.
    pub fn seed_array(&self, m: &mut Machine, name: &str, data: &ArrayData) -> bool {
        let Some(id) = self.prog.array_id(name) else {
            return false;
        };
        self.dist_array(id).scatter_host(m, data);
        true
    }

    /// Gather a named array to a host buffer (inspection).
    pub fn gather_array(&self, m: &mut Machine, name: &str) -> Option<ArrayData> {
        let id = self.prog.array_id(name)?;
        Some(self.dist_array(id).gather_host(m))
    }

    fn dist_array(&self, id: ArrId) -> DistArray {
        DistArray {
            name: self.prog.arrays[id].name.clone(),
            dad: self.dads[id].clone(),
            ty: self.prog.arrays[id].ty,
        }
    }

    /// Run the whole program: a flat fetch/decode loop over the
    /// statement stream.
    pub fn run(&mut self, m: &mut Machine) -> VmResult<RunReport> {
        if let Some(mode) = self.exec {
            m.set_exec(mode);
        }
        let prog = self.prog.clone();
        let mut regs: Vec<Value> = Vec::new();
        let mut do_stack: Vec<(i64, i64)> = Vec::new();
        let mut pc = 0usize;
        while pc < prog.code.len() {
            match &prog.code[pc] {
                PInst::ScalarAssign { slot, rhs, cost } => {
                    let v = self.eval_scalar(rhs, m, &mut regs)?;
                    self.scalars[*slot as usize] = v;
                    for r in 0..m.nranks() {
                        m.transport.charge_elem_ops(r, *cost);
                    }
                    pc += 1;
                }
                PInst::OwnerAssign {
                    arr,
                    subs,
                    rhs,
                    cost,
                } => {
                    let g: Vec<i64> = subs
                        .iter()
                        .map(|e| self.eval_scalar(e, m, &mut regs).map(|v| v.as_int()))
                        .collect::<VmResult<_>>()?;
                    let v = self.eval_scalar(rhs, m, &mut regs)?;
                    let dad = &self.dads[*arr];
                    let l = dad.local_index(&g);
                    let name = &prog.arrays[*arr].name;
                    for rank in dad.owner_ranks(&g) {
                        m.mems[rank as usize].array_mut(name).set(&l, v);
                        m.transport.charge_elem_ops(rank, *cost);
                    }
                    pc += 1;
                }
                PInst::Comm(i) => {
                    self.exec_comm(&prog.comms[*i as usize], m, &mut regs)?;
                    pc += 1;
                }
                PInst::Forall(i) => {
                    if self.plan {
                        if let Some(VmPhase::Lead { len }) = prog.foralls[*i as usize].plan {
                            // Collect the phase: `len` consecutive FORALL
                            // instructions starting here (the planner only
                            // groups adjacent FORALLs, which lower to
                            // adjacent instructions).
                            let mut ids = Vec::with_capacity(len as usize);
                            let mut j = pc;
                            while ids.len() < len as usize && j < prog.code.len() {
                                let PInst::Forall(k) = &prog.code[j] else {
                                    break;
                                };
                                ids.push(*k);
                                j += 1;
                            }
                            if ids.len() == len as usize {
                                self.exec_phase(&ids, m)?;
                                pc = j;
                                continue;
                            }
                            // A truncated phase means the annotation and
                            // the instruction stream disagree; run the
                            // always-correct per-statement schedule.
                        }
                    }
                    self.exec_forall(&prog.foralls[*i as usize], m)?;
                    pc += 1;
                }
                PInst::Runtime(i) => {
                    self.exec_runtime(&prog.rtcalls[*i as usize], m, &mut regs)?;
                    pc += 1;
                }
                PInst::Print(i) => {
                    let mut line = String::new();
                    for (k, item) in prog.prints[*i as usize].iter().enumerate() {
                        if k > 0 {
                            line.push(' ');
                        }
                        match item {
                            VmPrintItem::Text(t) => line.push_str(t),
                            VmPrintItem::Val(e) => {
                                let v = self.eval_scalar(e, m, &mut regs)?;
                                line.push_str(&v.to_string());
                            }
                        }
                    }
                    self.printed.push(line);
                    pc += 1;
                }
                PInst::BranchFalse { cond, cost, target } => {
                    let c = self.eval_scalar(cond, m, &mut regs)?.as_bool();
                    for r in 0..m.nranks() {
                        m.transport.charge_elem_ops(r, *cost);
                    }
                    pc = if c { pc + 1 } else { *target };
                }
                PInst::Jump { target } => pc = *target,
                PInst::DoStart {
                    var,
                    lb,
                    ub,
                    st,
                    exit,
                } => {
                    let lb = self.eval_scalar(lb, m, &mut regs)?.as_int();
                    let ub = self.eval_scalar(ub, m, &mut regs)?.as_int();
                    let st = self.eval_scalar(st, m, &mut regs)?.as_int();
                    if st == 0 {
                        return verr("DO stride of zero");
                    }
                    if (st > 0 && lb <= ub) || (st < 0 && lb >= ub) {
                        self.vars[*var as usize] = lb;
                        do_stack.push((ub, st));
                        pc += 1;
                    } else {
                        pc = *exit;
                    }
                }
                PInst::DoNext { var, back } => {
                    for r in 0..m.nranks() {
                        m.transport.charge_elem_ops(r, 1); // loop control
                    }
                    let (ub, st) = *do_stack.last().expect("DoNext outside DO");
                    let v = self.vars[*var as usize] + st;
                    if (st > 0 && v <= ub) || (st < 0 && v >= ub) {
                        self.vars[*var as usize] = v;
                        pc = *back;
                    } else {
                        do_stack.pop();
                        pc += 1;
                    }
                }
            }
        }
        driver::quiesce(m)?;
        Ok(RunReport {
            elapsed: m.elapsed(),
            messages: m.transport.messages,
            bytes: m.transport.bytes,
            printed: std::mem::take(&mut self.printed),
        })
    }

    // ---- scalar (replicated-context) evaluation ------------------------

    fn eval_scalar(&self, code: &ExprCode, m: &Machine, regs: &mut Vec<Value>) -> VmResult<Value> {
        let prog = &*self.prog;
        regs.clear();
        regs.resize(code.nregs as usize, Value::Int(0));
        for op in &code.ops {
            match *op {
                Op::Const { dst, k } => regs[dst as usize] = prog.consts[k as usize],
                Op::LoadVar { dst, slot } => {
                    regs[dst as usize] = Value::Int(self.vars[slot as usize])
                }
                Op::LoadScalar { dst, slot } => regs[dst as usize] = self.scalars[slot as usize],
                Op::Affine { dst, slot, a, b } => {
                    regs[dst as usize] = Value::Int(a * self.vars[slot as usize] + b)
                }
                Op::Bin { op, dst, a, b } => {
                    regs[dst as usize] =
                        ops::eval_bin(op, regs[a as usize], regs[b as usize]).map_err(VmError)?
                }
                Op::Un { op, dst, a } => {
                    regs[dst as usize] = ops::eval_un(op, regs[a as usize]).map_err(VmError)?
                }
                Op::Intrin { f, dst, base, n } => {
                    let args = &regs[base as usize..(base + n) as usize];
                    regs[dst as usize] = ops::eval_intrin(f, args).map_err(VmError)?
                }
                Op::Read { dst, acc, base, n } => {
                    let plan = &prog.accessors[acc as usize];
                    let AccPlan::Owned { arr } = plan else {
                        return verr("non-replicated read in scalar context");
                    };
                    let g: Vec<i64> = regs[base as usize..(base + n) as usize]
                        .iter()
                        .map(|v| v.as_int())
                        .collect();
                    let dad = &self.dads[*arr];
                    let rank = dad.owner_ranks(&g)[0];
                    let l = dad.local_index(&g);
                    regs[dst as usize] =
                        m.mems[rank as usize].array(&prog.arrays[*arr].name).get(&l);
                }
                Op::ReadSeq { .. } => return verr("non-replicated read in scalar context"),
            }
        }
        Ok(regs[code.out as usize])
    }

    // ---- communication and runtime calls -------------------------------

    fn exec_comm(&mut self, c: &VmComm, m: &mut Machine, regs: &mut Vec<Value>) -> VmResult<()> {
        let prog = self.prog.clone();
        match c {
            VmComm::Multicast {
                src,
                tmp,
                dim,
                src_g,
            } => {
                let g = self.eval_scalar(src_g, m, regs)?.as_int();
                let dad = self.dads[*src].clone();
                structured::multicast(
                    m,
                    &prog.arrays[*src].name,
                    &dad,
                    &prog.arrays[*tmp].name,
                    *dim,
                    g,
                )?;
                Ok(())
            }
            VmComm::Transfer {
                src,
                tmp,
                dim,
                src_g,
                dst_g,
                dst_arr,
                dst_dim,
            } => {
                let sg = self.eval_scalar(src_g, m, regs)?.as_int();
                let dg = self.eval_scalar(dst_g, m, regs)?.as_int();
                let dst_coord = self.dads[*dst_arr].dims[*dst_dim].proc_of(dg);
                let dad = self.dads[*src].clone();
                structured::transfer(
                    m,
                    &prog.arrays[*src].name,
                    &dad,
                    &prog.arrays[*tmp].name,
                    *dim,
                    sg,
                    dst_coord,
                )?;
                Ok(())
            }
            VmComm::OverlapShift { arr, dim, c } => {
                let dad = self.dads[*arr].clone();
                driver::ghost_exchange(m, &prog.arrays[*arr].name, &dad, *dim, *c)?;
                Ok(())
            }
            VmComm::TempShift {
                src,
                tmp,
                dim,
                amount,
            } => {
                let s = self.eval_scalar(amount, m, regs)?.as_int();
                let dad = self.dads[*src].clone();
                structured::temporary_shift(
                    m,
                    &prog.arrays[*src].name,
                    &dad,
                    &prog.arrays[*tmp].name,
                    *dim,
                    s,
                    false,
                )?;
                Ok(())
            }
            VmComm::MulticastShift {
                src,
                tmp,
                mdim,
                src_g,
                sdim,
                amount,
            } => {
                let g = self.eval_scalar(src_g, m, regs)?.as_int();
                let s = self.eval_scalar(amount, m, regs)?.as_int();
                let dad = self.dads[*src].clone();
                structured::multicast_shift(
                    m,
                    &prog.arrays[*src].name,
                    &dad,
                    &prog.arrays[*tmp].name,
                    *mdim,
                    g,
                    *sdim,
                    s,
                )?;
                Ok(())
            }
            VmComm::Concat { src, tmp } => {
                let dad = self.dads[*src].clone();
                structured::concatenation(
                    m,
                    &prog.arrays[*src].name,
                    &dad,
                    &prog.arrays[*tmp].name,
                )?;
                Ok(())
            }
            VmComm::BroadcastElem { arr, subs, target } => {
                let g: Vec<i64> = subs
                    .iter()
                    .map(|e| self.eval_scalar(e, m, regs).map(|v| v.as_int()))
                    .collect::<VmResult<_>>()?;
                let dad = &self.dads[*arr];
                let owner = dad.owner_ranks(&g)[0];
                let l = dad.local_index(&g);
                let v = m.mems[owner as usize]
                    .array(&prog.arrays[*arr].name)
                    .get(&l);
                // Tree broadcast of one element to all ranks.
                let members: Vec<i64> = (0..m.nranks()).collect();
                let root_pos = members.iter().position(|&r| r == owner).unwrap();
                let mut payload = ArrayData::zeros(v.elem_type(), 1);
                payload.set(0, v);
                m.stats.record("broadcast_elem");
                f90d_comm::helpers::tree_broadcast(m, &members, root_pos, payload, |_, _, _| {})?;
                self.scalars[*target as usize] = v;
                Ok(())
            }
            VmComm::Reduce {
                kind,
                arr,
                arr2,
                target,
                to_int,
            } => {
                let a = self.dist_array(*arr);
                let v = match kind {
                    VmReduce::Sum => Value::Real(rt::sum(m, &a)),
                    VmReduce::Product => Value::Real(rt::product(m, &a)),
                    VmReduce::MaxVal => Value::Real(rt::maxval(m, &a)),
                    VmReduce::MinVal => Value::Real(rt::minval(m, &a)),
                    VmReduce::Count => Value::Int(rt::count(m, &a)),
                    VmReduce::All => Value::Bool(rt::all(m, &a)),
                    VmReduce::Any => Value::Bool(rt::any(m, &a)),
                    VmReduce::DotProduct => {
                        let b = self.dist_array(arr2.expect("dotproduct second operand"));
                        Value::Real(rt::dotproduct(m, &a, &b))
                    }
                };
                let v = if *to_int {
                    Value::Int(v.as_real() as i64)
                } else {
                    v
                };
                self.scalars[*target as usize] = v;
                Ok(())
            }
        }
    }

    fn exec_runtime(
        &mut self,
        call: &VmRt,
        m: &mut Machine,
        regs: &mut Vec<Value>,
    ) -> VmResult<()> {
        match call {
            VmRt::CShift {
                src,
                dst,
                dim,
                shift,
            } => {
                let s = self.eval_scalar(shift, m, regs)?.as_int();
                let (a, b) = (self.dist_array(*src), self.dist_array(*dst));
                rt::cshift(m, &a, &b, *dim, s);
                Ok(())
            }
            VmRt::EoShift {
                src,
                dst,
                dim,
                shift,
                boundary,
            } => {
                let s = self.eval_scalar(shift, m, regs)?.as_int();
                let bv = self.eval_scalar(boundary, m, regs)?;
                let (a, b) = (self.dist_array(*src), self.dist_array(*dst));
                rt::eoshift(m, &a, &b, *dim, s, bv);
                Ok(())
            }
            VmRt::Transpose { src, dst } => {
                let (a, b) = (self.dist_array(*src), self.dist_array(*dst));
                rt::transpose(m, &a, &b);
                Ok(())
            }
            VmRt::Matmul { a, b, c } => {
                let (aa, bb, cc) = (
                    self.dist_array(*a),
                    self.dist_array(*b),
                    self.dist_array(*c),
                );
                rt::matmul(m, &aa, &bb, &cc);
                Ok(())
            }
            VmRt::Redistribute { arr, new_dad } => {
                let old = self.dist_array(*arr);
                let staging = format!("__REDIST_{}", old.name);
                let mut nd = new_dad.clone();
                nd.name = old.name.clone();
                let target = DistArray::from_dad(m, staging.clone(), old.ty, nd.clone(), 0);
                f90d_comm::redist::redistribute(m, &old.name, &old.dad, &staging, &target.dad)?;
                // Move staged segments under the original name.
                for mem in &mut m.mems {
                    let seg = mem.remove_array(&staging).expect("staging allocated");
                    mem.insert_array(old.name.clone(), seg);
                }
                self.dads[*arr] = nd;
                Ok(())
            }
            VmRt::RemapCopy { src, dst } => {
                let s = self.dist_array(*src);
                let d = self.dist_array(*dst);
                f90d_comm::redist::redistribute(m, &s.name, &s.dad, &d.name, &d.dad)?;
                Ok(())
            }
        }
    }

    // ---- FORALL --------------------------------------------------------

    fn exec_forall(&mut self, f: &VmForall, m: &mut Machine) -> VmResult<()> {
        self.exec_forall_inner(f, m, false)
    }

    /// Execute one planner-formed comm phase (`ids` are forall-table
    /// indices): hand every member's ghost exchanges (against the live
    /// descriptors) to the shared driver, which deduplicates and batches
    /// them into one coalesced exchange, then run the members with their
    /// preludes skipped. A runtime planning refusal falls back to the
    /// bit-identical per-statement path — the annotations are advisory.
    fn exec_phase(&mut self, ids: &[u16], m: &mut Machine) -> VmResult<()> {
        let prog = self.prog.clone();
        let mut specs: Vec<GhostSpec> = Vec::new();
        for &id in ids {
            for &ci in &prog.foralls[id as usize].pre {
                let VmComm::OverlapShift { arr, dim, c } = &prog.comms[ci as usize] else {
                    return verr("comm phase member has a non-overlap-shift prelude");
                };
                specs.push(GhostSpec {
                    arr: prog.arrays[*arr].name.clone(),
                    dad: self.dads[*arr].clone(),
                    dim: *dim,
                    c: *c,
                });
            }
        }
        match self.comm.phase_exchange(m, specs)? {
            PhaseOutcome::Refused => {
                for &id in ids {
                    self.exec_forall(&prog.foralls[id as usize], m)?;
                }
            }
            PhaseOutcome::Exchanged => {
                for &id in ids {
                    self.exec_forall_inner(&prog.foralls[id as usize], m, true)?;
                }
            }
        }
        Ok(())
    }

    /// FORALL body with an optional prelude skip: a phase lead already
    /// posted (and completed) this statement's ghost exchanges, so phase
    /// members run with `skip_pre` — which also bypasses the split-phase
    /// overlap path, whose post/finish would re-send the exchanges. The
    /// native tier still binds as usual.
    fn exec_forall_inner(&mut self, f: &VmForall, m: &mut Machine, skip_pre: bool) -> VmResult<()> {
        let prog = self.prog.clone();
        if self.overlap && !skip_pre {
            if let Some(margins) = self.overlap_plan(f, &prog) {
                // Split-phase boundary/interior execution always runs
                // the bytecode element loop.
                self.native_fallback += 1;
                return self.exec_forall_overlap(f, m, &margins);
            }
        }
        let mut regs: Vec<Value> = Vec::new();
        // Communication prelude.
        if !skip_pre {
            for &c in &f.pre {
                self.exec_comm(&prog.comms[c as usize], m, &mut regs)?;
            }
        }
        let nranks = m.nranks() as usize;
        // Owner filter: which ranks participate.
        let mut active = vec![true; nranks];
        for (arr, dim, idx) in &f.owner_filter {
            let g = self.eval_scalar(idx, m, &mut regs)?.as_int();
            let dad = &self.dads[*arr];
            let dm = &dad.dims[*dim];
            let axis = dm.grid_axis.expect("owner filter on distributed dim");
            let owner = dm.proc_of(g);
            for (rank, slot) in active.iter_mut().enumerate() {
                if m.grid.coords_of(rank as i64)[axis] != owner {
                    *slot = false;
                }
            }
        }
        // Bounds are replicated values: evaluate once.
        let mut bounds = Vec::with_capacity(f.vars.len());
        for spec in &f.vars {
            let lb = self.eval_scalar(&spec.lb, m, &mut regs)?.as_int();
            let ub = self.eval_scalar(&spec.ub, m, &mut regs)?.as_int();
            let st = self.eval_scalar(&spec.st, m, &mut regs)?.as_int();
            if st <= 0 {
                return verr("FORALL stride must be positive");
            }
            bounds.push((lb, ub, st));
        }
        // Per-rank iteration lists (`set_BOUND`).
        let mut iter_lists: Vec<Vec<Vec<i64>>> = Vec::with_capacity(nranks);
        for rank in 0..nranks {
            if !active[rank] {
                iter_lists.push(vec![vec![]; f.vars.len()]);
                continue;
            }
            let mut lists = Vec::with_capacity(f.vars.len());
            for (spec, &b) in f.vars.iter().zip(&bounds) {
                lists.push(self.iterations_for(spec, b, m, rank as i64));
            }
            iter_lists.push(lists);
        }
        // Resolve the accessors this FORALL references, per rank.
        let resolved: Vec<Vec<Option<ResolvedAcc>>> = (0..nranks)
            .map(|rank| {
                let coords = m.grid.coords_of(rank as i64);
                let mut table: Vec<Option<ResolvedAcc>> = vec![None; prog.accessors.len()];
                for &a in &f.accs_used {
                    table[a as usize] =
                        Some(self.resolve_acc(&prog.accessors[a as usize], &coords));
                }
                table
            })
            .collect();
        // Unstructured reads: inspector + vectorized executor.
        for g in &f.gathers {
            self.exec_gather(f, g, m, &iter_lists, &resolved)?;
        }
        // Native tier: when lowering selected a kernel and every rank's
        // dispatch preconditions hold, run the monomorphized closures
        // instead of the bytecode element loop.
        if let Some(kid) = f.native {
            if let Some(bound) = self.bind_native(&prog.natives[kid], &iter_lists, &resolved) {
                self.native_matched += 1;
                return run_native_forall(&prog, f, m, &bound, &iter_lists);
            }
        }
        self.native_fallback += 1;
        // Main loop: one local phase under the machine's ExecMode.
        let scatter = f.body.iter().find_map(|b| b.scatter);
        let max_regs = forall_max_regs(f);
        let results: Vec<Result<ScatterOut, String>> = m.local_phase_map(|rank, mem| {
            match run_forall_rank(
                &prog,
                f,
                rank,
                mem,
                &iter_lists[rank as usize],
                &resolved[rank as usize],
                &self.vars,
                &self.scalars,
                max_regs,
                true,
            ) {
                Ok((scat, _, ops)) => (Ok(scat), ops),
                Err(e) => (Err(e), 0),
            }
        });
        let mut scatter_out: Vec<ScatterOut> = Vec::with_capacity(nranks);
        for r in results {
            scatter_out.push(r.map_err(VmError)?);
        }
        // Post-loop scatter.
        if let Some(invertible) = scatter {
            self.exec_scatter(f, m, invertible, &scatter_out)?;
        }
        Ok(())
    }

    /// Mirror of the tree walker's overlap eligibility test: the prelude
    /// is pure `overlap_shift`, no gathers, no owner filter, owned writes
    /// only, and every shifted dimension maps onto a stride-1 `OwnerDim`
    /// loop variable per the shared [`driver::stencil_margins`] geometry.
    /// Returns the per-variable ghost margins, or `None` to fall back to
    /// blocking execution. The margin arithmetic, the eligibility core,
    /// and the interior/boundary split all live in `f90d_comm`, shared
    /// with the tree walker, so the backends cannot drift on which
    /// FORALLs overlap or which tuples count as interior.
    fn overlap_plan(&self, f: &VmForall, prog: &VmProgram) -> Option<Margins> {
        if f.pre.is_empty() || !f.gathers.is_empty() || !f.owner_filter.is_empty() {
            return None;
        }
        if !f.body.iter().all(|b| b.scatter.is_none()) {
            return None;
        }
        let loop_dims: Vec<Option<&ArrayDimMap>> = f
            .vars
            .iter()
            .map(|spec| match &spec.part {
                VmPartition::OwnerDim {
                    arr: la,
                    dim: ld,
                    a: 1,
                    ..
                } => Some(&self.dads[*la].dims[*ld]),
                _ => None,
            })
            .collect();
        let mut shifts = Vec::with_capacity(f.pre.len());
        for &ci in &f.pre {
            let VmComm::OverlapShift {
                arr,
                dim,
                c: amount,
            } = &prog.comms[ci as usize]
            else {
                return None;
            };
            shifts.push((&self.dads[*arr].dims[*dim], *amount));
        }
        driver::stencil_margins(&loop_dims, &shifts)
    }

    /// Split-phase stencil execution (paper §5.1/§7 latency hiding),
    /// sequenced by the shared [`driver::run_overlap`]: the driver posts
    /// the ghost exchanges, runs this backend's interior element loop
    /// under the machine's [`f90d_machine::ExecMode`] while the strips
    /// are on the wire, completes the exchanges, runs the boundary
    /// slabs, and commits — array results bit-identical to blocking
    /// execution, only virtual clocks differ.
    fn exec_forall_overlap(
        &mut self,
        f: &VmForall,
        m: &mut Machine,
        margins: &Margins,
    ) -> VmResult<()> {
        let prog = self.prog.clone();
        let mut regs: Vec<Value> = Vec::new();
        let mut shifts = Vec::with_capacity(f.pre.len());
        for &ci in &f.pre {
            let VmComm::OverlapShift { arr, dim, c } = &prog.comms[ci as usize] else {
                unreachable!("overlap_plan admitted a non-shift prelude")
            };
            shifts.push(GhostSpec {
                arr: prog.arrays[*arr].name.clone(),
                dad: self.dads[*arr].clone(),
                dim: *dim,
                c: *c,
            });
        }
        // Bounds and per-rank iteration lists (no owner filter by
        // eligibility); the driver splits them into interior/boundary
        // via the shared `f90d_comm::overlap` geometry.
        let nranks = m.nranks() as usize;
        let mut bounds = Vec::with_capacity(f.vars.len());
        for spec in &f.vars {
            let lb = self.eval_scalar(&spec.lb, m, &mut regs)?.as_int();
            let ub = self.eval_scalar(&spec.ub, m, &mut regs)?.as_int();
            let st = self.eval_scalar(&spec.st, m, &mut regs)?.as_int();
            if st <= 0 {
                return verr("FORALL stride must be positive");
            }
            bounds.push((lb, ub, st));
        }
        let mut iter_lists: Vec<Vec<Vec<i64>>> = Vec::with_capacity(nranks);
        for rank in 0..nranks {
            iter_lists.push(
                f.vars
                    .iter()
                    .zip(&bounds)
                    .map(|(spec, &b)| self.iterations_for(spec, b, m, rank as i64))
                    .collect(),
            );
        }
        let resolved: Vec<Vec<Option<ResolvedAcc>>> = (0..nranks)
            .map(|rank| {
                let coords = m.grid.coords_of(rank as i64);
                let mut table: Vec<Option<ResolvedAcc>> = vec![None; prog.accessors.len()];
                for &a in &f.accs_used {
                    table[a as usize] =
                        Some(self.resolve_acc(&prog.accessors[a as usize], &coords));
                }
                table
            })
            .collect();
        let mut sink = VmSink {
            prog: &prog,
            f,
            resolved: &resolved,
            vars: &self.vars,
            scalars: &self.scalars,
            max_regs: forall_max_regs(f),
            staged: vec![StagedWrites::new(); nranks],
        };
        driver::run_overlap(m, &shifts, margins, &iter_lists, &mut sink)
    }

    /// The iterations of `spec` assigned to `rank` (`set_BOUND`),
    /// returning global iteration values.
    fn iterations_for(
        &self,
        spec: &VmLoopSpec,
        (lb, ub, st): (i64, i64, i64),
        m: &Machine,
        rank: i64,
    ) -> Vec<i64> {
        if lb > ub {
            return vec![];
        }
        match &spec.part {
            VmPartition::Replicate => (0..)
                .map(|k| lb + k * st)
                .take_while(|&v| v <= ub)
                .collect(),
            VmPartition::BlockIter => {
                let count = (ub - lb) / st + 1;
                let p = m.nranks();
                let chunk = (count + p - 1) / p;
                let first = rank * chunk;
                let last = ((rank + 1) * chunk).min(count);
                (first..last).map(|k| lb + k * st).collect()
            }
            VmPartition::OwnerDim { arr, dim, a, b } => {
                let dad = &self.dads[*arr];
                let dm = &dad.dims[*dim];
                if !dm.is_distributed() {
                    return (0..)
                        .map(|k| lb + k * st)
                        .take_while(|&v| v <= ub)
                        .collect();
                }
                let coord = m.grid.coords_of(rank)[dm.grid_axis.unwrap()];
                // Template progression t(v) = S*v + O.
                let s_align = dm.align.stride;
                let o_align = dm.align.offset;
                let s = s_align * a;
                let o = s_align * b + o_align;
                let t1 = s * lb + o;
                let t2 = s * ub + o;
                let (tlo, thi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
                let tstep = (s * st).abs();
                let li = set_bound(&dm.dist, coord, tlo, thi, tstep);
                let mut out = Vec::with_capacity(li.len() as usize);
                for l in li.to_vec() {
                    let t = dm
                        .dist
                        .global_of(coord, l)
                        .expect("set_bound local maps to global");
                    let num = t - o;
                    if num % s != 0 {
                        continue;
                    }
                    let v = num / s;
                    if v >= lb && v <= ub && (v - lb) % st == 0 {
                        out.push(v);
                    }
                }
                out.sort_unstable();
                out
            }
        }
    }

    /// Resolve one accessor against the live descriptor for a node at
    /// `coords`.
    fn resolve_acc(&self, plan: &AccPlan, coords: &[i64]) -> ResolvedAcc {
        let target = plan.target();
        let decl = &self.prog.arrays[target];
        let dad = &self.dads[target];
        let alloc = dad.local_shape();
        let ndim = dad.rank();
        let mut dims = Vec::with_capacity(ndim);
        let mut extents = Vec::with_capacity(ndim);
        let mut padded = Vec::with_capacity(ndim);
        for (d, dm) in dad.dims.iter().enumerate() {
            let ghost = if dm.is_distributed() { decl.ghost } else { 0 };
            let pad = alloc[d] + 2 * ghost;
            let rd = if !dm.is_distributed() {
                RDim::Affine { a: 1, b: ghost }
            } else if dm.dist.kind == DistKind::Block {
                let coord = coords[dm.grid_axis.unwrap()];
                RDim::Affine {
                    a: dm.align.stride,
                    b: dm.align.offset - coord * dm.dist.block_size() + ghost,
                }
            } else {
                let coord = coords[dm.grid_axis.unwrap()];
                RDim::General {
                    dm: dm.clone(),
                    coord,
                    ghost_lo: ghost,
                }
            };
            dims.push(rd);
            extents.push(dm.extent);
            padded.push(pad);
        }
        let mut strides = vec![1i64; ndim];
        for d in (0..ndim.saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * padded[d + 1];
        }
        ResolvedAcc {
            target,
            drop_dim: plan.dropped_dim(),
            dims,
            extents,
            padded,
            strides,
        }
    }

    // ---- native tier dispatch ------------------------------------------

    /// Bind a selected [`NativeKernel`] against this execution's per-rank
    /// resolved accessors and iteration lists. Returns `None` — whole
    /// FORALL falls back to bytecode — unless, on **every** active rank:
    /// every used accessor dimension is affine (BLOCK / undistributed),
    /// every read/write site stays inside the array extents and the
    /// padded segment over the rank's whole iteration box (no mask means
    /// every listed tuple executes, so corner analysis is exact and any
    /// violation is exactly a bytecode runtime error), every INTEGER
    /// scalar a subscript folds holds `Value::Int`, and every REAL
    /// scalar the closures read holds `Value::Real`.
    fn bind_native(
        &self,
        kernel: &NativeKernel,
        iter_lists: &[Vec<Vec<i64>>],
        resolved: &[Vec<Option<ResolvedAcc>>],
    ) -> Option<Vec<Option<Vec<NatBody>>>> {
        let nv = kernel.var_slots.len();
        let mut out = Vec::with_capacity(iter_lists.len());
        for (rank, lists) in iter_lists.iter().enumerate() {
            if lists.iter().any(|l| l.is_empty()) {
                out.push(None);
                continue;
            }
            // Iteration lists are sorted ascending, so firsts/lasts are
            // the per-variable box corners.
            let lo: Vec<i64> = lists.iter().map(|l| l[0]).collect();
            let hi: Vec<i64> = lists.iter().map(|l| *l.last().unwrap()).collect();
            let table = &resolved[rank];
            let mut bodies = Vec::with_capacity(kernel.bodies.len());
            for b in &kernel.bodies {
                let mut read_offs = Vec::with_capacity(b.reads.len());
                let mut read_arrs = Vec::with_capacity(b.reads.len());
                for site in &b.reads {
                    let racc = table[site.acc as usize].as_ref()?;
                    read_offs.push(self.bind_site(site, racc, kernel, nv, &lo, &hi)?);
                    read_arrs.push(racc.target);
                }
                let lhs = table[b.lhs_acc as usize].as_ref()?;
                let lhs_site = ReadSite {
                    acc: b.lhs_acc,
                    subs: b.lhs_subs.clone(),
                };
                let lhs_off = self.bind_site(&lhs_site, lhs, kernel, nv, &lo, &hi)?;
                let mut lin_vals = Vec::with_capacity(b.lins.len());
                for lin in &b.lins {
                    lin_vals.push(self.bind_lin(lin, kernel, nv)?);
                }
                let mut scalars = Vec::with_capacity(b.scalar_slots.len());
                for &slot in &b.scalar_slots {
                    match self.scalars[slot as usize] {
                        Value::Real(v) => scalars.push(v),
                        _ => return None,
                    }
                }
                bodies.push(NatBody {
                    func: b.func.clone(),
                    read_offs,
                    read_arrs,
                    lin_vals,
                    scalars,
                    lhs_off,
                    cost: b.cost,
                });
            }
            out.push(Some(bodies));
        }
        Some(out)
    }

    /// Fold a selection-time [`Lin`] into a per-rank affine form over the
    /// FORALL variables: outer loop variables take their current values,
    /// INTEGER scalar terms fold their current `Value::Int` (anything
    /// else fails the bind).
    fn bind_lin(&self, lin: &Lin, kernel: &NativeKernel, nv: usize) -> Option<NatAff> {
        let mut aff = NatAff {
            base: lin.base,
            k: vec![0; nv],
        };
        for &(slot, c) in &lin.vterms {
            match kernel.var_slots.iter().position(|&s| s == slot) {
                Some(j) => aff.k[j] += c,
                None => aff.base += c * self.vars[slot as usize],
            }
        }
        for &(slot, c) in &lin.sterms {
            match self.scalars[slot as usize] {
                Value::Int(v) => aff.base += c * v,
                _ => return None,
            }
        }
        Some(aff)
    }

    /// Compose a site's affine subscripts through a resolved accessor
    /// into a flat padded-offset affine form — the symbolic mirror of
    /// [`ResolvedAcc::offset`], including the slab drop-dim skip and
    /// both bounds checks (validated over the iteration box corners
    /// instead of per element).
    fn bind_site(
        &self,
        site: &ReadSite,
        racc: &ResolvedAcc,
        kernel: &NativeKernel,
        nv: usize,
        lo: &[i64],
        hi: &[i64],
    ) -> Option<NatAff> {
        let mut off = NatAff {
            base: 0,
            k: vec![0; nv],
        };
        let mut k = 0usize;
        for (d, sub) in site.subs.iter().enumerate() {
            if Some(d) == racc.drop_dim {
                continue;
            }
            let g = self.bind_lin(sub, kernel, nv)?;
            let (gmin, gmax) = g.range(lo, hi);
            if gmin < 0 || gmax >= racc.extents[k] {
                return None;
            }
            let RDim::Affine { a, b } = racc.dims[k] else {
                return None; // CYCLIC / BLOCK-CYCLIC: per-element ownership math
            };
            let l = g.scale_shift(a, b);
            let (lmin, lmax) = l.range(lo, hi);
            if lmin < 0 || lmax >= racc.padded[k] {
                return None;
            }
            off.add_scaled(&l, racc.strides[k]);
            k += 1;
        }
        Some(off)
    }

    // ---- unstructured communication ------------------------------------

    fn exec_gather(
        &mut self,
        f: &VmForall,
        g: &VmGather,
        m: &mut Machine,
        iter_lists: &[Vec<Vec<i64>>],
        resolved: &[Vec<Option<ResolvedAcc>>],
    ) -> VmResult<()> {
        let prog = self.prog.clone();
        let src_name = prog.arrays[g.src].name.clone();
        let tmp_name = prog.arrays[g.tmp].name.clone();
        let src_dad = self.dads[g.src].clone();
        let nranks = m.nranks() as usize;
        let max_regs = forall_max_regs(f);
        // Inspector: per rank, evaluate the subscripts for every local
        // iteration in iteration order, forming the request list.
        let mut reqs: Vec<ElementReq> = Vec::new();
        let mut counts = vec![0usize; nranks];
        let mut insp_ops = vec![0i64; nranks];
        let mut visited = vec![false; nranks];
        for rank in 0..nranks {
            let lists = &iter_lists[rank];
            if lists.iter().any(|l| l.is_empty()) {
                continue;
            }
            visited[rank] = true;
            let table = &resolved[rank];
            let views: Vec<Option<&LocalArray>> = table
                .iter()
                .map(|o| {
                    o.as_ref()
                        .map(|a| m.mems[rank].array(&prog.arrays[a.target].name))
                })
                .collect();
            let mut vars = self.vars.clone();
            let mut regs = vec![Value::Int(0); max_regs];
            let mut dummy_counters: Vec<usize> = Vec::new();
            let mut cursor = vec![0usize; lists.len()];
            'iter: loop {
                for (k, list) in lists.iter().enumerate() {
                    vars[f.vars[k].var as usize] = list[cursor[k]];
                }
                let mut run = true;
                if let Some(mask) = &f.mask {
                    // Masks must not depend on gathered values.
                    run = eval_elem(
                        &prog,
                        mask,
                        &mut regs,
                        &vars,
                        &self.scalars,
                        &views,
                        table,
                        &[],
                        &mut dummy_counters,
                        false,
                        rank as i64,
                    )
                    .map_err(VmError)?
                    .as_bool();
                }
                if run {
                    let mut gidx = Vec::with_capacity(g.subs.len());
                    for s in &g.subs {
                        gidx.push(
                            eval_elem(
                                &prog,
                                s,
                                &mut regs,
                                &vars,
                                &self.scalars,
                                &views,
                                table,
                                &[],
                                &mut dummy_counters,
                                false,
                                rank as i64,
                            )
                            .map_err(VmError)?
                            .as_int(),
                        );
                    }
                    insp_ops[rank] += 4;
                    let owner = src_dad.owner_ranks(&gidx)[0];
                    let l = src_dad.local_index(&gidx);
                    let src_off = m.mems[owner as usize].array(&src_name).offset(&l);
                    reqs.push(ElementReq {
                        requester: rank as i64,
                        owner,
                        src_off,
                        dst_off: counts[rank],
                    });
                    counts[rank] += 1;
                }
                // advance cartesian cursor (last var fastest)
                let mut d = lists.len();
                loop {
                    if d == 0 {
                        break 'iter;
                    }
                    d -= 1;
                    cursor[d] += 1;
                    if cursor[d] < lists[d].len() {
                        break;
                    }
                    cursor[d] = 0;
                }
            }
        }
        for rank in 0..nranks {
            if visited[rank] {
                m.transport.charge_elem_ops(rank as i64, insp_ops[rank]);
            }
        }
        // Size the sequential buffers.
        let ty = prog.arrays[g.tmp].ty;
        for (rank, &n) in counts.iter().enumerate() {
            m.mems[rank].insert_array(tmp_name.clone(), LocalArray::zeros(ty, &[n.max(1) as i64]));
        }
        // Schedule (per-run §7(3) reuse + cross-run cache); the driver
        // maps (fast_path, read) onto the schedule kind.
        let sched = driver::schedule(m, &mut self.sched, &reqs, g.local_only, false)?;
        schedule::execute_read(m, &sched, &src_name, &tmp_name)?;
        Ok(())
    }

    fn exec_scatter(
        &mut self,
        f: &VmForall,
        m: &mut Machine,
        invertible: bool,
        outputs: &[ScatterOut],
    ) -> VmResult<()> {
        let prog = self.prog.clone();
        let dst = f.body[0].arr;
        let dst_name = prog.arrays[dst].name.clone();
        let dst_dad = self.dads[dst].clone();
        let ty = prog.arrays[dst].ty;
        // Stage values into per-rank sequential source buffers.
        let buf_name = format!("__SCATBUF_{dst_name}");
        for (rank, vals) in outputs.iter().enumerate() {
            let mut la = LocalArray::zeros(ty, &[vals.len().max(1) as i64]);
            for (k, (_, v)) in vals.iter().enumerate() {
                la.set(&[k as i64], *v);
            }
            m.mems[rank].insert_array(buf_name.clone(), la);
        }
        let mut reqs = Vec::new();
        for (rank, vals) in outputs.iter().enumerate() {
            for (k, (g, _)) in vals.iter().enumerate() {
                let src_off = m.mems[rank].array(&buf_name).offset(&[k as i64]);
                for owner in dst_dad.owner_ranks(g) {
                    let l = dst_dad.local_index(g);
                    let dst_off = m.mems[owner as usize].array(&dst_name).offset(&l);
                    reqs.push(ElementReq {
                        // For write schedules the "requester" is the
                        // receiving owner and the "owner" the producer.
                        requester: owner,
                        owner: rank as i64,
                        src_off,
                        dst_off,
                    });
                }
            }
        }
        let sched = driver::schedule(m, &mut self.sched, &reqs, invertible, true)?;
        schedule::execute_write(m, &sched, &buf_name, &dst_name)?;
        Ok(())
    }
}

/// The bytecode engine's [`ComputeSink`]: the shared driver decides
/// *when* ghost exchanges post, complete, and commit; this sink runs the
/// interior/boundary element loops ([`run_forall_rank`], uncommitted)
/// under the machine's `ExecMode` via `local_phase_map`, which charges
/// interior ranks as usual and each rank's boundary slabs as one summed
/// lump (the tree walker charges identically, keeping backend virtual
/// time bit-equal).
struct VmSink<'a> {
    prog: &'a VmProgram,
    f: &'a VmForall,
    resolved: &'a [Vec<Option<ResolvedAcc>>],
    vars: &'a [i64],
    scalars: &'a [Value],
    max_regs: usize,
    staged: Vec<StagedWrites>,
}

impl ComputeSink for VmSink<'_> {
    type Error = VmError;

    fn interior(&mut self, m: &mut Machine, lists: &[Vec<Vec<i64>>]) -> VmResult<()> {
        let (prog, f, resolved, vars, scalars, max_regs) = (
            self.prog,
            self.f,
            self.resolved,
            self.vars,
            self.scalars,
            self.max_regs,
        );
        let results: Vec<Result<StagedWrites, String>> = m.local_phase_map(|rank, mem| {
            match run_forall_rank(
                prog,
                f,
                rank,
                mem,
                &lists[rank as usize],
                &resolved[rank as usize],
                vars,
                scalars,
                max_regs,
                false,
            ) {
                Ok((_, staged, ops)) => (Ok(staged), ops),
                Err(e) => (Err(e), 0),
            }
        });
        for (rank, r) in results.into_iter().enumerate() {
            self.staged[rank].extend(r.map_err(VmError)?);
        }
        Ok(())
    }

    fn boundary(&mut self, m: &mut Machine, slabs: &[Vec<Vec<Vec<i64>>>]) -> VmResult<()> {
        let (prog, f, resolved, vars, scalars, max_regs) = (
            self.prog,
            self.f,
            self.resolved,
            self.vars,
            self.scalars,
            self.max_regs,
        );
        let results: Vec<Result<StagedWrites, String>> = m.local_phase_map(|rank, mem| {
            let mut staged = StagedWrites::new();
            let mut ops = 0i64;
            for slab in &slabs[rank as usize] {
                match run_forall_rank(
                    prog,
                    f,
                    rank,
                    mem,
                    slab,
                    &resolved[rank as usize],
                    vars,
                    scalars,
                    max_regs,
                    false,
                ) {
                    Ok((_, st, o)) => {
                        staged.extend(st);
                        ops += o;
                    }
                    Err(e) => return (Err(e), 0),
                }
            }
            (Ok(staged), ops)
        });
        for (rank, r) in results.into_iter().enumerate() {
            self.staged[rank].extend(r.map_err(VmError)?);
        }
        Ok(())
    }

    fn commit(&mut self, m: &mut Machine) -> VmResult<()> {
        let name = &self.prog.arrays[self.f.body[0].arr].name;
        for (rank, writes) in std::mem::take(&mut self.staged).into_iter().enumerate() {
            if writes.is_empty() {
                continue;
            }
            let arr = m.mems[rank].array_mut(name);
            for (off, v) in writes {
                arr.set_flat(off, v);
            }
        }
        Ok(())
    }
}

/// One rank's scatter-write output: `(global_subscripts, value)` pairs in
/// iteration order.
type ScatterOut = Vec<(Vec<i64>, Value)>;

/// One rank's staged owned writes: `(flat offset, value)` pairs, returned
/// uncommitted to the caller during split-phase (overlap) execution.
type StagedWrites = Vec<(usize, Value)>;

/// Allocation shape + symmetric ghost widths for one declared array.
fn decl_alloc(decl: &VmArrayDecl) -> (Vec<i64>, Vec<i64>) {
    let shape = decl.dad.local_shape();
    let ghost: Vec<i64> = decl
        .dad
        .dims
        .iter()
        .map(|d| if d.is_distributed() { decl.ghost } else { 0 })
        .collect();
    (shape, ghost)
}

/// Largest register file any element-context code of `f` needs.
fn forall_max_regs(f: &VmForall) -> usize {
    let mut n = f.mask.as_ref().map_or(0, |c| c.nregs) as usize;
    for v in &f.vars {
        n = n
            .max(v.lb.nregs as usize)
            .max(v.ub.nregs as usize)
            .max(v.st.nregs as usize);
    }
    for b in &f.body {
        n = n.max(b.rhs.nregs as usize);
        for s in &b.subs {
            n = n.max(s.nregs as usize);
        }
    }
    for g in &f.gathers {
        for s in &g.subs {
            n = n.max(s.nregs as usize);
        }
    }
    n
}

/// One affine form bound to a rank: `base + Σ k[j]·iter_value[j]` over
/// the FORALL variables, outer to inner.
struct NatAff {
    base: i64,
    k: Vec<i64>,
}

impl NatAff {
    #[inline]
    fn at(&self, vals: &[i64]) -> i64 {
        let mut v = self.base;
        for (c, x) in self.k.iter().zip(vals) {
            v += c * x;
        }
        v
    }

    /// Exact min/max over the box `[lo, hi]` per variable (attained at
    /// corners, which are real iteration tuples).
    fn range(&self, lo: &[i64], hi: &[i64]) -> (i64, i64) {
        let (mut a, mut b) = (self.base, self.base);
        for (j, &c) in self.k.iter().enumerate() {
            if c >= 0 {
                a += c * lo[j];
                b += c * hi[j];
            } else {
                a += c * hi[j];
                b += c * lo[j];
            }
        }
        (a, b)
    }

    fn scale_shift(&self, a: i64, b: i64) -> NatAff {
        NatAff {
            base: a * self.base + b,
            k: self.k.iter().map(|&c| a * c).collect(),
        }
    }

    fn add_scaled(&mut self, other: &NatAff, s: i64) {
        self.base += s * other.base;
        for (c, o) in self.k.iter_mut().zip(&other.k) {
            *c += s * o;
        }
    }
}

/// One kernel body bound to one rank: everything the element loop needs
/// with no descriptor math, bounds checks, or `Value` boxing left.
struct NatBody {
    func: ElemFn,
    /// Flat padded offset of each read site.
    read_offs: Vec<NatAff>,
    /// Target array of each read site (view lookup).
    read_arrs: Vec<ArrId>,
    /// Values for [`ElemArgs::lins`].
    lin_vals: Vec<NatAff>,
    /// Snapshot for [`ElemArgs::scalars`].
    scalars: Vec<f64>,
    /// Flat padded offset of the owned write.
    lhs_off: NatAff,
    /// Modelled cost per iteration (identical to the bytecode body's).
    cost: i64,
}

/// Execute a bound native kernel: one local phase under the machine's
/// `ExecMode`, same cost charging, staging, and commit order as the
/// bytecode loop — only the per-element work is closure calls over raw
/// `f64` slices.
fn run_native_forall(
    prog: &VmProgram,
    f: &VmForall,
    m: &mut Machine,
    bound: &[Option<Vec<NatBody>>],
    iter_lists: &[Vec<Vec<i64>>],
) -> VmResult<()> {
    let commit_name = &prog.arrays[f.body[0].arr].name;
    m.local_phase(|rank, mem| {
        let Some(bodies) = &bound[rank as usize] else {
            return 0;
        };
        let lists = &iter_lists[rank as usize];
        // Lazily-allocated segments expose no raw slice until their
        // buffer exists (`LocalArray::data`); force every array this
        // phase will view before taking shared borrows.
        for b in bodies {
            for &arr in &b.read_arrs {
                mem.array_mut(&prog.arrays[arr].name).materialize();
            }
        }
        // Pre-borrow every read view as a raw f64 slice (selection
        // admits REAL arrays only).
        let mut view_base = Vec::with_capacity(bodies.len());
        let mut views: Vec<&[f64]> = Vec::new();
        for b in bodies {
            view_base.push(views.len());
            for &arr in &b.read_arrs {
                views.push(mem.array(&prog.arrays[arr].name).data().as_real_slice());
            }
        }
        let mut vals = vec![0i64; lists.len()];
        let mut readbuf: Vec<f64> = Vec::new();
        let mut linbuf: Vec<i64> = Vec::new();
        let mut staged: Vec<(usize, f64)> = Vec::new();
        let mut ops: i64 = 0;
        let mut cursor = vec![0usize; lists.len()];
        'iter: loop {
            for (k, list) in lists.iter().enumerate() {
                vals[k] = list[cursor[k]];
            }
            for (bi, b) in bodies.iter().enumerate() {
                readbuf.clear();
                for (ri, off) in b.read_offs.iter().enumerate() {
                    readbuf.push(views[view_base[bi] + ri][off.at(&vals) as usize]);
                }
                linbuf.clear();
                for l in &b.lin_vals {
                    linbuf.push(l.at(&vals));
                }
                let v = (b.func)(&ElemArgs {
                    reads: &readbuf,
                    lins: &linbuf,
                    scalars: &b.scalars,
                });
                ops += b.cost;
                staged.push((b.lhs_off.at(&vals) as usize, v));
            }
            // advance cartesian cursor (last var fastest)
            let mut d = lists.len();
            loop {
                if d == 0 {
                    break 'iter;
                }
                d -= 1;
                cursor[d] += 1;
                if cursor[d] < lists[d].len() {
                    break;
                }
                cursor[d] = 0;
            }
        }
        drop(views);
        // Commit staged owned writes (RHS-before-LHS within the rank),
        // same single-target commit as the bytecode loop.
        let out = mem.array_mut(commit_name).data_mut().as_real_slice_mut();
        for (off, v) in staged {
            out[off] = v;
        }
        ops
    });
    Ok(())
}

/// The per-rank element loop: flat fetch/decode over the mask and body
/// register code, with owned writes staged (FORALL RHS-before-LHS
/// semantics within the rank) and scatter writes collected for the
/// post-loop schedule. Returns the scatter outputs, any uncommitted
/// staged writes, and the modelled cost.
///
/// `commit`: `true` commits the staged owned writes into `mem` before
/// returning (the blocking path). `false` returns them uncommitted —
/// the overlap driver runs this once over the interior sub-product and
/// once per boundary slab, and commits both phases together after the
/// ghost exchange completes.
#[allow(clippy::too_many_arguments)]
fn run_forall_rank(
    prog: &VmProgram,
    f: &VmForall,
    rank: i64,
    mem: &mut NodeMemory,
    lists: &[Vec<i64>],
    resolved: &[Option<ResolvedAcc>],
    vars_base: &[i64],
    scalars: &[Value],
    max_regs: usize,
    commit: bool,
) -> Result<(ScatterOut, StagedWrites, i64), String> {
    let mut scat: ScatterOut = Vec::new();
    if lists.iter().any(|l| l.is_empty()) {
        return Ok((scat, Vec::new(), 0));
    }
    let views: Vec<Option<&LocalArray>> = resolved
        .iter()
        .map(|o| o.as_ref().map(|a| mem.array(&prog.arrays[a.target].name)))
        .collect();
    let seq_views: Vec<&LocalArray> = f
        .gathers
        .iter()
        .map(|g| mem.array(&prog.arrays[g.tmp].name))
        .collect();
    let mut vars = vars_base.to_vec();
    let mut regs = vec![Value::Int(0); max_regs];
    let mut counters = vec![0usize; f.gathers.len()];
    let mut staged: Vec<(usize, Value)> = Vec::new();
    let mut subs_buf: Vec<i64> = Vec::new();
    let mut ops: i64 = 0;
    let mut cursor = vec![0usize; lists.len()];
    'iter: loop {
        for (k, list) in lists.iter().enumerate() {
            vars[f.vars[k].var as usize] = list[cursor[k]];
        }
        let mut run = true;
        if let Some(mask) = &f.mask {
            ops += f.mask_cost;
            run = eval_elem(
                prog,
                mask,
                &mut regs,
                &vars,
                scalars,
                &views,
                resolved,
                &seq_views,
                &mut counters,
                true,
                rank,
            )?
            .as_bool();
        }
        if run {
            for b in &f.body {
                let v = eval_elem(
                    prog,
                    &b.rhs,
                    &mut regs,
                    &vars,
                    scalars,
                    &views,
                    resolved,
                    &seq_views,
                    &mut counters,
                    true,
                    rank,
                )?;
                ops += b.cost;
                subs_buf.clear();
                for s in &b.subs {
                    subs_buf.push(
                        eval_elem(
                            prog,
                            s,
                            &mut regs,
                            &vars,
                            scalars,
                            &views,
                            resolved,
                            &seq_views,
                            &mut counters,
                            true,
                            rank,
                        )?
                        .as_int(),
                    );
                }
                match b.scatter {
                    None => {
                        let acc = resolved[b.lhs_acc.expect("owned write accessor") as usize]
                            .as_ref()
                            .expect("lhs accessor resolved");
                        let off = acc.offset(&subs_buf, &prog.arrays[b.arr].name, rank)?;
                        staged.push((off, v));
                    }
                    Some(_) => scat.push((subs_buf.clone(), v)),
                }
            }
        }
        // advance cartesian cursor (last var fastest)
        let mut d = lists.len();
        loop {
            if d == 0 {
                break 'iter;
            }
            d -= 1;
            cursor[d] += 1;
            if cursor[d] < lists[d].len() {
                break;
            }
            cursor[d] = 0;
        }
    }
    drop(views);
    drop(seq_views);
    // Blocking path: commit staged owned writes (RHS-before-LHS within
    // the rank); the commit target follows the tree walker: the first
    // body assignment's array (lowering rejects mixed-array owned
    // bodies). Overlap phases return them uncommitted instead.
    if commit {
        if !staged.is_empty() {
            let arr = mem.array_mut(&prog.arrays[f.body[0].arr].name);
            for (off, v) in staged {
                arr.set_flat(off, v);
            }
        }
        return Ok((scat, Vec::new(), ops));
    }
    Ok((scat, staged, ops))
}

/// Element-context expression evaluation: the innermost fetch/decode
/// loop. All array reads go through the rank's pre-borrowed `views` and
/// pre-resolved accessors.
#[allow(clippy::too_many_arguments)]
#[inline]
fn eval_elem(
    prog: &VmProgram,
    code: &ExprCode,
    regs: &mut [Value],
    vars: &[i64],
    scalars: &[Value],
    views: &[Option<&LocalArray>],
    resolved: &[Option<ResolvedAcc>],
    seq_views: &[&LocalArray],
    counters: &mut [usize],
    seq_ok: bool,
    rank: i64,
) -> Result<Value, String> {
    for op in &code.ops {
        match *op {
            Op::Const { dst, k } => regs[dst as usize] = prog.consts[k as usize],
            Op::LoadVar { dst, slot } => regs[dst as usize] = Value::Int(vars[slot as usize]),
            Op::LoadScalar { dst, slot } => regs[dst as usize] = scalars[slot as usize],
            Op::Affine { dst, slot, a, b } => {
                regs[dst as usize] = Value::Int(a * vars[slot as usize] + b)
            }
            Op::Bin { op, dst, a, b } => {
                regs[dst as usize] = ops::eval_bin(op, regs[a as usize], regs[b as usize])?
            }
            Op::Un { op, dst, a } => regs[dst as usize] = ops::eval_un(op, regs[a as usize])?,
            Op::Intrin { f, dst, base, n } => {
                let args = &regs[base as usize..(base + n) as usize];
                regs[dst as usize] = ops::eval_intrin(f, args)?
            }
            Op::Read { dst, acc, base, n } => {
                let mut subs = [0i64; 8];
                for (k, v) in regs[base as usize..(base + n) as usize].iter().enumerate() {
                    subs[k] = v.as_int();
                }
                let racc = resolved[acc as usize].as_ref().expect("accessor resolved");
                let off = racc.offset(&subs[..n as usize], &prog.arrays[racc.target].name, rank)?;
                let view = views[acc as usize].expect("accessor view");
                regs[dst as usize] = view.get_flat(off);
            }
            Op::ReadSeq { dst, gather } => {
                if !seq_ok {
                    return Err("gathered value read outside the element loop".into());
                }
                let k = counters[gather as usize];
                counters[gather as usize] += 1;
                regs[dst as usize] = seq_views[gather as usize].get(&[k as i64]);
            }
        }
    }
    Ok(regs[code.out as usize])
}
