//! Phase-level communication plans: PARTI-style message coalescing
//! (paper §7, optimization 1 taken across statement boundaries).
//!
//! A *comm phase* is a group of consecutive FORALLs (or one FORALL with
//! several shifted RHS arrays) whose ghost exchanges are all posted
//! before any of them finishes. Where the per-statement path sends one
//! message per `(source rank, destination rank)` pair *per exchange*,
//! the phase executor merges every exchange's strip travelling between
//! the same pair into **one** wire transfer: one startup α, summed
//! bytes. On α-dominated stencil phases (thin ghost strips, k arrays)
//! that saves `(k−1)·α` per pair at every sender.
//!
//! The planner that decides *which* FORALLs form a phase lives in the
//! core optimizer (`comm_plan` pass); both executors drive this module
//! with the same [`GhostSpec`] lists, so the tree walker and the VM
//! cannot drift on what a phase moves or charges.
//!
//! Failure contract: a completion error mid-[`finish`](CommOp::finish)
//! does not abandon the remaining posted receives — every handle is
//! still driven exactly once (no leak of completable messages, no
//! double-complete), and the resulting [`CommError`] enumerates every
//! exchange pair whose handle is still open so the caller's
//! quiescence report names them all.

use std::collections::BTreeMap;

use f90d_distrib::Dad;
use f90d_machine::{ArrayData, ElemType, Machine, RecvHandle, Transport};

use crate::op::{CommError, CommOp, CommResult};
use crate::structured::overlap_shift_moves;

/// One ghost exchange batched into a phase: fill the ghost cells of
/// `arr` (live descriptor `dad`) for a compile-time shift by `c` along
/// array dimension `dim`. The executors build one spec per *distinct*
/// `(array, dim, c)` in the phase — duplicate exchanges across phase
/// members collapse to one spec (none of the phase's members writes the
/// exchanged array, so repeated fills would carry identical data).
#[derive(Debug, Clone)]
pub struct GhostSpec {
    /// Array whose ghost cells are filled.
    pub arr: String,
    /// Its live distribution descriptor.
    pub dad: Dad,
    /// Shifted array dimension.
    pub dim: usize,
    /// Compile-time shift constant.
    pub c: i64,
}

/// `(from, to) → [(item index, element moves)]`: every element travelling
/// between one rank pair, grouped by the [`GhostSpec`] it belongs to, in
/// deterministic (pair, item) order.
type PhaseMoves = BTreeMap<(i64, i64), Vec<(usize, Vec<(usize, usize)>)>>;

/// A split-phase, multi-array coalesced ghost exchange.
///
/// `post` packs, per remote `(from, to)` pair, the boundary strips of
/// *every* item crossing that pair into a single message (one α at the
/// sender, one packing charge over the summed bytes) and posts one
/// receive. `finish` completes each pair once and unpacks the items in
/// planning order. Local (same-rank) ghost fills are performed at post
/// time and charged at memcpy rate, exactly like the per-statement
/// [`crate::helpers::ExchangeOp`].
#[derive(Debug)]
pub struct PhaseExchange {
    items: Vec<GhostSpec>,
    ty: ElemType,
    moves: PhaseMoves,
    /// Posted receives, in deterministic pair order.
    pending: Vec<((i64, i64), RecvHandle)>,
    posted: bool,
}

impl PhaseExchange {
    /// Plan a coalesced exchange over `items`. Planning reads the live
    /// arrays (for offsets and element types) but posts nothing. All
    /// items must share one element type — the phase planner only
    /// groups same-typed arrays, so a mix here is a planner bug and
    /// surfaces as a structured error rather than a mis-packed message.
    pub fn plan(m: &Machine, items: Vec<GhostSpec>) -> CommResult<PhaseExchange> {
        let ty = match items.first() {
            Some(it) => m.mems[0].array(&it.arr).elem_type(),
            None => ElemType::Real,
        };
        for it in &items {
            let t = m.mems[0].array(&it.arr).elem_type();
            if t != ty {
                return Err(CommError(format!(
                    "comm phase mixes element types ({ty:?} and {t:?} on {})",
                    it.arr
                )));
            }
        }
        let mut moves: PhaseMoves = BTreeMap::new();
        for (k, it) in items.iter().enumerate() {
            let pm = overlap_shift_moves(m, &it.arr, &it.dad, it.dim, it.c, false);
            for (pair, mv) in pm {
                if !mv.is_empty() {
                    moves.entry(pair).or_default().push((k, mv));
                }
            }
        }
        Ok(PhaseExchange {
            items,
            ty,
            moves,
            pending: Vec::new(),
            posted: false,
        })
    }

    /// Number of wire messages this phase will send (remote pairs).
    pub fn coalesced_messages(&self) -> usize {
        self.moves.iter().filter(|((f, t), _)| f != t).count()
    }

    /// Number of wire messages the per-statement path would send for the
    /// same items: one per (item, remote pair).
    pub fn per_statement_messages(&self) -> usize {
        self.moves
            .iter()
            .filter(|((f, t), _)| f != t)
            .map(|(_, entries)| entries.len())
            .sum()
    }
}

impl CommOp for PhaseExchange {
    type Output = ();

    /// Perform local ghost fills, then pack and post one coalesced send
    /// per remote pair and post the matching receive.
    fn post(&mut self, m: &mut Machine) -> CommResult<()> {
        if self.posted {
            return Err(CommError("comm phase posted twice".into()));
        }
        self.posted = true;
        m.stats.record("comm_phase");
        for _ in &self.items {
            m.stats.record("overlap_shift");
        }
        let tag = m.fresh_tag();
        let copy_rate = m.spec().time_copy_byte;
        let elem_bytes = self.ty.bytes();
        for (&(from, to), entries) in self.moves.iter() {
            let n_elems: usize = entries.iter().map(|(_, mv)| mv.len()).sum();
            if n_elems == 0 {
                continue;
            }
            let bytes = n_elems as i64 * elem_bytes;
            if from == to {
                let mem = &mut m.mems[from as usize];
                for (k, mv) in entries {
                    let name = &self.items[*k].arr;
                    let vals: Vec<_> = {
                        let a = mem.array(name);
                        mv.iter().map(|&(s, _)| a.get_flat(s)).collect()
                    };
                    let a = mem.array_mut(name);
                    for (&(_, d), v) in mv.iter().zip(vals) {
                        a.set_flat(d, v);
                    }
                }
                m.transport.charge_compute(from, copy_rate * bytes as f64);
                continue;
            }
            // Pack every item's strip into one payload, in item order.
            let mut data = ArrayData::zeros(self.ty, n_elems);
            let mut off = 0usize;
            for (k, mv) in entries {
                let a = m.mems[from as usize].array(&self.items[*k].arr);
                for &(s, _) in mv {
                    data.set(off, a.get_flat(s));
                    off += 1;
                }
            }
            m.transport.charge_compute(from, copy_rate * bytes as f64);
            m.transport.post_send(from, to, tag, data);
            let h = m.transport.post_recv(to, from, tag);
            self.pending.push(((from, to), h));
        }
        Ok(())
    }

    /// Complete every posted receive in pair order, charge the unpack
    /// copy, and deposit each item's elements.
    ///
    /// A failed completion does not stop the batch: the remaining
    /// handles are still driven (arrived payloads deposit normally),
    /// and the final error lists **every** pair whose handle is still
    /// open, so nothing is silently leaked and nothing completes twice.
    fn finish(mut self, m: &mut Machine) -> CommResult<()> {
        if !self.posted {
            return Err(CommError("comm phase finished before post".into()));
        }
        let copy_rate = m.spec().time_copy_byte;
        let mut failed: Vec<String> = Vec::new();
        for (pair, h) in std::mem::take(&mut self.pending) {
            let payload = match m.transport.complete(h) {
                Ok(p) => p,
                Err(e) => {
                    failed.push(e.to_string());
                    continue;
                }
            };
            let (_, to) = pair;
            let bytes = payload.len() as i64 * payload.elem_type().bytes();
            m.transport.charge_compute(to, copy_rate * bytes as f64);
            let mut off = 0usize;
            for (k, mv) in &self.moves[&pair] {
                let a = m.mems[to as usize].array_mut(&self.items[*k].arr);
                for &(_, d) in mv {
                    a.set_flat(d, payload.get(off));
                    off += 1;
                }
            }
        }
        if failed.is_empty() {
            Ok(())
        } else {
            Err(CommError(format!(
                "comm phase finish: {} coalesced exchange(s) still open: {}",
                failed.len(),
                failed.join("; ")
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structured::overlap_shift;
    use f90d_distrib::{DadBuilder, DistKind, ProcGrid};
    use f90d_machine::{ElemType, LocalArray, MachineSpec, Value};

    /// 1-D machine with `names` BLOCK arrays, ghost width 2 both sides,
    /// A(i) = base + i per array.
    fn setup(n: i64, p: i64, names: &[&str]) -> (Machine, Dad) {
        let grid = ProcGrid::new(&[p]);
        let mut m = Machine::new(MachineSpec::ipsc860(), grid.clone());
        let dad = DadBuilder::new(names[0], &[n])
            .distribute(&[DistKind::Block])
            .grid(grid)
            .build()
            .unwrap();
        for (base, name) in names.iter().enumerate() {
            for rank in 0..m.nranks() {
                let coords = m.grid.coords_of(rank);
                let mut la = LocalArray::with_ghost(ElemType::Real, &dad.local_shape(), &[2], &[2]);
                for (g, l) in dad.owned_elements(&coords) {
                    la.set(&l, Value::Real((1000 * base as i64 + g[0]) as f64));
                }
                m.mems[rank as usize].insert_array(*name, la);
            }
        }
        (m, dad)
    }

    fn ghost_value(m: &Machine, dad: &Dad, name: &str, rank: i64, c: i64) -> Vec<f64> {
        // Values sitting in the ghost cells rank `rank` needs for A(i+c).
        let coords = m.grid.coords_of(rank);
        let locals = crate::helpers::owned_dim_locals(dad, 0, coords[0]);
        let (lo, hi) = (*locals.first().unwrap(), *locals.last().unwrap());
        let ghosts: Vec<i64> = if c > 0 {
            (hi + 1..=hi + c).collect()
        } else {
            (lo + c..lo).collect()
        };
        let a = m.mems[rank as usize].array(name);
        ghosts.iter().map(|&l| a.get(&[l]).as_real()).collect()
    }

    #[test]
    fn coalesced_fill_matches_per_statement_with_fewer_messages() {
        let n = 32;
        let p = 4;
        // Per-statement reference: three arrays, one exchange each.
        let (mut m1, dad) = setup(n, p, &["A", "B", "C"]);
        for name in ["A", "B", "C"] {
            overlap_shift(&mut m1, name, &dad, 0, 1, false).unwrap();
        }
        let per_stmt_msgs = m1.transport.messages;
        let per_stmt_bytes = m1.transport.bytes;

        // Phase: the same three exchanges coalesced.
        let (mut m2, _) = setup(n, p, &["A", "B", "C"]);
        let items = ["A", "B", "C"]
            .iter()
            .map(|&name| GhostSpec {
                arr: name.into(),
                dad: dad.clone(),
                dim: 0,
                c: 1,
            })
            .collect();
        let mut px = PhaseExchange::plan(&m2, items).unwrap();
        assert_eq!(px.per_statement_messages(), 3 * px.coalesced_messages());
        px.post(&mut m2).unwrap();
        px.finish(&mut m2).unwrap();
        m2.transport.quiescent_check().unwrap();

        // Same ghost contents, same bytes, one third the messages.
        for rank in 0..p {
            for name in ["A", "B", "C"] {
                assert_eq!(
                    ghost_value(&m1, &dad, name, rank, 1),
                    ghost_value(&m2, &dad, name, rank, 1),
                    "ghost mismatch on {name} rank {rank}"
                );
            }
        }
        assert_eq!(m2.transport.bytes, per_stmt_bytes);
        assert_eq!(m2.transport.messages * 3, per_stmt_msgs);
        // One α instead of three per pair: the senders' clocks are
        // strictly ahead (lower) under the plan.
        let t1 = m1.transport.clocks.iter().cloned().fold(0.0, f64::max);
        let t2 = m2.transport.clocks.iter().cloned().fold(0.0, f64::max);
        assert!(t2 < t1, "coalesced {t2} must beat per-statement {t1}");
    }

    #[test]
    fn mixed_directions_and_widths_coalesce_per_pair() {
        let n = 24;
        let (mut m, dad) = setup(n, 4, &["A", "B"]);
        let items = vec![
            GhostSpec {
                arr: "A".into(),
                dad: dad.clone(),
                dim: 0,
                c: 2,
            },
            GhostSpec {
                arr: "B".into(),
                dad: dad.clone(),
                dim: 0,
                c: -1,
            },
        ];
        let mut px = PhaseExchange::plan(&m, items).unwrap();
        // Opposite signs travel between different pairs: no merge, but
        // also no error — the plan degenerates to per-statement counts.
        assert_eq!(px.per_statement_messages(), px.coalesced_messages());
        px.post(&mut m).unwrap();
        px.finish(&mut m).unwrap();
        m.transport.quiescent_check().unwrap();
        // Spot-check both fills landed.
        assert_eq!(ghost_value(&m, &dad, "A", 0, 2), vec![6.0, 7.0]);
        assert_eq!(ghost_value(&m, &dad, "B", 1, -1), vec![1005.0]);
    }

    #[test]
    fn mid_finish_error_reports_every_open_handle_and_drains_the_rest() {
        let (mut m, dad) = setup(32, 4, &["A", "B"]);
        let items = vec![
            GhostSpec {
                arr: "A".into(),
                dad: dad.clone(),
                dim: 0,
                c: 1,
            },
            GhostSpec {
                arr: "B".into(),
                dad: dad.clone(),
                dim: 0,
                c: 1,
            },
        ];
        let mut px = PhaseExchange::plan(&m, items).unwrap();
        px.post(&mut m).unwrap();
        let posted = px.coalesced_messages();
        assert!(posted >= 3, "want several pairs in flight, got {posted}");
        // Inject a CommError into the *middle* of the batched finish:
        // steal the message of one middle pair by completing a
        // handle on the same channel, so that pair's own completion
        // finds no matching message while later pairs still succeed.
        let victim = px.pending[posted / 2].0;
        let tag = px.pending[posted / 2].1.tag();
        let stolen = m.transport.post_recv(victim.1, victim.0, tag);
        m.transport.complete(stolen).unwrap();
        let err = px.finish(&mut m).unwrap_err();
        // Structured report names the victim pair, and only it.
        assert!(
            err.0.contains("1 coalesced exchange(s) still open"),
            "{err}"
        );
        assert!(
            err.0
                .contains(&format!("recv({} <- {}", victim.1, victim.0)),
            "error must name the open handle: {err}"
        );
        // Every other handle was drained: exactly one receive is still
        // open (the victim's), and no message is left in flight.
        match m.transport.quiescent_check() {
            Err(f90d_machine::TransportError::NotQuiescent {
                in_flight,
                open_recvs,
                example,
            }) => {
                assert_eq!(in_flight, 0, "drained handles must consume their messages");
                // The stolen completion retired its own posted receive;
                // the victim's original handle is the only leak.
                assert_eq!(open_recvs, 1);
                // The extended quiescence report names the open receive
                // even with nothing left in flight.
                assert_eq!(example, Some((victim.0, victim.1, tag)));
            }
            other => panic!("expected NotQuiescent, got {other:?}"),
        }
    }

    #[test]
    fn phase_rejects_mixed_element_types() {
        let (mut m, dad) = setup(16, 2, &["A"]);
        for rank in 0..m.nranks() {
            let la = LocalArray::with_ghost(ElemType::Int, &dad.local_shape(), &[2], &[2]);
            m.mems[rank as usize].insert_array("K", la);
        }
        let items = vec![
            GhostSpec {
                arr: "A".into(),
                dad: dad.clone(),
                dim: 0,
                c: 1,
            },
            GhostSpec {
                arr: "K".into(),
                dad: dad.clone(),
                dim: 0,
                c: 1,
            },
        ];
        let err = PhaseExchange::plan(&m, items).unwrap_err();
        assert!(err.0.contains("element types"), "{err}");
    }
}
