//! Shared machinery: owned-local enumeration, slab packing, the generic
//! split-phase vectorized pairwise exchange engine, and binomial trees.
//!
//! Every primitive vectorizes its messages — all elements travelling
//! between one (source, destination) pair are packed into a single message
//! (paper §7, optimization 1). Packing and unpacking charge the machine's
//! per-byte copy cost; the wire charges α + β·bytes through the transport.
//!
//! The workhorse is [`ExchangeOp`], a genuine split-phase [`CommOp`]:
//! `post` packs and posts every send (senders pay copy + α) and posts the
//! matching receives; `finish` completes the receives (receiver clocks
//! advance to the arrival times) and unpacks. The blocking [`exchange`]
//! wrapper is post-then-finish with nothing in between — bit-identical
//! virtual time to the pre-redesign blocking loop.

use std::borrow::Cow;
use std::collections::BTreeMap;

use f90d_distrib::Dad;
use f90d_machine::{ArrayData, Machine, RecvHandle, Transport, Value};

use crate::op::{CommError, CommOp, CommResult};

/// Local indices (template-local numbering) of the elements of array
/// dimension `d` owned by grid coordinate `coord`, in increasing global
/// order.
pub fn owned_dim_locals(dad: &Dad, d: usize, coord: i64) -> Vec<i64> {
    let dm = &dad.dims[d];
    if !dm.is_distributed() {
        return (0..dm.extent).collect();
    }
    (0..dm.extent)
        .filter(|&i| dm.proc_of(i) == coord)
        .map(|i| dm.local_of(i))
        .collect()
}

/// Per-dimension owned locals on the node at grid `coords`.
pub fn owned_locals_per_dim(dad: &Dad, coords: &[i64]) -> Vec<Vec<i64>> {
    (0..dad.rank())
        .map(|d| {
            let c = dad.dims[d].grid_axis.map_or(0, |a| coords[a]);
            owned_dim_locals(dad, d, c)
        })
        .collect()
}

/// Iterate the cartesian product of per-dim index lists in row-major
/// order, calling `f` with each combined index vector.
pub fn cartesian(lists: &[Vec<i64>], mut f: impl FnMut(&[i64])) {
    if lists.iter().any(|l| l.is_empty()) {
        return;
    }
    let mut cursor = vec![0usize; lists.len()];
    let mut idx: Vec<i64> = lists.iter().map(|l| l[0]).collect();
    loop {
        f(&idx);
        let mut d = lists.len();
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            cursor[d] += 1;
            if cursor[d] < lists[d].len() {
                idx[d] = lists[d][cursor[d]];
                break;
            }
            cursor[d] = 0;
            idx[d] = lists[d][0];
        }
    }
}

/// One element movement between nodes: flat padded offsets into the
/// source array on the source node and the destination array on the
/// destination node.
pub type PairMoves = BTreeMap<(i64, i64), Vec<(usize, usize)>>;

/// A split-phase vectorized pairwise exchange: for every `(from, to)`
/// pair of `moves`, pack the listed source elements of array `src` into
/// one message and unpack into the listed offsets of array `dst` on the
/// destination node. `from == to` pairs are local copies charged at
/// memcpy rate (performed at post time — ghost copies from a node's own
/// block never wait on the wire).
///
/// `src` and `dst` may name the same array only if no (from, to) pair has
/// overlapping src/dst offsets on one node; redistribution avoids this by
/// staging through a fresh array.
#[derive(Debug)]
pub struct ExchangeOp<'a> {
    src: String,
    dst: String,
    moves: Cow<'a, PairMoves>,
    /// Posted receives, in deterministic pair order.
    pending: Vec<((i64, i64), RecvHandle)>,
    posted: bool,
}

impl<'a> ExchangeOp<'a> {
    /// Plan an exchange over an owned move table (split-phase callers
    /// that outlive the planning scope).
    pub fn new(src: impl Into<String>, dst: impl Into<String>, moves: PairMoves) -> Self {
        Self::with_moves(src, dst, Cow::Owned(moves))
    }

    /// Plan an exchange over a borrowed move table (blocking wrappers and
    /// schedule executors — no clone on the hot path).
    pub fn borrowed(src: impl Into<String>, dst: impl Into<String>, moves: &'a PairMoves) -> Self {
        Self::with_moves(src, dst, Cow::Borrowed(moves))
    }

    fn with_moves(
        src: impl Into<String>,
        dst: impl Into<String>,
        moves: Cow<'a, PairMoves>,
    ) -> Self {
        ExchangeOp {
            src: src.into(),
            dst: dst.into(),
            moves,
            pending: Vec::new(),
            posted: false,
        }
    }

    /// Total number of elements moved between distinct nodes.
    pub fn remote_elements(&self) -> usize {
        self.moves
            .iter()
            .filter(|((f, t), _)| f != t)
            .map(|(_, v)| v.len())
            .sum()
    }
}

impl CommOp for ExchangeOp<'_> {
    type Output = ();

    /// Perform the local copies, then pack and post one send per remote
    /// (from, to) pair and post the matching receive. Senders pay the
    /// packing copy cost and the startup α; receivers pay nothing yet.
    fn post(&mut self, m: &mut Machine) -> CommResult<()> {
        if self.posted {
            return Err(CommError("exchange posted twice".into()));
        }
        self.posted = true;
        let tag = m.fresh_tag();
        let copy_rate = m.spec().time_copy_byte;
        // Sends (and local copies) in deterministic pair order.
        for (&(from, to), elems) in self.moves.iter() {
            if elems.is_empty() {
                continue;
            }
            if from == to {
                let mem = &mut m.mems[from as usize];
                if self.src == self.dst {
                    let vals: Vec<Value> = {
                        let a = mem.array(&self.src);
                        elems.iter().map(|&(s, _)| a.get_flat(s)).collect()
                    };
                    let a = mem.array_mut(&self.dst);
                    for (&(_, d), v) in elems.iter().zip(vals) {
                        a.set_flat(d, v);
                    }
                } else {
                    let (s_arr, d_arr) = mem.two_arrays_mut(&self.src, &self.dst);
                    for &(so, do_) in elems {
                        d_arr.set_flat(do_, s_arr.get_flat(so));
                    }
                }
                let bytes =
                    elems.len() as i64 * m.mems[from as usize].array(&self.dst).elem_type().bytes();
                m.transport.charge_compute(from, copy_rate * bytes as f64);
                continue;
            }
            // Pack.
            let payload = {
                let a = m.mems[from as usize].array(&self.src);
                let mut data = ArrayData::zeros(a.elem_type(), elems.len());
                for (k, &(so, _)) in elems.iter().enumerate() {
                    data.set(k, a.get_flat(so));
                }
                data
            };
            let bytes = payload.len() as i64 * payload.elem_type().bytes();
            m.transport.charge_compute(from, copy_rate * bytes as f64);
            m.transport.post_send(from, to, tag, payload);
            let h = m.transport.post_recv(to, from, tag);
            self.pending.push(((from, to), h));
        }
        Ok(())
    }

    /// Complete every posted receive in pair order, charge the unpack
    /// copy, and deposit the elements.
    fn finish(self, m: &mut Machine) -> CommResult<()> {
        if !self.posted {
            return Err(CommError("exchange finished before post".into()));
        }
        let copy_rate = m.spec().time_copy_byte;
        for (pair, h) in self.pending {
            let payload = m.transport.complete(h)?;
            let (_, to) = pair;
            let bytes = payload.len() as i64 * payload.elem_type().bytes();
            m.transport.charge_compute(to, copy_rate * bytes as f64);
            let elems = &self.moves[&pair];
            let a = m.mems[to as usize].array_mut(&self.dst);
            for (k, &(_, do_)) in elems.iter().enumerate() {
                a.set_flat(do_, payload.get(k));
            }
        }
        Ok(())
    }
}

/// Blocking wrapper: post-then-finish with no compute in between —
/// virtual metrics bit-identical to the pre-redesign blocking exchange.
pub fn exchange(m: &mut Machine, src: &str, dst: &str, moves: &PairMoves) -> CommResult<()> {
    let mut op = ExchangeOp::borrowed(src, dst, moves);
    op.post(m)?;
    op.finish(m)
}

/// Binomial-tree broadcast of a payload from `members[root_pos]` to every
/// member, `O(log F)` message stages. `store` is invoked on every member
/// (including the root) to deposit the payload into that node's memory.
///
/// Stages depend on each other, so the tree completes within this call
/// (zero-width overlap window); each edge is still a posted
/// send/receive/complete triple so completion faults surface as errors.
pub fn tree_broadcast(
    m: &mut Machine,
    members: &[i64],
    root_pos: usize,
    payload: ArrayData,
    mut store: impl FnMut(&mut Machine, i64, &ArrayData),
) -> CommResult<()> {
    let f = members.len();
    assert!(root_pos < f);
    let tag = m.fresh_tag();
    store(m, members[root_pos], &payload);
    if f <= 1 {
        return Ok(());
    }
    let copy_rate = m.spec().time_copy_byte;
    let bytes = payload.len() as i64 * payload.elem_type().bytes();
    let rel = |pos: usize| members[(root_pos + pos) % f];
    let mut step = 1;
    while step < f {
        for s in 0..step.min(f - step) {
            let t = s + step;
            if t < f {
                let (from, to) = (rel(s), rel(t));
                m.transport.charge_compute(from, copy_rate * bytes as f64);
                m.transport.post_send(from, to, tag, payload.clone());
                let h = m.transport.post_recv(to, from, tag);
                let got = m.transport.complete(h)?;
                m.transport.charge_compute(to, copy_rate * bytes as f64);
                store(m, to, &got);
            }
        }
        step *= 2;
    }
    Ok(())
}

/// Binomial-tree combine toward `members[0]`: `fold(acc, contribution)`
/// merges payloads pairwise; returns the fully combined payload (present
/// only at `members[0]`).
pub fn tree_reduce(
    m: &mut Machine,
    members: &[i64],
    mut contributions: Vec<ArrayData>,
    fold: impl Fn(&mut ArrayData, &ArrayData),
) -> CommResult<ArrayData> {
    let f = members.len();
    assert_eq!(contributions.len(), f);
    assert!(f > 0);
    let tag = m.fresh_tag();
    let copy_rate = m.spec().time_copy_byte;
    // Standard binomial: at each round, odd multiples of `step` send to
    // the even multiple below them.
    let mut step = 1;
    while step < f {
        let mut s = 0;
        while s + step < f {
            let (to, from) = (members[s], members[s + step]);
            let payload = contributions[s + step].clone();
            let bytes = payload.len() as i64 * payload.elem_type().bytes();
            m.transport.charge_compute(from, copy_rate * bytes as f64);
            m.transport.post_send(from, to, tag, payload);
            let h = m.transport.post_recv(to, from, tag);
            let got = m.transport.complete(h)?;
            // Charge the combine itself as element ops.
            m.transport.charge_elem_ops(to, got.len() as i64);
            let mut acc = std::mem::replace(&mut contributions[s], ArrayData::Int(vec![]));
            fold(&mut acc, &got);
            contributions[s] = acc;
            s += step * 2;
        }
        step *= 2;
    }
    Ok(contributions.swap_remove(0))
}

/// The grid fiber (member ranks) along `axis` through the node at
/// `coords`, plus this node's position in it.
pub fn fiber_through(m: &Machine, coords: &[i64], axis: usize) -> (Vec<i64>, usize) {
    let members = m.grid.fiber(coords, axis);
    let me = m.grid.rank_of(coords);
    let pos = members
        .iter()
        .position(|&r| r == me)
        .expect("node lies on its own fiber");
    (members, pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use f90d_distrib::{DadBuilder, DistKind, ProcGrid};
    use f90d_machine::{ElemType, LocalArray, MachineSpec};

    fn mk_machine(p: i64) -> Machine {
        Machine::new(MachineSpec::ideal(), ProcGrid::new(&[p]))
    }

    #[test]
    fn owned_dim_locals_block() {
        let dad = DadBuilder::new("A", &[10])
            .distribute(&[DistKind::Block])
            .grid(ProcGrid::new(&[4]))
            .build()
            .unwrap();
        assert_eq!(owned_dim_locals(&dad, 0, 0), vec![0, 1, 2]);
        assert_eq!(owned_dim_locals(&dad, 0, 3), vec![0]);
    }

    #[test]
    fn cartesian_row_major() {
        let lists = vec![vec![0, 1], vec![5, 6, 7]];
        let mut seen = Vec::new();
        cartesian(&lists, |idx| seen.push(idx.to_vec()));
        assert_eq!(seen.len(), 6);
        assert_eq!(seen[0], vec![0, 5]);
        assert_eq!(seen[1], vec![0, 6]);
        assert_eq!(seen[3], vec![1, 5]);
    }

    #[test]
    fn cartesian_empty_list_yields_nothing() {
        let mut n = 0;
        cartesian(&[vec![], vec![1]], |_| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn exchange_moves_elements() {
        let mut m = mk_machine(2);
        for mem in &mut m.mems {
            mem.insert_array("S", LocalArray::zeros(ElemType::Real, &[4]));
            mem.insert_array("D", LocalArray::zeros(ElemType::Real, &[4]));
        }
        m.mems[0].array_mut("S").set(&[1], Value::Real(42.0));
        let mut moves = PairMoves::new();
        moves.insert((0, 1), vec![(1, 2)]);
        exchange(&mut m, "S", "D", &moves).unwrap();
        assert_eq!(m.mems[1].array("D").get(&[2]), Value::Real(42.0));
        assert_eq!(m.transport.messages, 1);
    }

    #[test]
    fn exchange_local_copy_same_array() {
        let mut m = mk_machine(1);
        m.mems[0].insert_array("A", LocalArray::zeros(ElemType::Int, &[3]));
        m.mems[0].array_mut("A").set(&[0], Value::Int(9));
        let mut moves = PairMoves::new();
        moves.insert((0, 0), vec![(0, 2)]);
        exchange(&mut m, "A", "A", &moves).unwrap();
        assert_eq!(m.mems[0].array("A").get(&[2]), Value::Int(9));
        assert_eq!(m.transport.messages, 0);
    }

    #[test]
    fn split_phase_exchange_overlaps_compute() {
        // Same exchange, two drivers: blocking post+finish vs compute
        // charged between post and finish. The data motion is identical;
        // the overlapped receiver finishes earlier or equal.
        let spec = MachineSpec::ipsc860();
        let build = |m: &mut Machine| {
            for mem in &mut m.mems {
                mem.insert_array("S", LocalArray::zeros(ElemType::Real, &[1024]));
                mem.insert_array("D", LocalArray::zeros(ElemType::Real, &[1024]));
            }
            let mut moves = PairMoves::new();
            moves.insert((0, 1), (0..1024).map(|k| (k, k)).collect());
            moves
        };
        // Blocking: exchange then compute.
        let mut mb = Machine::new(spec.clone(), ProcGrid::new(&[2]));
        let moves = build(&mut mb);
        exchange(&mut mb, "S", "D", &moves).unwrap();
        mb.transport.charge_elem_ops(1, 4096);
        // Overlapped: post, compute, finish.
        let mut mo = Machine::new(spec, ProcGrid::new(&[2]));
        let moves = build(&mut mo);
        let mut op = ExchangeOp::new("S", "D", moves);
        op.post(&mut mo).unwrap();
        mo.transport.charge_elem_ops(1, 4096);
        op.finish(&mut mo).unwrap();
        assert!(
            mo.transport.clock(1) < mb.transport.clock(1),
            "overlap must hide wire time"
        );
        assert_eq!(mo.transport.messages, mb.transport.messages);
        assert_eq!(mo.transport.bytes, mb.transport.bytes);
        // Sender clocks are identical — it only ever pays copy + alpha.
        assert_eq!(
            mo.transport.clock(0).to_bits(),
            mb.transport.clock(0).to_bits()
        );
    }

    #[test]
    fn exchange_post_twice_and_unposted_finish_error() {
        let mut m = mk_machine(2);
        for mem in &mut m.mems {
            mem.insert_array("S", LocalArray::zeros(ElemType::Real, &[1]));
        }
        let mut op = ExchangeOp::new("S", "S", PairMoves::new());
        assert!(op.post(&mut m).is_ok());
        assert!(op.post(&mut m).is_err());
        let op2 = ExchangeOp::new("S", "S", PairMoves::new());
        assert!(op2.finish(&mut m).is_err());
    }

    #[test]
    fn exchange_reset_between_post_and_finish_is_an_error() {
        // MailboxTransport::reset invalidates outstanding handles; the
        // dangling exchange surfaces it as a structured CommError.
        let mut m = mk_machine(2);
        for mem in &mut m.mems {
            mem.insert_array("S", LocalArray::zeros(ElemType::Real, &[4]));
            mem.insert_array("D", LocalArray::zeros(ElemType::Real, &[4]));
        }
        let mut moves = PairMoves::new();
        moves.insert((0, 1), vec![(0, 0)]);
        let mut op = ExchangeOp::new("S", "D", moves);
        op.post(&mut m).unwrap();
        m.reset_time();
        let err = op.finish(&mut m).unwrap_err();
        assert!(err.0.contains("reset"), "{err}");
    }

    #[test]
    fn tree_broadcast_reaches_everyone_logarithmically() {
        for p in [1i64, 2, 3, 5, 8, 16] {
            let mut m = mk_machine(p);
            for mem in &mut m.mems {
                mem.insert_array("X", LocalArray::zeros(ElemType::Real, &[1]));
            }
            let mut payload = ArrayData::zeros(ElemType::Real, 1);
            payload.set(0, Value::Real(7.0));
            let members: Vec<i64> = (0..p).collect();
            tree_broadcast(&mut m, &members, 0, payload, |m, r, data| {
                let v = data.get(0);
                m.mems[r as usize].array_mut("X").set(&[0], v);
            })
            .unwrap();
            for r in 0..p {
                assert_eq!(m.mems[r as usize].array("X").get(&[0]), Value::Real(7.0));
            }
            assert_eq!(m.transport.messages, (p - 1) as u64);
        }
    }

    #[test]
    fn tree_broadcast_nonzero_root() {
        let mut m = mk_machine(4);
        for mem in &mut m.mems {
            mem.insert_array("X", LocalArray::zeros(ElemType::Int, &[1]));
        }
        let mut payload = ArrayData::zeros(ElemType::Int, 1);
        payload.set(0, Value::Int(5));
        tree_broadcast(&mut m, &[0, 1, 2, 3], 2, payload, |m, r, d| {
            let v = d.get(0);
            m.mems[r as usize].array_mut("X").set(&[0], v);
        })
        .unwrap();
        for r in 0..4 {
            assert_eq!(m.mems[r as usize].array("X").get(&[0]), Value::Int(5));
        }
    }

    #[test]
    fn tree_broadcast_log_depth_cost() {
        // With ideal spec both alpha and beta are zero; use ipsc to check
        // the elapsed time is O(log P) startups, not O(P).
        let mut m = Machine::new(MachineSpec::ipsc860(), ProcGrid::new(&[16]));
        let payload = ArrayData::zeros(ElemType::Real, 1);
        let members: Vec<i64> = (0..16).collect();
        tree_broadcast(&mut m, &members, 0, payload, |_, _, _| {}).unwrap();
        let alpha = m.spec().alpha;
        // 4 stages of (alpha + small) each; definitely below 6 alphas and
        // above 3.
        assert!(m.elapsed() < 6.0 * (alpha + 50e-6));
        assert!(m.elapsed() > 3.0 * alpha);
    }

    #[test]
    fn tree_reduce_combines_all() {
        for p in [1usize, 2, 3, 7, 8] {
            let mut m = mk_machine(p as i64);
            let members: Vec<i64> = (0..p as i64).collect();
            let contributions: Vec<ArrayData> = (0..p)
                .map(|r| {
                    let mut d = ArrayData::zeros(ElemType::Real, 1);
                    d.set(0, Value::Real(r as f64));
                    d
                })
                .collect();
            let total = tree_reduce(&mut m, &members, contributions, |acc, x| {
                let s = acc.get(0).as_real() + x.get(0).as_real();
                acc.set(0, Value::Real(s));
            })
            .unwrap();
            let expect = (0..p).sum::<usize>() as f64;
            assert_eq!(total.get(0).as_real(), expect, "P={p}");
        }
    }
}
