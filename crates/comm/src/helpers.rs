//! Shared machinery: owned-local enumeration, slab packing, the generic
//! vectorized pairwise exchange engine, and binomial trees.
//!
//! Every primitive vectorizes its messages — all elements travelling
//! between one (source, destination) pair are packed into a single message
//! (paper §7, optimization 1). Packing and unpacking charge the machine's
//! per-byte copy cost; the wire charges α + β·bytes through the transport.

use std::collections::BTreeMap;

use f90d_distrib::Dad;
use f90d_machine::{ArrayData, Machine, Transport, Value};

/// Local indices (template-local numbering) of the elements of array
/// dimension `d` owned by grid coordinate `coord`, in increasing global
/// order.
pub fn owned_dim_locals(dad: &Dad, d: usize, coord: i64) -> Vec<i64> {
    let dm = &dad.dims[d];
    if !dm.is_distributed() {
        return (0..dm.extent).collect();
    }
    (0..dm.extent)
        .filter(|&i| dm.proc_of(i) == coord)
        .map(|i| dm.local_of(i))
        .collect()
}

/// Per-dimension owned locals on the node at grid `coords`.
pub fn owned_locals_per_dim(dad: &Dad, coords: &[i64]) -> Vec<Vec<i64>> {
    (0..dad.rank())
        .map(|d| {
            let c = dad.dims[d].grid_axis.map_or(0, |a| coords[a]);
            owned_dim_locals(dad, d, c)
        })
        .collect()
}

/// Iterate the cartesian product of per-dim index lists in row-major
/// order, calling `f` with each combined index vector.
pub fn cartesian(lists: &[Vec<i64>], mut f: impl FnMut(&[i64])) {
    if lists.iter().any(|l| l.is_empty()) {
        return;
    }
    let mut cursor = vec![0usize; lists.len()];
    let mut idx: Vec<i64> = lists.iter().map(|l| l[0]).collect();
    loop {
        f(&idx);
        let mut d = lists.len();
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            cursor[d] += 1;
            if cursor[d] < lists[d].len() {
                idx[d] = lists[d][cursor[d]];
                break;
            }
            cursor[d] = 0;
            idx[d] = lists[d][0];
        }
    }
}

/// One element movement between nodes: flat padded offsets into the
/// source array on the source node and the destination array on the
/// destination node.
pub type PairMoves = BTreeMap<(i64, i64), Vec<(usize, usize)>>;

/// Execute a set of vectorized pairwise element moves: for every
/// `(from, to)` pair, pack the listed source elements into one message,
/// send, and unpack into the listed destination offsets. `from == to`
/// pairs are local copies charged at memcpy rate.
///
/// `src` and `dst` may name the same array only if no (from,to) pair has
/// overlapping src/dst offsets on one node; redistribution avoids this by
/// staging through a fresh array.
pub fn exchange(m: &mut Machine, src: &str, dst: &str, moves: &PairMoves) {
    let tag = m.fresh_tag();
    let copy_rate = m.spec().time_copy_byte;
    // Sends (and local copies) in deterministic pair order.
    for (&(from, to), elems) in moves.iter() {
        if elems.is_empty() {
            continue;
        }
        if from == to {
            let mem = &mut m.mems[from as usize];
            if src == dst {
                let vals: Vec<Value> = {
                    let a = mem.array(src);
                    elems.iter().map(|&(s, _)| a.get_flat(s)).collect()
                };
                let a = mem.array_mut(dst);
                for (&(_, d), v) in elems.iter().zip(vals) {
                    a.set_flat(d, v);
                }
            } else {
                let (s_arr, d_arr) = mem.two_arrays_mut(src, dst);
                for &(so, do_) in elems {
                    d_arr.set_flat(do_, s_arr.get_flat(so));
                }
            }
            let bytes = elems.len() as i64 * m.mems[from as usize].array(dst).elem_type().bytes();
            m.transport.charge_compute(from, copy_rate * bytes as f64);
            continue;
        }
        // Pack.
        let payload = {
            let a = m.mems[from as usize].array(src);
            let mut data = ArrayData::zeros(a.elem_type(), elems.len());
            for (k, &(so, _)) in elems.iter().enumerate() {
                data.set(k, a.get_flat(so));
            }
            data
        };
        let bytes = payload.len() as i64 * payload.elem_type().bytes();
        m.transport.charge_compute(from, copy_rate * bytes as f64);
        m.transport.send(from, to, tag, payload);
    }
    // Receives.
    for (&(from, to), elems) in moves.iter() {
        if elems.is_empty() || from == to {
            continue;
        }
        let payload = m.transport.recv(to, from, tag);
        let bytes = payload.len() as i64 * payload.elem_type().bytes();
        m.transport.charge_compute(to, copy_rate * bytes as f64);
        let a = m.mems[to as usize].array_mut(dst);
        for (k, &(_, do_)) in elems.iter().enumerate() {
            a.set_flat(do_, payload.get(k));
        }
    }
}

/// Binomial-tree broadcast of a payload from `members[root_pos]` to every
/// member, `O(log F)` message stages. `store` is invoked on every member
/// (including the root) to deposit the payload into that node's memory.
pub fn tree_broadcast(
    m: &mut Machine,
    members: &[i64],
    root_pos: usize,
    payload: ArrayData,
    mut store: impl FnMut(&mut Machine, i64, &ArrayData),
) {
    let f = members.len();
    assert!(root_pos < f);
    let tag = m.fresh_tag();
    store(m, members[root_pos], &payload);
    if f <= 1 {
        return;
    }
    let copy_rate = m.spec().time_copy_byte;
    let bytes = payload.len() as i64 * payload.elem_type().bytes();
    let rel = |pos: usize| members[(root_pos + pos) % f];
    let mut step = 1;
    while step < f {
        for s in 0..step.min(f - step) {
            let t = s + step;
            if t < f {
                let (from, to) = (rel(s), rel(t));
                m.transport.charge_compute(from, copy_rate * bytes as f64);
                m.transport.send(from, to, tag, payload.clone());
                let got = m.transport.recv(to, from, tag);
                m.transport.charge_compute(to, copy_rate * bytes as f64);
                store(m, to, &got);
            }
        }
        step *= 2;
    }
}

/// Binomial-tree combine toward `members[0]`: `fold(acc, contribution)`
/// merges payloads pairwise; returns the fully combined payload (present
/// only at `members[0]`).
pub fn tree_reduce(
    m: &mut Machine,
    members: &[i64],
    mut contributions: Vec<ArrayData>,
    fold: impl Fn(&mut ArrayData, &ArrayData),
) -> ArrayData {
    let f = members.len();
    assert_eq!(contributions.len(), f);
    assert!(f > 0);
    let tag = m.fresh_tag();
    let copy_rate = m.spec().time_copy_byte;
    // Standard binomial: at each round, odd multiples of `step` send to
    // the even multiple below them.
    let mut step = 1;
    while step < f {
        let mut s = 0;
        while s + step < f {
            let (to, from) = (members[s], members[s + step]);
            let payload = contributions[s + step].clone();
            let bytes = payload.len() as i64 * payload.elem_type().bytes();
            m.transport.charge_compute(from, copy_rate * bytes as f64);
            m.transport.send(from, to, tag, payload);
            let got = m.transport.recv(to, from, tag);
            // Charge the combine itself as element ops.
            m.transport.charge_elem_ops(to, got.len() as i64);
            let mut acc = std::mem::replace(&mut contributions[s], ArrayData::Int(vec![]));
            fold(&mut acc, &got);
            contributions[s] = acc;
            s += step * 2;
        }
        step *= 2;
    }
    contributions.swap_remove(0)
}

/// The grid fiber (member ranks) along `axis` through the node at
/// `coords`, plus this node's position in it.
pub fn fiber_through(m: &Machine, coords: &[i64], axis: usize) -> (Vec<i64>, usize) {
    let members = m.grid.fiber(coords, axis);
    let me = m.grid.rank_of(coords);
    let pos = members
        .iter()
        .position(|&r| r == me)
        .expect("node lies on its own fiber");
    (members, pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use f90d_distrib::{DadBuilder, DistKind, ProcGrid};
    use f90d_machine::{ElemType, LocalArray, MachineSpec};

    fn mk_machine(p: i64) -> Machine {
        Machine::new(MachineSpec::ideal(), ProcGrid::new(&[p]))
    }

    #[test]
    fn owned_dim_locals_block() {
        let dad = DadBuilder::new("A", &[10])
            .distribute(&[DistKind::Block])
            .grid(ProcGrid::new(&[4]))
            .build()
            .unwrap();
        assert_eq!(owned_dim_locals(&dad, 0, 0), vec![0, 1, 2]);
        assert_eq!(owned_dim_locals(&dad, 0, 3), vec![0]);
    }

    #[test]
    fn cartesian_row_major() {
        let lists = vec![vec![0, 1], vec![5, 6, 7]];
        let mut seen = Vec::new();
        cartesian(&lists, |idx| seen.push(idx.to_vec()));
        assert_eq!(seen.len(), 6);
        assert_eq!(seen[0], vec![0, 5]);
        assert_eq!(seen[1], vec![0, 6]);
        assert_eq!(seen[3], vec![1, 5]);
    }

    #[test]
    fn cartesian_empty_list_yields_nothing() {
        let mut n = 0;
        cartesian(&[vec![], vec![1]], |_| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn exchange_moves_elements() {
        let mut m = mk_machine(2);
        for mem in &mut m.mems {
            mem.insert_array("S", LocalArray::zeros(ElemType::Real, &[4]));
            mem.insert_array("D", LocalArray::zeros(ElemType::Real, &[4]));
        }
        m.mems[0].array_mut("S").set(&[1], Value::Real(42.0));
        let mut moves = PairMoves::new();
        moves.insert((0, 1), vec![(1, 2)]);
        exchange(&mut m, "S", "D", &moves);
        assert_eq!(m.mems[1].array("D").get(&[2]), Value::Real(42.0));
        assert_eq!(m.transport.messages, 1);
    }

    #[test]
    fn exchange_local_copy_same_array() {
        let mut m = mk_machine(1);
        m.mems[0].insert_array("A", LocalArray::zeros(ElemType::Int, &[3]));
        m.mems[0].array_mut("A").set(&[0], Value::Int(9));
        let mut moves = PairMoves::new();
        moves.insert((0, 0), vec![(0, 2)]);
        exchange(&mut m, "A", "A", &moves);
        assert_eq!(m.mems[0].array("A").get(&[2]), Value::Int(9));
        assert_eq!(m.transport.messages, 0);
    }

    #[test]
    fn tree_broadcast_reaches_everyone_logarithmically() {
        for p in [1i64, 2, 3, 5, 8, 16] {
            let mut m = mk_machine(p);
            for mem in &mut m.mems {
                mem.insert_array("X", LocalArray::zeros(ElemType::Real, &[1]));
            }
            let mut payload = ArrayData::zeros(ElemType::Real, 1);
            payload.set(0, Value::Real(7.0));
            let members: Vec<i64> = (0..p).collect();
            tree_broadcast(&mut m, &members, 0, payload, |m, r, data| {
                let v = data.get(0);
                m.mems[r as usize].array_mut("X").set(&[0], v);
            });
            for r in 0..p {
                assert_eq!(m.mems[r as usize].array("X").get(&[0]), Value::Real(7.0));
            }
            assert_eq!(m.transport.messages, (p - 1) as u64);
        }
    }

    #[test]
    fn tree_broadcast_nonzero_root() {
        let mut m = mk_machine(4);
        for mem in &mut m.mems {
            mem.insert_array("X", LocalArray::zeros(ElemType::Int, &[1]));
        }
        let mut payload = ArrayData::zeros(ElemType::Int, 1);
        payload.set(0, Value::Int(5));
        tree_broadcast(&mut m, &[0, 1, 2, 3], 2, payload, |m, r, d| {
            let v = d.get(0);
            m.mems[r as usize].array_mut("X").set(&[0], v);
        });
        for r in 0..4 {
            assert_eq!(m.mems[r as usize].array("X").get(&[0]), Value::Int(5));
        }
    }

    #[test]
    fn tree_broadcast_log_depth_cost() {
        // With ideal spec both alpha and beta are zero; use ipsc to check
        // the elapsed time is O(log P) startups, not O(P).
        let mut m = Machine::new(MachineSpec::ipsc860(), ProcGrid::new(&[16]));
        let payload = ArrayData::zeros(ElemType::Real, 1);
        let members: Vec<i64> = (0..16).collect();
        tree_broadcast(&mut m, &members, 0, payload, |_, _, _| {});
        let alpha = m.spec().alpha;
        // 4 stages of (alpha + small) each; definitely below 6 alphas and
        // above 3.
        assert!(m.elapsed() < 6.0 * (alpha + 50e-6));
        assert!(m.elapsed() > 3.0 * alpha);
    }

    #[test]
    fn tree_reduce_combines_all() {
        for p in [1usize, 2, 3, 7, 8] {
            let mut m = mk_machine(p as i64);
            let members: Vec<i64> = (0..p as i64).collect();
            let contributions: Vec<ArrayData> = (0..p)
                .map(|r| {
                    let mut d = ArrayData::zeros(ElemType::Real, 1);
                    d.set(0, Value::Real(r as f64));
                    d
                })
                .collect();
            let total = tree_reduce(&mut m, &members, contributions, |acc, x| {
                let s = acc.get(0).as_real() + x.get(0).as_real();
                acc.set(0, Value::Real(s));
            });
            let expect = (0..p).sum::<usize>() as f64;
            assert_eq!(total.get(0).as_real(), expect, "P={p}");
        }
    }
}
