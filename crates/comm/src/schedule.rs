//! Unstructured communication: inspector/executor schedules
//! (paper §5.3.2, after the PARTI runtime of Saltz et al.).
//!
//! The *inspector* (preprocessing loop) computes, per processor, the
//! send/receive processor lists and local index lists; the *executor*
//! carries out the exchange with fully vectorized messages. Three
//! schedule builders mirror the paper:
//!
//! * `schedule1` — `precomp_read`/`postcomp_write`: the subscript is an
//!   invertible function `f(i)`, so both senders and receivers enumerate
//!   their lists from **local** information only;
//! * `schedule2` — `gather`: receivers know what they need, senders don't;
//!   the inspector performs a fan-in exchange of request lists;
//! * `schedule3` — `scatter`: senders know what they produce, receivers
//!   don't; the inspector exchanges counts only (no separate local-index
//!   message, as the paper notes).
//!
//! A built [`Schedule`] is *reusable*: executing it again performs only
//! the data exchange, amortizing the inspector (paper §7, optimization 3).
//! The compiler's schedule-reuse optimization keys schedules by their
//! request pattern — see [`Schedule::signature`].

use std::collections::BTreeMap;

use f90d_machine::{ArrayData, Machine, Transport};

use crate::helpers::PairMoves;
use crate::op::CommResult;

/// Which inspector built the schedule (affects modelled preprocessing
/// cost, not executor semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleKind {
    /// `schedule1`: local-only preprocessing (invertible subscript).
    LocalOnly,
    /// `schedule2`: receivers fan requests in to owners.
    FanInRequests,
    /// `schedule3`: senders announce counts to receivers.
    SenderDriven,
}

impl ScheduleKind {
    /// The stats name the builder records (`schedule1`/`schedule2`/
    /// `schedule3`).
    pub fn stat_name(self) -> &'static str {
        match self {
            ScheduleKind::LocalOnly => "schedule1",
            ScheduleKind::FanInRequests => "schedule2",
            ScheduleKind::SenderDriven => "schedule3",
        }
    }
}

/// An executable communication schedule: vectorized element moves plus
/// bookkeeping for reuse.
#[derive(Debug, Clone)]
pub struct Schedule {
    kind: ScheduleKind,
    /// (src_rank, dst_rank) → ordered (src flat offset, dst flat offset).
    moves: PairMoves,
    /// Structural signature for reuse detection.
    sig: u64,
}

impl Schedule {
    /// The inspector family that built this schedule.
    pub fn kind(&self) -> ScheduleKind {
        self.kind
    }

    /// A structural hash of the move pattern: two FORALLs with identical
    /// access patterns over identically-distributed arrays produce equal
    /// signatures, which is what makes schedule reuse sound.
    pub fn signature(&self) -> u64 {
        self.sig
    }

    /// Total number of elements moved between distinct nodes.
    pub fn remote_elements(&self) -> usize {
        self.moves
            .iter()
            .filter(|((f, t), _)| f != t)
            .map(|(_, v)| v.len())
            .sum()
    }

    /// Number of point-to-point messages the executor will send.
    pub fn message_count(&self) -> usize {
        self.moves
            .iter()
            .filter(|((f, t), v)| f != t && !v.is_empty())
            .count()
    }
}

fn hash_moves(moves: &PairMoves) -> u64 {
    // FNV-1a over the move structure; deterministic across runs.
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x100000001b3);
    };
    for (&(f, t), elems) in moves {
        mix(f as u64);
        mix(t as u64);
        for &(s, d) in elems {
            mix(s as u64);
            mix(d as u64 ^ 0x9e3779b97f4a7c15);
        }
    }
    h
}

/// One element request: rank `requester` wants the element at flat offset
/// `src_off` on rank `owner` placed at flat offset `dst_off` in its
/// destination array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ElementReq {
    /// Rank that will receive the element.
    pub requester: i64,
    /// Rank that owns the element.
    pub owner: i64,
    /// Flat offset in the owner's source array.
    pub src_off: usize,
    /// Flat offset in the requester's destination array.
    pub dst_off: usize,
}

/// Build the executable schedule from a request list — the pure
/// data-structure half of an inspector, with no machine-time charges.
/// [`crate::sched_cache`] calls this on a miss and skips it on a hit;
/// the cost-model half ([`inspect`]) is charged on every run either way,
/// which is what keeps cached and uncached runs virtual-time identical.
pub fn build_schedule(kind: ScheduleKind, reqs: &[ElementReq]) -> Schedule {
    let mut moves: PairMoves = BTreeMap::new();
    for r in reqs {
        moves
            .entry((r.owner, r.requester))
            .or_default()
            .push((r.src_off, r.dst_off));
    }
    let sig = hash_moves(&moves);
    Schedule { kind, moves, sig }
}

/// The modelled cost of running `kind`'s inspector over `reqs`: records
/// the builder stat and charges the preprocessing loop (and, for
/// `schedule2`/`schedule3`, the real fan-in/count messages) to the
/// machine. Split from [`build_schedule`] so the schedule cache can
/// charge a run that skips the rebuild.
pub fn inspect(m: &mut Machine, kind: ScheduleKind, reqs: &[ElementReq]) -> CommResult<()> {
    m.stats.record(kind.stat_name());
    // schedule1/schedule2 preprocess on the requesters (read side);
    // schedule3 preprocesses on the producers.
    charge_inspector(m, kind, reqs, kind != ScheduleKind::SenderDriven)
}

/// Inspector cost model shared by the builders: each request element
/// costs a few ops in the preprocessing loop on its *requester* (for
/// reads) or *producer* (for writes); fan-in/count exchanges add real
/// messages through the transport.
fn charge_inspector(
    m: &mut Machine,
    kind: ScheduleKind,
    reqs: &[ElementReq],
    read_side: bool,
) -> CommResult<()> {
    // Local preprocessing loop: ~4 ops per element (proc-of, local-of,
    // list appends), charged where the loop runs.
    let mut per_rank: BTreeMap<i64, i64> = BTreeMap::new();
    for r in reqs {
        let runner = if read_side { r.requester } else { r.owner };
        *per_rank.entry(runner).or_insert(0) += 4;
    }
    for (rank, ops) in per_rank {
        m.transport.charge_elem_ops(rank, ops);
    }
    match kind {
        ScheduleKind::LocalOnly => {}
        ScheduleKind::FanInRequests => {
            // Receivers transmit their index lists to owners: one message
            // of 8 bytes per element per (requester → owner) pair.
            let tag = m.fresh_tag();
            let mut pairs: BTreeMap<(i64, i64), usize> = BTreeMap::new();
            for r in reqs {
                if r.requester != r.owner {
                    *pairs.entry((r.requester, r.owner)).or_insert(0) += 1;
                }
            }
            for (&(from, to), &n) in &pairs {
                m.transport
                    .post_send(from, to, tag, ArrayData::Int(vec![0; n]));
            }
            for &(from, to) in pairs.keys() {
                let h = m.transport.post_recv(to, from, tag);
                m.transport.complete(h)?;
            }
        }
        ScheduleKind::SenderDriven => {
            // Senders announce counts: one 8-byte message per pair.
            let tag = m.fresh_tag();
            let mut pairs: Vec<(i64, i64)> = reqs
                .iter()
                .filter(|r| r.requester != r.owner)
                .map(|r| (r.owner, r.requester))
                .collect();
            pairs.sort_unstable();
            pairs.dedup();
            for &(from, to) in &pairs {
                m.transport
                    .post_send(from, to, tag, ArrayData::Int(vec![0]));
            }
            for &(from, to) in &pairs {
                let h = m.transport.post_recv(to, from, tag);
                m.transport.complete(h)?;
            }
        }
    }
    Ok(())
}

/// `schedule1` (paper §5.3.2 example 1): invertible subscript — both
/// sides preprocess locally, no inspector communication.
pub fn schedule1(m: &mut Machine, reqs: &[ElementReq]) -> CommResult<Schedule> {
    inspect(m, ScheduleKind::LocalOnly, reqs)?;
    Ok(build_schedule(ScheduleKind::LocalOnly, reqs))
}

/// `schedule2` (paper §5.3.2 example 2): gather — receivers fan their
/// request lists in to the owners.
pub fn schedule2(m: &mut Machine, reqs: &[ElementReq]) -> CommResult<Schedule> {
    inspect(m, ScheduleKind::FanInRequests, reqs)?;
    Ok(build_schedule(ScheduleKind::FanInRequests, reqs))
}

/// `schedule3` (paper §5.3.2 example 3): scatter — senders know targets;
/// only counts are exchanged.
pub fn schedule3(m: &mut Machine, reqs: &[ElementReq]) -> CommResult<Schedule> {
    inspect(m, ScheduleKind::SenderDriven, reqs)?;
    Ok(build_schedule(ScheduleKind::SenderDriven, reqs))
}

/// Executor for read-side schedules: `precomp_read` when the schedule
/// came from `schedule1`, `gather` when from `schedule2`. Moves elements
/// from `src` (on owners) into `dst` (on requesters), one vectorized
/// message per processor pair.
pub fn execute_read(m: &mut Machine, sched: &Schedule, src: &str, dst: &str) -> CommResult<()> {
    m.stats.record(match sched.kind {
        ScheduleKind::LocalOnly => "precomp_read",
        _ => "gather",
    });
    crate::helpers::exchange(m, src, dst, &sched.moves)
}

/// Executor for write-side schedules: `postcomp_write` (`schedule1`) or
/// `scatter` (`schedule3`). Identical data motion with roles swapped:
/// producers send computed elements to the owners of the LHS.
pub fn execute_write(m: &mut Machine, sched: &Schedule, src: &str, dst: &str) -> CommResult<()> {
    m.stats.record(match sched.kind {
        ScheduleKind::LocalOnly => "postcomp_write",
        _ => "scatter",
    });
    crate::helpers::exchange(m, src, dst, &sched.moves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use f90d_distrib::ProcGrid;
    use f90d_machine::{ElemType, LocalArray, MachineSpec, Value};

    fn machine(p: i64) -> Machine {
        let mut m = Machine::new(MachineSpec::ideal(), ProcGrid::new(&[p]));
        for r in 0..p {
            let mut src = LocalArray::zeros(ElemType::Real, &[8]);
            for l in 0..8 {
                src.set(&[l], Value::Real((r * 100 + l) as f64));
            }
            m.mems[r as usize].insert_array("SRC", src);
            m.mems[r as usize].insert_array("DST", LocalArray::zeros(ElemType::Real, &[8]));
        }
        m
    }

    #[test]
    fn gather_moves_requested_elements() {
        let mut m = machine(3);
        // rank 0 wants SRC[2] of rank 1 into DST[0], SRC[3] of rank 2 into DST[1]
        let reqs = vec![
            ElementReq {
                requester: 0,
                owner: 1,
                src_off: 2,
                dst_off: 0,
            },
            ElementReq {
                requester: 0,
                owner: 2,
                src_off: 3,
                dst_off: 1,
            },
            ElementReq {
                requester: 2,
                owner: 0,
                src_off: 5,
                dst_off: 7,
            },
        ];
        let sched = schedule2(&mut m, &reqs).unwrap();
        assert_eq!(sched.message_count(), 3);
        assert_eq!(sched.remote_elements(), 3);
        execute_read(&mut m, &sched, "SRC", "DST").unwrap();
        assert_eq!(m.mems[0].array("DST").get(&[0]), Value::Real(102.0));
        assert_eq!(m.mems[0].array("DST").get(&[1]), Value::Real(203.0));
        assert_eq!(m.mems[2].array("DST").get(&[7]), Value::Real(5.0));
    }

    #[test]
    fn messages_are_vectorized_per_pair() {
        let mut m = machine(2);
        // 5 elements all from rank 1 to rank 0 → exactly one data message.
        let reqs: Vec<ElementReq> = (0..5)
            .map(|k| ElementReq {
                requester: 0,
                owner: 1,
                src_off: k,
                dst_off: k,
            })
            .collect();
        let sched = schedule1(&mut m, &reqs).unwrap();
        let before = m.transport.messages;
        execute_read(&mut m, &sched, "SRC", "DST").unwrap();
        assert_eq!(m.transport.messages - before, 1, "vectorization failed");
    }

    #[test]
    fn schedule1_inspector_is_local() {
        let mut m = machine(4);
        let reqs = vec![ElementReq {
            requester: 0,
            owner: 3,
            src_off: 0,
            dst_off: 0,
        }];
        let msgs_before = m.transport.messages;
        schedule1(&mut m, &reqs).unwrap();
        assert_eq!(
            m.transport.messages, msgs_before,
            "schedule1 must not communicate"
        );
    }

    #[test]
    fn schedule2_inspector_communicates() {
        let mut m = machine(4);
        let reqs = vec![ElementReq {
            requester: 0,
            owner: 3,
            src_off: 0,
            dst_off: 0,
        }];
        let msgs_before = m.transport.messages;
        schedule2(&mut m, &reqs).unwrap();
        assert!(
            m.transport.messages > msgs_before,
            "schedule2 fans in requests"
        );
    }

    #[test]
    fn reuse_skips_inspector_cost() {
        let mut m = machine(4);
        let reqs: Vec<ElementReq> = (0..32)
            .map(|k| ElementReq {
                requester: k % 4,
                owner: (k + 1) % 4,
                src_off: (k / 4) as usize,
                dst_off: (k / 4) as usize,
            })
            .collect();
        let sched = schedule2(&mut m, &reqs).unwrap();
        m.reset_time();
        execute_read(&mut m, &sched, "SRC", "DST").unwrap();
        let exec_only = m.elapsed();
        m.reset_time();
        let sched2 = schedule2(&mut m, &reqs).unwrap();
        execute_read(&mut m, &sched2, "SRC", "DST").unwrap();
        let with_inspector = m.elapsed();
        assert!(with_inspector > exec_only, "inspector must cost something");
        assert_eq!(sched.signature(), sched2.signature());
    }

    #[test]
    fn signatures_differ_for_different_patterns() {
        let mut m = machine(2);
        let a = schedule1(
            &mut m,
            &[ElementReq {
                requester: 0,
                owner: 1,
                src_off: 0,
                dst_off: 0,
            }],
        )
        .unwrap();
        let b = schedule1(
            &mut m,
            &[ElementReq {
                requester: 0,
                owner: 1,
                src_off: 1,
                dst_off: 0,
            }],
        )
        .unwrap();
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn scatter_writes_to_owners() {
        let mut m = machine(2);
        // rank 0 produced DST-values in SRC[0..2] destined for rank 1.
        let reqs = vec![
            ElementReq {
                requester: 1,
                owner: 0,
                src_off: 0,
                dst_off: 4,
            },
            ElementReq {
                requester: 1,
                owner: 0,
                src_off: 1,
                dst_off: 5,
            },
        ];
        let sched = schedule3(&mut m, &reqs).unwrap();
        execute_write(&mut m, &sched, "SRC", "DST").unwrap();
        assert_eq!(m.mems[1].array("DST").get(&[4]), Value::Real(0.0));
        assert_eq!(m.mems[1].array("DST").get(&[5]), Value::Real(1.0));
    }

    #[test]
    fn local_requests_cost_no_messages() {
        let mut m = machine(2);
        let reqs = vec![ElementReq {
            requester: 0,
            owner: 0,
            src_off: 1,
            dst_off: 2,
        }];
        let sched = schedule2(&mut m, &reqs).unwrap();
        let before = m.transport.messages;
        execute_read(&mut m, &sched, "SRC", "DST").unwrap();
        assert_eq!(m.transport.messages, before);
        assert_eq!(m.mems[0].array("DST").get(&[2]), Value::Real(1.0));
        assert_eq!(sched.message_count(), 0);
    }
}
