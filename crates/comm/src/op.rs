//! The split-phase collective front end.
//!
//! Every collective in this crate is (or wraps) a [`CommOp`]: a planned
//! communication structure that is **posted** (sends leave, receives are
//! registered, the posting ranks pay only startup and packing costs) and
//! later **finished** (receive completions advance the receivers' clocks
//! to the arrival times, payloads are unpacked). Local compute charged
//! between `post` and `finish` genuinely hides wire time — the paper's
//! §5.1/§7 communication–computation overlap, now expressible at the
//! collective level.
//!
//! The historical one-shot collective functions
//! ([`crate::structured::overlap_shift`] and friends) survive as thin
//! post-then-finish wrappers whose virtual-time behaviour is bit-identical
//! to the pre-redesign blocking library.
//!
//! Errors: a completion that finds no matching message (or a handle
//! invalidated by a transport reset) surfaces as a [`CommError`] which the
//! executors convert to their own error types — no more panicking deep in
//! the collective library.

use f90d_machine::{Machine, TransportError};

/// Structured failure of a collective operation.
#[derive(Debug, Clone, PartialEq)]
pub struct CommError(pub String);

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for CommError {}

impl From<TransportError> for CommError {
    fn from(e: TransportError) -> Self {
        CommError(e.to_string())
    }
}

/// Result of a collective operation.
pub type CommResult<T> = Result<T, CommError>;

/// A split-phase collective: `post` launches the communication, `finish`
/// completes it and yields the output.
///
/// Single-round operations (the vectorized pairwise
/// [`crate::helpers::ExchangeOp`], and every shift/redistribution/schedule
/// executor built on it) genuinely split: between `post` and `finish` all
/// posted payloads are on the wire and the participating ranks are free
/// to compute. Multi-stage tree collectives (multicast, reductions,
/// concatenation) have internal stage dependencies, so their `post` is a
/// plan-only step and the staged exchange runs in `finish` — the
/// interface is uniform, the overlap window just has zero width for them.
pub trait CommOp {
    /// What `finish` yields.
    type Output;

    /// Launch the communication: pack and post sends, post receives.
    /// Calling `post` twice is an error.
    fn post(&mut self, m: &mut Machine) -> CommResult<()>;

    /// Complete the communication: wait for (complete) every posted
    /// receive, unpack payloads, return the output. Consumes the
    /// operation — a posted receive completes exactly once.
    fn finish(self, m: &mut Machine) -> CommResult<Self::Output>;
}
