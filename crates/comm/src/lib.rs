//! # f90d-comm — the collective communication library
//!
//! The Fortran 90D/HPF compiler "produces calls to collective
//! communication routines instead of generating individual processor send
//! and receive calls inside the compiled code" (paper §5). This crate is
//! that library. Everything here is written against the point-to-point
//! [`f90d_machine::Transport`] only, reproducing the paper's portability
//! layering: to move to another transport (their Express → PVM example),
//! only this crate's substrate changes.
//!
//! Every collective is (or wraps) a split-phase [`CommOp`] — `post()`
//! launches the communication, `finish()` completes it — so callers can
//! charge local computation between the two and genuinely hide wire time
//! (see [`op`]). The one-shot functions below are post-then-finish
//! wrappers with the pre-redesign blocking virtual-time behaviour, and
//! completion faults surface as [`CommError`]s rather than panics.
//! Phase-level plans ([`plan`]) go one step further: the ghost exchanges
//! of several consecutive FORALLs post together, with same-destination
//! messages coalesced into one wire transfer (PARTI-style aggregation,
//! paper §7 optimization 1 across statement boundaries).
//!
//! **Structured** primitives (paper §5.1) exploit the logical-grid
//! relationship between sender and receiver, so they need no preprocessing:
//!
//! * [`structured::transfer`] — single source grid line to single
//!   destination grid line (Fig. 4a);
//! * [`structured::multicast`] — broadcast along a grid dimension
//!   (Fig. 4b), binomial tree, `O(log P)` stages;
//! * [`structured::overlap_shift`] — shift boundary strips into the
//!   receiver's *overlap areas* (ghost cells) when the shift amount is a
//!   compile-time constant, avoiding intra-processor copies;
//! * [`structured::temporary_shift`] — shift by a runtime amount into a
//!   temporary;
//! * [`structured::multicast_shift`] — the fused composition of the two
//!   (paper §5.3.1 example 3);
//! * [`structured::concatenation`] — gather a distributed array onto every
//!   participating processor.
//!
//! **Reduction** trees ([`reduce`]) serve both the compiler (e.g. the
//! pivot search of Gaussian elimination) and the Table-3 reduction
//! intrinsics.
//!
//! **Unstructured** primitives (paper §5.3.2, after PARTI) use an
//! inspector/executor [`schedule::Schedule`]: `schedule1` needs only local
//! preprocessing (`precomp_read` / `postcomp_write`), `schedule2/3` must
//! exchange request lists first (`gather` / `scatter`). Messages are
//! *vectorized*: all elements for one (src, dst) pair travel in a single
//! message (paper §7 optimization 1). Schedules are reusable; executing a
//! saved schedule skips the preprocessing cost entirely (§7 optimization 3).
//! The process-wide [`sched_cache`] extends that reuse *across* runs:
//! executors fetch built schedules from a sharded full-pattern-keyed map
//! (skipping the wall-clock rebuild) while still charging the modelled
//! inspector cost per run, so virtual metrics are cache-independent.
//!
//! [`redist`] implements the block↔cyclic redistribution primitives used
//! at subroutine boundaries (paper §6).
//!
//! The [`driver`] module sits on top of all of the above: it is the
//! single backend-agnostic sequencer of the FORALL communication
//! lifecycle (per-statement ghost exchanges, split-phase overlap via a
//! [`driver::ComputeSink`], phase batching with per-statement fallback,
//! schedule selection, and end-of-run quiescence). Both executors drive
//! it; neither re-implements it.

#![warn(missing_docs)]

pub mod driver;
pub mod helpers;
pub mod op;
pub mod overlap;
pub mod plan;
pub mod redist;
pub mod reduce;
pub mod sched_cache;
pub mod schedule;
pub mod structured;

pub use driver::{CommDriver, ComputeSink, PhaseOutcome};
pub use op::{CommError, CommOp, CommResult};
pub use reduce::ReduceOp;
pub use sched_cache::{RunSchedules, SchedCache, SchedKey};
pub use schedule::{Schedule, ScheduleKind};
