//! The backend-agnostic FORALL communication driver.
//!
//! The paper's central claim is one portable run-time support system
//! under every compiled program (§6). This module is where that claim
//! is enforced in the code base: the full FORALL communication
//! lifecycle — per-statement ghost exchanges, the opt-in split-phase
//! overlap (`comm_compute_overlap`), phase-level batching
//! (`comm_plan`), unstructured schedule reuse, the rank-1 slab-temp
//! subscript contract, and the end-of-run quiescence check — is
//! sequenced **here**, once, and both executors (the tree walker in
//! `f90d-core` and the bytecode engine in `f90d-vm`) drive it through
//! the same entry points. The backends keep only evaluation: they hand
//! the driver a [`ComputeSink`] with interior/boundary element-loop
//! callbacks and never touch [`PhaseExchange`], `overlap_shift_moves`,
//! or the raw transport themselves (a guard test in `tests/` enforces
//! exactly that), so an orchestration bug can no longer be fixed in one
//! backend and survive in the other.
//!
//! Contracts preserved from the per-backend implementations, bit for
//! bit:
//! * [`CommDriver::phase_exchange`] batches a phase's deduplicated
//!   ghost exchanges through one coalesced [`PhaseExchange`]; a runtime
//!   planning refusal is reported as [`PhaseOutcome::Refused`] (and
//!   counted) so the caller can fall back to the always-correct
//!   per-statement path — the planner annotations are advisory.
//! * [`run_overlap`] posts every ghost exchange, runs the sink's
//!   interior compute **before** completing them (so the interior
//!   genuinely hides wire time), completes, runs the boundary slabs,
//!   and commits — the split geometry comes from the shared
//!   [`Margins`], so both backends agree exactly on which tuples are
//!   interior.

use std::sync::Arc;

use f90d_distrib::{ArrayDimMap, Dad};
use f90d_machine::{Machine, Transport};

use crate::op::{CommError, CommOp, CommResult};
use crate::overlap::{dims_overlap_compatible, Margins};
use crate::plan::{GhostSpec, PhaseExchange};
use crate::sched_cache::RunSchedules;
use crate::schedule::{ElementReq, Schedule, ScheduleKind};
use crate::structured;

/// Outcome of a batched phase exchange attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseOutcome {
    /// The coalesced exchange ran: every member's ghost cells are
    /// filled, so the members must execute with their preludes skipped.
    Exchanged,
    /// Runtime planning refused the batch (e.g. mixed element types).
    /// Nothing was posted; the caller must run the bit-identical
    /// per-statement fallback — every member's `pre` list is intact.
    Refused,
}

/// Per-run communication-orchestration state and counters.
///
/// Each backend owns one `CommDriver` for the lifetime of a run and
/// routes every FORALL comm-phase decision through it; the counters
/// surface in the run trace (`comm_plan {groups, fallbacks}` in
/// `results.json`) so a cell's batching behaviour is observable without
/// being gated.
#[derive(Debug, Default, Clone)]
pub struct CommDriver {
    /// Phases that executed as one coalesced exchange.
    groups: u64,
    /// Phases the runtime planner refused (per-statement fallback ran).
    fallbacks: u64,
}

impl CommDriver {
    /// A fresh driver with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// `(groups, fallbacks)`: coalesced phases executed vs runtime
    /// planning refusals that fell back to per-statement execution.
    pub fn counts(&self) -> (u64, u64) {
        (self.groups, self.fallbacks)
    }

    /// Execute one planner-formed comm phase's ghost exchanges as a
    /// single coalesced [`PhaseExchange`].
    ///
    /// `specs` is every member's exchange list in statement order,
    /// duplicates included — the driver deduplicates by
    /// `(array, dim, c)` (none of a phase's members writes an exchanged
    /// array, so repeated fills would carry identical data). On
    /// [`PhaseOutcome::Exchanged`] the caller runs the members with
    /// their preludes skipped; on [`PhaseOutcome::Refused`] nothing was
    /// posted and the caller runs the per-statement fallback.
    pub fn phase_exchange(
        &mut self,
        m: &mut Machine,
        specs: Vec<GhostSpec>,
    ) -> CommResult<PhaseOutcome> {
        let mut batch: Vec<GhostSpec> = Vec::with_capacity(specs.len());
        for s in specs {
            if batch
                .iter()
                .any(|b| b.arr == s.arr && b.dim == s.dim && b.c == s.c)
            {
                continue;
            }
            batch.push(s);
        }
        let mut op = match PhaseExchange::plan(m, batch) {
            Ok(op) => op,
            Err(_) => {
                self.fallbacks += 1;
                return Ok(PhaseOutcome::Refused);
            }
        };
        op.post(m)?;
        op.finish(m)?;
        self.groups += 1;
        Ok(PhaseOutcome::Exchanged)
    }
}

/// One blocking per-statement ghost exchange (the `overlap_shift`
/// prelude of an unbatched FORALL): fill the ghost cells of `arr` for a
/// compile-time shift by `c` along `dim`.
pub fn ghost_exchange(m: &mut Machine, arr: &str, dad: &Dad, dim: usize, c: i64) -> CommResult<()> {
    structured::overlap_shift(m, arr, dad, dim, c, false)
}

/// Map a FORALL's `overlap_shift` prelude onto per-loop-variable ghost
/// margins — the eligibility core of split-phase execution, shared so
/// the backends cannot drift on *which* FORALLs overlap.
///
/// `loop_dims[k]` is the LHS dimension map carried by loop variable `k`
/// when that variable is a stride-1 owner-computes partition (`None`
/// otherwise — such variables can never absorb a margin). Each shift in
/// `shifts` (`(shifted dimension map, shift constant)`) must land on
/// the first compatible loop variable per [`dims_overlap_compatible`];
/// any shift with no compatible variable makes the whole FORALL
/// ineligible (`None` — callers fall back to blocking execution).
pub fn stencil_margins(
    loop_dims: &[Option<&ArrayDimMap>],
    shifts: &[(&ArrayDimMap, i64)],
) -> Option<Margins> {
    let mut margins = Margins::new(loop_dims.len());
    for (sdm, amount) in shifts {
        let var = loop_dims
            .iter()
            .position(|ldm| ldm.is_some_and(|l| dims_overlap_compatible(l, sdm)))?;
        margins.add(var, *amount);
    }
    Some(margins)
}

/// The compute half a backend lends to [`run_overlap`]: the driver owns
/// *when* ghost exchanges post, complete, and commit; the sink owns
/// *how* elements are evaluated (tree walk vs bytecode) and *how* their
/// cost is charged.
///
/// Contract: `interior` runs (and charges) entirely before the posted
/// exchanges complete — that ordering is the latency hiding.
/// `boundary` runs after completion and must charge each rank's slabs
/// as **one** lump sum (both backends do, keeping their virtual clocks
/// bit-equal). Writes from both calls must be staged, not applied;
/// `commit` applies them together, preserving FORALL RHS-before-LHS
/// semantics across the phase split.
pub trait ComputeSink {
    /// The backend's error type.
    type Error: From<CommError>;

    /// Run the interior iterations: per rank, the plain cartesian
    /// product of `lists[rank]` (already restricted to the margin-safe
    /// interior). Charge each rank's cost as the backend normally would.
    fn interior(&mut self, m: &mut Machine, lists: &[Vec<Vec<i64>>]) -> Result<(), Self::Error>;

    /// Run the boundary slabs: per rank, each sub-product in
    /// `slabs[rank]`, charging the rank's slabs as one summed lump.
    fn boundary(
        &mut self,
        m: &mut Machine,
        slabs: &[Vec<Vec<Vec<i64>>>],
    ) -> Result<(), Self::Error>;

    /// Apply every staged write from both phases.
    fn commit(&mut self, m: &mut Machine) -> Result<(), Self::Error>;
}

/// Split-phase stencil execution (paper §5.1/§7 latency hiding), the
/// single implementation behind `comm_compute_overlap` on both
/// backends: post every ghost exchange in `shifts`, run the sink's
/// interior compute while the strips are on the wire, complete the
/// exchanges, run the boundary slabs that read the freshly filled ghost
/// cells, then commit both phases' staged writes. Array results are
/// bit-identical to blocking execution — only the virtual clocks
/// differ, which is the point.
///
/// `iter_lists` are the per-rank, per-variable iteration lists of the
/// full FORALL; the interior/boundary split comes from the shared
/// [`Margins`] geometry.
pub fn run_overlap<S: ComputeSink>(
    m: &mut Machine,
    shifts: &[GhostSpec],
    margins: &Margins,
    iter_lists: &[Vec<Vec<i64>>],
    sink: &mut S,
) -> Result<(), S::Error> {
    // 1. Post every ghost exchange: senders pay pack + α and are free.
    let mut posted = Vec::with_capacity(shifts.len());
    for s in shifts {
        posted.push(structured::overlap_shift_post(
            m, &s.arr, &s.dad, s.dim, s.c, false,
        )?);
    }
    // 2. Split each rank's iteration space once via the shared geometry.
    let interior: Vec<Vec<Vec<i64>>> = iter_lists
        .iter()
        .map(|lists| margins.interior_lists(lists))
        .collect();
    let boundary: Vec<Vec<Vec<Vec<i64>>>> = iter_lists
        .iter()
        .map(|lists| margins.boundary_slabs(lists))
        .collect();
    // 3. Interior compute, charged before the completions below so it
    // genuinely hides the wire time.
    sink.interior(m, &interior)?;
    // 4. Complete the ghost exchanges: each receiver's clock advances
    // to max(its post-interior clock, strip arrival).
    for op in posted {
        op.finish(m)?;
    }
    // 5. Boundary compute: only the shell tuples whose reads touch
    // ghost cells.
    sink.boundary(m, &boundary)?;
    // 6. Commit both phases' staged writes (FORALL RHS-before-LHS).
    sink.commit(m)
}

/// Build (or reuse, per-run and through the cross-run cache) the
/// schedule for an unstructured request list. For reads, `fast_path`
/// (= `local_only`) selects the local-only schedule over fan-in
/// requests; for writes (`is_write`), it (= `invertible`) selects
/// local-only over the sender-driven schedule. One mapping, used by
/// both backends' gather and scatter executors.
pub fn schedule(
    m: &mut Machine,
    rs: &mut RunSchedules,
    reqs: &[ElementReq],
    fast_path: bool,
    is_write: bool,
) -> CommResult<Arc<Schedule>> {
    let kind = if fast_path {
        ScheduleKind::LocalOnly
    } else if is_write {
        ScheduleKind::SenderDriven
    } else {
        ScheduleKind::FanInRequests
    };
    rs.schedule(m, kind, reqs, is_write)
}

/// The rank-1 slab-temp subscript contract, shared by every consumer of
/// a scalar-multicast slab temporary (the tree walker's element reader
/// and the VM lowering): which of a read's `nsubs` source subscripts
/// survive the dropped `fixed_dim`. `None` means the source was rank-1 —
/// the slab is the single dummy extent-1 dimension the multicast's
/// `slab_dad` pads in, and the consumer must index it with a constant
/// zero instead of an empty subscript list.
pub fn slab_kept_dims(nsubs: usize, fixed_dim: usize) -> Option<Vec<usize>> {
    let kept: Vec<usize> = (0..nsubs).filter(|&d| d != fixed_dim).collect();
    if kept.is_empty() {
        None
    } else {
        Some(kept)
    }
}

/// End-of-run transport quiescence check: leaked in-flight messages or
/// never-completed posted receives surface as a structured [`CommError`]
/// instead of being silently dropped. Both backends end every run here.
pub fn quiesce(m: &mut Machine) -> CommResult<()> {
    m.transport.quiescent_check().map_err(CommError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use f90d_distrib::{DadBuilder, DistKind, ProcGrid};
    use f90d_machine::{ElemType, LocalArray, MachineSpec, Value};

    /// 1-D machine with `names` BLOCK arrays, ghost width 2 both sides,
    /// array `k`'s element `i` = 1000k + i (same fixture as `plan.rs`).
    fn setup(n: i64, p: i64, names: &[&str]) -> (Machine, Dad) {
        let grid = ProcGrid::new(&[p]);
        let mut m = Machine::new(MachineSpec::ipsc860(), grid.clone());
        let dad = DadBuilder::new(names[0], &[n])
            .distribute(&[DistKind::Block])
            .grid(grid)
            .build()
            .unwrap();
        for (base, name) in names.iter().enumerate() {
            for rank in 0..m.nranks() {
                let coords = m.grid.coords_of(rank);
                let mut la = LocalArray::with_ghost(ElemType::Real, &dad.local_shape(), &[2], &[2]);
                for (g, l) in dad.owned_elements(&coords) {
                    la.set(&l, Value::Real((1000 * base as i64 + g[0]) as f64));
                }
                m.mems[rank as usize].insert_array(*name, la);
            }
        }
        (m, dad)
    }

    fn spec(dad: &Dad, name: &str, c: i64) -> GhostSpec {
        GhostSpec {
            arr: name.into(),
            dad: dad.clone(),
            dim: 0,
            c,
        }
    }

    /// Duplicate specs across phase members collapse to one exchange:
    /// the batched fill moves exactly the bytes of the deduplicated set
    /// and the driver counts one group.
    #[test]
    fn phase_exchange_dedups_and_counts_groups() {
        let (mut m_ref, dad) = setup(32, 4, &["A", "B"]);
        let mut drv_ref = CommDriver::new();
        let deduped = vec![spec(&dad, "A", 1), spec(&dad, "B", 1)];
        assert_eq!(
            drv_ref.phase_exchange(&mut m_ref, deduped).unwrap(),
            PhaseOutcome::Exchanged
        );

        let (mut m, dad) = setup(32, 4, &["A", "B"]);
        let mut drv = CommDriver::new();
        // Three members, two of them re-reading the same shifted A.
        let dup = vec![
            spec(&dad, "A", 1),
            spec(&dad, "A", 1),
            spec(&dad, "B", 1),
            spec(&dad, "A", 1),
        ];
        assert_eq!(
            drv.phase_exchange(&mut m, dup).unwrap(),
            PhaseOutcome::Exchanged
        );
        assert_eq!(drv.counts(), (1, 0));
        assert_eq!(m.transport.messages, m_ref.transport.messages);
        assert_eq!(m.transport.bytes, m_ref.transport.bytes);
        quiesce(&mut m).unwrap();
    }

    /// A mixed-element-type batch is refused: nothing posts, the
    /// fallback counter ticks, and the caller is free to run the
    /// per-statement path.
    #[test]
    fn phase_exchange_refusal_posts_nothing_and_counts_a_fallback() {
        let (mut m, dad) = setup(16, 2, &["A"]);
        for rank in 0..m.nranks() {
            let la = LocalArray::with_ghost(ElemType::Int, &dad.local_shape(), &[2], &[2]);
            m.mems[rank as usize].insert_array("K", la);
        }
        let mut drv = CommDriver::new();
        let specs = vec![spec(&dad, "A", 1), spec(&dad, "K", 1)];
        assert_eq!(
            drv.phase_exchange(&mut m, specs).unwrap(),
            PhaseOutcome::Refused
        );
        assert_eq!(drv.counts(), (0, 1));
        assert_eq!(m.transport.messages, 0, "a refusal must post nothing");
        quiesce(&mut m).unwrap();
    }

    /// `run_overlap` is bit-identical to blocking execution: same ghost
    /// fills, same messages and bytes, interior charged before the
    /// completions, boundary after.
    #[test]
    fn run_overlap_orders_post_interior_finish_boundary_commit() {
        #[derive(Default)]
        struct Probe {
            calls: Vec<&'static str>,
            /// Messages already completed when `interior` ran.
            msgs_at_interior: u64,
        }
        impl ComputeSink for Probe {
            type Error = CommError;
            fn interior(
                &mut self,
                m: &mut Machine,
                lists: &[Vec<Vec<i64>>],
            ) -> Result<(), CommError> {
                self.calls.push("interior");
                self.msgs_at_interior = m.transport.messages;
                // Interior of a ±1-margined 8-wide block keeps the
                // middle and drops both edges.
                assert!(lists.iter().all(|l| l.len() == 1));
                Ok(())
            }
            fn boundary(
                &mut self,
                _m: &mut Machine,
                slabs: &[Vec<Vec<Vec<i64>>>],
            ) -> Result<(), CommError> {
                self.calls.push("boundary");
                assert!(slabs.iter().any(|s| !s.is_empty()));
                Ok(())
            }
            fn commit(&mut self, _m: &mut Machine) -> Result<(), CommError> {
                self.calls.push("commit");
                Ok(())
            }
        }

        let (mut m, dad) = setup(32, 4, &["A"]);
        let shifts = vec![spec(&dad, "A", 1), spec(&dad, "A", -1)];
        let mut margins = Margins::new(1);
        margins.add(0, 1);
        margins.add(0, -1);
        // Rank r owns globals 8r..8r+7.
        let iter_lists: Vec<Vec<Vec<i64>>> = (0..4)
            .map(|r| vec![(8 * r..8 * r + 8).collect::<Vec<i64>>()])
            .collect();
        let mut sink = Probe::default();
        run_overlap(&mut m, &shifts, &margins, &iter_lists, &mut sink).unwrap();
        assert_eq!(sink.calls, vec!["interior", "boundary", "commit"]);
        // The sends were already posted (and counted) when the interior
        // ran — posting precedes compute, completion follows it.
        assert_eq!(sink.msgs_at_interior, m.transport.messages);
        assert!(m.transport.messages > 0);
        quiesce(&mut m).unwrap();
    }

    #[test]
    fn stencil_margins_mirror_the_backend_eligibility_rules() {
        let grid = ProcGrid::new(&[4]);
        let dad = DadBuilder::new("A", &[32])
            .distribute(&[DistKind::Block])
            .grid(grid.clone())
            .build()
            .unwrap();
        let dm = &dad.dims[0];
        // A compatible loop variable absorbs both shift directions.
        let m = stencil_margins(&[Some(dm)], &[(dm, 1), (dm, -2)]).unwrap();
        let lists = vec![(0i64..8).collect::<Vec<i64>>()];
        assert_eq!(
            m.interior_lists(&lists),
            vec![(2i64..7).collect::<Vec<i64>>()]
        );
        // No owner-computes variable → ineligible.
        assert!(stencil_margins(&[None], &[(dm, 1)]).is_none());
        // A replicated (undistributed) shifted dimension is ineligible
        // too: dims_overlap_compatible requires a grid axis.
        let repl = DadBuilder::new("R", &[32]).build().unwrap();
        assert!(stencil_margins(&[Some(dm)], &[(&repl.dims[0], 1)]).is_none());
    }

    #[test]
    fn slab_kept_dims_pads_rank_one_sources() {
        assert_eq!(slab_kept_dims(2, 0), Some(vec![1]));
        assert_eq!(slab_kept_dims(3, 1), Some(vec![0, 2]));
        // Rank-1 source: the dropped dim is the only dim — consumers
        // must read the padded extent-1 dummy dimension at zero.
        assert_eq!(slab_kept_dims(1, 0), None);
    }
}
