//! Reduction trees (paper §6, Table 3 category 2).
//!
//! "Computations based on local data followed by use of a reduction tree
//! on the processors involved." Contributions are `f64` vectors combined
//! elementwise up a binomial tree, then the result is tree-broadcast back
//! (allreduce), so every node holds the reduced value — Fortran 90
//! reduction intrinsics are replicated scalars/arrays on exit.
//!
//! `MAXLOC`/`MINLOC` reduce `(value, index)` pairs laid out as stride-2
//! runs; ties resolve to the smallest index, matching Fortran semantics.

use f90d_machine::{ArrayData, Machine, Value};

use crate::helpers::{tree_broadcast, tree_reduce};
use crate::op::CommResult;

/// Reduction operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// `SUM` / `DOTPRODUCT`
    Sum,
    /// `PRODUCT`
    Prod,
    /// `MAXVAL`
    Max,
    /// `MINVAL`
    Min,
    /// `ALL` (logical and over 0/1 encodings)
    And,
    /// `ANY` (logical or)
    Or,
    /// `MAXLOC` over (value, index) pairs
    MaxLoc,
    /// `MINLOC` over (value, index) pairs
    MinLoc,
}

impl ReduceOp {
    /// The identity element (per slot; pairs get `(identity, -1)`).
    pub fn identity(&self) -> f64 {
        match self {
            ReduceOp::Sum | ReduceOp::Or => 0.0,
            ReduceOp::Prod | ReduceOp::And => 1.0,
            ReduceOp::Max | ReduceOp::MaxLoc => f64::NEG_INFINITY,
            ReduceOp::Min | ReduceOp::MinLoc => f64::INFINITY,
        }
    }

    /// `true` for the pairwise (value, index) operators.
    pub fn is_loc(&self) -> bool {
        matches!(self, ReduceOp::MaxLoc | ReduceOp::MinLoc)
    }

    /// Combine `b` into `a`, elementwise (stride 2 for loc ops).
    pub fn fold(&self, a: &mut [f64], b: &[f64]) {
        assert_eq!(a.len(), b.len(), "reduction contributions must conform");
        if self.is_loc() {
            assert_eq!(a.len() % 2, 0, "loc reduction needs (value, index) pairs");
            for k in (0..a.len()).step_by(2) {
                let (av, ai) = (a[k], a[k + 1]);
                let (bv, bi) = (b[k], b[k + 1]);
                let take_b = match self {
                    ReduceOp::MaxLoc => bv > av || (bv == av && bi >= 0.0 && (ai < 0.0 || bi < ai)),
                    ReduceOp::MinLoc => bv < av || (bv == av && bi >= 0.0 && (ai < 0.0 || bi < ai)),
                    _ => unreachable!(),
                };
                if take_b {
                    a[k] = bv;
                    a[k + 1] = bi;
                }
            }
        } else {
            for (x, &y) in a.iter_mut().zip(b) {
                *x = match self {
                    ReduceOp::Sum => *x + y,
                    ReduceOp::Prod => *x * y,
                    ReduceOp::Max => x.max(y),
                    ReduceOp::Min => x.min(y),
                    ReduceOp::And => {
                        if *x != 0.0 && y != 0.0 {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    ReduceOp::Or => {
                        if *x != 0.0 || y != 0.0 {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    _ => unreachable!(),
                };
            }
        }
    }
}

fn to_payload(v: &[f64]) -> ArrayData {
    ArrayData::Real(v.to_vec())
}

fn from_payload(d: &ArrayData) -> Vec<f64> {
    match d {
        ArrayData::Real(v) => v.clone(),
        other => (0..other.len()).map(|k| other.get(k).as_real()).collect(),
    }
}

/// Allreduce over an explicit member set: every member contributes a
/// conforming `f64` vector; every member receives the elementwise
/// reduction. `O(log F)` up + `O(log F)` down.
pub fn allreduce_group(
    m: &mut Machine,
    members: &[i64],
    op: ReduceOp,
    contributions: Vec<Vec<f64>>,
) -> CommResult<Vec<Vec<f64>>> {
    m.stats.record("reduce");
    assert_eq!(members.len(), contributions.len());
    let payloads: Vec<ArrayData> = contributions.iter().map(|c| to_payload(c)).collect();
    let combined = tree_reduce(m, members, payloads, |acc, x| {
        let mut a = from_payload(acc);
        let b = from_payload(x);
        op.fold(&mut a, &b);
        *acc = to_payload(&a);
    })?;
    let result = from_payload(&combined);
    // Broadcast the combined vector back down the tree.
    let mut slots: Vec<Option<Vec<f64>>> = vec![None; members.len()];
    tree_broadcast(m, members, 0, to_payload(&result), |_, rank, data| {
        let pos = members.iter().position(|&r| r == rank).unwrap();
        slots[pos] = Some(from_payload(data));
    })?;
    Ok(slots
        .into_iter()
        .map(|s| s.expect("broadcast reached every member"))
        .collect())
}

/// Allreduce over **all** nodes of the machine.
pub fn allreduce(
    m: &mut Machine,
    op: ReduceOp,
    contributions: Vec<Vec<f64>>,
) -> CommResult<Vec<Vec<f64>>> {
    let members: Vec<i64> = (0..m.nranks()).collect();
    allreduce_group(m, &members, op, contributions)
}

/// Allreduce within every grid fiber along `axis` (Table 3 reductions
/// with a `DIM=` argument): nodes of each fiber contribute and receive
/// fiber-local results. `contributions` is indexed by physical rank.
pub fn allreduce_along_axis(
    m: &mut Machine,
    axis: usize,
    op: ReduceOp,
    contributions: Vec<Vec<f64>>,
) -> CommResult<Vec<Vec<f64>>> {
    assert_eq!(contributions.len(), m.nranks() as usize);
    let mut results: Vec<Option<Vec<f64>>> = vec![None; contributions.len()];
    // Enumerate fibers by their axis-0 representative.
    let mut seen = vec![false; contributions.len()];
    for rank in 0..m.nranks() {
        if seen[rank as usize] {
            continue;
        }
        let coords = m.grid.coords_of(rank);
        let members = m.grid.fiber(&coords, axis);
        for &r in &members {
            seen[r as usize] = true;
        }
        let contribs: Vec<Vec<f64>> = members
            .iter()
            .map(|&r| contributions[r as usize].clone())
            .collect();
        let res = allreduce_group(m, &members, op, contribs)?;
        for (&r, v) in members.iter().zip(res) {
            results[r as usize] = Some(v);
        }
    }
    Ok(results.into_iter().map(|o| o.unwrap()).collect())
}

/// Convenience: allreduce a single scalar per node.
pub fn allreduce_scalar(m: &mut Machine, op: ReduceOp, per_rank: Vec<f64>) -> CommResult<f64> {
    let contribs = per_rank.into_iter().map(|v| vec![v]).collect();
    Ok(allreduce(m, op, contribs)?[0][0])
}

/// Convenience: MAXLOC/MINLOC allreduce of one (value, global index) pair
/// per node; returns the winning `(value, index)` (replicated logically).
pub fn allreduce_loc(
    m: &mut Machine,
    op: ReduceOp,
    per_rank: Vec<(f64, i64)>,
) -> CommResult<(f64, i64)> {
    assert!(op.is_loc());
    let contribs = per_rank
        .into_iter()
        .map(|(v, i)| vec![v, i as f64])
        .collect();
    let out = allreduce(m, op, contribs)?;
    Ok((out[0][0], out[0][1] as i64))
}

/// Convert a [`Value`] to its reduction encoding.
pub fn encode_value(v: Value) -> f64 {
    match v {
        Value::Bool(b) => {
            if b {
                1.0
            } else {
                0.0
            }
        }
        other => other.as_real(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f90d_distrib::ProcGrid;
    use f90d_machine::MachineSpec;

    fn machine(p: i64) -> Machine {
        Machine::new(MachineSpec::ideal(), ProcGrid::new(&[p]))
    }

    #[test]
    fn scalar_sum_all_ops() {
        let mut m = machine(5);
        let s = allreduce_scalar(&mut m, ReduceOp::Sum, vec![1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s, 15.0);
        let p = allreduce_scalar(&mut m, ReduceOp::Prod, vec![1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(p, 120.0);
        let mx = allreduce_scalar(&mut m, ReduceOp::Max, vec![1.0, 9.0, 3.0, -4.0, 5.0]).unwrap();
        assert_eq!(mx, 9.0);
        let mn = allreduce_scalar(&mut m, ReduceOp::Min, vec![1.0, 9.0, 3.0, -4.0, 5.0]).unwrap();
        assert_eq!(mn, -4.0);
        let and = allreduce_scalar(&mut m, ReduceOp::And, vec![1.0, 1.0, 0.0, 1.0, 1.0]).unwrap();
        assert_eq!(and, 0.0);
        let or = allreduce_scalar(&mut m, ReduceOp::Or, vec![0.0, 0.0, 1.0, 0.0, 0.0]).unwrap();
        assert_eq!(or, 1.0);
    }

    #[test]
    fn vector_reduce_elementwise() {
        let mut m = machine(3);
        let out = allreduce(
            &mut m,
            ReduceOp::Sum,
            vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]],
        )
        .unwrap();
        for r in 0..3 {
            assert_eq!(out[r], vec![6.0, 60.0]);
        }
    }

    #[test]
    fn maxloc_picks_value_then_lowest_index() {
        let mut m = machine(4);
        let (v, i) = allreduce_loc(
            &mut m,
            ReduceOp::MaxLoc,
            vec![(3.0, 0), (9.0, 5), (9.0, 2), (1.0, 7)],
        )
        .unwrap();
        assert_eq!(v, 9.0);
        assert_eq!(i, 2);
        let (v, i) = allreduce_loc(
            &mut m,
            ReduceOp::MinLoc,
            vec![(3.0, 0), (-9.0, 5), (9.0, 2), (-9.0, 7)],
        )
        .unwrap();
        assert_eq!(v, -9.0);
        assert_eq!(i, 5);
    }

    #[test]
    fn loc_ignores_empty_contributions() {
        // A node with no elements contributes (identity, -1).
        let mut m = machine(3);
        let (v, i) = allreduce_loc(
            &mut m,
            ReduceOp::MaxLoc,
            vec![(f64::NEG_INFINITY, -1), (4.0, 1), (f64::NEG_INFINITY, -1)],
        )
        .unwrap();
        assert_eq!(v, 4.0);
        assert_eq!(i, 1);
    }

    #[test]
    fn axis_reduce_is_fiber_local() {
        // 2x2 grid; reduce along axis 1: rows reduce independently.
        let mut m = Machine::new(MachineSpec::ideal(), ProcGrid::new(&[2, 2]));
        // rank layout row-major: (0,0)=0 (0,1)=1 (1,0)=2 (1,1)=3
        let out = allreduce_along_axis(
            &mut m,
            1,
            ReduceOp::Sum,
            vec![vec![1.0], vec![2.0], vec![10.0], vec![20.0]],
        )
        .unwrap();
        assert_eq!(out[0], vec![3.0]);
        assert_eq!(out[1], vec![3.0]);
        assert_eq!(out[2], vec![30.0]);
        assert_eq!(out[3], vec![30.0]);
    }

    #[test]
    fn reduction_cost_logarithmic() {
        let mut m = Machine::new(MachineSpec::ipsc860(), ProcGrid::new(&[16]));
        allreduce_scalar(&mut m, ReduceOp::Sum, vec![1.0; 16]).unwrap();
        let alpha = m.spec().alpha;
        // 4 up + 4 down stages; certainly below 10 startups worth.
        assert!(m.elapsed() < 10.0 * (alpha + 50e-6));
        assert!(m.elapsed() > 6.0 * alpha);
    }

    #[test]
    fn encode_logicals() {
        assert_eq!(encode_value(Value::Bool(true)), 1.0);
        assert_eq!(encode_value(Value::Bool(false)), 0.0);
        assert_eq!(encode_value(Value::Int(3)), 3.0);
    }
}
