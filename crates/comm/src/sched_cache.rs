//! Cross-run schedule cache (paper §7, optimization 3, scaled up).
//!
//! The per-`Executor`/`Engine` schedule reuse of the compilers amortizes
//! the inspector only *within* one execution; every fresh
//! `Compiled::run_on`, every matrix cell and every long-running service
//! request used to rebuild the same PARTI schedules from scratch. This
//! module is the process-wide complement, modelled on the VM program
//! cache (`f90d_vm::cache`):
//!
//! * **sharded** — concurrent harness workers contend only on the shard
//!   owning their key;
//! * **per-key slot locks** — N workers racing one cold key perform
//!   exactly one build; the rest block on the slot (not the shard) and
//!   observe a hit; builds of different keys proceed fully in parallel;
//! * **full-pattern keys** — a [`SchedKey`] is the `(ScheduleKind, grid
//!   shape, complete request list)` triple, compared by *equality*, never
//!   by `Schedule::signature()` alone: the signature is a 64-bit hash and
//!   can collide, so it is only ever used to pick a shard.
//!
//! What a hit skips is the **wall-clock** rebuild of the move table. The
//! modelled inspector cost ([`schedule::inspect`]) is charged on every
//! run regardless, so per-run virtual time, message counts and byte
//! counts are bit-identical whether the cache is cold, warm, or disabled
//! (`repro --no-sched-cache`) — that is what keeps `BENCH_baseline.json`
//! valid.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use f90d_machine::Machine;

use crate::op::CommResult;
use crate::schedule::{self, ElementReq, Schedule, ScheduleKind};

/// Shard count. A small power of two: a workload set caches tens of
/// schedules, so this bounds contention, not capacity.
const SHARDS: usize = 16;

/// Capacity cap per shard (so 1024 entries process-wide). A key retains
/// its full request pattern plus the built move table, so an unbounded
/// map would grow without limit in a long-running service executing
/// data-dependent patterns; past the cap an arbitrary finished entry is
/// evicted (benchmark working sets are tens of keys — the cap is a
/// memory safety valve, not an LRU policy).
const MAX_PER_SHARD: usize = 64;

/// The full identity of a communication schedule: inspector family, the
/// logical grid it was built for, and the complete element-request
/// pattern. Two keys are the same schedule iff they are `==` — the
/// hash ([`pattern_hash`]) only routes to a shard.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SchedKey {
    /// Which inspector family builds this schedule.
    pub kind: ScheduleKind,
    /// Logical processor-grid shape the request ranks refer to.
    pub grid: Vec<i64>,
    /// The full request pattern, in inspector order.
    pub reqs: Vec<ElementReq>,
}

/// FNV-1a over the key structure — the workspace's standard cache-key
/// hash, used **only** to choose a shard. It can collide (the collision
/// regression test engineers one); the shard map stores full [`SchedKey`]s
/// so colliding patterns still get distinct slots.
pub fn pattern_hash(key: &SchedKey) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x100000001b3);
    };
    mix(key.kind as u64);
    mix(key.grid.len() as u64);
    for &d in &key.grid {
        mix(d as u64);
    }
    mix(key.reqs.len() as u64);
    for r in &key.reqs {
        mix(r.requester as u64);
        mix(r.owner as u64);
        mix(r.src_off as u64);
        mix(r.dst_off as u64);
    }
    h
}

/// Per-key slot: the built schedule, `None` while cold.
#[derive(Default)]
struct Slot {
    sched: Mutex<Option<Arc<Schedule>>>,
}

/// A sharded concurrent [`SchedKey`] → `Arc<Schedule>` map with hit/miss
/// counters. Shared by every harness worker (`Send + Sync`).
pub struct SchedCache {
    shards: Vec<Mutex<HashMap<SchedKey, Arc<Slot>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for SchedCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedCache {
    /// Empty cache.
    pub fn new() -> Self {
        SchedCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &SchedKey) -> &Mutex<HashMap<SchedKey, Arc<Slot>>> {
        &self.shards[(pattern_hash(key) % SHARDS as u64) as usize]
    }

    /// Lock, recovering from poison: `build` runs inspector code under
    /// the slot lock, and a panic there must surface once — not cascade
    /// as `PoisonError` panics in every other worker of that key. A
    /// poisoned slot still holds `None`, so the next caller of *that* key
    /// simply retries the build; every other key is untouched.
    fn recover<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
        lock.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Look up `key`, building with `build` on a miss. Returns the shared
    /// schedule and whether this call was a hit. Concurrent callers of
    /// the same key block on the per-key slot until the one build
    /// finishes, then all share it.
    pub fn get_or_build(
        &self,
        key: &SchedKey,
        build: impl FnOnce() -> Schedule,
    ) -> (Arc<Schedule>, bool) {
        let slot = {
            let mut map = Self::recover(self.shard(key));
            if let Some(slot) = map.get(key) {
                slot.clone()
            } else {
                if map.len() >= MAX_PER_SHARD {
                    // Evict an arbitrary *finished* entry (never a slot
                    // some worker is still building — its key must stay
                    // reachable so racers keep converging on one build).
                    let victim = map
                        .iter()
                        .find(|(_, s)| s.sched.try_lock().map(|g| g.is_some()).unwrap_or(false))
                        .map(|(k, _)| k.clone());
                    if let Some(k) = victim {
                        map.remove(&k);
                    }
                }
                let slot = Arc::new(Slot::default());
                map.insert(key.clone(), slot.clone());
                slot
            }
        };
        // Shard lock released: the build below serializes only callers of
        // this key.
        let mut sched = Self::recover(&slot.sched);
        if let Some(s) = sched.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (s.clone(), true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let s = Arc::new(build());
        *sched = Some(s.clone());
        (s, false)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (inspector builds performed) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached schedules (slots holding a finished build).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                // Snapshot the slots, then release the shard lock before
                // touching any slot mutex: a slot may be mid-build, and
                // holding the shard lock while waiting on it would stall
                // lookups of every other key in the shard.
                let slots: Vec<Arc<Slot>> = Self::recover(s).values().cloned().collect();
                slots
                    .iter()
                    .filter(|slot| Self::recover(&slot.sched).is_some())
                    .count()
            })
            .sum()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached schedule (tests).
    pub fn clear(&self) {
        for s in &self.shards {
            Self::recover(s).clear();
        }
    }
}

/// The process-wide schedule cache shared by every executor backend.
pub fn global() -> &'static SchedCache {
    static CACHE: OnceLock<SchedCache> = OnceLock::new();
    CACHE.get_or_init(SchedCache::new)
}

/// Per-run front end over the caches: owns the §7(3) within-run reuse
/// map (previously a signature-keyed `HashMap` in each executor — now
/// keyed by the full pattern, so a signature collision can no longer
/// alias two schedules) and consults the process-wide [`global`] cache
/// for the cross-run build. One per `Executor`/`Engine` instance.
pub struct RunSchedules {
    /// Within-run reuse map, `[read, write]` per pattern: the built
    /// schedule is side-agnostic, but each side's first occurrence must
    /// charge its own inspector cost, exactly as the per-executor caches
    /// did. Indexing by side (instead of keying by it) lets the hit path
    /// look up with one borrowed key — no extra pattern clone.
    seen: HashMap<SchedKey, [Option<Arc<Schedule>>; 2]>,
    /// §7(3) flag: reuse schedules across executions of the same pattern
    /// within this run (skipping the inspector *charge* on repeats).
    pub reuse: bool,
    /// Consult the process-wide cache for builds. Off (`repro
    /// --no-sched-cache`) every first-per-run occurrence rebuilds; per-run
    /// virtual metrics are identical either way.
    pub use_global: bool,
    hits: u64,
    misses: u64,
}

impl Default for RunSchedules {
    fn default() -> Self {
        Self::new()
    }
}

impl RunSchedules {
    /// Fresh per-run state: reuse on, global cache on.
    pub fn new() -> Self {
        RunSchedules {
            seen: HashMap::new(),
            reuse: true,
            use_global: true,
            hits: 0,
            misses: 0,
        }
    }

    /// The schedule for `reqs` under inspector family `kind`.
    ///
    /// Within-run repeats (when [`RunSchedules::reuse`] is on) are free —
    /// no inspector charge, no cache traffic — matching the paper's
    /// schedule-reuse optimization. The first occurrence per run always
    /// charges the full modelled inspector cost through
    /// [`schedule::inspect`]; only the wall-clock move-table build is
    /// skipped on a global-cache hit.
    pub fn schedule(
        &mut self,
        m: &mut Machine,
        kind: ScheduleKind,
        reqs: &[ElementReq],
        is_write: bool,
    ) -> CommResult<Arc<Schedule>> {
        let key = SchedKey {
            kind,
            grid: m.grid.shape.clone(),
            reqs: reqs.to_vec(),
        };
        let side = is_write as usize;
        if self.reuse {
            if let Some(s) = self.seen.get(&key).and_then(|pair| pair[side].as_ref()) {
                return Ok(s.clone());
            }
        }
        schedule::inspect(m, kind, reqs)?;
        let sched = if self.use_global {
            let (s, hit) = global().get_or_build(&key, || schedule::build_schedule(kind, reqs));
            if hit {
                self.hits += 1;
            } else {
                self.misses += 1;
            }
            s
        } else {
            Arc::new(schedule::build_schedule(kind, reqs))
        };
        if self.reuse {
            self.seen.entry(key).or_default()[side] = Some(sched.clone());
        }
        Ok(sched)
    }

    /// Global-cache hits this run (first-per-run patterns found built).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Global-cache misses this run (builds performed).
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

// Every harness worker shares one `SchedCache`; losing either bound is a
// compile error here, not a runtime surprise there.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SchedCache>();
    assert_send_sync::<Arc<Schedule>>();
    assert_send_sync::<SchedKey>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn req(requester: i64, owner: i64, src_off: usize, dst_off: usize) -> ElementReq {
        ElementReq {
            requester,
            owner,
            src_off,
            dst_off,
        }
    }

    fn key(kind: ScheduleKind, reqs: Vec<ElementReq>) -> SchedKey {
        SchedKey {
            kind,
            grid: vec![4],
            reqs,
        }
    }

    #[test]
    fn hit_returns_same_schedule() {
        let c = SchedCache::new();
        let k = key(ScheduleKind::FanInRequests, vec![req(0, 1, 2, 0)]);
        let (a, hit_a) = c.get_or_build(&k, || schedule::build_schedule(k.kind, &k.reqs));
        let (b, hit_b) = c.get_or_build(&k, || panic!("must not rebuild"));
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((c.hits(), c.misses(), c.len()), (1, 1, 1));
    }

    #[test]
    fn distinct_patterns_get_distinct_slots() {
        let c = SchedCache::new();
        let ka = key(ScheduleKind::LocalOnly, vec![req(0, 1, 0, 0)]);
        let kb = key(ScheduleKind::LocalOnly, vec![req(0, 1, 1, 0)]);
        let (a, _) = c.get_or_build(&ka, || schedule::build_schedule(ka.kind, &ka.reqs));
        let (b, _) = c.get_or_build(&kb, || schedule::build_schedule(kb.kind, &kb.reqs));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(c.len(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn kind_and_grid_are_part_of_the_key() {
        let c = SchedCache::new();
        let reqs = vec![req(0, 1, 3, 0)];
        let k1 = key(ScheduleKind::LocalOnly, reqs.clone());
        let k2 = key(ScheduleKind::FanInRequests, reqs.clone());
        let k3 = SchedKey {
            kind: ScheduleKind::LocalOnly,
            grid: vec![2, 2],
            reqs,
        };
        for k in [&k1, &k2, &k3] {
            c.get_or_build(k, || schedule::build_schedule(k.kind, &k.reqs));
        }
        assert_eq!(c.len(), 3, "kind and grid must separate entries");
    }

    #[test]
    fn capacity_cap_bounds_the_cache() {
        let c = SchedCache::new();
        let total = SHARDS * MAX_PER_SHARD;
        for i in 0..3 * total {
            let k = key(ScheduleKind::LocalOnly, vec![req(0, 1, i, 0)]);
            c.get_or_build(&k, || schedule::build_schedule(k.kind, &k.reqs));
        }
        assert!(
            c.len() <= total,
            "{} entries exceed the cap {total}",
            c.len()
        );
        assert_eq!(c.misses(), 3 * total as u64, "every distinct key built");
        // An evicted key is simply rebuilt on next use — still correct.
        let k = key(ScheduleKind::LocalOnly, vec![req(0, 1, 0, 0)]);
        let (s, _) = c.get_or_build(&k, || schedule::build_schedule(k.kind, &k.reqs));
        assert_eq!(s.kind(), ScheduleKind::LocalOnly);
    }

    #[test]
    fn clear_empties_every_shard() {
        let c = SchedCache::new();
        for i in 0..64 {
            let k = key(ScheduleKind::LocalOnly, vec![req(0, 1, i, 0)]);
            c.get_or_build(&k, || schedule::build_schedule(k.kind, &k.reqs));
        }
        assert_eq!(c.len(), 64);
        c.clear();
        assert!(c.is_empty());
    }
}
