//! Iteration-space geometry for split-phase stencil execution
//! (`comm_compute_overlap`): one shared implementation of the ghost
//! margins, the interior/boundary split, and the dimension-compatibility
//! test, so the tree-walking executor and the bytecode engine cannot
//! drift apart on which tuples count as "interior" — the backends'
//! bit-parity guarantee depends on them agreeing exactly.
//!
//! Terminology: a FORALL over per-variable iteration lists executes the
//! cartesian product of those lists. With ghost margins `(lo, hi)`
//! accumulated from the `overlap_shift` prelude, a tuple is **interior**
//! when every margined variable `v` satisfies
//! `first + lo <= v <= last - hi` (firsts/lasts of that rank's list) —
//! every shifted read of such a tuple stays inside the rank's
//! contiguous BLOCK-owned range, so it can run *before* the ghost
//! exchange completes. The **boundary** is the complement, expressed as
//! disjoint sub-products ([`Margins::boundary_slabs`]) so executors
//! visit only shell tuples instead of filtering the full product.

use f90d_distrib::{ArrayDimMap, DistKind};

/// `true` when a loop variable partitioned by `loop_dm` (the LHS
/// dimension map) can carry the ghost margin of a shift on `shift_dm`:
/// both BLOCK with stride-1 alignment on the same grid axis and with
/// identical distribution and alignment, so "iteration value inside the
/// owned interior" implies "every shifted read stays owned".
pub fn dims_overlap_compatible(loop_dm: &ArrayDimMap, shift_dm: &ArrayDimMap) -> bool {
    shift_dm.dist.kind == DistKind::Block
        && shift_dm.align.stride == 1
        && shift_dm.grid_axis.is_some()
        && loop_dm.grid_axis == shift_dm.grid_axis
        && loop_dm.dist == shift_dm.dist
        && loop_dm.align == shift_dm.align
}

/// Ghost margins per FORALL loop variable, accumulated from the
/// `overlap_shift` prelude: `(lo, hi)` = widest negative / positive
/// shift constants read through that variable's dimension.
#[derive(Debug, Clone)]
pub struct Margins {
    per_var: Vec<(i64, i64)>,
}

impl Margins {
    /// No margins on any of `nvars` variables.
    pub fn new(nvars: usize) -> Self {
        Margins {
            per_var: vec![(0, 0); nvars],
        }
    }

    /// Record a shift by `c` read through variable `var`.
    ///
    /// Saturating on purpose: `-c` overflows for `c == i64::MIN`, and a
    /// margin beyond `i64::MAX` is indistinguishable from one at it —
    /// both empty the interior. The compiler rejects shift constants at
    /// or past the array extent up front, but `Margins` is a public
    /// geometry type and must stay total for adversarial magnitudes
    /// (wrapping here would silently *grow* the interior and let
    /// boundary tuples run before the ghost exchange completes).
    pub fn add(&mut self, var: usize, c: i64) {
        let e = &mut self.per_var[var];
        if c > 0 {
            e.1 = e.1.max(c);
        } else {
            e.0 = e.0.max(c.saturating_neg());
        }
    }

    fn range_of(&self, var: usize, list: &[i64]) -> Option<(i64, i64)> {
        let (lo, hi) = self.per_var[var];
        if lo == 0 && hi == 0 {
            return None;
        }
        // Saturating for the same reason as [`Margins::add`]: an
        // overflowed interior bound must clamp (emptying the interior),
        // never wrap around into a range that swallows the boundary.
        list.first()
            .zip(list.last())
            .map(|(&a, &b)| (a.saturating_add(lo), b.saturating_sub(hi)))
    }

    /// The interior sub-product of one rank's iteration lists: margined
    /// variables restricted to their interior range. Running the plain
    /// cartesian product of the result executes exactly the interior
    /// tuples.
    pub fn interior_lists(&self, lists: &[Vec<i64>]) -> Vec<Vec<i64>> {
        lists
            .iter()
            .enumerate()
            .map(|(k, list)| match self.range_of(k, list) {
                None => list.clone(),
                Some((lo, hi)) => list
                    .iter()
                    .copied()
                    .filter(|v| (lo..=hi).contains(v))
                    .collect(),
            })
            .collect()
    }

    /// The boundary of one rank's iteration lists as disjoint
    /// sub-products: for the `j`-th margined variable, the slab of
    /// tuples where variables before it are interior, it is outside its
    /// range, and later variables are unrestricted. The slabs partition
    /// `product(lists) - product(interior_lists(lists))`, so executors
    /// visit only shell tuples — no membership filtering, and a cost
    /// that scales with the shell, not the interior.
    pub fn boundary_slabs(&self, lists: &[Vec<i64>]) -> Vec<Vec<Vec<i64>>> {
        let mut slabs = Vec::new();
        for j in 0..lists.len() {
            let Some((lo, hi)) = self.range_of(j, &lists[j]) else {
                continue;
            };
            let outside: Vec<i64> = lists[j]
                .iter()
                .copied()
                .filter(|v| !(lo..=hi).contains(v))
                .collect();
            if outside.is_empty() {
                continue;
            }
            let slab: Vec<Vec<i64>> = lists
                .iter()
                .enumerate()
                .map(|(k, list)| {
                    if k == j {
                        outside.clone()
                    } else if k < j {
                        match self.range_of(k, list) {
                            None => list.clone(),
                            Some((lo, hi)) => list
                                .iter()
                                .copied()
                                .filter(|v| (lo..=hi).contains(v))
                                .collect(),
                        }
                    } else {
                        list.clone()
                    }
                })
                .collect();
            if slab.iter().any(|l| l.is_empty()) {
                continue;
            }
            slabs.push(slab);
        }
        slabs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn product(lists: &[Vec<i64>]) -> BTreeSet<Vec<i64>> {
        let mut out = BTreeSet::new();
        crate::helpers::cartesian(lists, |idx| {
            out.insert(idx.to_vec());
        });
        out
    }

    #[test]
    fn interior_and_slabs_partition_the_product() {
        let mut m = Margins::new(3);
        m.add(0, 1);
        m.add(0, -1);
        m.add(2, 2);
        let lists = vec![
            (1..=6).collect::<Vec<i64>>(),
            vec![10, 11],
            (0..=5).collect::<Vec<i64>>(),
        ];
        let full = product(&lists);
        let interior = product(&m.interior_lists(&lists));
        let mut covered = interior.clone();
        for slab in m.boundary_slabs(&lists) {
            for t in product(&slab) {
                assert!(covered.insert(t.clone()), "tuple {t:?} visited twice");
            }
        }
        assert_eq!(covered, full, "interior + slabs must cover the product");
        // Every interior tuple really is margin-safe.
        for t in &interior {
            assert!((2..=5).contains(&t[0]) && (0..=3).contains(&t[2]));
        }
    }

    #[test]
    fn no_margins_means_everything_interior() {
        let m = Margins::new(2);
        let lists = vec![vec![1, 2, 3], vec![4, 5]];
        assert_eq!(m.interior_lists(&lists), lists);
        assert!(m.boundary_slabs(&lists).is_empty());
    }

    #[test]
    fn margins_swallowing_the_whole_list_make_everything_boundary() {
        let mut m = Margins::new(1);
        m.add(0, 3);
        m.add(0, -3);
        let lists = vec![vec![5, 6, 7]]; // interior range (8..=4) is empty
        assert!(m.interior_lists(&lists)[0].is_empty());
        let slabs = m.boundary_slabs(&lists);
        assert_eq!(slabs.len(), 1);
        assert_eq!(slabs[0][0], vec![5, 6, 7]);
    }

    #[test]
    fn empty_rank_lists_produce_nothing() {
        let mut m = Margins::new(2);
        m.add(1, 1);
        let lists = vec![vec![], vec![3, 4]];
        assert!(m.interior_lists(&lists)[0].is_empty());
        // The slab on var 1 contains the empty var-0 list and is dropped.
        assert!(m.boundary_slabs(&lists).is_empty());
    }

    #[test]
    fn adversarial_magnitudes_saturate_to_all_boundary() {
        // i64::MIN used to negate with overflow in `add`; i64::MAX used
        // to wrap the interior bounds in `range_of`. Both must instead
        // clamp: nothing is interior, the slabs still cover everything.
        for c in [i64::MIN, i64::MIN + 1, i64::MAX] {
            let mut m = Margins::new(1);
            m.add(0, c);
            let lists = vec![vec![5, 6, 7]];
            assert!(m.interior_lists(&lists)[0].is_empty(), "c = {c}");
            let slabs = m.boundary_slabs(&lists);
            assert_eq!(slabs.len(), 1, "c = {c}");
            assert_eq!(slabs[0][0], vec![5, 6, 7], "c = {c}");
        }
    }
}

#[cfg(test)]
mod prop {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn product(lists: &[Vec<i64>]) -> BTreeSet<Vec<i64>> {
        let mut out = BTreeSet::new();
        crate::helpers::cartesian(lists, |idx| {
            out.insert(idx.to_vec());
        });
        out
    }

    /// Shift constants across the whole `i64` domain, with the overflow
    /// corners pinned so every run exercises them.
    fn extreme() -> impl Strategy<Value = i64> {
        prop_oneof![
            any::<i64>(),
            Just(i64::MIN),
            Just(i64::MIN + 1),
            Just(i64::MAX),
            -4i64..=4,
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn margins_total_and_partition_under_extreme_constants(
            cs in (extreme(), extreme(), extreme())
        ) {
            let (c1, c2, c3) = cs;
            let mut m = Margins::new(2);
            m.add(0, c1);
            m.add(0, c2);
            m.add(1, c3);
            let lists = vec![
                (0..8).collect::<Vec<i64>>(),
                (10..14).collect::<Vec<i64>>(),
            ];
            // Totality: no panic, and interior + slabs exactly
            // partition the product whatever the magnitudes.
            let full = product(&lists);
            let interior = product(&m.interior_lists(&lists));
            let mut covered = interior.clone();
            for slab in m.boundary_slabs(&lists) {
                for t in product(&slab) {
                    prop_assert!(covered.insert(t.clone()), "tuple visited twice");
                }
            }
            prop_assert_eq!(covered, full);
        }
    }
}
