//! Structured communication primitives (paper §5.1).
//!
//! These exploit the logical-grid relationship between communicating
//! processors, so send/receive sets are implicit — no preprocessing loop
//! is needed. All primitives assume the communicated arrays are aligned to
//! a common template (the condition under which the compiler's detection
//! algorithm emits them, §5.2 Algorithm 1).
//!
//! Conventions shared by `transfer` / `multicast` / `*_shift`:
//!
//! * `dim` names an **array** dimension of the source; its grid axis comes
//!   from the source's [`Dad`].
//! * Slab results (`transfer`, `multicast`) land in a temporary whose rank
//!   is the source rank minus one — the paper's `TMP(I)` — indexed by the
//!   local indices of the remaining dimensions.
//! * Shift results either fill the ghost cells of the array itself
//!   (`overlap_shift`) or a same-shape temporary (`temporary_shift`),
//!   indexed so that the local loop body reads `TMP(i)` for `B(i ± s)`.

use f90d_distrib::Dad;
use f90d_machine::{ArrayData, ElemType, LocalArray, Machine, Transport, Value};

use crate::helpers::{
    cartesian, exchange, fiber_through, owned_locals_per_dim, tree_broadcast, ExchangeOp, PairMoves,
};
use crate::op::{CommOp, CommResult};

/// Allocate (on every node) the slab temporary for `transfer`/`multicast`
/// over dimension `dim` of `dad`: rank `r-1`, shaped by the local
/// allocation of the remaining dimensions.
pub fn alloc_slab_tmp(m: &mut Machine, name: &str, dad: &Dad, dim: usize, ty: ElemType) {
    let shape: Vec<i64> = dad
        .local_shape()
        .iter()
        .enumerate()
        .filter(|&(d, _)| d != dim)
        .map(|(_, &e)| e)
        .collect();
    let shape = if shape.is_empty() { vec![1] } else { shape };
    for mem in &mut m.mems {
        mem.insert_array(name, LocalArray::zeros(ty, &shape));
    }
}

fn slab_pack(
    m: &Machine,
    src: &str,
    dad: &Dad,
    coords: &[i64],
    dim: usize,
    src_g: i64,
) -> (ArrayData, Vec<usize>) {
    let rank = m.grid.rank_of(coords);
    let mem = &m.mems[rank as usize];
    let arr = mem.array(src);
    let l_fix = dad.dims[dim].local_of(src_g);
    let mut lists = owned_locals_per_dim(dad, coords);
    lists[dim] = vec![l_fix];
    let mut vals = Vec::new();
    let mut tmp_offsets = Vec::new();
    // tmp is rank-1 lower: offsets computed over remaining dims in the
    // same row-major order.
    let tmp_shape: Vec<i64> = dad
        .local_shape()
        .iter()
        .enumerate()
        .filter(|&(d, _)| d != dim)
        .map(|(_, &e)| e)
        .collect();
    cartesian(&lists, |idx| {
        vals.push(arr.get(idx));
        let rest: Vec<i64> = idx
            .iter()
            .enumerate()
            .filter(|&(d, _)| d != dim)
            .map(|(_, &l)| l)
            .collect();
        let mut off: i64 = 0;
        if tmp_shape.is_empty() {
            tmp_offsets.push(0);
            return;
        }
        for (d, &l) in rest.iter().enumerate() {
            off = off * tmp_shape[d] + l;
        }
        tmp_offsets.push(off as usize);
    });
    let mut data = ArrayData::zeros(arr.elem_type(), vals.len());
    for (k, v) in vals.into_iter().enumerate() {
        data.set(k, v);
    }
    (data, tmp_offsets)
}

fn slab_unpack(m: &mut Machine, tmp: &str, rank: i64, data: &ArrayData, offsets: &[usize]) {
    let arr = m.mems[rank as usize].array_mut(tmp);
    for (k, &off) in offsets.iter().enumerate() {
        arr.set_flat(off, data.get(k));
    }
}

/// `transfer` (paper §5.3.1 example 1, Fig. 4a): move the slab
/// `src[.., src_g, ..]` (global index `src_g` on dimension `dim`) from its
/// owner grid line to the grid line at coordinate `dst_coord` along the
/// same axis, depositing it into the rank-`r-1` temporary `tmp` on every
/// receiving node.
pub fn transfer(
    m: &mut Machine,
    src: &str,
    dad: &Dad,
    tmp: &str,
    dim: usize,
    src_g: i64,
    dst_coord: i64,
) -> CommResult<()> {
    m.stats.record("transfer");
    let axis = dad.dims[dim]
        .grid_axis
        .expect("transfer source dimension must be distributed");
    let src_coord = dad.dims[dim].proc_of(src_g);
    let tag = m.fresh_tag();
    let copy_rate = m.spec().time_copy_byte;
    // Enumerate the owner grid line: all coordinate tuples with
    // coords[axis] == src_coord.
    for rank in 0..m.nranks() {
        let coords = m.grid.coords_of(rank);
        if coords[axis] != src_coord {
            continue;
        }
        let (payload, offsets) = slab_pack(m, src, dad, &coords, dim, src_g);
        let mut dst_c = coords.clone();
        dst_c[axis] = dst_coord;
        let dst_rank = m.grid.rank_of(&dst_c);
        if dst_rank == rank {
            slab_unpack(m, tmp, rank, &payload, &offsets);
            let bytes = payload.len() as i64 * payload.elem_type().bytes();
            m.transport.charge_compute(rank, copy_rate * bytes as f64);
        } else {
            let bytes = payload.len() as i64 * payload.elem_type().bytes();
            m.transport.charge_compute(rank, copy_rate * bytes as f64);
            m.transport.post_send(rank, dst_rank, tag, payload);
            let h = m.transport.post_recv(dst_rank, rank, tag);
            let got = m.transport.complete(h)?;
            m.transport
                .charge_compute(dst_rank, copy_rate * bytes as f64);
            slab_unpack(m, tmp, dst_rank, &got, &offsets);
        }
    }
    Ok(())
}

/// `multicast` (paper §5.3.1 example 2, Fig. 4b): broadcast the slab
/// `src[.., src_g, ..]` from its owner grid line along the grid axis of
/// `dim`, into `tmp` on every node. Binomial tree per fiber: `O(log P)`.
pub fn multicast(
    m: &mut Machine,
    src: &str,
    dad: &Dad,
    tmp: &str,
    dim: usize,
    src_g: i64,
) -> CommResult<()> {
    m.stats.record("multicast");
    let axis = dad.dims[dim]
        .grid_axis
        .expect("multicast source dimension must be distributed");
    let src_coord = dad.dims[dim].proc_of(src_g);
    // One broadcast per fiber; fibers are identified by the owner-line
    // nodes (coords with coords[axis] == src_coord).
    let mut owners = Vec::new();
    for rank in 0..m.nranks() {
        let coords = m.grid.coords_of(rank);
        if coords[axis] == src_coord {
            owners.push(coords);
        }
    }
    for coords in owners {
        let (payload, offsets) = slab_pack(m, src, dad, &coords, dim, src_g);
        let (members, root_pos) = fiber_through(m, &coords, axis);
        tree_broadcast(m, &members, root_pos, payload, |m, rank, data| {
            slab_unpack(m, tmp, rank, data, &offsets);
        })?;
    }
    Ok(())
}

/// `overlap_shift` (paper §5.1): for a compile-time shift constant `c`,
/// move each node's boundary strip of width `|c|` along `dim` into the
/// neighbouring node's ghost cells, so the local loop can read
/// `A(i + c)` directly with **no** temporary and no intra-processor
/// copying. The array must have been allocated with ghost width ≥ `|c|`
/// on `dim`. With `periodic`, edges wrap (CSHIFT); otherwise edge nodes
/// simply do not send past the array ends (FORALL boundary semantics).
///
/// Supports BLOCK distributions — the only case the paper's Table 1 emits
/// it for (shifts on CYCLIC layouts route through the unstructured path).
///
/// Blocking wrapper over [`overlap_shift_post`] + `finish` — virtual
/// metrics bit-identical to the pre-redesign one-shot call.
pub fn overlap_shift(
    m: &mut Machine,
    arr: &str,
    dad: &Dad,
    dim: usize,
    c: i64,
    periodic: bool,
) -> CommResult<()> {
    overlap_shift_post(m, arr, dad, dim, c, periodic)?.finish(m)
}

/// Split-phase `overlap_shift`: plans the ghost exchange and **posts**
/// it — boundary strips are packed and leave the senders (which pay the
/// packing copy and the startup α), receives are registered, and the
/// caller is free to charge interior computation before calling
/// [`finish`](crate::op::CommOp::finish) on the returned op. This is the
/// primitive the `comm_compute_overlap` optimization drives: ghost
/// exchange posted → interior compute → complete → boundary compute.
pub fn overlap_shift_post(
    m: &mut Machine,
    arr: &str,
    dad: &Dad,
    dim: usize,
    c: i64,
    periodic: bool,
) -> CommResult<ExchangeOp<'static>> {
    m.stats.record("overlap_shift");
    let moves = overlap_shift_moves(m, arr, dad, dim, c, periodic);
    let mut op = ExchangeOp::new(arr, arr, moves);
    op.post(m)?;
    Ok(op)
}

/// Plan the element moves of an [`overlap_shift`] without posting
/// anything: the receiver-centric `(src_rank, dst_rank) → (src, dst)
/// flat offsets` table of every ghost cell of `arr` filled for a shift
/// by compile-time `c` along `dim`. Shared by the per-statement
/// split-phase op above and the phase-level coalescing planner in
/// [`crate::plan`], so both price and move exactly the same elements.
pub fn overlap_shift_moves(
    m: &Machine,
    arr: &str,
    dad: &Dad,
    dim: usize,
    c: i64,
    periodic: bool,
) -> PairMoves {
    if c == 0 {
        return PairMoves::new();
    }
    let dm = &dad.dims[dim];
    let axis = dm.grid_axis.expect("overlap_shift needs a distributed dim");
    assert!(
        matches!(dm.dist.kind, f90d_distrib::DistKind::Block),
        "overlap_shift supports BLOCK distributions"
    );
    let n = dm.extent;
    // Receiver-centric: each node needs, for interior local l with global
    // g, the value at g + c when it falls outside its own block; those
    // form a strip of width |c| owned by the neighbour at +sign(c).
    let mut moves: PairMoves = PairMoves::new();
    for rank in 0..m.nranks() {
        let coords = m.grid.coords_of(rank);
        let lists = owned_locals_per_dim(dad, &coords);
        if lists[dim].is_empty() {
            continue;
        }
        // Ghost cells to fill: local indices just past the owned range.
        let lo = *lists[dim].first().unwrap();
        let hi = *lists[dim].last().unwrap();
        let ghost_locals: Vec<i64> = if c > 0 {
            (hi + 1..=hi + c).collect()
        } else {
            (lo + c..lo).collect()
        };
        for gl in ghost_locals {
            // Global index this ghost cell mirrors.
            let interior_l = if c > 0 { hi } else { lo };
            let interior_g = dm
                .array_index_of(coords[axis], interior_l)
                .expect("interior local maps to a global");
            let g = interior_g + (gl - interior_l);
            let g_eff = if periodic {
                g.rem_euclid(n)
            } else if (0..n).contains(&g) {
                g
            } else {
                continue;
            };
            let owner = dm.proc_of(g_eff);
            let src_l = dm.local_of(g_eff);
            let mut src_c = coords.clone();
            src_c[axis] = owner;
            let src_rank = m.grid.rank_of(&src_c);
            // Pair each ghost cell with its source over all other dims.
            let mut src_idx_lists = lists.clone();
            src_idx_lists[dim] = vec![src_l];
            let mut dst_idx_lists = lists.clone();
            dst_idx_lists[dim] = vec![gl];
            let src_arr = m.mems[src_rank as usize].array(arr);
            let dst_arr = m.mems[rank as usize].array(arr);
            let mut pairs = Vec::new();
            let mut dst_offsets = Vec::new();
            cartesian(&src_idx_lists, |idx| pairs.push(src_arr.offset(idx)));
            cartesian(&dst_idx_lists, |idx| dst_offsets.push(dst_arr.offset(idx)));
            let entry = moves.entry((src_rank, rank)).or_default();
            entry.extend(pairs.into_iter().zip(dst_offsets));
        }
    }
    moves
}

/// `temporary_shift` (paper §5.1): shift by a (possibly runtime) amount
/// `s` into the same-local-shape temporary `tmp`: after the call,
/// `tmp(l) = src(global(l) + s)` on every node, for every owned local `l`
/// whose shifted global stays in range (`periodic` wraps instead).
/// Unlike `overlap_shift` this may require intra-processor copying — the
/// cost difference is the ablation ABL-4 measures.
pub fn temporary_shift(
    m: &mut Machine,
    src: &str,
    dad: &Dad,
    tmp: &str,
    dim: usize,
    s: i64,
    periodic: bool,
) -> CommResult<()> {
    m.stats.record("temporary_shift");
    let dm = &dad.dims[dim];
    let axis = dm
        .grid_axis
        .expect("temporary_shift needs a distributed dim");
    let n = dm.extent;
    let mut moves: PairMoves = PairMoves::new();
    for rank in 0..m.nranks() {
        let coords = m.grid.coords_of(rank);
        let lists = owned_locals_per_dim(dad, &coords);
        let dst_arr = m.mems[rank as usize].array(tmp);
        for &l in &lists[dim] {
            let g = dm
                .array_index_of(coords[axis], l)
                .expect("owned local maps to global");
            let gs = g + s;
            let g_eff = if periodic {
                gs.rem_euclid(n)
            } else if (0..n).contains(&gs) {
                gs
            } else {
                continue;
            };
            let owner = dm.proc_of(g_eff);
            let src_l = dm.local_of(g_eff);
            let mut src_c = coords.clone();
            src_c[axis] = owner;
            let src_rank = m.grid.rank_of(&src_c);
            let src_arr = m.mems[src_rank as usize].array(src);
            let mut src_lists = lists.clone();
            src_lists[dim] = vec![src_l];
            let mut dst_lists = lists.clone();
            dst_lists[dim] = vec![l];
            let mut src_offs = Vec::new();
            let mut dst_offs = Vec::new();
            cartesian(&src_lists, |idx| src_offs.push(src_arr.offset(idx)));
            cartesian(&dst_lists, |idx| dst_offs.push(dst_arr.offset(idx)));
            let entry = moves.entry((src_rank, rank)).or_default();
            entry.extend(src_offs.into_iter().zip(dst_offs));
        }
    }
    exchange(m, src, tmp, &moves)
}

/// Fused `multicast_shift` (paper §5.3.1 example 3): for
/// `A(I,J) = B(g, J+s)`, combine the multicast of row `g` along
/// `mcast_dim`'s axis with the shift by `s` along `shift_dim` — one
/// communication structure, no intermediate temporary, less packing.
/// Result lands in the rank-`r-1` slab temporary `tmp` such that
/// `tmp(l_J) = B(g, global(l_J) + s)`.
pub fn multicast_shift(
    m: &mut Machine,
    src: &str,
    dad: &Dad,
    tmp: &str,
    mcast_dim: usize,
    src_g: i64,
    shift_dim: usize,
    s: i64,
) -> CommResult<()> {
    m.stats.record("multicast_shift");
    assert_ne!(mcast_dim, shift_dim);
    let axis = dad.dims[mcast_dim]
        .grid_axis
        .expect("multicast dimension must be distributed");
    let src_coord = dad.dims[mcast_dim].proc_of(src_g);
    let sdm = &dad.dims[shift_dim];
    let n = sdm.extent;
    // Step 1 (intra-line shift): on the owner line, build the shifted slab
    // values each owner-line node will broadcast. The shift sources may
    // live on a different node of the SAME owner line (other coords of the
    // shift axis), so this is a pairwise exchange within the line into a
    // hidden staging vector — but fused: we stage values directly in pack
    // order without materializing a named temporary.
    let l_fix = dad.dims[mcast_dim].local_of(src_g);
    let mut owner_coords = Vec::new();
    for rank in 0..m.nranks() {
        let coords = m.grid.coords_of(rank);
        if coords[axis] == src_coord {
            owner_coords.push(coords);
        }
    }
    for coords in owner_coords {
        let rank = m.grid.rank_of(&coords);
        let lists = owned_locals_per_dim(dad, &coords);
        // For each owned local l on shift_dim, the needed global is
        // global(l) + s; fetch from its owner (same line, differing on the
        // shift axis if distributed).
        let mut shifted_lists = lists.clone();
        shifted_lists[mcast_dim] = vec![l_fix];
        // Build the payload in row-major order over remaining dims.
        let tmp_shape: Vec<i64> = dad
            .local_shape()
            .iter()
            .enumerate()
            .filter(|&(d, _)| d != mcast_dim)
            .map(|(_, &e)| e)
            .collect();
        let mut vals: Vec<Value> = Vec::new();
        let mut offsets: Vec<usize> = Vec::new();
        let ty = m.mems[rank as usize].array(src).elem_type();
        cartesian(&shifted_lists, |idx| {
            // Destination tmp offset from remaining dims.
            let rest: Vec<i64> = idx
                .iter()
                .enumerate()
                .filter(|&(d, _)| d != mcast_dim)
                .map(|(_, &l)| l)
                .collect();
            let mut off: i64 = 0;
            for (d, &l) in rest.iter().enumerate() {
                off = off * tmp_shape[d] + l;
            }
            // Source value: shift idx[shift_dim] by s in global space.
            let l_shift = idx[shift_dim];
            let own_c = sdm.grid_axis.map_or(0, |sax| coords[sax]);
            let g = match sdm.array_index_of(own_c, l_shift) {
                Some(g) => g,
                None => return,
            };
            let gs = g + s;
            if !(0..n).contains(&gs) {
                return;
            }
            let (owner, src_l) = (sdm.proc_of(gs), sdm.local_of(gs));
            let mut src_c = coords.clone();
            if let Some(sax) = sdm.grid_axis {
                src_c[sax] = owner;
            }
            let src_rank = m.grid.rank_of(&src_c);
            let mut sidx = idx.to_vec();
            sidx[shift_dim] = src_l;
            let v = m.mems[src_rank as usize].array(src).get(&sidx);
            vals.push(v);
            offsets.push(off as usize);
        });
        // Charge the intra-line fetches as one vectorized neighbour
        // exchange when the shift axis is distributed.
        if let Some(sax) = sdm.grid_axis {
            if sdm.is_distributed() && s != 0 {
                let bytes = vals.len() as i64 * ty.bytes();
                let neigh = m
                    .grid
                    .neighbor_wrap(&coords, sax, if s > 0 { 1 } else { -1 });
                if neigh != rank {
                    let t = m.spec().msg_time(neigh, rank, bytes);
                    m.transport.charge_compute(rank, t);
                }
            }
        }
        let mut payload = ArrayData::zeros(ty, vals.len());
        for (k, v) in vals.into_iter().enumerate() {
            payload.set(k, v);
        }
        let (members, root_pos) = fiber_through(m, &coords, axis);
        let offs = offsets.clone();
        tree_broadcast(m, &members, root_pos, payload, |m, r, data| {
            slab_unpack(m, tmp, r, data, &offs);
        })?;
    }
    Ok(())
}

/// `concatenation` (paper §5.1): gather a distributed array onto **every**
/// processor — used when the LHS of a FORALL is not distributed
/// (Algorithm 1 step 11). `dst` must be allocated with the array's full
/// global shape on every node.
pub fn concatenation(m: &mut Machine, src: &str, dad: &Dad, dst: &str) -> CommResult<()> {
    m.stats.record("concatenation");
    let tag = m.fresh_tag();
    let copy_rate = m.spec().time_copy_byte;
    let nranks = m.nranks();
    // Phase 1: everyone sends owned (global, value) runs to rank 0.
    let mut assembled: Vec<(Vec<i64>, Value)> = Vec::new();
    for rank in 0..nranks {
        let coords = m.grid.coords_of(rank);
        // Skip non-canonical replicas (they hold the same data).
        if dad.replicated_axes.iter().any(|&ax| coords[ax] != 0) {
            continue;
        }
        let owned = dad.owned_elements(&coords);
        if owned.is_empty() {
            continue;
        }
        let arr = m.mems[rank as usize].array(src);
        let ty = arr.elem_type();
        let mut payload = ArrayData::zeros(ty, owned.len());
        for (k, (_, l)) in owned.iter().enumerate() {
            payload.set(k, arr.get(l));
        }
        if rank == 0 {
            for ((g, _), k) in owned.iter().zip(0..) {
                assembled.push((g.clone(), payload.get(k)));
            }
        } else {
            let bytes = payload.len() as i64 * ty.bytes();
            m.transport.charge_compute(rank, copy_rate * bytes as f64);
            m.transport.post_send(rank, 0, tag, payload);
            let h = m.transport.post_recv(0, rank, tag);
            let got = m.transport.complete(h)?;
            m.transport.charge_compute(0, copy_rate * bytes as f64);
            for ((g, _), k) in owned.iter().zip(0..) {
                assembled.push((g.clone(), got.get(k)));
            }
        }
    }
    // Phase 2: rank 0 assembles the full array and tree-broadcasts it.
    {
        let full = m.mems[0].array_mut(dst);
        for (g, v) in &assembled {
            full.set(g, *v);
        }
    }
    let ty = m.mems[0].array(dst).elem_type();
    let mut payload = ArrayData::zeros(ty, assembled.len());
    for (k, (_, v)) in assembled.iter().enumerate() {
        payload.set(k, *v);
    }
    let members: Vec<i64> = (0..nranks).collect();
    let globals: Vec<Vec<i64>> = assembled.iter().map(|(g, _)| g.clone()).collect();
    tree_broadcast(m, &members, 0, payload, |m, r, data| {
        if r == 0 {
            return;
        }
        let arr = m.mems[r as usize].array_mut(dst);
        for (k, g) in globals.iter().enumerate() {
            arr.set(g, data.get(k));
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use f90d_distrib::{DadBuilder, DistKind, ProcGrid};
    use f90d_machine::MachineSpec;

    /// 2-D machine + (BLOCK, BLOCK) array initialized to A(i,j) = 100i + j.
    fn setup_2d(n: i64, p: i64, q: i64) -> (Machine, Dad) {
        let grid = ProcGrid::new(&[p, q]);
        let mut m = Machine::new(MachineSpec::ideal(), grid.clone());
        let dad = DadBuilder::new("B", &[n, n])
            .distribute(&[DistKind::Block, DistKind::Block])
            .grid(grid)
            .build()
            .unwrap();
        for rank in 0..m.nranks() {
            let coords = m.grid.coords_of(rank);
            let mut la = LocalArray::zeros(ElemType::Real, &dad.local_shape());
            for (g, l) in dad.owned_elements(&coords) {
                la.set(&l, Value::Real((100 * g[0] + g[1]) as f64));
            }
            m.mems[rank as usize].insert_array("B", la);
        }
        (m, dad)
    }

    fn setup_1d(n: i64, p: i64, kind: DistKind) -> (Machine, Dad) {
        let grid = ProcGrid::new(&[p]);
        let mut m = Machine::new(MachineSpec::ideal(), grid.clone());
        let dad = DadBuilder::new("B", &[n])
            .distribute(&[kind])
            .grid(grid)
            .build()
            .unwrap();
        for rank in 0..m.nranks() {
            let coords = m.grid.coords_of(rank);
            let mut la = LocalArray::with_ghost(ElemType::Real, &dad.local_shape(), &[4], &[4]);
            for (g, l) in dad.owned_elements(&coords) {
                la.set(&l, Value::Real(g[0] as f64));
            }
            m.mems[rank as usize].insert_array("B", la);
        }
        (m, dad)
    }

    #[test]
    fn transfer_moves_column() {
        // A(I,8)=B(I,3) on a 2x2 grid over 8x8: column 3 → owners of col 6.
        let (mut m, dad) = setup_2d(8, 2, 2);
        alloc_slab_tmp(&mut m, "TMP", &dad, 1, ElemType::Real);
        let dst_coord = dad.dims[1].proc_of(6);
        transfer(&mut m, "B", &dad, "TMP", 1, 3, dst_coord).unwrap();
        // Owners of column 6 (axis-1 coord 1) must now hold B(i,3) in TMP.
        for rank in 0..m.nranks() {
            let coords = m.grid.coords_of(rank);
            if coords[1] != dst_coord {
                continue;
            }
            let tmp = m.mems[rank as usize].array("TMP");
            for l in owned_dim_locals_pub(&dad, 0, coords[0]) {
                let g = dad.dims[0].array_index_of(coords[0], l).unwrap();
                assert_eq!(
                    tmp.get(&[l]),
                    Value::Real((100 * g + 3) as f64),
                    "rank {rank} row local {l}"
                );
            }
        }
        assert_eq!(m.stats.count("transfer"), 1);
    }

    fn owned_dim_locals_pub(dad: &Dad, d: usize, c: i64) -> Vec<i64> {
        crate::helpers::owned_dim_locals(dad, d, c)
    }

    #[test]
    fn multicast_reaches_whole_axis() {
        // A(I,J)=B(I,3): column 3 broadcast along grid axis 1.
        let (mut m, dad) = setup_2d(8, 2, 2);
        alloc_slab_tmp(&mut m, "TMP", &dad, 1, ElemType::Real);
        multicast(&mut m, "B", &dad, "TMP", 1, 3).unwrap();
        for rank in 0..m.nranks() {
            let coords = m.grid.coords_of(rank);
            let tmp = m.mems[rank as usize].array("TMP");
            for l in owned_dim_locals_pub(&dad, 0, coords[0]) {
                let g = dad.dims[0].array_index_of(coords[0], l).unwrap();
                assert_eq!(tmp.get(&[l]), Value::Real((100 * g + 3) as f64));
            }
        }
    }

    #[test]
    fn multicast_message_count_is_tree() {
        let grid = ProcGrid::new(&[16]);
        let mut m = Machine::new(MachineSpec::ideal(), grid.clone());
        let dad = DadBuilder::new("B", &[64])
            .distribute(&[DistKind::Block])
            .grid(grid)
            .build()
            .unwrap();
        for rank in 0..16 {
            let coords = m.grid.coords_of(rank);
            let mut la = LocalArray::zeros(ElemType::Real, &dad.local_shape());
            for (g, l) in dad.owned_elements(&coords) {
                la.set(&l, Value::Real(g[0] as f64));
            }
            m.mems[rank as usize].insert_array("B", la);
        }
        // multicast over a rank-1 array: slab is a scalar; 15 messages in
        // 4 stages.
        alloc_slab_tmp(&mut m, "TMP", &dad, 0, ElemType::Real);
        multicast(&mut m, "B", &dad, "TMP", 0, 5).unwrap();
        assert_eq!(m.transport.messages, 15);
        for rank in 0..16 {
            assert_eq!(
                m.mems[rank as usize].array("TMP").get(&[0]),
                Value::Real(5.0)
            );
        }
    }

    #[test]
    fn overlap_shift_fills_ghosts_block() {
        let (mut m, dad) = setup_1d(16, 4, DistKind::Block);
        overlap_shift(&mut m, "B", &dad, 0, 2, false).unwrap();
        // Node p owns globals 4p..4p+4; ghost cells l=4,5 must hold
        // globals 4p+4, 4p+5 (when in range).
        for p in 0..4i64 {
            let arr = m.mems[p as usize].array("B");
            for k in 0..2i64 {
                let g = 4 * p + 4 + k;
                if g < 16 {
                    assert_eq!(arr.get(&[4 + k]), Value::Real(g as f64), "p{p} ghost {k}");
                }
            }
        }
    }

    #[test]
    fn overlap_shift_negative_and_periodic() {
        let (mut m, dad) = setup_1d(16, 4, DistKind::Block);
        overlap_shift(&mut m, "B", &dad, 0, -1, true).unwrap();
        // Ghost l = -1 on node p holds global (4p - 1) mod 16.
        for p in 0..4i64 {
            let arr = m.mems[p as usize].array("B");
            let g = (4 * p - 1).rem_euclid(16);
            assert_eq!(arr.get(&[-1]), Value::Real(g as f64), "p{p}");
        }
    }

    #[test]
    fn overlap_shift_nonperiodic_edge_unfilled() {
        let (mut m, dad) = setup_1d(16, 4, DistKind::Block);
        overlap_shift(&mut m, "B", &dad, 0, 1, false).unwrap();
        // Last node's ghost must stay zero (global 16 does not exist).
        let arr = m.mems[3].array("B");
        assert_eq!(arr.get(&[4]), Value::Real(0.0));
    }

    #[test]
    fn temporary_shift_matches_semantics() {
        for kind in [DistKind::Block, DistKind::Cyclic] {
            let (mut m, dad) = setup_1d(12, 3, kind);
            for mem in &mut m.mems {
                mem.insert_array("TMP", LocalArray::zeros(ElemType::Real, &dad.local_shape()));
            }
            temporary_shift(&mut m, "B", &dad, "TMP", 0, 3, false).unwrap();
            for rank in 0..3 {
                let coords = m.grid.coords_of(rank);
                let tmp = m.mems[rank as usize].array("TMP");
                for l in owned_dim_locals_pub(&dad, 0, coords[0]) {
                    let g = dad.dims[0].array_index_of(coords[0], l).unwrap();
                    if g + 3 < 12 {
                        assert_eq!(
                            tmp.get(&[l]),
                            Value::Real((g + 3) as f64),
                            "{kind:?} rank {rank} l {l}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn temporary_shift_periodic_wraps() {
        let (mut m, dad) = setup_1d(12, 3, DistKind::Block);
        for mem in &mut m.mems {
            mem.insert_array("TMP", LocalArray::zeros(ElemType::Real, &dad.local_shape()));
        }
        temporary_shift(&mut m, "B", &dad, "TMP", 0, -1, true).unwrap();
        // tmp(l) = B((g - 1) mod 12)
        let tmp0 = m.mems[0].array("TMP");
        assert_eq!(tmp0.get(&[0]), Value::Real(11.0));
        assert_eq!(tmp0.get(&[1]), Value::Real(0.0));
    }

    #[test]
    fn concatenation_replicates_everywhere() {
        let (mut m, dad) = setup_1d(12, 3, DistKind::Cyclic);
        for mem in &mut m.mems {
            mem.insert_array("FULL", LocalArray::zeros(ElemType::Real, &[12]));
        }
        concatenation(&mut m, "B", &dad, "FULL").unwrap();
        for rank in 0..3 {
            let full = m.mems[rank as usize].array("FULL");
            for g in 0..12 {
                assert_eq!(full.get(&[g]), Value::Real(g as f64), "rank {rank}");
            }
        }
    }

    #[test]
    fn multicast_shift_fused_semantics() {
        // A(I,J) = B(3, J+1): tmp(l_J) = B(3, global(l_J)+1)
        let (mut m, dad) = setup_2d(8, 2, 2);
        alloc_slab_tmp(&mut m, "TMP", &dad, 0, ElemType::Real);
        multicast_shift(&mut m, "B", &dad, "TMP", 0, 3, 1, 1).unwrap();
        for rank in 0..m.nranks() {
            let coords = m.grid.coords_of(rank);
            let tmp = m.mems[rank as usize].array("TMP");
            for l in owned_dim_locals_pub(&dad, 1, coords[1]) {
                let g = dad.dims[1].array_index_of(coords[1], l).unwrap();
                if g + 1 < 8 {
                    assert_eq!(
                        tmp.get(&[l]),
                        Value::Real((300 + g + 1) as f64),
                        "rank {rank} col local {l}"
                    );
                }
            }
        }
    }
}
