//! Redistribution primitives (paper §6).
//!
//! "A dummy argument which is distributed differently than its actual
//! argument in the calling routine is automatically redistributed upon
//! entry to the subroutine …and is automatically redistributed back …at
//! subroutine exit. These operations are performed by the redistribution
//! primitives which transform from block to cyclic or vice versa."
//!
//! [`redistribute`] works between **any** two mappings of the same global
//! shape on the same machine (block↔cyclic, different grids, changed
//! alignment): each node enumerates its owned elements under the source
//! descriptor, groups them by destination owner, and ships one vectorized
//! message per processor pair.

use f90d_distrib::Dad;
use f90d_machine::{LocalArray, Machine};

use crate::helpers::{exchange, PairMoves};
use crate::op::CommResult;

/// Redistribute array data from layout `src_dad` (stored in array
/// `src`) to layout `dst_dad` (stored in array `dst`, which must already
/// be allocated with `dst_dad.local_shape()` on every node).
///
/// `src` and `dst` must be different array names — redistribution stages
/// through the destination allocation, never in place.
pub fn redistribute(
    m: &mut Machine,
    src: &str,
    src_dad: &Dad,
    dst: &str,
    dst_dad: &Dad,
) -> CommResult<()> {
    m.stats.record("redistribute");
    assert_eq!(
        src_dad.shape, dst_dad.shape,
        "redistribution cannot change the global shape"
    );
    assert_ne!(src, dst, "redistribution stages through a fresh array");
    let mut moves: PairMoves = PairMoves::new();
    for rank in 0..m.nranks() {
        let coords = m.grid.coords_of(rank);
        // Skip replica copies: the canonical copy (coordinate 0 on every
        // replicated axis) is the one that travels.
        if src_dad.replicated_axes.iter().any(|&ax| coords[ax] != 0) {
            continue;
        }
        let src_arr = m.mems[rank as usize].array(src);
        for (g, l) in src_dad.owned_elements(&coords) {
            let src_off = src_arr.offset(&l);
            for dst_rank in dst_dad.owner_ranks(&g) {
                let dst_l = dst_dad.local_index(&g);
                let dst_off = m.mems[dst_rank as usize].array(dst).offset(&dst_l);
                moves
                    .entry((rank, dst_rank))
                    .or_default()
                    .push((src_off, dst_off));
            }
        }
    }
    exchange(m, src, dst, &moves)
}

/// Allocate `name` on every node with `dad.local_shape()` (no ghosts) and
/// the given element type — the standard allocation for a redistribution
/// target.
pub fn alloc_for(m: &mut Machine, name: &str, dad: &Dad, ty: f90d_machine::ElemType) {
    let shape = dad.local_shape();
    for mem in &mut m.mems {
        mem.insert_array(name, LocalArray::zeros(ty, &shape));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f90d_distrib::{DadBuilder, DistKind, ProcGrid};
    use f90d_machine::{ElemType, MachineSpec, Value};

    fn fill(m: &mut Machine, name: &str, dad: &Dad) {
        for rank in 0..m.nranks() {
            let coords = m.grid.coords_of(rank);
            for (g, l) in dad.owned_elements(&coords) {
                let v = g.iter().fold(0i64, |acc, &x| acc * 1000 + x);
                m.mems[rank as usize]
                    .array_mut(name)
                    .set(&l, Value::Real(v as f64));
            }
        }
    }

    fn verify(m: &Machine, name: &str, dad: &Dad) {
        for rank in 0..m.nranks() {
            let coords = m.grid.coords_of(rank);
            for (g, l) in dad.owned_elements(&coords) {
                let v = g.iter().fold(0i64, |acc, &x| acc * 1000 + x);
                assert_eq!(
                    m.mems[rank as usize].array(name).get(&l),
                    Value::Real(v as f64),
                    "rank {rank} global {g:?}"
                );
            }
        }
    }

    #[test]
    fn block_to_cyclic_roundtrip() {
        let grid = ProcGrid::new(&[4]);
        let mut m = Machine::new(MachineSpec::ideal(), grid.clone());
        let block = DadBuilder::new("A", &[19])
            .distribute(&[DistKind::Block])
            .grid(grid.clone())
            .build()
            .unwrap();
        let cyclic = DadBuilder::new("A", &[19])
            .distribute(&[DistKind::Cyclic])
            .grid(grid)
            .build()
            .unwrap();
        alloc_for(&mut m, "A", &block, ElemType::Real);
        alloc_for(&mut m, "B", &cyclic, ElemType::Real);
        alloc_for(&mut m, "C", &block, ElemType::Real);
        fill(&mut m, "A", &block);
        redistribute(&mut m, "A", &block, "B", &cyclic).unwrap();
        verify(&m, "B", &cyclic);
        redistribute(&mut m, "B", &cyclic, "C", &block).unwrap();
        verify(&m, "C", &block);
    }

    #[test]
    fn two_d_block_block_to_star_block() {
        // The subroutine-boundary case: (BLOCK, BLOCK) actual passed to a
        // (*, BLOCK) dummy on a 1-D grid view is not expressible on one
        // grid; instead test (BLOCK, BLOCK) → (CYCLIC, BLOCK) on the same
        // 2x2 grid.
        let grid = ProcGrid::new(&[2, 2]);
        let mut m = Machine::new(MachineSpec::ideal(), grid.clone());
        let a = DadBuilder::new("A", &[6, 6])
            .distribute(&[DistKind::Block, DistKind::Block])
            .grid(grid.clone())
            .build()
            .unwrap();
        let b = DadBuilder::new("A", &[6, 6])
            .distribute(&[DistKind::Cyclic, DistKind::Block])
            .grid(grid)
            .build()
            .unwrap();
        alloc_for(&mut m, "A", &a, ElemType::Real);
        alloc_for(&mut m, "B", &b, ElemType::Real);
        fill(&mut m, "A", &a);
        redistribute(&mut m, "A", &a, "B", &b).unwrap();
        verify(&m, "B", &b);
    }

    #[test]
    fn redistribute_to_replicated() {
        let grid = ProcGrid::new(&[3]);
        let mut m = Machine::new(MachineSpec::ideal(), grid.clone());
        let block = DadBuilder::new("A", &[9])
            .distribute(&[DistKind::Block])
            .grid(grid.clone())
            .build()
            .unwrap();
        let repl = DadBuilder::new("A", &[9])
            .distribute(&[DistKind::Collapsed])
            .grid(grid)
            .build()
            .unwrap();
        alloc_for(&mut m, "A", &block, ElemType::Real);
        alloc_for(&mut m, "R", &repl, ElemType::Real);
        fill(&mut m, "A", &block);
        redistribute(&mut m, "A", &block, "R", &repl).unwrap();
        // every node holds the whole array
        verify(&m, "R", &repl);
        for rank in 0..3 {
            for g in 0..9 {
                assert_eq!(
                    m.mems[rank as usize].array("R").get(&[g]),
                    Value::Real(g as f64)
                );
            }
        }
    }

    #[test]
    fn messages_vectorized_pairwise() {
        let grid = ProcGrid::new(&[4]);
        let mut m = Machine::new(MachineSpec::ideal(), grid.clone());
        let block = DadBuilder::new("A", &[64])
            .distribute(&[DistKind::Block])
            .grid(grid.clone())
            .build()
            .unwrap();
        let cyclic = DadBuilder::new("A", &[64])
            .distribute(&[DistKind::Cyclic])
            .grid(grid)
            .build()
            .unwrap();
        alloc_for(&mut m, "A", &block, ElemType::Real);
        alloc_for(&mut m, "B", &cyclic, ElemType::Real);
        fill(&mut m, "A", &block);
        redistribute(&mut m, "A", &block, "B", &cyclic).unwrap();
        // At most P*(P-1) = 12 messages regardless of 64 elements.
        assert!(
            m.transport.messages <= 12,
            "{} messages",
            m.transport.messages
        );
        verify(&m, "B", &cyclic);
    }
}
