//! Tree-collective depth at thousand-rank machine sizes: on an
//! alpha-only machine (α = 1, β = τ = copy = elem-op = 0, crossbar) the
//! virtual clock counts exactly one unit per tree round, so elapsed time
//! *is* the collective's depth. `allreduce` must complete in
//! `2·⌈log2 P⌉` rounds (binomial combine up + binomial broadcast down)
//! and `multicast` in `⌈log2 P⌉`, at P = 1024 and P = 4096 — the sizes
//! the weak-scaling experiment (`repro --exp scaling`) leans on. Message
//! counts pin the tree shape: exactly `P − 1` edges per sweep.

use f90d_comm::reduce::{allreduce_scalar, ReduceOp};
use f90d_comm::structured::{alloc_slab_tmp, multicast};
use f90d_distrib::{DadBuilder, DistKind, ProcGrid};
use f90d_machine::{ElemType, LocalArray, Machine, MachineSpec, Value};

/// α = 1 and every other cost zero: elapsed == critical-path rounds.
fn alpha_only() -> MachineSpec {
    let mut spec = MachineSpec::ideal();
    spec.alpha = 1.0;
    spec.time_elem_op = 0.0;
    spec
}

#[test]
fn allreduce_depth_is_two_log2_p_at_thousand_ranks() {
    for p in [1024i64, 4096] {
        let log2p = (63 - p.leading_zeros() as i64) as f64;
        let mut m = Machine::new(alpha_only(), ProcGrid::new(&[p]));
        let total = allreduce_scalar(&mut m, ReduceOp::Sum, vec![1.0; p as usize]).unwrap();
        assert_eq!(total, p as f64);
        assert_eq!(
            m.elapsed(),
            2.0 * log2p,
            "allreduce over {p} ranks must finish in 2·log2 P rounds"
        );
        assert_eq!(
            m.transport.messages,
            2 * (p as u64 - 1),
            "binomial up + down trees send exactly 2(P-1) messages"
        );
    }
}

#[test]
fn multicast_depth_is_log2_p_at_thousand_ranks() {
    for p in [1024i64, 4096] {
        let log2p = (63 - p.leading_zeros() as i64) as f64;
        let grid = ProcGrid::new(&[p]);
        let mut m = Machine::new(alpha_only(), grid.clone());
        let dad = DadBuilder::new("B", &[p])
            .distribute(&[DistKind::Block])
            .grid(grid)
            .build()
            .unwrap();
        for rank in 0..p {
            let mut la = LocalArray::zeros(ElemType::Real, &dad.local_shape());
            la.set(&[0], Value::Real(rank as f64));
            m.mems[rank as usize].insert_array("B", la);
        }
        alloc_slab_tmp(&mut m, "TMP", &dad, 0, ElemType::Real);
        // Broadcast element 3 (owned by rank 3) to all P ranks.
        multicast(&mut m, "B", &dad, "TMP", 0, 3).unwrap();
        for rank in 0..p {
            assert_eq!(
                m.mems[rank as usize].array("TMP").get(&[0]),
                Value::Real(3.0),
                "rank {rank} missed the multicast"
            );
        }
        assert_eq!(
            m.elapsed(),
            log2p,
            "multicast over {p} ranks must finish in log2 P rounds"
        );
        assert_eq!(m.transport.messages, p as u64 - 1);
    }
}
