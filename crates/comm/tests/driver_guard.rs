//! Dual-site guard: the FORALL communication lifecycle is sequenced in
//! exactly one place — `f90d_comm::driver`. PR 8's bugfix battery showed
//! what happens otherwise: the rank-1 multicast slab-temp bug had to be
//! fixed twice, once per backend. This test fails the build if either
//! backend grows a direct reference to the batching planner, the raw
//! overlap move builder, or the raw transport post call, so the
//! fix-it-twice bug class cannot quietly return.

use std::fs;
use std::path::Path;

/// Raw-orchestration identifiers the backends must not mention. Doc
/// comments count too: a comment pointing readers at the raw layer is
/// the first step toward someone calling it.
const FORBIDDEN: &[&str] = &["PhaseExchange", "overlap_shift_moves", "post_send"];

fn check(rel: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(rel);
    let src = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("guard test cannot read {}: {e}", path.display()));
    for needle in FORBIDDEN {
        for (lineno, line) in src.lines().enumerate() {
            assert!(
                !line.contains(needle),
                "{rel}:{} references `{needle}` directly; FORALL comm \
                 orchestration must go through f90d_comm::driver\n  {}",
                lineno + 1,
                line.trim()
            );
        }
    }
}

#[test]
fn executor_uses_driver_only() {
    check("../core/src/exec.rs");
}

#[test]
fn engine_uses_driver_only() {
    check("../vm/src/engine.rs");
}
