//! Concurrency and keying contract of the sharded [`SchedCache`]
//! (mirror of `crates/vm/tests/concurrent_cache.rs` for the program
//! cache): racing workers never build the same key twice, never deadlock
//! across keys, the hit/miss counters stay exact under contention, a
//! panicking build poisons only its own slot — and, the regression the
//! full-pattern keys exist for, two distinct patterns engineered to
//! share a shard/bucket hash still get distinct schedules.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use f90d_comm::sched_cache::{pattern_hash, SchedCache, SchedKey};
use f90d_comm::schedule::{build_schedule, ElementReq, Schedule, ScheduleKind};

fn req(requester: i64, owner: i64, src_off: usize, dst_off: usize) -> ElementReq {
    ElementReq {
        requester,
        owner,
        src_off,
        dst_off,
    }
}

/// A key whose request list is a small deterministic function of `tag`,
/// so every distinct tag is a distinct pattern.
fn key(tag: usize) -> SchedKey {
    SchedKey {
        kind: ScheduleKind::FanInRequests,
        grid: vec![4],
        reqs: (0..4)
            .map(|k| {
                req(
                    (k % 4) as i64,
                    ((k + 1) % 4) as i64,
                    tag + k as usize,
                    k as usize,
                )
            })
            .collect(),
    }
}

fn build(k: &SchedKey) -> Schedule {
    build_schedule(k.kind, &k.reqs)
}

#[test]
fn same_key_races_build_exactly_once() {
    const THREADS: usize = 16;
    let cache = SchedCache::new();
    let builds = AtomicUsize::new(0);
    let barrier = Barrier::new(THREADS);
    let k = key(7);
    let schedules: Vec<Arc<Schedule>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let (cache, builds, barrier, k) = (&cache, &builds, &barrier, &k);
                s.spawn(move || {
                    barrier.wait(); // all threads hit the cold key together
                    let (sched, _) = cache.get_or_build(k, || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        build(k)
                    });
                    sched
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(builds.load(Ordering::SeqCst), 1, "duplicate build");
    for s in &schedules[1..] {
        assert!(Arc::ptr_eq(&schedules[0], s), "distinct schedules returned");
    }
    assert_eq!(cache.misses(), 1);
    assert_eq!(cache.hits(), THREADS as u64 - 1);
    assert_eq!(cache.len(), 1);
}

#[test]
fn distinct_keys_build_independently() {
    const THREADS: usize = 12;
    const ROUNDS: usize = 4;
    let cache = SchedCache::new();
    let builds = AtomicUsize::new(0);
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (cache, builds, barrier) = (&cache, &builds, &barrier);
            s.spawn(move || {
                barrier.wait();
                // Every thread touches every key, several times, in a
                // thread-dependent order (covers same-shard neighbours).
                for r in 0..ROUNDS {
                    for off in 0..THREADS {
                        let tag = (t + off + r) % THREADS;
                        let k = key(tag);
                        let (sched, _) = cache.get_or_build(&k, || {
                            builds.fetch_add(1, Ordering::SeqCst);
                            build(&k)
                        });
                        // The schedule really is this pattern's build.
                        assert_eq!(
                            sched.signature(),
                            build(&k).signature(),
                            "wrong schedule for tag {tag}"
                        );
                    }
                }
            });
        }
    });
    assert_eq!(builds.load(Ordering::SeqCst), THREADS, "one build per key");
    assert_eq!(cache.misses(), THREADS as u64);
    assert_eq!(
        cache.hits(),
        (THREADS * THREADS * ROUNDS - THREADS) as u64,
        "every non-first lookup is a hit"
    );
    assert_eq!(cache.len(), THREADS);
}

#[test]
fn panicking_build_poisons_only_its_slot() {
    const THREADS: usize = 8;
    let cache = SchedCache::new();
    let barrier = Barrier::new(THREADS + 1);
    std::thread::scope(|s| {
        // One builder panics on the hot key…
        let (c, b) = (&cache, &barrier);
        s.spawn(move || {
            b.wait();
            let k = key(0);
            let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c.get_or_build(&k, || panic!("inspector bug"));
            }));
            assert!(panicked.is_err());
        });
        // …while other keys keep building and hitting undisturbed.
        for t in 1..=THREADS {
            let (c, b) = (&cache, &barrier);
            s.spawn(move || {
                b.wait();
                let k = key(t);
                let (first, hit_first) = c.get_or_build(&k, || build(&k));
                let (again, hit_again) = c.get_or_build(&k, || build(&k));
                assert!(!hit_first);
                assert!(hit_again);
                assert!(Arc::ptr_eq(&first, &again));
            });
        }
    });
    // The panicked key's slot is recoverable, not poisoned: the next
    // caller retries the build instead of cascading a PoisonError panic.
    let k = key(0);
    let (sched, hit) = cache.get_or_build(&k, || build(&k));
    assert!(!hit, "failed build must not be cached");
    assert_eq!(sched.kind(), ScheduleKind::FanInRequests);
    assert_eq!(cache.len(), THREADS + 1);
}

/// Regression for the latent signature-collision hazard: the executors
/// used to key schedule reuse by a bare 64-bit FNV signature, so two
/// different request patterns hashing alike would silently share one
/// schedule. Here two distinct single-request patterns are *engineered*
/// (by inverting the FNV-1a final step — the multiplier is odd, hence
/// invertible mod 2^64) to collide in [`pattern_hash`], which also puts
/// them in the same shard; the cache must still build both.
#[test]
#[cfg(target_pointer_width = "64")]
fn colliding_pattern_hashes_get_distinct_schedules() {
    // 2-adic Newton iteration for the inverse of the FNV prime.
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut p_inv: u64 = 1;
    for _ in 0..6 {
        p_inv = p_inv.wrapping_mul(2u64.wrapping_sub(FNV_PRIME.wrapping_mul(p_inv)));
    }
    assert_eq!(FNV_PRIME.wrapping_mul(p_inv), 1);

    let mk = |src_off: usize, dst_off: usize| SchedKey {
        kind: ScheduleKind::LocalOnly,
        grid: vec![2],
        reqs: vec![req(0, 1, src_off, dst_off)],
    };
    // pattern_hash ends with h = (X ^ dst_off) * p, where X is the state
    // after mixing src_off. Solve B's dst_off so its final state matches
    // A's: d = (hash(B with d=0) * p_inv) ^ (hash(A) * p_inv).
    let a = mk(0, 0);
    let b0 = mk(1, 0);
    let d = pattern_hash(&b0).wrapping_mul(p_inv) ^ pattern_hash(&a).wrapping_mul(p_inv);
    let b = mk(1, d as usize);

    assert_ne!(a, b, "patterns must differ");
    assert_eq!(
        pattern_hash(&a),
        pattern_hash(&b),
        "engineered hash collision"
    );

    let cache = SchedCache::new();
    let builds = AtomicUsize::new(0);
    let (sa, _) = cache.get_or_build(&a, || {
        builds.fetch_add(1, Ordering::SeqCst);
        build(&a)
    });
    let (sb, hit_b) = cache.get_or_build(&b, || {
        builds.fetch_add(1, Ordering::SeqCst);
        build(&b)
    });
    assert!(!hit_b, "a colliding hash must not read as a cache hit");
    assert_eq!(builds.load(Ordering::SeqCst), 2, "both patterns built");
    assert!(!Arc::ptr_eq(&sa, &sb));
    assert_ne!(
        sa.signature(),
        sb.signature(),
        "each key owns its own schedule"
    );
    assert_eq!((cache.len(), cache.misses(), cache.hits()), (2, 2, 0));
    // Re-lookups keep resolving to the right entry.
    let (sa2, hit) = cache.get_or_build(&a, || unreachable!("cached"));
    assert!(hit);
    assert!(Arc::ptr_eq(&sa, &sa2));
    assert_eq!(cache.hits(), 1);
}
