//! EXP-T3 — paper Table 3: one representative intrinsic per category on
//! the 16-node iPSC/860 model (CSHIFT, SUM, SPREAD, TRANSPOSE, MATMUL).

use criterion::{criterion_group, criterion_main, Criterion};
use f90d_bench::experiments::table3_microbench;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_intrinsics");
    g.sample_size(10);
    g.bench_function("five_categories_16k", |b| {
        b.iter(|| table3_microbench(1 << 14));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
