//! EXP-T4 — paper Table 4: hand-written vs compiler-generated Gaussian
//! elimination, column-distributed, iPSC/860 model. The headline numbers
//! (modelled seconds and the hand/compiled ratio) come from
//! `repro --exp table4`; this bench tracks the harness cost of both paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use f90d_bench::experiments::{ge_compiled_time, ge_hand_time};
use f90d_machine::MachineSpec;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_ge");
    g.sample_size(10);
    let n = 96i64;
    for &p in &[1i64, 4, 16] {
        g.bench_with_input(BenchmarkId::new("hand", p), &p, |b, &p| {
            b.iter(|| ge_hand_time(n, p, &MachineSpec::ipsc860()));
        });
        g.bench_with_input(BenchmarkId::new("compiled", p), &p, |b, &p| {
            b.iter(|| ge_compiled_time(n, p, &MachineSpec::ipsc860(), true));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
