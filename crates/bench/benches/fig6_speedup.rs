//! EXP-F6 — paper Figure 6: speedup of both GE codes against the
//! sequential run. The modelled speedup series is printed by
//! `repro --exp fig6`; this bench sweeps P so regressions in the
//! scaling path (set_BOUND, tree broadcasts) show up as timing changes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use f90d_bench::experiments::table4_row;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_speedup");
    g.sample_size(10);
    let n = 96i64;
    for &p in &[1i64, 2, 4, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| table4_row(n, p));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
