//! EXP-F5 — paper Figure 5: compiled Gaussian elimination across problem
//! sizes on the iPSC/860 and nCUBE/2 models, 16 nodes. Criterion measures
//! the wall-clock of the whole simulate-and-model pipeline per size; the
//! *modelled* seconds (the figure's y-axis) are printed by
//! `repro --exp fig5`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use f90d_bench::experiments::ge_compiled_time;
use f90d_machine::MachineSpec;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_ge_machines");
    g.sample_size(10);
    for &n in &[32i64, 64, 128] {
        for spec in [MachineSpec::ipsc860(), MachineSpec::ncube2()] {
            let label = format!("{}/N{n}", spec.name);
            g.bench_with_input(BenchmarkId::from_parameter(label), &n, |b, &n| {
                b.iter(|| ge_compiled_time(n, 16, &spec, true));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
