//! ABL-1..4 — the §7 optimization ablations (DESIGN.md §5):
//! duplicate-communication elimination, schedule reuse, fused
//! multicast_shift, overlap vs temporary shift.

use criterion::{criterion_group, criterion_main, Criterion};
use f90d_bench::experiments::{
    ablation_merge_comm, ablation_multicast_shift, ablation_overlap_shift, ablation_schedule_reuse,
};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("abl1_merge_comm", |b| {
        b.iter(|| ablation_merge_comm(48, 8));
    });
    g.bench_function("abl2_schedule_reuse", |b| {
        b.iter(|| ablation_schedule_reuse(1024, 8));
    });
    g.bench_function("abl3_multicast_shift", |b| {
        b.iter(|| ablation_multicast_shift(64));
    });
    g.bench_function("abl4_overlap_shift", |b| {
        b.iter(|| ablation_overlap_shift(64, 4, 4));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
