//! Backend head-to-head: host wall-clock of the tree-walking executor
//! vs the register-bytecode engine on node-local-dominated workloads.
//! The PR's acceptance bar: ≥2× lower wall-clock for the VM on Jacobi 2D
//! at N=256 on a 4-node ([2,2]) grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use f90d_bench::workloads;
use f90d_core::{compile, Backend, CompileOptions};
use f90d_distrib::ProcGrid;
use f90d_machine::{Machine, MachineSpec};

fn run_once(compiled: &f90d_core::Compiled, grid: &[i64]) -> f64 {
    let mut m = Machine::new(MachineSpec::ipsc860(), ProcGrid::new(grid));
    compiled.run_on(&mut m).expect("runs").elapsed
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("vm_vs_treewalk");
    g.sample_size(10);
    let cases: Vec<(&str, String, Vec<i64>)> = vec![
        ("jacobi_256_p4", workloads::jacobi(256, 4), vec![2, 2]),
        ("gauss_96_p4", workloads::gaussian(96), vec![4]),
        ("irregular_4096_p4", workloads::irregular(4096), vec![4]),
    ];
    for (name, src, grid) in &cases {
        for backend in [Backend::TreeWalk, Backend::Vm] {
            let opts = CompileOptions::on_grid(grid).with_backend(backend);
            let compiled = compile(src, &opts).expect("compiles");
            // Warm the program cache outside the timed region (the cache
            // is what the bench harness's inner loops hit).
            if backend == Backend::Vm {
                compiled.vm_program().expect("lowers");
            }
            let label = match backend {
                Backend::TreeWalk => "treewalk",
                Backend::Vm => "vm",
            };
            g.bench_with_input(BenchmarkId::new(*name, label), &compiled, |b, compiled| {
                b.iter(|| run_once(compiled, grid))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
