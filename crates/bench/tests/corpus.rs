//! Golden-corpus runner: every `corpus/*.f90d` program (regression
//! cases promoted out of the property-test batteries — see
//! `corpus/README.md`) runs on a 4-rank grid, on both backends, with
//! the communication optimizers off and on, and its PRINT output must
//! be bit-identical across all four configurations **and** to the
//! committed `<name>.expected` file.
//!
//! Re-bless intentional output changes with
//! `CORPUS_BLESS=1 cargo test -p f90d-bench --test corpus`.

use std::path::{Path, PathBuf};

use f90d_core::{compile, Backend, CompileOptions};
use f90d_distrib::ProcGrid;
use f90d_machine::{Machine, MachineSpec};

const GRID: [i64; 1] = [4];

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus")
}

/// PRINT output of one program under one configuration.
fn printed(src: &str, backend: Backend, optimize: bool) -> Vec<String> {
    let mut opts = CompileOptions::on_grid(&GRID).with_backend(backend);
    opts.opt.comm_plan = optimize;
    opts.opt.hoist_invariant_comm = optimize;
    let compiled = compile(src, &opts).unwrap_or_else(|e| panic!("corpus program: {e}"));
    let mut m = Machine::new(MachineSpec::ipsc860(), ProcGrid::new(&GRID));
    let rep = compiled
        .run_on(&mut m)
        .unwrap_or_else(|e| panic!("corpus run: {e}"));
    rep.printed
}

#[test]
fn corpus_programs_match_golden_output() {
    let dir = corpus_dir();
    let mut programs: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "f90d"))
        .collect();
    programs.sort();
    assert!(!programs.is_empty(), "corpus must contain programs");

    let bless = std::env::var_os("CORPUS_BLESS").is_some();
    for path in programs {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).unwrap();
        let golden_path = path.with_extension("expected");

        let base = printed(&src, Backend::TreeWalk, false);
        assert!(!base.is_empty(), "{name}: corpus programs must PRINT");
        for (backend, optimize) in [
            (Backend::TreeWalk, true),
            (Backend::Vm, false),
            (Backend::Vm, true),
        ] {
            let got = printed(&src, backend, optimize);
            assert_eq!(
                got,
                base,
                "{name}: PRINT diverged ({backend:?}, optimizers {})",
                if optimize { "on" } else { "off" }
            );
        }

        let rendered = base.join("\n") + "\n";
        if bless {
            std::fs::write(&golden_path, &rendered).unwrap();
            continue;
        }
        let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!(
                "{name}: missing golden file {} ({e}); run with CORPUS_BLESS=1 to create it",
                golden_path.display()
            )
        });
        assert_eq!(rendered, golden, "{name}: PRINT output drifted from golden");
    }
}
