//! Harness equivalence and perf-gate contract:
//!
//! * `--jobs 8` must produce exactly the deterministic output of
//!   `--jobs 1` (canonical cell order, bit-exact virtual metrics);
//! * `diff_baseline` must pass on a clean rerun and fail on injected
//!   drift, missing cells, or extra cells.
//!
//! The cache-counter assertions live in the single matrix test — the
//! gate tests below operate on synthetic documents and never touch the
//! process-wide program cache.

use f90d_bench::harness::{self, MatrixConfig, Scale};
use f90d_machine::{budget, pool, ExecMode};
use serde::json::Json;

/// Strip the `cache:` trailer — cross-run cache state (second run is all
/// hits) is process history, not a property of a matrix run.
fn cells_only(table: &str) -> String {
    table
        .lines()
        .filter(|l| !l.starts_with("cache:"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn jobs8_matches_jobs1_bit_exactly() {
    let cells = harness::matrix(Scale::Tiny);
    let serial = harness::run_matrix_scaled(&cells, 1, Scale::Tiny);
    let parallel = harness::run_matrix_scaled(&cells, 8, Scale::Tiny);
    assert_eq!(parallel.jobs, 8);

    // Canonical order, bit-exact virtual metrics, identical rendering.
    assert_eq!(serial.cells.len(), cells.len());
    for (a, b) in serial.cells.iter().zip(&parallel.cells) {
        assert_eq!(a.cell, b.cell, "cell order must be canonical");
        assert_eq!(a.virt_s.to_bits(), b.virt_s.to_bits(), "{}", a.cell.id());
        assert_eq!(a.messages, b.messages, "{}", a.cell.id());
        assert_eq!(a.bytes, b.bytes, "{}", a.cell.id());
        assert_eq!(a.printed, b.printed, "{}", a.cell.id());
    }
    assert_eq!(
        cells_only(&harness::render_table(&serial)),
        cells_only(&harness::render_table(&parallel)),
        "deterministic stdout must be byte-identical across --jobs"
    );

    // The second run reused every lowering from the first: cross-run
    // sharing through the process-wide cache.
    assert_eq!(parallel.cache_misses, 0);
    assert_eq!(
        parallel.cache_hits,
        cells
            .iter()
            .filter(|c| c.backend == f90d_core::Backend::Vm)
            .count() as u64
    );

    // Same for the schedule cache: the serial run built every distinct
    // (kind, grid, pattern) key, so the parallel rerun is all hits —
    // cross-run inspector reuse, on both backends.
    assert_eq!(parallel.sched_misses, 0, "second run must rebuild nothing");
    assert!(parallel.sched_hits > 0, "tiny matrix has irregular cells");
    assert_eq!(
        serial.sched_hits + serial.sched_misses,
        parallel.sched_hits,
        "same lookups per matrix run, split shifted to all-hit"
    );

    // And the serialized documents agree on the gated metrics, while the
    // schedule_cache stats block is carried along (never gated: the two
    // runs' splits differ).
    let a = harness::report_json(&serial);
    let b = harness::report_json(&parallel);
    for (doc, rep) in [(&a, &serial), (&b, &parallel)] {
        let block = doc.get("schedule_cache").expect("schedule_cache block");
        assert_eq!(
            block.get("hits").and_then(Json::as_u64),
            Some(rep.sched_hits)
        );
        assert_eq!(
            block.get("misses").and_then(Json::as_u64),
            Some(rep.sched_misses)
        );
    }
    harness::diff_baseline(&b, &a, None).expect("jobs=8 run must match jobs=1 baseline");
}

/// Regression/stress test for the steal path: `jobs ≫ cells` puts most
/// workers straight into the steal phase. The original loop held each
/// stealer's **own** deque lock across the victim scan (a `let`
/// statement's temporary `MutexGuard` lives to the end of the
/// statement) and blocked on contended victims — two stealers waiting
/// on each other's held mutex deadlocked the whole matrix. The fix pops
/// the own queue in its own statement and steals with `try_lock`; this
/// must now terminate every time.
#[test]
fn jobs_exceeding_cells_terminates() {
    let all = harness::matrix(Scale::Tiny);
    let cells = &all[..3];
    for _ in 0..10 {
        let rep = harness::run_matrix_scaled(cells, 32, Scale::Tiny);
        assert_eq!(rep.cells.len(), 3, "every cell ran exactly once");
        for (c, want) in rep.cells.iter().zip(cells) {
            assert_eq!(&c.cell, want, "canonical order preserved");
        }
    }
}

/// `--exec threaded` end to end: bit-identical to the sequential matrix
/// in every gated metric, with at least one cell genuinely pooled, and
/// the sampled live pool-thread count never exceeding the configured
/// worker budget (`jobs × P` never materializes as threads).
#[test]
fn threaded_exec_matches_sequential_bit_exactly_within_budget() {
    const BUDGET: usize = 6;
    let cells = harness::matrix(Scale::Tiny);
    let seq = harness::run_matrix_cfg(&cells, &MatrixConfig::new(Scale::Tiny));

    let mut cfg = MatrixConfig::new(Scale::Tiny);
    cfg.jobs = 2;
    cfg.exec = ExecMode::Threaded;
    cfg.budget = Some(BUDGET);
    let done = std::sync::atomic::AtomicBool::new(false);
    let max_live = std::sync::atomic::AtomicUsize::new(0);
    // Stops the sampler even when the matrix run panics — otherwise the
    // scope would join the sampler forever and a failure would hang.
    struct StopOnDrop<'a>(&'a std::sync::atomic::AtomicBool);
    impl Drop for StopOnDrop<'_> {
        fn drop(&mut self) {
            self.0.store(true, std::sync::atomic::Ordering::SeqCst);
        }
    }
    let thr = std::thread::scope(|s| {
        s.spawn(|| {
            use std::sync::atomic::Ordering;
            while !done.load(Ordering::SeqCst) {
                max_live.fetch_max(pool::live_workers(), Ordering::SeqCst);
                std::thread::yield_now();
            }
        });
        let _stop = StopOnDrop(&done);
        harness::run_matrix_cfg(&cells, &cfg)
    });

    assert_eq!(thr.exec, ExecMode::Threaded);
    assert_eq!(thr.worker_budget, BUDGET);
    let sampled = max_live.load(std::sync::atomic::Ordering::SeqCst);
    assert!(
        sampled <= BUDGET,
        "sampled {sampled} live pool threads > budget {BUDGET}"
    );
    assert!(
        thr.cells.iter().any(|c| c.workers >= 2),
        "at least one cell must have run on a real pool"
    );
    assert_eq!(budget::global().in_use(), 0, "all leases returned");

    for (a, b) in seq.cells.iter().zip(&thr.cells) {
        assert_eq!(a.cell, b.cell, "canonical order");
        assert_eq!(a.virt_s.to_bits(), b.virt_s.to_bits(), "{}", a.cell.id());
        assert_eq!(a.messages, b.messages, "{}", a.cell.id());
        assert_eq!(a.bytes, b.bytes, "{}", a.cell.id());
        assert_eq!(a.printed, b.printed, "{}", a.cell.id());
        assert_eq!(a.workers, 0, "sequential cells lease nothing");
    }
    assert_eq!(
        cells_only(&harness::render_table(&seq)),
        cells_only(&harness::render_table(&thr)),
        "deterministic stdout must be byte-identical across --exec"
    );
    // And the serialized documents gate clean against each other (the
    // per-cell `workers` and top-level exec/worker_budget fields are
    // informational, never compared).
    harness::diff_baseline(
        &harness::report_json(&thr),
        &harness::report_json(&seq),
        None,
    )
    .expect("threaded run must match sequential baseline");
}

/// A tiny synthetic results document (no cells are actually run).
fn synthetic() -> Json {
    Json::parse(
        r#"{
  "schema": "f90d-results/v1",
  "suite": "tiny",
  "jobs": 1,
  "wall_s": 1.0,
  "cache": {"hits": 1, "misses": 1},
  "cells": [
    {"workload": "gaussian", "n": 16, "grid": [4], "machine": "ipsc860",
     "backend": "vm", "virt_s": 0.125, "messages": 10, "bytes": 640,
     "printed": [], "wall_s": 0.5, "cache_hit": false},
    {"workload": "jacobi", "n": 12, "grid": [2, 2], "machine": "ncube2",
     "backend": "treewalk", "virt_s": 0.25, "messages": 8, "bytes": 128,
     "printed": ["SUM = 3.0"], "wall_s": 0.25, "cache_hit": null}
  ]
}"#,
    )
    .unwrap()
}

fn set_cell_field(doc: &mut Json, cell_idx: usize, field: &str, v: Json) {
    let Json::Obj(top) = doc else { panic!() };
    let cells = &mut top.iter_mut().find(|(k, _)| k == "cells").unwrap().1;
    let Json::Arr(cells) = cells else { panic!() };
    let Json::Obj(cell) = &mut cells[cell_idx] else {
        panic!()
    };
    cell.iter_mut().find(|(k, _)| k == field).unwrap().1 = v;
}

#[test]
fn gate_passes_clean_and_catches_each_drift_kind() {
    let base = synthetic();
    let summary = harness::diff_baseline(&base, &base, None).expect("identical docs pass");
    assert!(summary.contains("2 cells match"), "{summary}");

    // Virtual-time drift: even the last bit.
    let mut drift = synthetic();
    set_cell_field(
        &mut drift,
        0,
        "virt_s",
        Json::Num(0.125 + f64::EPSILON / 8.0),
    );
    let err = harness::diff_baseline(&drift, &base, None).unwrap_err();
    assert!(err.contains("virt_s"), "{err}");

    // Message-count drift.
    let mut drift = synthetic();
    set_cell_field(&mut drift, 1, "messages", Json::Num(9.0));
    let err = harness::diff_baseline(&drift, &base, None).unwrap_err();
    assert!(err.contains("messages 9 != baseline 8"), "{err}");

    // Byte-count drift.
    let mut drift = synthetic();
    set_cell_field(&mut drift, 0, "bytes", Json::Num(648.0));
    assert!(harness::diff_baseline(&drift, &base, None).is_err());

    // PRINT drift.
    let mut drift = synthetic();
    set_cell_field(&mut drift, 1, "printed", Json::Arr(vec![]));
    let err = harness::diff_baseline(&drift, &base, None).unwrap_err();
    assert!(err.contains("PRINT"), "{err}");

    // A cell vanishing from the run.
    let mut missing = synthetic();
    let Json::Obj(top) = &mut missing else {
        panic!()
    };
    let Json::Arr(cells) = &mut top.iter_mut().find(|(k, _)| k == "cells").unwrap().1 else {
        panic!()
    };
    cells.pop();
    let err = harness::diff_baseline(&missing, &base, None).unwrap_err();
    assert!(err.contains("missing from current run"), "{err}");
    // …and the reverse: baseline missing a cell the run has.
    let err = harness::diff_baseline(&base, &missing, None).unwrap_err();
    assert!(err.contains("not in baseline"), "{err}");

    // Suite mismatch refuses to compare at all.
    let mut other = synthetic();
    let Json::Obj(top) = &mut other else { panic!() };
    top.iter_mut().find(|(k, _)| k == "suite").unwrap().1 = Json::Str("full".into());
    assert!(harness::diff_baseline(&other, &base, None).is_err());
}

/// The `schedule_cache` stats block (and the per-cell sched counters)
/// are observability, not metrics: present, absent, or wildly different,
/// they must never gate a baseline diff — pre-cache baselines (like the
/// committed `BENCH_baseline.json` of PR 2) stay comparable, and the
/// split naturally shifts between runs as the process cache warms.
#[test]
fn schedule_cache_stats_never_gate() {
    let base = synthetic(); // has no schedule_cache block at all
    let add_stats = |doc: &mut Json, hits: f64, misses: f64| {
        let Json::Obj(top) = doc else { panic!() };
        top.push((
            "schedule_cache".into(),
            Json::Obj(vec![
                ("hits".into(), Json::Num(hits)),
                ("misses".into(), Json::Num(misses)),
            ]),
        ));
    };

    // Stats present in current, absent from baseline.
    let mut cur = synthetic();
    add_stats(&mut cur, 48.0, 0.0);
    harness::diff_baseline(&cur, &base, None).expect("new stats vs old baseline");
    // …and the reverse: an old run diffed against a stats-bearing baseline.
    harness::diff_baseline(&base, &cur, None).expect("old run vs new baseline");

    // Present on both sides with different values: still not gated.
    let mut warm = synthetic();
    add_stats(&mut warm, 48.0, 0.0);
    let mut cold = synthetic();
    add_stats(&mut cold, 0.0, 48.0);
    harness::diff_baseline(&warm, &cold, None).expect("warm vs cold split");

    // Per-cell sched counters are equally non-gating.
    let mut cells = synthetic();
    let Json::Obj(top) = &mut cells else { panic!() };
    let Json::Arr(arr) = &mut top.iter_mut().find(|(k, _)| k == "cells").unwrap().1 else {
        panic!()
    };
    let Json::Obj(cell) = &mut arr[0] else {
        panic!()
    };
    cell.push(("sched_hits".into(), Json::Num(7.0)));
    cell.push(("sched_misses".into(), Json::Num(3.0)));
    harness::diff_baseline(&cells, &base, None).expect("per-cell sched stats ignored");
}

#[test]
fn wall_clock_reported_not_gated_unless_asked() {
    let base = synthetic();
    let mut slow = synthetic();
    // 100x slower cell — by default reported in the summary, never a failure.
    set_cell_field(&mut slow, 0, "wall_s", Json::Num(50.0));
    let summary = harness::diff_baseline(&slow, &base, None).expect("wall clock is not gated");
    assert!(summary.contains("100.00x"), "{summary}");
    // Opt-in tolerance: now it fails.
    let err = harness::diff_baseline(&slow, &base, Some(3.0)).unwrap_err();
    assert!(err.contains("wall clock"), "{err}");
    // Within tolerance passes.
    harness::diff_baseline(&slow, &base, Some(200.0)).expect("within tolerance");
}

#[test]
fn results_json_round_trips() {
    let doc = synthetic();
    let parsed = Json::parse(&doc.render_pretty()).unwrap();
    assert_eq!(parsed, doc);
    harness::diff_baseline(&parsed, &doc, None).expect("round trip is drift-free");
}
