//! CLI contract of the `repro` binary: flag validation exits 2 with a
//! diagnostic before any experiment runs.

use std::process::Command;

fn repro_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[track_caller]
fn expect_exit_2(args: &[&str], frag: &str) {
    let out = repro_bin().args(args).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} must exit 2, got {:?}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(frag),
        "{args:?} stderr {stderr:?} !~ {frag}"
    );
    assert!(
        out.stdout.is_empty(),
        "no experiment output may precede a usage error"
    );
}

#[test]
fn zero_jobs_and_workers_exit_2() {
    expect_exit_2(&["--jobs", "0"], "--jobs expects a worker count >= 1");
    expect_exit_2(&["--jobs", "-3"], "--jobs expects");
    expect_exit_2(&["--jobs", "lots"], "--jobs expects");
    expect_exit_2(
        &["--workers", "0"],
        "--workers expects a worker-budget total >= 1",
    );
    expect_exit_2(&["--workers", "x"], "--workers expects");
}

#[test]
fn other_bad_flags_still_exit_2() {
    expect_exit_2(&["--repeat", "0"], "--repeat expects");
    expect_exit_2(&["--exec", "warp-speed"], "--exec expects");
    expect_exit_2(&["--backend", "jit"], "--backend expects");
    expect_exit_2(&["--frobnicate"], "unknown argument");
}
