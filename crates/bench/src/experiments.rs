//! Experiment runners — one per paper table/figure and ablation
//! (DESIGN.md §5 index). Every function returns plain data so the
//! `repro` binary, the criterion benches and EXPERIMENTS.md all draw
//! from the same source.

use std::sync::Arc;

use f90d_core::{compile, Backend, CompileOptions, Executor, OptFlags};
use f90d_distrib::ProcGrid;
use f90d_machine::{ExecMode, Machine, MachineSpec};

use crate::handwritten::ge_handwritten;
use crate::workloads;

/// Compile + run Gaussian elimination on `p` processors of `spec`;
/// returns the modelled elimination time (initialization excluded the
/// same way for both variants).
pub fn ge_compiled_time(n: i64, p: i64, spec: &MachineSpec, merge_comm: bool) -> f64 {
    ge_compiled_time_backend(n, p, spec, merge_comm, Backend::TreeWalk)
}

/// [`ge_compiled_time`] with an explicit execution backend.
pub fn ge_compiled_time_backend(
    n: i64,
    p: i64,
    spec: &MachineSpec,
    merge_comm: bool,
    backend: Backend,
) -> f64 {
    let mut opts = CompileOptions::on_grid(&[p]);
    opts.opt.merge_comm = merge_comm;
    opts.backend = backend;
    let compiled = compile(&workloads::gaussian(n), &opts).expect("gaussian compiles");
    let mut m = Machine::new(spec.clone(), ProcGrid::new(&[p]));
    // Execute the initialization FORALLs, reset the clock, then eliminate
    // — Table 4 times the solver, not the data generation.
    let init: Vec<_> = compiled.spmd.stmts[..2].to_vec();
    let elim: Vec<_> = compiled.spmd.stmts[2..].to_vec();
    let init_prog = f90d_core::ir::SProgram {
        stmts: init,
        ..compiled.spmd.clone()
    };
    let elim_prog = f90d_core::ir::SProgram {
        stmts: elim,
        ..compiled.spmd.clone()
    };
    match backend {
        Backend::TreeWalk => {
            // Run init with a throwaway executor sharing the machine arrays.
            let mut ex0 = Executor::new(&init_prog, &mut m);
            ex0.run(&mut m).expect("init runs");
            m.reset_time();
            let mut ex1 = Executor::new_preserving(&elim_prog, &mut m);
            ex1.sched.reuse = true;
            ex1.run(&mut m).expect("elimination runs");
        }
        Backend::Vm => {
            let init_bc = f90d_core::vmlower::lower(&init_prog).expect("init lowers");
            let elim_bc = f90d_core::vmlower::lower(&elim_prog).expect("elim lowers");
            let mut e0 = f90d_vm::Engine::new(Arc::new(init_bc), &mut m);
            e0.run(&mut m).expect("init runs");
            m.reset_time();
            let mut e1 = f90d_vm::Engine::new_preserving(Arc::new(elim_bc), &mut m);
            e1.sched.reuse = true;
            e1.run(&mut m).expect("elimination runs");
        }
    }
    m.elapsed()
}

/// One row of the three-tier head-to-head (`repro --exp vmcmp`): best-of-
/// three host wall-clock per execution tier on one workload, plus the
/// modelled metrics that must be bit-identical across tiers.
#[derive(Debug, Clone)]
pub struct TierRow {
    /// Tree-walking interpreter wall-clock (seconds).
    pub wall_treewalk_s: f64,
    /// Bytecode VM with the native kernel tier disabled.
    pub wall_vm_s: f64,
    /// Bytecode VM with native kernels on (the default configuration).
    pub wall_native_s: f64,
    /// Modelled time of the native run (the other tiers must agree).
    pub virt_s: f64,
    /// Virtual time bit-identical across all three tiers.
    pub virt_equal: bool,
    /// FORALL executions the native run dispatched to kernels.
    pub native_matched: u64,
    /// FORALL executions the native run left on the bytecode loop.
    pub native_fallback: u64,
}

/// Host wall-clock of one full run of `src` under each execution tier:
/// tree walk, bytecode VM (`native_kernels` off), and the native kernel
/// tier. Lowering is warmed outside the timed region (the program cache
/// is what repeated-run harnesses hit); each tier gets one warm-up run
/// and then the best of three.
pub fn tier_wallclock(src: &str, grid: &[i64], spec: &MachineSpec) -> TierRow {
    let run = |backend: Backend, native: bool| {
        let mut opts = CompileOptions::on_grid(grid).with_backend(backend);
        opts.opt.native_kernels = native;
        let compiled = compile(src, &opts).expect("compiles");
        if backend == Backend::Vm {
            compiled.vm_program().expect("lowers");
        }
        // One warm-up, then the best of three timed runs.
        let once = || {
            let mut m = Machine::new(spec.clone(), ProcGrid::new(grid));
            let t0 = std::time::Instant::now();
            let (rep, trace) = compiled.run_on_traced(&mut m).expect("runs");
            (
                t0.elapsed().as_secs_f64(),
                rep.elapsed,
                trace.native_matched,
                trace.native_fallback,
            )
        };
        once();
        (0..3)
            .map(|_| once())
            .fold((f64::INFINITY, 0.0, 0, 0), |acc, r| {
                if r.0 < acc.0 {
                    r
                } else {
                    acc
                }
            })
    };
    let (wt, vt, _, _) = run(Backend::TreeWalk, false);
    let (wv, vv, _, _) = run(Backend::Vm, false);
    let (wn, vn, matched, fallback) = run(Backend::Vm, true);
    TierRow {
        wall_treewalk_s: wt,
        wall_vm_s: wv,
        wall_native_s: wn,
        virt_s: vn,
        virt_equal: vt.to_bits() == vv.to_bits() && vv.to_bits() == vn.to_bits(),
        native_matched: matched,
        native_fallback: fallback,
    }
}

/// Hand-written GE time on `p` processors of `spec`.
pub fn ge_hand_time(n: i64, p: i64, spec: &MachineSpec) -> f64 {
    let mut m = Machine::new(spec.clone(), ProcGrid::new(&[p]));
    ge_handwritten(&mut m, n)
}

/// Figure 5: compiled-GE execution time vs problem size on 16 nodes of
/// the iPSC/860 and nCUBE/2 models. Returns `(n, t_ipsc, t_ncube)` rows.
pub fn fig5(sizes: &[i64], p: i64) -> Vec<(i64, f64, f64)> {
    fig5_backend(sizes, p, Backend::TreeWalk)
}

/// [`fig5`] with an explicit execution backend.
pub fn fig5_backend(sizes: &[i64], p: i64, backend: Backend) -> Vec<(i64, f64, f64)> {
    let ipsc = MachineSpec::ipsc860();
    let ncube = MachineSpec::ncube2();
    sizes
        .iter()
        .map(|&n| {
            (
                n,
                ge_compiled_time_backend(n, p, &ipsc, true, backend),
                ge_compiled_time_backend(n, p, &ncube, true, backend),
            )
        })
        .collect()
}

/// One Table 4 row: `(p, hand_time, compiled_time)`.
pub fn table4_row(n: i64, p: i64) -> (i64, f64, f64) {
    table4_row_backend(n, p, Backend::TreeWalk)
}

/// [`table4_row`] with an explicit execution backend.
pub fn table4_row_backend(n: i64, p: i64, backend: Backend) -> (i64, f64, f64) {
    let spec = MachineSpec::ipsc860();
    (
        p,
        ge_hand_time(n, p, &spec),
        ge_compiled_time_backend(n, p, &spec, true, backend),
    )
}

/// Table 4: hand-written vs compiled GE, iPSC/860 model.
pub fn table4(n: i64, procs: &[i64]) -> Vec<(i64, f64, f64)> {
    table4_backend(n, procs, Backend::TreeWalk)
}

/// [`table4`] with an explicit execution backend.
pub fn table4_backend(n: i64, procs: &[i64], backend: Backend) -> Vec<(i64, f64, f64)> {
    procs
        .iter()
        .map(|&p| table4_row_backend(n, p, backend))
        .collect()
}

/// Figure 6: speedups against the sequential (P = 1) run of each code.
pub fn fig6(rows: &[(i64, f64, f64)]) -> Vec<(i64, f64, f64)> {
    let (h1, c1) = (rows[0].1, rows[0].2);
    rows.iter().map(|&(p, h, c)| (p, h1 / h, c1 / c)).collect()
}

/// Table 3 microbenchmarks: modelled time of one representative intrinsic
/// per category on a 16-node iPSC/860. Returns `(category, intrinsic,
/// seconds)`.
pub fn table3_microbench(n: i64) -> Vec<(&'static str, &'static str, f64)> {
    use f90d_distrib::DistKind;
    use f90d_machine::{ElemType, Value};
    use f90d_runtime::{intrinsics as rt, DistArray};
    let spec = MachineSpec::ipsc860();
    let mut out = Vec::new();
    // 1. structured communication: CSHIFT
    {
        let mut m = Machine::new(spec.clone(), ProcGrid::new(&[16]));
        let a = DistArray::create(&mut m, "A", ElemType::Real, &[n], &[DistKind::Block]);
        let b = DistArray::create(&mut m, "B", ElemType::Real, &[n], &[DistKind::Block]);
        a.fill_with(&mut m, |g| Value::Real(g[0] as f64));
        m.reset_time();
        rt::cshift(&mut m, &a, &b, 0, 3);
        out.push(("structured", "CSHIFT", m.elapsed()));
    }
    // 2. reduction: SUM
    {
        let mut m = Machine::new(spec.clone(), ProcGrid::new(&[16]));
        let a = DistArray::create(&mut m, "A", ElemType::Real, &[n], &[DistKind::Block]);
        a.fill_with(&mut m, |g| Value::Real(g[0] as f64));
        m.reset_time();
        let _ = rt::sum(&mut m, &a);
        out.push(("reduction", "SUM", m.elapsed()));
    }
    // 3. multicasting: SPREAD
    {
        let mut m = Machine::new(spec.clone(), ProcGrid::new(&[4, 4]));
        let v = DistArray::create(
            &mut m,
            "V",
            ElemType::Real,
            &[n.min(256)],
            &[DistKind::Block],
        );
        let d = DistArray::create(
            &mut m,
            "D",
            ElemType::Real,
            &[16, n.min(256)],
            &[DistKind::Block, DistKind::Block],
        );
        v.fill_with(&mut m, |g| Value::Real(g[0] as f64));
        m.reset_time();
        rt::spread(&mut m, &v, &d, 0);
        out.push(("multicast", "SPREAD", m.elapsed()));
    }
    // 4. unstructured: TRANSPOSE
    {
        let side = (n as f64).sqrt() as i64;
        let mut m = Machine::new(spec.clone(), ProcGrid::new(&[4, 4]));
        let a = DistArray::create(
            &mut m,
            "A",
            ElemType::Real,
            &[side, side],
            &[DistKind::Block, DistKind::Block],
        );
        let b = DistArray::create(
            &mut m,
            "B",
            ElemType::Real,
            &[side, side],
            &[DistKind::Block, DistKind::Block],
        );
        a.fill_with(&mut m, |g| Value::Real((g[0] * side + g[1]) as f64));
        m.reset_time();
        rt::transpose(&mut m, &a, &b);
        out.push(("unstructured", "TRANSPOSE", m.elapsed()));
    }
    // 5. special: MATMUL (Fox)
    {
        let side = ((n as f64).sqrt() as i64 / 4).max(1) * 4;
        let mut m = Machine::new(spec.clone(), ProcGrid::new(&[4, 4]));
        let dist = [DistKind::Block, DistKind::Block];
        let a = DistArray::create(&mut m, "A", ElemType::Real, &[side, side], &dist);
        let b = DistArray::create(&mut m, "B", ElemType::Real, &[side, side], &dist);
        let c = DistArray::create(&mut m, "C", ElemType::Real, &[side, side], &dist);
        a.fill_with(&mut m, |g| Value::Real((g[0] + g[1]) as f64));
        b.fill_with(&mut m, |g| Value::Real((g[0] * 2 - g[1]) as f64));
        m.reset_time();
        rt::matmul(&mut m, &a, &b, &c);
        out.push(("special", "MATMUL", m.elapsed()));
    }
    out
}

/// ABL-1 (§7(2) duplicate-communication elimination) on the GE kernel:
/// `(messages_opt_on, messages_opt_off, t_on, t_off)`.
pub fn ablation_merge_comm(n: i64, p: i64) -> (u64, u64, f64, f64) {
    let spec = MachineSpec::ipsc860();
    let run = |merge: bool| {
        let mut opts = CompileOptions::on_grid(&[p]);
        opts.opt.merge_comm = merge;
        let compiled = compile(&workloads::gaussian(n), &opts).unwrap();
        let mut m = Machine::new(spec.clone(), ProcGrid::new(&[p]));
        let mut ex = Executor::new(&compiled.spmd, &mut m);
        ex.run(&mut m).unwrap();
        (m.transport.messages, m.elapsed())
    };
    let (msg_on, t_on) = run(true);
    let (msg_off, t_off) = run(false);
    (msg_on, msg_off, t_on, t_off)
}

/// ABL-2 (§7(3) schedule reuse) on the irregular kernel:
/// `(t_reuse, t_no_reuse)`.
pub fn ablation_schedule_reuse(n: i64, p: i64) -> (f64, f64) {
    let spec = MachineSpec::ipsc860();
    let run = |reuse: bool| {
        let mut opts = CompileOptions::on_grid(&[p]);
        opts.opt.schedule_reuse = reuse;
        let compiled = compile(&workloads::irregular(n), &opts).unwrap();
        let mut m = Machine::new(spec.clone(), ProcGrid::new(&[p]));
        let mut ex = Executor::new(&compiled.spmd, &mut m);
        ex.sched.reuse = reuse;
        ex.run(&mut m).unwrap();
        m.elapsed()
    };
    (run(true), run(false))
}

/// ABL-3 (§5.3.1 fused multicast_shift): `(t_fused, t_two_step)`.
pub fn ablation_multicast_shift(n: i64) -> (f64, f64) {
    let spec = MachineSpec::ipsc860();
    let src = format!(
        "
PROGRAM MCS
INTEGER, PARAMETER :: N = {n}
REAL A(N,N), B(N,N)
INTEGER S, IT
C$ TEMPLATE T(N,N)
C$ ALIGN A(I,J) WITH T(I,J)
C$ ALIGN B(I,J) WITH T(I,J)
C$ DISTRIBUTE T(BLOCK,BLOCK)
S = 2
FORALL (I=1:N, J=1:N) B(I,J) = REAL(I*J)
DO IT = 1, 16
  FORALL (I=1:N, J=1:N-2) A(I,J) = B(3,J+S)
END DO
END
"
    );
    let run = |fused: bool| {
        let mut opts = CompileOptions::on_grid(&[4, 4]);
        opts.opt.fuse_multicast_shift = fused;
        opts.opt.hoist_invariant_comm = false;
        let compiled = compile(&src, &opts).unwrap();
        let mut m = Machine::new(spec.clone(), ProcGrid::new(&[4, 4]));
        let mut ex = Executor::new(&compiled.spmd, &mut m);
        ex.run(&mut m).unwrap();
        m.elapsed()
    };
    (run(true), run(false))
}

/// ABL-4 (§5.1 overlap vs temporary shift) on Jacobi:
/// `(t_overlap, t_temporary)`.
pub fn ablation_overlap_shift(n: i64, iters: i64, p: i64) -> (f64, f64) {
    let spec = MachineSpec::ipsc860();
    let run = |overlap: bool| {
        let mut opts = CompileOptions::on_grid(&[p, p]);
        opts.opt.overlap_shift = overlap;
        let compiled = compile(&workloads::jacobi(n, iters), &opts).unwrap();
        let mut m = Machine::new(spec.clone(), ProcGrid::new(&[p, p]));
        let mut ex = Executor::new(&compiled.spmd, &mut m);
        ex.run(&mut m).unwrap();
        m.elapsed()
    };
    (run(true), run(false))
}

/// One row of the communication–computation overlap experiment
/// (`repro --exp overlap`): modelled Jacobi time under the three shift
/// execution strategies, plus the bit-identity verdicts.
#[derive(Debug, Clone)]
pub struct OverlapRow {
    /// Machine model name (`ipsc860` / `ncube2`).
    pub machine: &'static str,
    /// Execution backend.
    pub backend: Backend,
    /// `OptFlags::overlap_shift = false`: every shift through a
    /// temporary (the §5.1 baseline the claimed speedup is measured
    /// against).
    pub t_temporary: f64,
    /// Default flags: `overlap_shift` into ghost areas, blocking
    /// exchange (the `BENCH_baseline.json` configuration).
    pub t_blocking: f64,
    /// `comm_compute_overlap`: ghost exchange posted, interior compute
    /// hides the wire, boundary computed after completion.
    pub t_overlap: f64,
    /// Arrays A and B bit-identical across all three modes.
    pub arrays_identical: bool,
    /// PRINT output identical across all three modes.
    pub print_identical: bool,
}

impl OverlapRow {
    /// The §5.1/§7 claim this experiment reproduces: split-phase overlap
    /// beats both the temporary-shift strategy and the blocking ghost
    /// exchange, without changing a single result bit.
    pub fn holds(&self) -> bool {
        self.t_overlap < self.t_temporary
            && self.t_overlap < self.t_blocking
            && self.arrays_identical
            && self.print_identical
    }
}

/// Communication–computation overlap on Jacobi (`n × n`, `iters` sweeps,
/// `p × p` grid): one row per machine model × backend.
pub fn overlap_experiment(n: i64, iters: i64, p: i64) -> Vec<OverlapRow> {
    use f90d_machine::ArrayData;
    let src = workloads::jacobi(n, iters);
    let grid = [p, p];
    let run = |spec: &MachineSpec,
               backend: Backend,
               overlap_shift: bool,
               overlap: bool|
     -> (f64, Vec<String>, Vec<ArrayData>) {
        let mut opts = CompileOptions::on_grid(&grid).with_backend(backend);
        opts.opt.overlap_shift = overlap_shift;
        opts.opt.comm_compute_overlap = overlap;
        let compiled = compile(&src, &opts).expect("jacobi compiles");
        let mut m = Machine::new(spec.clone(), ProcGrid::new(&grid));
        match backend {
            Backend::TreeWalk => {
                let mut ex = Executor::new(&compiled.spmd, &mut m);
                ex.overlap = overlap;
                let rep = ex.run(&mut m).expect("jacobi runs");
                let arrays = ["A", "B"]
                    .iter()
                    .map(|a| ex.gather_array(&mut m, a).unwrap())
                    .collect();
                (rep.elapsed, rep.printed, arrays)
            }
            Backend::Vm => {
                let prog = compiled.vm_program().expect("jacobi lowers");
                let mut eng = f90d_vm::Engine::new(prog, &mut m);
                eng.overlap = overlap;
                let rep = eng.run(&mut m).expect("jacobi runs");
                let arrays = ["A", "B"]
                    .iter()
                    .map(|a| eng.gather_array(&mut m, a).unwrap())
                    .collect();
                (rep.elapsed, rep.printed, arrays)
            }
        }
    };
    let mut rows = Vec::new();
    for (machine, spec) in [
        ("ipsc860", MachineSpec::ipsc860()),
        ("ncube2", MachineSpec::ncube2()),
    ] {
        for backend in [Backend::TreeWalk, Backend::Vm] {
            let (t_temporary, pr_t, arr_t) = run(&spec, backend, false, false);
            let (t_blocking, pr_b, arr_b) = run(&spec, backend, true, false);
            let (t_overlap, pr_o, arr_o) = run(&spec, backend, true, true);
            rows.push(OverlapRow {
                machine,
                backend,
                t_temporary,
                t_blocking,
                t_overlap,
                arrays_identical: arr_t == arr_b && arr_b == arr_o,
                print_identical: pr_t == pr_b && pr_b == pr_o,
            });
        }
    }
    rows
}

/// One row of the phase-level communication planning experiment
/// (`repro --exp commplan`): one workload × machine model × backend,
/// with the planner off (per-statement ghost exchanges) and on
/// (phase-batched, PARTI-style coalesced posts).
#[derive(Debug, Clone)]
pub struct CommPlanRow {
    /// Workload label.
    pub workload: &'static str,
    /// Machine model name (`ipsc860` / `ncube2`).
    pub machine: &'static str,
    /// Execution backend.
    pub backend: Backend,
    /// `OptFlags::comm_plan = false`: one ghost-exchange post per
    /// statement per array per direction (the baseline configuration).
    pub t_per_stmt: f64,
    /// Planner on: consecutive eligible FORALLs share one batched post,
    /// same-destination strips coalesce into one message.
    pub t_plan: f64,
    /// Wire messages with the planner off.
    pub msgs_per_stmt: u64,
    /// Wire messages with the planner on.
    pub msgs_plan: u64,
    /// Total bytes identical in both modes (coalescing repacks, never
    /// re-sends).
    pub bytes_equal: bool,
    /// Arrays bit-identical in both modes.
    pub arrays_identical: bool,
    /// PRINT output identical in both modes.
    pub print_identical: bool,
    /// Whether the strict-improvement claim applies: the multi-array
    /// stencil is the coalescing showcase; the V-cycle mixes groupable
    /// statements with pinned write→read chains and is reported only.
    pub gated: bool,
}

impl CommPlanRow {
    /// Modelled-time improvement of the planner.
    pub fn speedup(&self) -> f64 {
        self.t_per_stmt / self.t_plan
    }

    /// The claim this experiment reproduces: phase-batched coalesced
    /// posts never change a result bit or move more traffic, and on the
    /// coalescing showcase they strictly remove messages and time.
    pub fn holds(&self) -> bool {
        self.arrays_identical
            && self.print_identical
            && self.bytes_equal
            && self.t_plan <= self.t_per_stmt
            && self.msgs_plan <= self.msgs_per_stmt
            && (!self.gated
                || (self.msgs_plan < self.msgs_per_stmt && self.t_plan < self.t_per_stmt))
    }
}

/// Phase-level communication planning on the multi-array stencil and the
/// multigrid V-cycle (`n` elements, `iters` sweeps, `p` processors): one
/// row per workload × machine model × backend.
pub fn commplan_experiment(n: i64, iters: i64, p: i64) -> Vec<CommPlanRow> {
    use f90d_machine::ArrayData;
    let grid = [p];
    let cases: Vec<(&'static str, String, Vec<&'static str>, bool)> = vec![
        (
            "multi-stencil",
            workloads::multi_stencil(n, iters),
            vec!["A", "B", "C", "A2", "B2", "C2"],
            true,
        ),
        (
            "v-cycle",
            workloads::vcycle(n, iters),
            vec!["U", "R", "UC", "RC"],
            false,
        ),
    ];
    let run = |src: &str,
               names: &[&str],
               spec: &MachineSpec,
               backend: Backend,
               plan: bool|
     -> (f64, u64, u64, Vec<String>, Vec<ArrayData>) {
        let mut opts = CompileOptions::on_grid(&grid).with_backend(backend);
        opts.opt.comm_plan = plan;
        let compiled = compile(src, &opts).expect("workload compiles");
        let mut m = Machine::new(spec.clone(), ProcGrid::new(&grid));
        match backend {
            Backend::TreeWalk => {
                let mut ex = Executor::new(&compiled.spmd, &mut m);
                ex.plan = plan;
                let rep = ex.run(&mut m).expect("workload runs");
                let arrays = names
                    .iter()
                    .map(|a| ex.gather_array(&mut m, a).unwrap())
                    .collect();
                (rep.elapsed, rep.messages, rep.bytes, rep.printed, arrays)
            }
            Backend::Vm => {
                let prog = compiled.vm_program().expect("workload lowers");
                let mut eng = f90d_vm::Engine::new(prog, &mut m);
                eng.plan = plan;
                let rep = eng.run(&mut m).expect("workload runs");
                let arrays = names
                    .iter()
                    .map(|a| eng.gather_array(&mut m, a).unwrap())
                    .collect();
                (rep.elapsed, rep.messages, rep.bytes, rep.printed, arrays)
            }
        }
    };
    let mut rows = Vec::new();
    for (workload, src, names, gated) in &cases {
        for (machine, spec) in [
            ("ipsc860", MachineSpec::ipsc860()),
            ("ncube2", MachineSpec::ncube2()),
        ] {
            for backend in [Backend::TreeWalk, Backend::Vm] {
                let (t_off, msg_off, by_off, pr_off, arr_off) =
                    run(src, names, &spec, backend, false);
                let (t_on, msg_on, by_on, pr_on, arr_on) = run(src, names, &spec, backend, true);
                rows.push(CommPlanRow {
                    workload,
                    machine,
                    backend,
                    t_per_stmt: t_off,
                    t_plan: t_on,
                    msgs_per_stmt: msg_off,
                    msgs_plan: msg_on,
                    bytes_equal: by_on == by_off,
                    arrays_identical: arr_on == arr_off,
                    print_identical: pr_on == pr_off,
                    gated: *gated,
                });
            }
        }
    }
    rows
}

/// Portability demonstration (paper §8.1): the same compiled program runs
/// under every machine model; returns `(machine, time)` rows.
pub fn portability(n: i64, p: i64) -> Vec<(String, f64)> {
    portability_backend(n, p, Backend::TreeWalk)
}

/// [`portability`] with an explicit execution backend.
pub fn portability_backend(n: i64, p: i64, backend: Backend) -> Vec<(String, f64)> {
    [
        MachineSpec::ipsc860(),
        MachineSpec::ncube2(),
        MachineSpec::paragon(4, 4).expect("4x4 mesh is valid"),
    ]
    .into_iter()
    .map(|spec| {
        let name = spec.name.clone();
        (name, ge_compiled_time_backend(n, p, &spec, true, backend))
    })
    .collect()
}

/// Threaded-executor smoke check: the Jacobi program runs identically in
/// Sequential and Threaded local-phase modes (hand-written runtime path).
pub fn threaded_equivalence(n: i64, p: i64) -> bool {
    use f90d_distrib::DistKind;
    use f90d_machine::{ElemType, Value};
    use f90d_runtime::DistArray;
    let run = |mode: ExecMode| {
        let mut m = Machine::with_mode(MachineSpec::ideal(), ProcGrid::new(&[p]), mode);
        let a = DistArray::create(&mut m, "A", ElemType::Real, &[n], &[DistKind::Block]);
        a.fill_with(&mut m, |g| Value::Real(g[0] as f64));
        m.local_phase(|rank, mem| {
            let arr = mem.array_mut("A");
            let cnt = arr.shape[0];
            for l in 0..cnt {
                let v = arr.get(&[l]).as_real();
                arr.set(&[l], Value::Real(v * 2.0 + rank as f64));
            }
            cnt * 2
        });
        a.gather_host(&mut m)
    };
    run(ExecMode::Sequential) == run(ExecMode::Threaded)
}

/// Pretty table printer shared by the repro binary.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    println!("{}", header.join("\t"));
    for r in rows {
        println!("{}", r.join("\t"));
    }
}

/// Keep the default optimization flags visible to binaries.
pub fn default_flags() -> OptFlags {
    OptFlags::default()
}
